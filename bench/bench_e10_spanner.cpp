// E10 — spanner extraction ([TZ05 §4], the structural sibling of the
// sketches): the union of cluster shortest-path trees is a (2k-1)-spanner
// with O(k n^{1+1/k}) edges in expectation.
//
// Sweeps k on a dense graph: spanner edge count (normalized by k n^{1+1/k})
// and the worst observed stretch of spanner distances.
//
// Flags: --n (600), --p (0.15), --kmax (5), --sources (12).
#include <cmath>

#include "bench_common.hpp"
#include "sketch/spanner.hpp"

namespace dsketch::bench {

int run_e10(const FlagSet& flags, std::ostream& out) {
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{600}));
  const auto kmax =
      static_cast<std::uint32_t>(flags.get("kmax", std::int64_t{5}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{12}));
  const Graph g = erdos_renyi(n, flags.get("p", 0.15), {1, 9}, 3);
  const SampledGroundTruth gt(g, sources, 7);
  for (std::uint32_t k = 1; k <= kmax; ++k) {
    const Hierarchy h = sampled_hierarchy(n, k, 100 + k);
    const Graph sp = spanner_graph(g, h);
    SampleSet stretch;
    for (std::size_t r = 0; r < gt.num_rows(); ++r) {
      const auto dh = dijkstra(sp, gt.sources()[r]);
      for (NodeId v = 0; v < n; v += 2) {
        if (v == gt.sources()[r]) continue;
        stretch.add(static_cast<double>(dh[v]) /
                    static_cast<double>(gt.dist(r, v)));
      }
    }
    const double denom = k * std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
    row("e10", "spanner_size_vs_stretch")
        .add("n", static_cast<std::uint64_t>(n))
        .add("graph_edges", static_cast<std::uint64_t>(g.num_edges()))
        .add("k", k)
        .add("bound_2k_minus_1", 2 * k - 1)
        .add("spanner_edges", static_cast<std::uint64_t>(sp.num_edges()))
        .add("edges_normalized",
             static_cast<double>(sp.num_edges()) / denom)
        .add("kept_fraction", static_cast<double>(sp.num_edges()) /
                                  static_cast<double>(g.num_edges()))
        .add("max_stretch", stretch.max())
        .add("mean_stretch", stretch.mean())
        .emit(out);
  }
  note(out, "e10",
       "Expected shape: edges drop sharply with k while max stretch stays "
       "under 2k-1; normalized edge count is O(1).");
  return 0;
}

}  // namespace dsketch::bench
