// E10 — spanner extraction ([TZ05 §4], the structural sibling of the
// sketches): the union of cluster shortest-path trees is a (2k-1)-spanner
// with O(k n^{1+1/k}) edges in expectation.
//
// Sweeps k on a dense graph: spanner edge count (normalized by k n^{1+1/k})
// and the worst observed stretch of spanner distances.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/spanner.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E10: Thorup-Zwick spanners (size vs stretch tradeoff)\n");
  print_header("dense erdos-renyi n=600, |E|~27000",
               {"k", "bound 2k-1", "spanner edges", "edges/(k n^{1+1/k})",
                "kept fraction", "max stretch", "mean stretch"});
  const NodeId n = 600;
  const Graph g = erdos_renyi(n, 0.15, {1, 9}, 3);
  const SampledGroundTruth gt(g, 12, 7);
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
    Hierarchy h = Hierarchy::sample(n, k, 100 + k);
    for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
      h = Hierarchy::sample(n, k, 100 + k + b);
    }
    const Graph sp = spanner_graph(g, h);
    SampleSet stretch;
    for (std::size_t row = 0; row < gt.num_rows(); ++row) {
      const auto dh = dijkstra(sp, gt.sources()[row]);
      for (NodeId v = 0; v < n; v += 2) {
        if (v == gt.sources()[row]) continue;
        stretch.add(static_cast<double>(dh[v]) /
                    static_cast<double>(gt.dist(row, v)));
      }
    }
    const double denom =
        k * std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
    print_row({fmt(k), fmt(2 * k - 1), fmt(sp.num_edges()),
               fmt(static_cast<double>(sp.num_edges()) / denom, 3),
               fmt(static_cast<double>(sp.num_edges()) /
                   static_cast<double>(g.num_edges())),
               fmt(stretch.max()), fmt(stretch.mean())});
  }
  std::printf(
      "\nExpected shape: edges drop sharply with k while max stretch stays "
      "under 2k-1; normalized edge count is O(1).\n");
  return 0;
}
