// E8 — §2.1: preprocessing pays off when S >> D.
//
// An online distance computation without preprocessing costs Omega(S)
// rounds (distributed Bellman-Ford / ping along weighted shortest paths —
// S can be as large as n). With sketches, a query is an exchange of
// O(sketch) words over <= D hops: D + words rounds pipelined (the paper's
// cruder bound is D * words). The interesting regime is S >> D: graphs
// where weighted shortest paths take many light hops but a few heavy
// shortcut edges keep the hop diameter small — e.g. a light ring with
// heavy chords. In overlays where the peer's address is known (§2.1), the
// exchange is direct and D drops out entirely.
#include <cstdio>

#include "bench_common.hpp"
#include "congest/bellman_ford.hpp"
#include "congest/sketch_exchange.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_distributed.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E8: online query cost — no-preprocessing Omega(S) vs sketch exchange\n");
  struct Topo {
    std::string name;
    Graph g;
  };
  std::vector<Topo> topos;
  topos.push_back({"erdos_renyi(512) [S~D]",
                   erdos_renyi(512, 0.015, {1, 4}, 5)});
  topos.push_back({"grid 16x32 [moderate S/D]", grid2d(16, 32, {1, 4}, 5)});
  // Light ring + heavy chords: chords give ~O(log n) hop routes but never
  // carry weighted shortest paths, so S stays ~n/2 while D collapses.
  topos.push_back({"ring+heavy chords(512) [S>>D]",
                   ring_with_chords(512, 1024, 1, 60000, 7)});
  topos.push_back({"ring+heavy chords(2048) [S>>D]",
                   ring_with_chords(2048, 6144, 1, 60000, 7)});

  print_header("per-query round cost (TZ k=4 sketches)",
               {"topology", "D", "S", "online BF rounds", "sketch words",
                "measured exchange rounds", "model D+words",
                "speedup (measured)"});
  for (auto& t : topos) {
    const std::uint32_t D = hop_diameter_estimate(t.g, 6, 3);
    const std::uint32_t S = shortest_path_diameter_estimate(t.g, 6, 3);
    const SimStats online = online_distance_rounds(t.g, 0);

    // Build labels directly so we can serialize one for the exchange.
    Hierarchy h = Hierarchy::sample(t.g.num_nodes(), 4, 19);
    for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
      h = Hierarchy::sample(t.g.num_nodes(), 4, 19 + b);
    }
    const auto built = build_tz_distributed(t.g, h, TerminationMode::kOracle);
    double mean_words = 0;
    for (NodeId u = 0; u < t.g.num_nodes(); ++u) {
      mean_words += static_cast<double>(built.labels[u].size_words());
    }
    mean_words /= t.g.num_nodes();

    // Measured exchange: node 0 fetches the sketch of the "far" node n/2.
    const NodeId peer = t.g.num_nodes() / 2;
    const auto exchange =
        exchange_sketch(t.g, 0, peer, serialize_label(built.labels[peer]));
    const double model = D + mean_words;
    print_row({t.name, fmt(D), fmt(S), fmt(online.rounds), fmt(mean_words, 0),
               fmt(exchange.stats.rounds), fmt(model, 0),
               fmt(static_cast<double>(online.rounds) /
                   static_cast<double>(exchange.stats.rounds))});
  }

  print_header("amortization: construction cost spread over Q queries "
               "(ring+heavy chords n=512)",
               {"queries Q", "rounds/query with sketches",
                "rounds/query online"});
  {
    const Graph g = ring_with_chords(512, 1024, 1, 60000, 7);
    const std::uint32_t D = hop_diameter_estimate(g, 6, 3);
    const SimStats online = online_distance_rounds(g, 0);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 4;
    const SketchEngine engine(g, cfg);
    const double exchange = D + engine.mean_size_words();
    for (const std::uint64_t q : {1ull, 10ull, 100ull, 10000ull}) {
      const double amortized =
          static_cast<double>(engine.cost().rounds) / static_cast<double>(q) +
          exchange;
      print_row({fmt(q), fmt(amortized, 1),
                 fmt(static_cast<double>(online.rounds), 1)});
    }
  }
  std::printf(
      "\nExpected shape: speedup <1 on S~D graphs (preprocessing cannot "
      "help), rising well above 1 as S/D grows; amortized per-query cost "
      "drops below the online cost once a handful of queries share the "
      "preprocessing.\n");
  return 0;
}
