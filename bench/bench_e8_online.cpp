// E8 — §2.1: preprocessing pays off when S >> D.
//
// An online distance computation without preprocessing costs Omega(S)
// rounds (distributed Bellman-Ford / ping along weighted shortest paths —
// S can be as large as n). With sketches, a query is an exchange of
// O(sketch) words over <= D hops: D + words rounds pipelined (the paper's
// cruder bound is D * words). The interesting regime is S >> D: graphs
// where weighted shortest paths take many light hops but a few heavy
// shortcut edges keep the hop diameter small — e.g. a light ring with
// heavy chords. In overlays where the peer's address is known (§2.1), the
// exchange is direct and D drops out entirely.
//
// Flags: --nmax (2048) skips topologies larger than the cap.
#include "bench_common.hpp"
#include "congest/bellman_ford.hpp"
#include "congest/sketch_exchange.hpp"
#include "core/engine.hpp"
#include "obs/round_log.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch::bench {

int run_e8(const FlagSet& flags, std::ostream& out) {
  const auto nmax = static_cast<NodeId>(flags.get("nmax", std::int64_t{2048}));
  struct Topo {
    std::string name;
    std::string regime;
    Graph g;
  };
  std::vector<Topo> topos;
  topos.push_back(
      {"erdos_renyi_512", "S~D", erdos_renyi(512, 0.015, {1, 4}, 5)});
  topos.push_back({"grid_16x32", "moderate S/D", grid2d(16, 32, {1, 4}, 5)});
  // Light ring + heavy chords: chords give ~O(log n) hop routes but never
  // carry weighted shortest paths, so S stays ~n/2 while D collapses.
  topos.push_back({"ring_heavy_chords_512", "S>>D",
                   ring_with_chords(512, 1024, 1, 60000, 7)});
  if (nmax >= 2048) {
    topos.push_back({"ring_heavy_chords_2048", "S>>D",
                     ring_with_chords(2048, 6144, 1, 60000, 7)});
  }

  // Per-round telemetry of the online BF runs, one phase per topology:
  // the round count alone hides that message traffic collapses long
  // before the last (heavy-path) distance settles.
  obs::RoundLog::Options log_opts;
  log_opts.experiment = "e8";
  obs::RoundLog round_log(out, log_opts);

  for (auto& t : topos) {
    if (t.g.num_nodes() > nmax) continue;
    const std::uint32_t D = hop_diameter_auto(t.g, 6, 3);
    const std::uint32_t S = sp_diameter_auto(t.g, 6, 3);
    SimConfig online_cfg;
    online_cfg.phase = "online_bf_" + t.name;
    online_cfg.round_log = &round_log;
    const SimStats online = online_distance_rounds(t.g, 0, online_cfg);

    // Build labels directly so we can serialize one for the exchange.
    const Hierarchy h = sampled_hierarchy(t.g.num_nodes(), 4, 19);
    const auto built = build_tz_distributed(t.g, h, TerminationMode::kOracle);
    double mean_words = 0;
    for (NodeId u = 0; u < t.g.num_nodes(); ++u) {
      mean_words += static_cast<double>(built.labels.size_words(u));
    }
    mean_words /= t.g.num_nodes();

    // Measured exchange: node 0 fetches the sketch of the "far" node n/2.
    const NodeId peer = t.g.num_nodes() / 2;
    const auto exchange =
        exchange_sketch(t.g, 0, peer, serialize_label(built.labels.view(peer)));
    row("e8", "per_query_rounds")
        .add("topology", t.name)
        .add("regime", t.regime)
        .add("n", static_cast<std::uint64_t>(t.g.num_nodes()))
        .add("D", D)
        .add("S", S)
        .add("online_bf_rounds", online.rounds)
        .add("sketch_words", mean_words)
        .add("measured_exchange_rounds", exchange.stats.rounds)
        .add("model_d_plus_words", D + mean_words)
        .add("speedup_measured", static_cast<double>(online.rounds) /
                                     static_cast<double>(
                                         exchange.stats.rounds))
        .emit(out);
  }
  round_log.flush();

  {
    const Graph g = ring_with_chords(512, 1024, 1, 60000, 7);
    const std::uint32_t D = hop_diameter_auto(g, 6, 3);
    const SimStats online = online_distance_rounds(g, 0);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 4;
    const SketchEngine engine(g, cfg);
    const double exchange = D + engine.mean_size_words();
    for (const std::uint64_t q : {1ull, 10ull, 100ull, 10000ull}) {
      const double amortized =
          static_cast<double>(engine.cost().rounds) / static_cast<double>(q) +
          exchange;
      row("e8", "amortization")
          .add("n", std::uint64_t{512})
          .add("queries", q)
          .add("rounds_per_query_sketch", amortized)
          .add("rounds_per_query_online",
               static_cast<double>(online.rounds))
          .emit(out);
    }
  }
  note(out, "e8",
       "Expected shape: speedup <1 on S~D graphs (preprocessing cannot "
       "help), rising well above 1 as S/D grows; amortized per-query cost "
       "drops below the online cost once a handful of queries share the "
       "preprocessing.");
  return 0;
}

}  // namespace dsketch::bench
