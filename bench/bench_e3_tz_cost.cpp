// E3 — Theorem 1.1 cost: O(k n^{1/k} S log n) rounds and
// O(k n^{1/k} S |E| log n) messages; §3.3's claim that distributed
// termination detection (echo + COMPLETE convergecast) costs only a
// constant factor over knowing S.
//
// Also runs the capacity ablation (DESIGN.md ✦): with per-edge capacity
// disabled, round counts collapse, demonstrating the CONGEST constraint is
// what the bound is made of.
//
// Flags: --nmax (1024) caps the n sweep (the S sweep and the bandwidth
// ablation run at min(512, nmax)), --k (3).
#include <cmath>

#include "bench_common.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch::bench {

int run_e3(const FlagSet& flags, std::ostream& out) {
  const auto nmax = static_cast<NodeId>(flags.get("nmax", std::int64_t{1024}));
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));

  const NodeId breakdown_n = nmax >= 1024 ? 1024 : nmax >= 512 ? 512 : 256;
  for (const NodeId n : {256u, 512u, 1024u}) {
    if (n > nmax) continue;
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 12}, 5);
    const std::uint32_t S = sp_diameter_auto(g, 8, 3);
    const Hierarchy h = sampled_hierarchy(n, k, 11);
    const auto oracle = build_tz_distributed(g, h, TerminationMode::kOracle);
    const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
    const auto knowns =
        build_tz_distributed(g, h, TerminationMode::kKnownS, {}, false, S);
    const double denom =
        k * std::pow(n, 1.0 / k) * S * std::log(static_cast<double>(n));
    row("e3", "cost_vs_n")
        .add("n", static_cast<std::uint64_t>(n))
        .add("k", k)
        .add("S", S)
        .add("rounds_oracle", oracle.stats.rounds)
        .add("rounds_echo", echo.total_rounds())
        .add("rounds_knowns", knowns.stats.rounds)
        .add("echo_over_oracle", static_cast<double>(echo.total_rounds()) /
                                     static_cast<double>(oracle.stats.rounds))
        .add("messages_oracle", oracle.stats.messages)
        .add("messages_echo", echo.total_messages())
        .add("rounds_normalized",
             static_cast<double>(oracle.stats.rounds) / denom)
        .emit(out);

    // Labeled per-phase cost of the echo build at the largest n that ran:
    // termination detection's constant factor, phase by phase.
    if (n == breakdown_n) {
      SimStats combined = echo.tree_stats;
      combined += echo.stats;
      for (const SimPhase& p : combined.breakdown()) {
        row("e3", "phase_breakdown")
            .add("n", static_cast<std::uint64_t>(n))
            .add("phase", p.label)
            .add("rounds", p.rounds)
            .add("messages", p.messages)
            .add("words", p.words)
            .add("max_outbox", p.max_outbox)
            .add("hit_round_limit", p.hit_round_limit)
            .emit(out);
      }
    }
  }

  const NodeId nf = std::min<NodeId>(512, nmax);
  struct Topo {
    std::string name;
    Graph g;
  };
  std::vector<Topo> topos;
  topos.push_back({"erdos_renyi", erdos_renyi(nf, 8.0 / nf, {1, 12}, 5)});
  topos.push_back(
      {"grid", grid2d(16, std::max<NodeId>(2, nf / 16), {1, 12}, 5)});
  topos.push_back({"ring", ring(nf, {1, 12}, 5)});
  for (auto& t : topos) {
    const std::uint32_t S = sp_diameter_auto(t.g, 8, 3);
    const Hierarchy h = sampled_hierarchy(t.g.num_nodes(), k, 13);
    const auto r = build_tz_distributed(t.g, h, TerminationMode::kOracle);
    row("e3", "cost_vs_s")
        .add("topology", t.name)
        .add("n", static_cast<std::uint64_t>(t.g.num_nodes()))
        .add("S", S)
        .add("rounds_oracle", r.stats.rounds)
        .add("rounds_per_s", static_cast<double>(r.stats.rounds) / S)
        .emit(out);
  }

  {
    const Graph g = erdos_renyi(nf, 8.0 / nf, {1, 12}, 5);
    const Hierarchy h = sampled_hierarchy(nf, k, 17);
    SimConfig on;
    const auto rr = build_tz_distributed(g, h, TerminationMode::kOracle, on);
    const auto eager_cap = build_tz_distributed(
        g, h, TerminationMode::kOracle, on, /*eager_send=*/true);
    SimConfig off;
    off.enforce_capacity = false;
    const auto eager_free = build_tz_distributed(
        g, h, TerminationMode::kOracle, off, /*eager_send=*/true);
    const auto ablation_row = [&](const std::string& discipline,
                                  const std::string& capacity,
                                  const TzDistributedResult& r) {
      row("e3", "bandwidth_ablation")
          .add("send_discipline", discipline)
          .add("edge_capacity", capacity)
          .add("rounds", r.stats.rounds)
          .add("messages", r.stats.messages)
          .add("peak_edge_queue", r.stats.max_outbox)
          .emit(out);
    };
    ablation_row("round-robin (Algorithm 2)", "1 msg/round", rr);
    ablation_row("eager (all pending)", "1 msg/round", eager_cap);
    ablation_row("eager (all pending)", "unbounded", eager_free);
  }
  note(out, "e3",
       "Expected shape: echo/oracle stays a small constant (~2-3x); rounds "
       "scale linearly in S; normalized rounds column roughly flat. "
       "Ablation: under CONGEST capacity, eager sending just moves the "
       "congestion from node queues to edge queues (similar rounds, large "
       "peak queue); only removing the bandwidth constraint collapses "
       "rounds — the Theorem 1.1 round bound is made of bandwidth.");
  return 0;
}

}  // namespace dsketch::bench
