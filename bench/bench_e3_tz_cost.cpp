// E3 — Theorem 1.1 cost: O(k n^{1/k} S log n) rounds and
// O(k n^{1/k} S |E| log n) messages; §3.3's claim that distributed
// termination detection (echo + COMPLETE convergecast) costs only a
// constant factor over knowing S.
//
// Also runs the capacity ablation (DESIGN.md ✦): with per-edge capacity
// disabled, round counts collapse, demonstrating the CONGEST constraint is
// what the bound is made of.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_distributed.hpp"

using namespace dsketch;
using namespace dsketch::bench;

namespace {

Hierarchy sampled(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
    h = Hierarchy::sample(n, k, seed + b);
  }
  return h;
}

}  // namespace

int main() {
  std::printf("# E3: construction cost (Theorem 1.1) and termination modes\n");
  const std::uint32_t k = 3;

  print_header("cost vs n (erdos-renyi, k=3) across synchronization modes",
               {"n", "S", "rounds(oracle)", "rounds(echo)", "rounds(knownS)",
                "echo/oracle", "msgs(oracle)", "msgs(echo)",
                "rounds/(k n^{1/k} S ln n)"});
  for (const NodeId n : {256u, 512u, 1024u}) {
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 12}, 5);
    const std::uint32_t S = shortest_path_diameter_estimate(g, 8, 3);
    const Hierarchy h = sampled(n, k, 11);
    const auto oracle = build_tz_distributed(g, h, TerminationMode::kOracle);
    const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
    const auto knowns = build_tz_distributed(g, h, TerminationMode::kKnownS,
                                             {}, false, S);
    const double denom = k * std::pow(n, 1.0 / k) * S *
                         std::log(static_cast<double>(n));
    print_row({fmt(n), fmt(S), fmt(oracle.stats.rounds),
               fmt(echo.total_rounds()), fmt(knowns.stats.rounds),
               fmt(static_cast<double>(echo.total_rounds()) /
                   static_cast<double>(oracle.stats.rounds)),
               fmt(oracle.stats.messages), fmt(echo.total_messages()),
               fmt(static_cast<double>(oracle.stats.rounds) / denom, 4)});
  }

  print_header("cost vs S at fixed n=512 (k=3)",
               {"topology", "S", "rounds(oracle)", "rounds/S"});
  struct Topo {
    std::string name;
    Graph g;
  };
  std::vector<Topo> topos;
  topos.push_back({"erdos_renyi", erdos_renyi(512, 0.015, {1, 12}, 5)});
  topos.push_back({"grid 16x32", grid2d(16, 32, {1, 12}, 5)});
  topos.push_back({"ring", ring(512, {1, 12}, 5)});
  for (auto& t : topos) {
    const std::uint32_t S = shortest_path_diameter_estimate(t.g, 8, 3);
    const Hierarchy h = sampled(t.g.num_nodes(), k, 13);
    const auto r = build_tz_distributed(t.g, h, TerminationMode::kOracle);
    print_row({t.name, fmt(S), fmt(r.stats.rounds),
               fmt(static_cast<double>(r.stats.rounds) / S)});
  }

  print_header("bandwidth ablation (n=512 erdos-renyi, k=3)",
               {"send discipline", "edge capacity", "rounds", "messages",
                "peak edge queue"});
  {
    const Graph g = erdos_renyi(512, 0.015, {1, 12}, 5);
    const Hierarchy h = sampled(512, k, 17);
    SimConfig on;
    const auto rr = build_tz_distributed(g, h, TerminationMode::kOracle, on);
    const auto eager_cap = build_tz_distributed(
        g, h, TerminationMode::kOracle, on, /*eager_send=*/true);
    SimConfig off;
    off.enforce_capacity = false;
    const auto eager_free = build_tz_distributed(
        g, h, TerminationMode::kOracle, off, /*eager_send=*/true);
    print_row({"round-robin (Algorithm 2)", "1 msg/round", fmt(rr.stats.rounds),
               fmt(rr.stats.messages), fmt(rr.stats.max_outbox)});
    print_row({"eager (all pending)", "1 msg/round",
               fmt(eager_cap.stats.rounds), fmt(eager_cap.stats.messages),
               fmt(eager_cap.stats.max_outbox)});
    print_row({"eager (all pending)", "unbounded",
               fmt(eager_free.stats.rounds), fmt(eager_free.stats.messages),
               fmt(eager_free.stats.max_outbox)});
  }
  std::printf(
      "\nExpected shape: echo/oracle stays a small constant (~2-3x); "
      "rounds scale linearly in S; normalized rounds column roughly flat. "
      "Ablation: under CONGEST capacity, eager sending just moves the "
      "congestion from node queues to edge queues (similar rounds, large "
      "peak queue); only removing the bandwidth constraint collapses "
      "rounds — the Theorem 1.1 round bound is made of bandwidth.\n");
  return 0;
}
