// E15 — the closed loop at scale: build the TZ sketches *in the network*
// (event-driven simulator, echo termination, parallel node stepping),
// validate the Theorem 1.1 round/message bounds explicitly as measured /
// bound ratios, then pack the distributed labels into the serving-tier
// SketchStore and answer through the sharded QueryService — requiring
// every answer to be distance-identical to a tz_query over the
// centralized construction on the same hierarchy.
//
// The bound columns use the known-S deadline the implementation pads to,
//   rounds <= k * (3 n^{1/k} ln n * S + 2S + 16),
// and the whp bunch bound of Lemma 3.1 (4 n^{1/k} ln n broadcasts per
// node per phase, each crossing every incident edge),
//   messages <= 2|E| * k * 4 n^{1/k} ln n.
// Both ratios must land well under 1; the full grid runs this at n=100k.
//
// Flags: --n / --graph (primary graph, default n=2048 ER with avg degree
// 8), --k (4), --sim-threads (0 = all hardware threads), --queries
// (5000), --seed (7).
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "dynamics/incremental.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"
#include "util/rng.hpp"

namespace dsketch::bench {

int run_e15(const FlagSet& flags, std::ostream& out) {
  const Graph g = primary_graph(flags, 2048, 8.0 / 2048, {1, 12}, 7);
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{4}));
  const auto sim_threads =
      static_cast<unsigned>(flags.get("sim-threads", std::int64_t{0}));
  const auto num_queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{5000}));
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{7}));

  const NodeId n = g.num_nodes();
  const auto m = static_cast<double>(g.num_edges());
  const std::uint32_t S = sp_diameter_auto(g, 8, 3);
  const Hierarchy h = sampled_hierarchy(n, k, seed + 11);

  // --- in-network build (the tentpole path: event-driven, threaded) ----
  SimConfig cfg;
  cfg.threads = sim_threads;
  Timer build_timer;
  const TzDistributedResult r =
      build_tz_distributed(g, h, TerminationMode::kEcho, cfg);
  const double build_seconds = build_timer.seconds();

  SimStats combined = r.tree_stats;
  combined += r.stats;
  for (const SimPhase& p : combined.breakdown()) {
    row("e15", "phase_breakdown")
        .add("n", static_cast<std::uint64_t>(n))
        .add("phase", p.label)
        .add("rounds", p.rounds)
        .add("messages", p.messages)
        .add("words", p.words)
        .add("node_steps", p.node_steps)
        .add("max_outbox", p.max_outbox)
        .add("hit_round_limit", p.hit_round_limit)
        .emit(out);
  }
  for (std::size_t i = 0; i < r.phase_end_rounds.size(); ++i) {
    row("e15", "phase_ends")
        .add("phase_index", static_cast<std::uint64_t>(i))
        .add("end_round", r.phase_end_rounds[i])
        .emit(out);
  }

  // --- Theorem 1.1 bound validation --------------------------------------
  const double nk = std::pow(static_cast<double>(n), 1.0 / k);
  const double ln_n = std::log(static_cast<double>(n));
  const double round_bound = k * (3.0 * nk * ln_n * S + 2.0 * S + 16.0);
  const double message_bound = 2.0 * m * k * 4.0 * nk * ln_n;
  const std::uint64_t rounds = r.total_rounds();
  const std::uint64_t messages = r.total_messages();
  row("e15", "bounds")
      .add("n", static_cast<std::uint64_t>(n))
      .add("edges", static_cast<std::uint64_t>(g.num_edges()))
      .add("k", k)
      .add("S", S)
      .add("sim_threads", static_cast<std::uint64_t>(sim_threads))
      .add("rounds", rounds)
      .add("round_bound", round_bound)
      .add("round_ratio", static_cast<double>(rounds) / round_bound)
      .add("messages", messages)
      .add("message_bound", message_bound)
      .add("message_ratio", static_cast<double>(messages) / message_bound)
      .add("max_outbox", combined.max_outbox)
      .add("build_seconds", build_seconds)
      .emit(out);

  // --- pack + serve, verified against the centralized build --------------
  Timer central_timer;
  const LabelArena central = build_tz_centralized(g, h);
  const double central_seconds = central_timer.seconds();
  std::uint64_t label_mismatches = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!(r.labels.view(u) == central.view(u))) ++label_mismatches;
  }

  const TzLabelOracle oracle(r.labels, k);
  Timer pack_timer;
  const SketchStore store = SketchStore::from_oracle(oracle);
  const double pack_seconds = pack_timer.seconds();

  QueryServiceConfig qcfg;
  qcfg.shards = 8;
  qcfg.threads = sim_threads;
  QueryService service(store, qcfg);
  Rng rng(seed * 131 + 5);
  std::vector<QueryService::Pair> pairs;
  pairs.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n)));
  }
  std::vector<Dist> answers(pairs.size());
  Timer serve_timer;
  service.query_batch(pairs, answers);
  const double serve_seconds = serve_timer.seconds();
  std::uint64_t query_mismatches = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (answers[i] != tz_query(central.view(pairs[i].first),
                               central.view(pairs[i].second))) {
      ++query_mismatches;
    }
  }
  row("e15", "serve")
      .add("n", static_cast<std::uint64_t>(n))
      .add("queries", static_cast<std::uint64_t>(pairs.size()))
      .add("label_mismatches", label_mismatches)
      .add("query_mismatches", query_mismatches)
      .add("store_bytes", static_cast<std::uint64_t>(store.payload_bytes()))
      .add("pack_seconds", pack_seconds)
      .add("centralized_build_seconds", central_seconds)
      .add("ns_per_query",
           serve_seconds * 1e9 / static_cast<double>(pairs.size()))
      .emit(out);

  note(out, "e15",
       "Expected shape: round_ratio and message_ratio both well under 1 "
       "(the echo build terminates long before the padded known-S "
       "deadline, and bunch sizes sit below the whp bound); "
       "label_mismatches and query_mismatches exactly 0 — the in-network "
       "build, packed and served, is distance-identical to the "
       "centralized construction.");
  return 0;
}

}  // namespace dsketch::bench
