// Shared helpers for the experiment library (bench/bench_e*.cpp).
//
// Every experiment emits machine-readable JSON lines (util/json_lines.hpp)
// to a caller-supplied stream: one `row(...)` object per table row plus one
// trailing `note(...)` describing the shape the paper predicts. Markdown
// rendering lives in src/exp/report.cpp, which aggregates these lines into
// docs/RESULTS.md; the standalone bench shims just stream them to stdout.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/stretch_eval.hpp"
#include "util/flags.hpp"
#include "util/json_lines.hpp"
#include "util/timer.hpp"

namespace dsketch::bench {

/// Starts a table row stamped with the shared schema keys every harness
/// line carries: `experiment` (e1..e12) and `table` (groups rows into one
/// rendered table).
inline JsonLine row(const std::string& experiment, const std::string& table) {
  JsonLine line;
  line.add("experiment", experiment).add("table", table);
  return line;
}

/// Emits the experiment's expected-shape note (rendered as a blockquote
/// under the experiment's tables in docs/RESULTS.md).
inline void note(std::ostream& out, const std::string& experiment,
                 const std::string& text) {
  JsonLine line;
  line.add("experiment", experiment).add("note", text).emit(out);
}

/// Shorthand: evaluate an estimator over sampled ground truth.
inline StretchReport eval(const Graph& g, const SampledGroundTruth& gt,
                          const Estimator& est, double epsilon = 0.0) {
  EvalOptions opts;
  opts.epsilon = epsilon;
  return evaluate_stretch(g, gt, est, opts);
}

/// Samples a TZ hierarchy, re-drawing until the top level is nonempty
/// (the construction requires at least one top-level pivot).
inline Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k,
                                   std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
    h = Hierarchy::sample(n, k, seed + b);
  }
  return h;
}

/// Largest n at which the benches compute diameters exactly; the exact
/// sweeps are source-parallel over the kernel now, but they are still
/// n full searches, so larger graphs fall back to sampled lower bounds.
inline constexpr NodeId kExactDiameterMaxN = 1024;

/// Hop diameter D: exact up to kExactDiameterMaxN, sampled beyond.
inline std::uint32_t hop_diameter_auto(const Graph& g, int samples,
                                       std::uint64_t seed) {
  if (g.num_nodes() <= kExactDiameterMaxN) return hop_diameter(g);
  return hop_diameter_estimate(g, samples, seed);
}

/// Shortest-path diameter S: exact up to kExactDiameterMaxN, sampled
/// beyond.
inline std::uint32_t sp_diameter_auto(const Graph& g, int samples,
                                      std::uint64_t seed) {
  if (g.num_nodes() <= kExactDiameterMaxN) return shortest_path_diameter(g);
  return shortest_path_diameter_estimate(g, samples, seed);
}

/// The experiment's primary graph: `--graph FILE` loads a corpus file
/// (how the repro runner shares one generated graph across cells);
/// otherwise an Erdős–Rényi instance at `--n` (default `def_n`) whose
/// edge probability preserves `def_p`'s average degree when n is scaled.
inline Graph primary_graph(const FlagSet& flags, NodeId def_n, double def_p,
                           WeightSpec weights, std::uint64_t seed) {
  if (flags.has("graph")) {
    return read_graph_file(flags.get("graph", std::string{}));
  }
  const auto n =
      static_cast<NodeId>(flags.get("n", static_cast<std::int64_t>(def_n)));
  const double p = flags.get("p", def_p * def_n / n);
  return erdos_renyi(n, p, weights, seed);
}

/// Mean per-node sketch size in words for any set exposing size_words(u).
template <typename SketchSet>
double mean_size_words(const SketchSet& set, NodeId n) {
  double words = 0;
  for (NodeId u = 0; u < n; ++u) {
    words += static_cast<double>(set.size_words(u));
  }
  return words / static_cast<double>(n);
}

/// Times `fn(u, v)` over all pairs (one warmup pass, one timed pass) and
/// returns mean ns per query; the checksum defeats dead-code elimination
/// without perturbing the loop.
template <typename Fn>
double time_ns_per_query(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         const Fn& fn) {
  Dist sink = 0;
  for (const auto& [u, v] : pairs) sink ^= fn(u, v);
  Timer timer;
  for (const auto& [u, v] : pairs) sink ^= fn(u, v);
  const double ns = timer.seconds() * 1e9;
  volatile Dist keep = sink;
  (void)keep;
  return ns / static_cast<double>(pairs.size());
}

}  // namespace dsketch::bench
