// Shared helpers for the experiment harness binaries.
//
// Each bench_eN binary regenerates one experiment from DESIGN.md §3 and
// prints a Markdown table; EXPERIMENTS.md records the observed shapes
// against the paper's theorem claims.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch::bench {

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n## %s\n\n", title.c_str());
  std::string head = "|", rule = "|";
  for (const auto& c : columns) {
    head += " " + c + " |";
    rule += "---|";
  }
  std::printf("%s\n%s\n", head.c_str(), rule.c_str());
}

inline void print_row(const std::vector<std::string>& cells) {
  std::string row = "|";
  for (const auto& c : cells) row += " " + c + " |";
  std::printf("%s\n", row.c_str());
}

inline std::string fmt(double x, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}
inline std::string fmt(std::uint64_t x) { return std::to_string(x); }
inline std::string fmt(std::uint32_t x) { return std::to_string(x); }
inline std::string fmt(int x) { return std::to_string(x); }

/// Shorthand: evaluate an estimator over sampled ground truth.
inline StretchReport eval(const Graph& g, const SampledGroundTruth& gt,
                          const Estimator& est, double epsilon = 0.0) {
  EvalOptions opts;
  opts.epsilon = epsilon;
  return evaluate_stretch(g, gt, est, opts);
}

}  // namespace dsketch::bench
