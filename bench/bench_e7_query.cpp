// E7 — Lemma 3.2: the query procedure runs in O(k) time given two labels.
//
// google-benchmark micro-benchmarks of the query path for each scheme;
// the TZ query should grow (sub-)linearly in k and stay in the tens of
// nanoseconds — the "quickly in an online fashion" claim of §1.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "sketch/graceful_sketch.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsketch;

const Graph& bench_graph() {
  static const Graph g = erdos_renyi(1024, 0.008, {1, 16}, 99);
  return g;
}

void BM_TzQuery(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = k;
  const SketchEngine engine(bench_graph(), cfg);
  Rng rng(5);
  const NodeId n = bench_graph().num_nodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(engine.query(u, v));
  }
}
BENCHMARK(BM_TzQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SlackQuery(benchmark::State& state) {
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 1.0 / static_cast<double>(state.range(0));
  const SketchEngine engine(bench_graph(), cfg);
  Rng rng(6);
  const NodeId n = bench_graph().num_nodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(engine.query(u, v));
  }
}
BENCHMARK(BM_SlackQuery)->Arg(5)->Arg(10)->Arg(20);

void BM_GracefulQuery(benchmark::State& state) {
  static const GracefulBuildResult build =
      build_graceful_sketches(bench_graph(), {});
  Rng rng(7);
  const NodeId n = bench_graph().num_nodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(build.sketches.query(u, v));
  }
}
BENCHMARK(BM_GracefulQuery);

}  // namespace
