// E7 — Lemma 3.2: the query procedure runs in O(k) time given two labels.
//
// Hand-rolled timing loops over the query path for each scheme; the TZ
// query should grow (sub-)linearly in k and stay in the tens to hundreds
// of nanoseconds — the "quickly in an online fashion" claim of §1. Each
// config is timed twice: through `SketchEngine::query` (the build
// representation) and through the packed `SketchStore` (the serving
// representation, see src/serve/).
//
// A second table (`oracle_latency`) times every oracle named by
// --oracles (default "tz,landmark,exact") through the registry-resolved
// DistanceOracle interface — one code path for sketches and baselines,
// both per-query and batched — so the sketch/baseline latency-vs-size
// trade-off lands in one table.
//
// Flags: --n (1024) / --graph FILE select the instance, --queries
// (200000) timed pairs per config, --oracles NAME,NAME,...
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "obs_overhead.hpp"
#include "serve/mmap_store.hpp"
#include "serve/sketch_store.hpp"
#include "util/rng.hpp"

namespace dsketch::bench {

namespace {

std::vector<std::pair<NodeId, NodeId>> random_pairs(NodeId n,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n)));
  }
  return pairs;
}

void run_config(const Graph& g, const BuildConfig& cfg, const char* scheme,
                std::size_t queries, const std::string& store_path,
                std::ostream& out) {
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  const auto pairs = random_pairs(g.num_nodes(), queries, 5);
  const double engine_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return engine.query(u, v); });
  const double store_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return store.query(u, v); });

  // The mmap serving path, split cold vs warm. Cold: pages dropped from
  // the page cache (MADV_DONTNEED), so the first pass pays the fault-in
  // of every offset-table and blob page it touches. Warm: same pairs
  // again with the mapping resident — the steady-state serving number.
  store.save_file(store_path);
  const auto mmap_store = MmapSketchStore::open(store_path);
  std::size_t mmap_mismatches = 0;
  for (const auto& [u, v] : pairs) {
    if (mmap_store->query(u, v) != store.query(u, v)) ++mmap_mismatches;
  }
  mmap_store->drop_pages();
  const double mmap_cold_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return mmap_store->query(u, v); });
  const double mmap_warm_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return mmap_store->query(u, v); });

  row("e7", "query_latency")
      .add("scheme", scheme)
      .add("k", cfg.k)
      .add("epsilon", cfg.epsilon)
      .add("n", static_cast<std::uint64_t>(g.num_nodes()))
      .add("queries", static_cast<std::uint64_t>(queries))
      .add("engine_ns_per_query", engine_ns)
      .add("store_ns_per_query", store_ns)
      .add("mmap_cold_ns_per_query", mmap_cold_ns)
      .add("mmap_warm_ns_per_query", mmap_warm_ns)
      .add("mmap_mismatches", static_cast<std::uint64_t>(mmap_mismatches))
      .add("mmap_bytes", static_cast<std::uint64_t>(mmap_store->mapped_bytes()))
      .add("mean_sketch_words", engine.mean_size_words())
      .emit(out);
}

}  // namespace

int run_e7(const FlagSet& flags, std::ostream& out) {
  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{200000}));
  const Graph g = primary_graph(flags, 1024, 8.0 / 1024, {1, 16}, 99);
  // The repro runner sets --tmpdir to a cell-private directory so parallel
  // cells never collide on the store file.
  const std::string tmpdir = flags.get("tmpdir", std::string{});
  const std::string store_path = flags.get(
      "out", tmpdir.empty() ? std::string("e7_query.store")
                            : tmpdir + "/e7_query.store");

  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = k;
    run_config(g, cfg, "tz", queries, store_path, out);
  }
  for (const double inv_eps : {5.0, 10.0, 20.0}) {
    BuildConfig cfg;
    cfg.scheme = Scheme::kSlack;
    cfg.epsilon = 1.0 / inv_eps;
    run_config(g, cfg, "slack", queries, store_path, out);
  }
  {
    BuildConfig cfg;
    cfg.scheme = Scheme::kCdg;
    cfg.k = 2;
    run_config(g, cfg, "cdg", queries, store_path, out);
  }
  {
    BuildConfig cfg;
    cfg.scheme = Scheme::kGraceful;
    // Graceful queries scan every epsilon level; 10x fewer reps keeps the
    // runtime in line (floor of 1 so tiny --queries still measures).
    run_config(g, cfg, "graceful", std::max<std::size_t>(1, queries / 10),
               store_path, out);
  }

  // Scheme-agnostic comparison: every oracle resolved by registry name
  // through the same build/query code path — sketches and baselines in
  // one table.
  {
    const auto pairs = random_pairs(g.num_nodes(), queries, 5);
    for (const std::string& name : parse_name_list(
             flags.get("oracles", std::string("tz,landmark,exact")))) {
      const std::unique_ptr<DistanceOracle> oracle =
          OracleRegistry::instance().build(name, g, flags);
      const double ns = time_ns_per_query(
          pairs, [&](NodeId u, NodeId v) { return oracle->query(u, v); });
      // The batched path (the serving hot loop), amortized per query.
      std::vector<Dist> answers(pairs.size());
      oracle->query_batch(pairs, answers);  // warmup
      Timer timer;
      oracle->query_batch(pairs, answers);
      const double batch_ns =
          timer.seconds() * 1e9 / static_cast<double>(pairs.size());
      row("e7", "oracle_latency")
          .add("oracle", name)
          .add("guarantee", oracle->guarantee())
          .add("n", static_cast<std::uint64_t>(g.num_nodes()))
          .add("queries", static_cast<std::uint64_t>(pairs.size()))
          .add("ns_per_query", ns)
          .add("batch_ns_per_query", batch_ns)
          .add("mean_size_words", oracle->mean_size_words())
          .emit(out);
    }
  }
  // Observability cost on the serving path, measured on the packed TZ
  // store (the representation a deployment queries).
  {
    std::unique_ptr<DistanceOracle> oracle =
        OracleRegistry::instance().build("tz", g, flags);
    if (SketchStore::packable(*oracle)) {
      oracle = std::make_unique<SketchStore>(SketchStore::from_oracle(*oracle));
    }
    emit_obs_overhead_row("e7", *oracle, queries, out);
  }
  note(out, "e7",
       "Expected shape: TZ ns/query grows (sub-)linearly in k and stays in "
       "the tens-to-hundreds of ns; the packed store is at least as fast "
       "as the engine representation; mmap_mismatches is exactly 0, warm "
       "mmap latency sits near the heap store's, and the cold pass pays "
       "the page fault-in on top. obs_overhead: metrics off vs on vs "
       "on+tracing should differ by low single-digit percent.");
  return 0;
}

}  // namespace dsketch::bench
