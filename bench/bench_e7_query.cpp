// E7 — Lemma 3.2: the query procedure runs in O(k) time given two labels.
//
// Hand-rolled timing loops over the query path for each scheme; the TZ
// query should grow (sub-)linearly in k and stay in the tens to hundreds
// of nanoseconds — the "quickly in an online fashion" claim of §1.
//
// Output is machine-readable: one JSON object per line (see
// json_lines.hpp), so BENCH_*.json perf trajectories can be populated.
// Each config is timed twice: through `SketchEngine::query` (the build
// representation) and through the packed `SketchStore` (the serving
// representation, see src/serve/).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/sketch_store.hpp"
#include "util/json_lines.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsketch;
using dsketch::bench::JsonLine;

std::vector<std::pair<NodeId, NodeId>> random_pairs(NodeId n,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n)));
  }
  return pairs;
}

/// Times `queries` calls of `fn(u, v)` and returns mean ns per query.
template <typename Fn>
double time_ns_per_query(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         const Fn& fn) {
  // One warmup pass, then a timed pass; the checksum defeats dead-code
  // elimination without perturbing the loop.
  Dist sink = 0;
  for (const auto& [u, v] : pairs) sink ^= fn(u, v);
  Timer timer;
  for (const auto& [u, v] : pairs) sink ^= fn(u, v);
  const double ns = timer.seconds() * 1e9;
  volatile Dist keep = sink;
  (void)keep;
  return ns / static_cast<double>(pairs.size());
}

void run_config(const Graph& g, const BuildConfig& cfg, const char* scheme,
                std::size_t queries) {
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  const auto pairs = random_pairs(g.num_nodes(), queries, 5);
  const double engine_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return engine.query(u, v); });
  const double store_ns = time_ns_per_query(
      pairs, [&](NodeId u, NodeId v) { return store.query(u, v); });
  JsonLine line;
  line.add("bench", "e7_query")
      .add("scheme", scheme)
      .add("k", cfg.k)
      .add("epsilon", cfg.epsilon)
      .add("n", static_cast<std::uint64_t>(g.num_nodes()))
      .add("queries", queries)
      .add("engine_ns_per_query", engine_ns)
      .add("store_ns_per_query", store_ns)
      .add("mean_sketch_words", engine.mean_size_words())
      .emit();
}

}  // namespace

int main(int argc, char** argv) {
  const FlagSet flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{1024}));
  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{200000}));
  const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 99);

  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = k;
    run_config(g, cfg, "tz", queries);
  }
  for (const double inv_eps : {5.0, 10.0, 20.0}) {
    BuildConfig cfg;
    cfg.scheme = Scheme::kSlack;
    cfg.epsilon = 1.0 / inv_eps;
    run_config(g, cfg, "slack", queries);
  }
  {
    BuildConfig cfg;
    cfg.scheme = Scheme::kCdg;
    cfg.k = 2;
    run_config(g, cfg, "cdg", queries);
  }
  {
    BuildConfig cfg;
    cfg.scheme = Scheme::kGraceful;
    // Graceful queries scan every epsilon level; 10x fewer reps keeps the
    // runtime in line (floor of 1 so tiny --queries still measures).
    run_config(g, cfg, "graceful", std::max<std::size_t>(1, queries / 10));
  }
  return 0;
}
