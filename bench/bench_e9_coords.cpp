// E9 — §1: network coordinate systems (Vivaldi) "exhibit poor behavior in
// pathological instances", while the sketch guarantees hold on all graphs.
//
// Compares Vivaldi, landmarks, slack sketches, and TZ on a near-Euclidean
// geometric graph (friendly) vs a ring-with-chords and an expander
// (hostile embeddings). Reported distortion = max(est/d, d/est) since
// coordinates can underestimate.
#include <cstdio>

#include "baselines/landmark.hpp"
#include "baselines/vivaldi.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

using namespace dsketch;
using namespace dsketch::bench;

namespace {

struct DistortionRow {
  SampleSet distortion;
  std::size_t underestimates = 0;
};

DistortionRow measure(const Graph& g, const SampledGroundTruth& gt,
                      const Estimator& est) {
  DistortionRow row;
  for (std::size_t r = 0; r < gt.num_rows(); ++r) {
    const NodeId s = gt.sources()[r];
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (v == s) continue;
      const double d = static_cast<double>(gt.dist(r, v));
      const double e =
          std::max<double>(1.0, static_cast<double>(est(s, v)));
      row.distortion.add(std::max(e / d, d / e));
      if (e < d) ++row.underestimates;
    }
  }
  return row;
}

void run_topology(const std::string& name, const Graph& g) {
  const SampledGroundTruth gt(g, 12, 9);

  VivaldiConfig vc;
  vc.rounds = 48;
  const VivaldiCoordinates viv(g, vc);
  const LandmarkSketchSet lm(g, 32, 5);
  BuildConfig tz;
  tz.scheme = Scheme::kThorupZwick;
  tz.k = 3;
  const SketchEngine tz_engine(g, tz);
  BuildConfig slack;
  slack.scheme = Scheme::kSlack;
  slack.epsilon = 0.1;
  const SketchEngine slack_engine(g, slack);

  struct Entry {
    std::string scheme;
    DistortionRow row;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"vivaldi(3d)", measure(g, gt, [&](NodeId u, NodeId v) {
         return viv.query(u, v);
       })});
  entries.push_back({"landmarks(32)", measure(g, gt, [&](NodeId u, NodeId v) {
                       return lm.query(u, v);
                     })});
  entries.push_back({"slack eps=0.1", measure(g, gt, [&](NodeId u, NodeId v) {
                       return slack_engine.query(u, v);
                     })});
  entries.push_back({"TZ k=3", measure(g, gt, [&](NodeId u, NodeId v) {
                       return tz_engine.query(u, v);
                     })});
  for (auto& e : entries) {
    print_row({name, e.scheme, fmt(e.row.distortion.p(50)),
               fmt(e.row.distortion.p(95)), fmt(e.row.distortion.max()),
               fmt(e.row.underestimates)});
  }
}

}  // namespace

int main() {
  std::printf("# E9: coordinate systems vs sketches on friendly and hostile graphs\n");
  print_header("distortion = max(est/d, d/est)",
               {"topology", "scheme", "p50", "p95", "max", "underest"});
  run_topology("geometric (friendly)", random_geometric(512, 0.08, 3, true));
  run_topology("ring+chords (hostile)",
               ring_with_chords(512, 256, 32, 1, 3));
  run_topology("expander nm (hostile)",
               random_graph_nm(512, 2048, {1, 2}, 3));
  std::printf(
      "\nExpected shape: Vivaldi competitive on the geometric graph but its "
      "p95/max blow up on hostile topologies (plus nonzero underestimates); "
      "TZ/slack max distortion stays within the proven bounds everywhere.\n");
  return 0;
}
