// E9 — §1: network coordinate systems (Vivaldi) "exhibit poor behavior in
// pathological instances", while the sketch guarantees hold on all graphs.
//
// Compares Vivaldi, landmarks, slack sketches, and TZ on a near-Euclidean
// geometric graph (friendly) vs a ring-with-chords and an expander
// (hostile embeddings). Reported distortion = max(est/d, d/est) since
// coordinates can underestimate.
//
// Flags: --n (512) scales every topology, --sources (12).
#include "baselines/landmark.hpp"
#include "baselines/vivaldi.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

namespace dsketch::bench {

namespace {

struct DistortionRow {
  SampleSet distortion;
  std::size_t underestimates = 0;
};

DistortionRow measure(const Graph& g, const SampledGroundTruth& gt,
                      const Estimator& est) {
  DistortionRow row;
  for (std::size_t r = 0; r < gt.num_rows(); ++r) {
    const NodeId s = gt.sources()[r];
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (v == s) continue;
      const double d = static_cast<double>(gt.dist(r, v));
      const double e = std::max<double>(1.0, static_cast<double>(est(s, v)));
      row.distortion.add(std::max(e / d, d / e));
      if (e < d) ++row.underestimates;
    }
  }
  return row;
}

void run_topology(const std::string& name, const Graph& g,
                  std::size_t sources, std::ostream& out) {
  const SampledGroundTruth gt(g, sources, 9);

  VivaldiConfig vc;
  vc.rounds = 48;
  const VivaldiCoordinates viv(g, vc);
  const LandmarkSketchSet lm(g, 32, 5);
  BuildConfig tz;
  tz.scheme = Scheme::kThorupZwick;
  tz.k = 3;
  const SketchEngine tz_engine(g, tz);
  BuildConfig slack;
  slack.scheme = Scheme::kSlack;
  slack.epsilon = 0.1;
  const SketchEngine slack_engine(g, slack);

  struct Entry {
    std::string scheme;
    DistortionRow row;
  };
  std::vector<Entry> entries;
  entries.push_back({"vivaldi_3d", measure(g, gt, [&](NodeId u, NodeId v) {
                       return viv.query(u, v);
                     })});
  entries.push_back({"landmarks_32", measure(g, gt, [&](NodeId u, NodeId v) {
                       return lm.query(u, v);
                     })});
  entries.push_back(
      {"slack_eps_0.1", measure(g, gt, [&](NodeId u, NodeId v) {
         return slack_engine.query(u, v);
       })});
  entries.push_back({"tz_k3", measure(g, gt, [&](NodeId u, NodeId v) {
                       return tz_engine.query(u, v);
                     })});
  for (auto& e : entries) {
    row("e9", "distortion")
        .add("topology", name)
        .add("n", static_cast<std::uint64_t>(g.num_nodes()))
        .add("scheme", e.scheme)
        .add("p50_distortion", e.row.distortion.p(50))
        .add("p95_distortion", e.row.distortion.p(95))
        .add("max_distortion", e.row.distortion.max())
        .add("underestimates",
             static_cast<std::uint64_t>(e.row.underestimates))
        .emit(out);
  }
}

}  // namespace

int run_e9(const FlagSet& flags, std::ostream& out) {
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{512}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{12}));
  run_topology("geometric (friendly)", random_geometric(n, 0.08, 3, true),
               sources, out);
  run_topology("ring+chords (hostile)",
               ring_with_chords(n, n / 2, 32, 1, 3), sources, out);
  run_topology("expander nm (hostile)",
               random_graph_nm(n, 4 * static_cast<std::size_t>(n), {1, 2}, 3),
               sources, out);
  note(out, "e9",
       "Expected shape: Vivaldi competitive on the geometric graph but its "
       "p95/max blow up on hostile topologies (plus nonzero "
       "underestimates); TZ/slack max distortion stays within the proven "
       "bounds everywhere.");
  return 0;
}

}  // namespace dsketch::bench
