// E14 — live sketch refresh: serving through churn (§1/§5: preprocessing
// "would require altering the sketches periodically" — this experiment
// does it without stopping traffic).
//
// One serving thread answers a continuous zipf query stream through the
// sharded QueryService while the controller thread applies a seeded
// edge-churn stream (dynamics/update_stream) to the graph and keeps the
// serving oracle fresh per policy:
//
//   stale    — never touch the sketch (E11's serve-stale baseline)
//   count    — full rebuild via the OracleRegistry every --budget updates
//   adaptive — probe the underestimate rate every --probe-every updates,
//              rebuild when it exceeds --rate-threshold
//   repair   — incremental in-place repair of inserts/weight decreases
//              (dynamics/incremental), rebuild after --unrepaired-budget
//              distance-increasing updates
//
// Rebuilt/repaired oracles are hot-swapped with one generation-tagged
// pointer flip (serve/snapshot.hpp); every batch's answers are verified
// against the exact oracle of the generation that served it, so a torn
// or stale-cache answer is counted — the run fails if any appears.
// Per round the controller scores the serving snapshot against ground
// truth on the *current* graph: guarantee-violation (underestimate) rate
// and stretch, the freshness metrics; per policy it reports QPS in and
// out of rebuild windows plus swap latency, the availability metrics.
//
// Flags: --n (512) / --p / --graph FILE, --k (3), --rounds (6),
// --updates (8 per round), --policies (stale,count,adaptive,repair),
// --budget (16), --unrepaired-budget (4), --rate-threshold (0.02),
// --probe-every (8), --batch (512), --cache (1024), --shards (8),
// --threads (1), --sources (4), --wmin/--wmax (churn weights, 1/12),
// --seed.
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/oracle_registry.hpp"
#include "dynamics/failure_model.hpp"
#include "dynamics/incremental.hpp"
#include "dynamics/update_stream.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "obs_overhead.hpp"
#include "serve/query_service.hpp"
#include "serve/workload.hpp"

namespace dsketch::bench {

namespace {

/// Batch answers that were never written by the service would keep this
/// value; estimates are sums of real edge weights, so it can't collide.
constexpr Dist kUnwritten = static_cast<Dist>(-2);

/// Every oracle generation ever published to the service, so the serving
/// thread can verify a batch against the exact oracle that answered it.
class GenerationMap {
 public:
  void add(std::uint64_t generation,
           std::shared_ptr<const DistanceOracle> oracle) {
    std::lock_guard<std::mutex> lock(mu_);
    map_[generation] = std::move(oracle);
  }
  std::shared_ptr<const DistanceOracle> find(std::uint64_t generation) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(generation);
    return it == map_.end() ? nullptr : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const DistanceOracle>>
      map_;
};

/// What the serving thread measured for one policy run.
struct ServeCounters {
  std::uint64_t queries_steady = 0;
  std::uint64_t queries_rebuild = 0;  ///< batches overlapping a rebuild
  double secs_steady = 0;
  double secs_rebuild = 0;
  std::uint64_t torn = 0;       ///< answer != its generation's oracle
  std::uint64_t unwritten = 0;  ///< slot never filled by the batch
};

struct PolicyKnobs {
  bool repair = false;
  RebuildPolicyConfig rebuild;
  bool uses_policy = false;
};

PolicyKnobs policy_knobs(const std::string& name, const FlagSet& flags) {
  PolicyKnobs k;
  const auto budget =
      static_cast<std::size_t>(flags.get("budget", std::int64_t{16}));
  if (name == "stale") return k;
  k.uses_policy = true;
  if (name == "count") {
    k.rebuild.max_updates = budget;
  } else if (name == "adaptive") {
    k.rebuild.max_underestimate_rate = flags.get("rate-threshold", 0.02);
    k.rebuild.probe_every =
        static_cast<std::size_t>(flags.get("probe-every", std::int64_t{8}));
    k.rebuild.probe_sources = static_cast<std::size_t>(
        flags.get("probe-sources", std::int64_t{2}));
  } else if (name == "repair") {
    k.repair = true;
    k.rebuild.max_unrepaired = static_cast<std::size_t>(
        flags.get("unrepaired-budget", std::int64_t{4}));
  } else {
    throw std::runtime_error(
        "e14: unknown policy (want stale|count|adaptive|repair): " + name);
  }
  return k;
}

struct PolicyOutcome {
  std::uint64_t torn = 0;
  std::uint64_t unwritten = 0;
  double mean_violation_rate = 0;
};

PolicyOutcome run_policy(const std::string& policy, const Graph& g0,
                         std::shared_ptr<const DistanceOracle> initial,
                         const FlagSet& flags, std::ostream& out) {
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{17}));
  const auto rounds =
      static_cast<std::size_t>(flags.get("rounds", std::int64_t{6}));
  const auto updates_per_round =
      static_cast<std::size_t>(flags.get("updates", std::int64_t{8}));
  const auto batch =
      static_cast<std::size_t>(flags.get("batch", std::int64_t{512}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{4}));
  const PolicyKnobs knobs = policy_knobs(policy, flags);

  UpdateStreamConfig ucfg;
  ucfg.wmin = static_cast<Weight>(flags.get("wmin", std::int64_t{1}));
  ucfg.wmax = static_cast<Weight>(flags.get("wmax", std::int64_t{12}));
  ucfg.seed = seed;  // identical churn across policies
  UpdateStream stream(g0, ucfg);

  // The repair policy maintains its own label mirror; its initial
  // serving oracle is the mirror's snapshot so repairs stay comparable
  // against their own lineage.
  std::unique_ptr<TzDynamicSketch> mirror;
  std::shared_ptr<const DistanceOracle> serving = initial;
  if (knobs.repair) {
    mirror = std::make_unique<TzDynamicSketch>(g0, k, seed);
    serving = mirror->snapshot();
  }

  QueryServiceConfig scfg;
  scfg.shards =
      static_cast<std::size_t>(flags.get("shards", std::int64_t{8}));
  scfg.threads =
      static_cast<std::size_t>(flags.get("threads", std::int64_t{1}));
  scfg.cache_capacity =
      static_cast<std::size_t>(flags.get("cache", std::int64_t{1024}));
  QueryService service(serving, scfg);

  GenerationMap generations;
  generations.add(service.generation(), serving);

  std::atomic<bool> stop{false};
  std::atomic<bool> rebuilding{false};
  ServeCounters counters;
  std::thread server([&] {
    WorkloadConfig wl;
    wl.kind = WorkloadConfig::Kind::kZipf;
    wl.hot_pairs = 2048;
    wl.seed = seed + 1;
    WorkloadGenerator gen(g0.num_nodes(), wl);
    std::vector<QueryService::Pair> pairs;
    std::vector<Dist> answers;
    while (!stop.load(std::memory_order_acquire)) {
      pairs = gen.batch(batch);
      answers.assign(batch, kUnwritten);
      const bool in_rebuild = rebuilding.load(std::memory_order_acquire);
      Timer timer;
      const std::uint64_t generation =
          service.query_batch(pairs, answers);
      const double secs = timer.seconds();
      if (in_rebuild) {
        counters.queries_rebuild += batch;
        counters.secs_rebuild += secs;
      } else {
        counters.queries_steady += batch;
        counters.secs_steady += secs;
      }
      // A batch is torn if any answer disagrees with the oracle of the
      // generation that served it, or if a slot was never written.
      // Every answer of every batch is checked — the re-query runs
      // outside the timed window, so it costs batches-per-second, not
      // the reported QPS.
      const std::shared_ptr<const DistanceOracle> oracle =
          generations.find(generation);
      if (oracle == nullptr) {
        ++counters.torn;
        continue;
      }
      for (std::size_t i = 0; i < batch; ++i) {
        if (answers[i] == kUnwritten) {
          ++counters.unwritten;
        } else if (answers[i] !=
                   oracle->query(pairs[i].first, pairs[i].second)) {
          ++counters.torn;
        }
      }
    }
  });

  RebuildPolicy rebuild_policy(knobs.rebuild);
  std::uint64_t published_improvements = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t inserts = 0, deletes = 0, reweights = 0;
  double last_rebuild_seconds = 0;
  double last_swap_us = 0;
  SampleSet swap_us;
  double violation_sum = 0;

  for (std::size_t round = 0; round < rounds; ++round) {
    bool fire = false;
    for (std::size_t u = 0; u < updates_per_round; ++u) {
      const EdgeUpdate update = stream.next();
      switch (update.kind) {
        case UpdateKind::kInsert: ++inserts; break;
        case UpdateKind::kDelete: ++deletes; break;
        case UpdateKind::kReweight: ++reweights; break;
      }
      bool repaired = false;
      if (mirror != nullptr) {
        repaired = mirror->apply(stream.graph(), update);
      }
      if (knobs.uses_policy) {
        fire |= rebuild_policy.note_update(
            stream.graph(), *service.snapshot().oracle, repaired);
      }
    }

    if (fire) {
      // The rebuild runs on this (controller) thread while the serving
      // thread keeps answering — that concurrency is the experiment.
      rebuilding.store(true, std::memory_order_release);
      Timer rebuild_timer;
      std::shared_ptr<const DistanceOracle> next;
      if (mirror != nullptr) {
        mirror->rebuild(stream.graph(), seed + round + 1);
        next = mirror->snapshot();
      } else {
        next = std::shared_ptr<const DistanceOracle>(
            OracleRegistry::instance().build("tz", stream.graph(), flags));
      }
      last_rebuild_seconds = rebuild_timer.seconds();
      rebuilding.store(false, std::memory_order_release);
      // Register under the generation the swap is about to publish
      // (this controller is the only swapper, so it is deterministic):
      // a batch must never observe a generation the verifier cannot
      // resolve.
      generations.add(service.generation() + 1, next);
      Timer swap_timer;
      service.swap(next);
      last_swap_us = swap_timer.seconds() * 1e6;
      swap_us.add(last_swap_us);
      rebuild_policy.note_rebuilt();
      if (mirror != nullptr) {
        published_improvements = mirror->stats().entries_improved;
      }
      ++rebuilds;
    } else if (mirror != nullptr &&
               mirror->stats().entries_improved > published_improvements) {
      // Publish the repaired labels even without a rebuild — repair is
      // only useful to traffic once swapped in — but only when a repair
      // actually changed an entry: a no-op swap would invalidate every
      // shard cache and deflate this policy's hit rate for nothing.
      std::shared_ptr<const DistanceOracle> next = mirror->snapshot();
      generations.add(service.generation() + 1, next);
      Timer swap_timer;
      service.swap(next);
      last_swap_us = swap_timer.seconds() * 1e6;
      swap_us.add(last_swap_us);
      published_improvements = mirror->stats().entries_improved;
    }

    // Let the serving thread run against the just-published snapshot for
    // a fixed slice of wall time: without this, the controller loop
    // finishes in microseconds and the "concurrent load" the experiment
    // is about never materializes.
    const auto round_ms = flags.get("round-ms", std::int64_t{30});
    if (round_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(round_ms));
    }

    // Freshness of what traffic is served *now*, against ground truth on
    // the graph as it is *now*.
    const OracleSnapshot snap = service.snapshot();
    const StalenessReport staleness = evaluate_staleness(
        stream.graph(),
        [&snap](NodeId u, NodeId v) { return snap.oracle->query(u, v); },
        sources, seed + 100 + round);
    const double violation_rate =
        staleness.pairs == 0
            ? 0.0
            : static_cast<double>(staleness.underestimates) /
                  static_cast<double>(staleness.pairs);
    violation_sum += violation_rate;
    row("e14", "refresh_rounds")
        .add("policy", policy)
        .add("round", static_cast<std::uint64_t>(round))
        .add("updates_applied", stream.applied())
        .add("violation_rate", violation_rate)
        .add("mean_stretch", staleness.stretch.mean())
        .add("p95_stretch", staleness.stretch.p(95))
        .add("rebuilds", rebuilds)
        .add("generation", snap.generation)
        .add("rebuild_seconds", last_rebuild_seconds)
        .add("swap_latency_us", last_swap_us)
        .emit(out);
  }

  stop.store(true, std::memory_order_release);
  server.join();

  const QueryServiceStats stats = service.stats();
  const PolicyOutcome outcome{
      counters.torn, counters.unwritten,
      violation_sum / static_cast<double>(rounds)};
  row("e14", "policy_summary")
      .add("policy", policy)
      .add("n", static_cast<std::uint64_t>(g0.num_nodes()))
      .add("k", k)
      .add("updates_total", stream.applied())
      .add("inserts", inserts)
      .add("deletes", deletes)
      .add("reweights", reweights)
      .add("rebuilds", rebuilds)
      .add("swaps", stats.swaps)
      .add("cache_invalidations", stats.cache_invalidations)
      .add("queries_served", stats.queries)
      .add("hit_rate", stats.hit_rate)
      .add("qps_steady", counters.secs_steady > 0
                             ? static_cast<double>(counters.queries_steady) /
                                   counters.secs_steady
                             : 0)
      .add("qps_during_rebuild",
           counters.secs_rebuild > 0
               ? static_cast<double>(counters.queries_rebuild) /
                     counters.secs_rebuild
               : 0)
      .add("mean_swap_latency_us", swap_us.count() > 0 ? swap_us.mean() : 0)
      .add("mean_violation_rate", outcome.mean_violation_rate)
      .add("torn_queries", counters.torn)
      .add("unwritten_answers", counters.unwritten)
      .emit(out);
  return outcome;
}

}  // namespace

int run_e14(const FlagSet& flags, std::ostream& out) {
  const Graph g0 = primary_graph(flags, 512, 0.015, {1, 12}, 33);
  if (!g0.connected()) {
    throw std::runtime_error("e14 needs a connected input graph");
  }

  // One shared initial oracle for the non-repair policies: every policy
  // starts from the same sketch and faces the same churn stream.
  const std::shared_ptr<const DistanceOracle> initial(
      OracleRegistry::instance().build("tz", g0, flags));

  std::uint64_t torn = 0, unwritten = 0;
  double stale_rate = -1;
  double best_managed_rate = -1;
  // The whole policy sweep runs under a trace session: the resulting
  // Chrome trace holds serve_batch / shard_slice / oracle_query spans on
  // the serving thread interleaved with sketch_rebuild / oracle_swap on
  // the controller — the hot-swap concurrency, visible. The trace is
  // then re-parsed and span nesting verified per thread: an overlapping
  // (non-nested) pair of spans on one thread would mean broken RAII
  // scopes or a torn timestamp, and fails the run like a torn answer.
  const std::shared_ptr<obs::TraceSession> trace =
      obs::TraceSession::start(std::size_t{1} << 19);
  for (const std::string& policy : parse_name_list(flags.get(
           "policies", std::string("stale,count,adaptive,repair")))) {
    const PolicyOutcome outcome =
        run_policy(policy, g0, initial, flags, out);
    torn += outcome.torn;
    unwritten += outcome.unwritten;
    if (policy == "stale") {
      stale_rate = outcome.mean_violation_rate;
    } else if (best_managed_rate < 0 ||
               outcome.mean_violation_rate < best_managed_rate) {
      best_managed_rate = outcome.mean_violation_rate;
    }
  }

  obs::TraceSession::stop();
  bool nesting_ok = false;
  std::string trace_error;
  std::size_t trace_events = 0;
  {
    std::ostringstream trace_json;
    trace->write_chrome_trace(trace_json);
    if (flags.has("trace-out")) {
      const std::string path = flags.get("trace-out", std::string{});
      std::ofstream f(path);
      if (!f) throw std::runtime_error("cannot open --trace-out: " + path);
      f << trace_json.str();
    }
    try {
      const std::vector<obs::ParsedEvent> events =
          obs::parse_chrome_trace(trace_json.str());
      trace_events = events.size();
      trace_error = obs::check_span_nesting(events);
      nesting_ok = trace_error.empty();
    } catch (const std::exception& e) {
      trace_error = e.what();
    }
  }
  row("e14", "trace_check")
      .add("events", static_cast<std::uint64_t>(trace_events))
      .add("dropped", trace->dropped())
      .add("nesting_ok", nesting_ok)
      .add("error", trace_error)
      .emit(out);

  // Observability cost under this experiment's oracle (single-threaded
  // service, no churn — the steady-state floor the policies serve from).
  emit_obs_overhead_row("e14", *initial, 50000, out);

  if (stale_rate >= 0 && best_managed_rate >= 0) {
    row("e14", "policy_comparison")
        .add("stale_mean_violation_rate", stale_rate)
        .add("best_managed_mean_violation_rate", best_managed_rate)
        .add("violation_reduction",
             stale_rate > 0 ? 1.0 - best_managed_rate / stale_rate : 0.0)
        .emit(out);
  }
  note(out, "e14",
       "Expected shape: zero torn/unwritten answers under every policy "
       "(the hot-swap invariant); the serve-stale violation rate climbs "
       "with churn while rebuild/repair policies pull it back after each "
       "refresh; swap latency stays in microseconds, and QPS during a "
       "background rebuild stays within the same order as steady-state.");
  return torn == 0 && unwritten == 0 && nesting_ok ? 0 : 1;
}

}  // namespace dsketch::bench
