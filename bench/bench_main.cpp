// Generic main() shim for the standalone bench binaries. CMake compiles
// this file once per experiment with DSKETCH_EXPERIMENT_ID set to the
// registry id (e.g. "e7"); the experiment bodies live in bench_e*.cpp as
// library functions so `dsketch repro` can run them in-process.
#include "experiments.hpp"

#ifndef DSKETCH_EXPERIMENT_ID
#error "compile with -DDSKETCH_EXPERIMENT_ID=\"eN\""
#endif

int main(int argc, char** argv) {
  return dsketch::bench::experiment_main(DSKETCH_EXPERIMENT_ID, argc, argv);
}
