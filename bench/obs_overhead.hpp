// Shared `obs_overhead` rows: what does observability cost on the
// serving path?
//
// Runs the same pre-generated workload through a QueryService three
// times — metrics disabled, metrics on (the default), metrics + an
// active trace session — and reports ns/query for each plus the
// relative overheads. E7, E12, and E14 each emit one row from their
// own instance so the claim "observability disabled costs < 1%, enabled
// stays low single digits" is re-measured wherever latency is the
// subject. Kept out of bench_common.hpp so the experiments that never
// touch the serving tier don't pull in its headers.
#pragma once

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "obs/trace.hpp"
#include "serve/query_service.hpp"
#include "serve/workload.hpp"
#include "util/json_lines.hpp"
#include "util/timer.hpp"

namespace dsketch::bench {

/// Best-of-`reps` wall time for one full pass over the batches, in
/// ns/query. Best-of (not mean) because the question is the code path's
/// cost, not scheduler noise.
template <typename RunPass>
double obs_best_ns_per_query(std::size_t queries, int reps,
                             const RunPass& run_pass) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    run_pass();
    const double ns = timer.seconds() * 1e9 / static_cast<double>(queries);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

/// Emits one `obs_overhead` row for `experiment`, measuring `oracle`
/// behind a single-threaded, cache-less QueryService (so the timed work
/// is the instrumented slice path itself, not cache luck or pool
/// scheduling).
inline void emit_obs_overhead_row(const std::string& experiment,
                                  const DistanceOracle& oracle,
                                  std::size_t queries, std::ostream& out) {
  WorkloadConfig wl;
  wl.seed = 23;
  WorkloadGenerator gen(oracle.num_nodes(), wl);
  constexpr std::size_t kBatch = 1024;
  std::vector<std::vector<QueryService::Pair>> batches;
  for (std::size_t done = 0; done < queries; done += kBatch) {
    batches.push_back(gen.batch(std::min(kBatch, queries - done)));
  }
  std::vector<Dist> answers;
  const auto pass = [&](QueryService& service) {
    for (const auto& batch : batches) {
      answers.assign(batch.size(), 0);
      service.query_batch(batch, answers);
    }
  };
  const auto measure = [&](bool collect_metrics) {
    QueryServiceConfig cfg;
    cfg.threads = 1;
    cfg.cache_capacity = 0;
    cfg.collect_metrics = collect_metrics;
    QueryService service(oracle, cfg);
    return obs_best_ns_per_query(queries, 3, [&] { pass(service); });
  };

  const double off_ns = measure(false);
  const double metrics_ns = measure(true);
  obs::TraceSession::start(std::size_t{1} << 16);
  const double trace_ns = measure(true);
  obs::TraceSession::stop();

  const auto pct = [](double base, double with) {
    return base <= 0 ? 0.0 : (with - base) / base * 100.0;
  };
  JsonLine line;
  line.add("experiment", experiment)
      .add("table", "obs_overhead")
      .add("queries", static_cast<std::uint64_t>(queries))
      .add("ns_per_query_off", off_ns)
      .add("ns_per_query_metrics", metrics_ns)
      .add("ns_per_query_trace", trace_ns)
      .add("metrics_overhead_pct", pct(off_ns, metrics_ns))
      .add("trace_overhead_pct", pct(off_ns, trace_ns))
      .emit(out);
}

}  // namespace dsketch::bench
