// E12 — serving-tier throughput: the build-once / query-many axis.
//
// The paper's motivation (§1) is that once sketches are built, distance
// queries need no network traffic at all — so query throughput of the
// serving representation is a first-class metric alongside build cost
// (E3) and stretch (E1). This experiment:
//
//   1. builds a TZ k=3 sketch over an n=4096 ER graph (flags override),
//   2. round-trips it through the binary SketchStore (save + load),
//   3. verifies the loaded store answers bit-identically to the engine,
//   4. sweeps workload shape x batch size x thread count through the
//      sharded QueryService, one JSON line per config,
//   5. emits a scaling summary line (qps at the lowest vs highest thread
//      count, uniform workload, largest batch).
//
// Thread scaling is only observable when the host exposes cores; the
// hw_threads key records what was available so trajectories from
// single-core CI boxes are not misread as regressions.
//
// Flags: --n (4096) / --graph FILE, --k (3), --queries (100000),
// --threads (1,2,4,8), --batch (1024,8192), --shards (0=auto), --cache
// (4096, zipf only), --out (store path; defaults under --tmpdir when the
// repro runner sets one).
#include <algorithm>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "obs_overhead.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"
#include "util/rng.hpp"

namespace dsketch::bench {

namespace {

struct RunResult {
  double qps = 0;
  double hit_rate = 0;
};

RunResult run_config(const SketchStore& store, const std::string& workload,
                     std::size_t threads, std::size_t shards,
                     std::size_t batch, std::size_t cache,
                     std::size_t queries, std::uint64_t seed,
                     std::ostream& out) {
  QueryServiceConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.cache_capacity = cache;
  QueryService service(store, cfg);

  WorkloadConfig wl;
  wl.kind = parse_workload_kind(workload);
  wl.seed = seed;
  WorkloadGenerator gen(store.num_nodes(), wl);

  std::vector<QueryService::Pair> pairs;
  std::vector<Dist> answers;
  std::size_t done = 0;
  while (done < queries) {
    const std::size_t count = std::min(batch, queries - done);
    pairs = gen.batch(count);
    answers.assign(count, 0);
    service.query_batch(pairs, answers);
    done += count;
  }

  const QueryServiceStats stats = service.stats();
  row("e12", "serving_sweep")
      .add("workload", workload)
      .add("n", static_cast<std::uint64_t>(store.num_nodes()))
      .add("k", store.k())
      .add("threads", static_cast<std::uint64_t>(service.num_threads()))
      .add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .add("shards", static_cast<std::uint64_t>(service.num_shards()))
      .add("batch", static_cast<std::uint64_t>(batch))
      .add("cache", static_cast<std::uint64_t>(cache))
      .add("queries", stats.queries)
      .add("wall_seconds", stats.wall_seconds)
      .add("qps", stats.qps)
      .add("hit_rate", stats.hit_rate)
      .add("p50_shard_batch_us", stats.p50_shard_batch_us)
      .add("p99_shard_batch_us", stats.p99_shard_batch_us)
      .emit(out);
  return RunResult{stats.qps, stats.hit_rate};
}

}  // namespace

int run_e12(const FlagSet& flags, std::ostream& out) {
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{100000}));
  const auto shards =
      static_cast<std::size_t>(flags.get("shards", std::int64_t{0}));  // auto
  const auto cache =
      static_cast<std::size_t>(flags.get("cache", std::int64_t{4096}));
  const auto thread_list =
      parse_int_list(flags.get("threads", std::string("1,2,4,8")));
  const auto batch_list =
      parse_int_list(flags.get("batch", std::string("1024,8192")));
  // The repro runner sets --tmpdir to a cell-private directory so parallel
  // cells never collide on the store file.
  const std::string tmpdir = flags.get("tmpdir", std::string{});
  const std::string store_path = flags.get(
      "out",
      tmpdir.empty() ? std::string("e12_serving.store")
                     : tmpdir + "/e12_serving.store");

  // 1. Build (the expensive, once-per-deployment step).
  const Graph g = primary_graph(flags, 4096, 8.0 / 4096, {1, 16}, 42);
  const NodeId n = g.num_nodes();
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = k;
  Timer build_timer;
  const SketchEngine engine(g, cfg);
  const double build_seconds = build_timer.seconds();

  // 2. Binary store round trip.
  SketchStore::from_engine(engine).save_file(store_path);
  const SketchStore store = SketchStore::load_file(store_path);

  // 3. The loaded store must answer bit-identically to the engine.
  Rng rng(11);
  std::size_t mismatches = 0;
  const std::size_t verify_pairs = 2000;
  for (std::size_t i = 0; i < verify_pairs; ++i) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (store.query(u, v) != engine.query(u, v)) ++mismatches;
  }
  row("e12", "store_verify")
      .add("n", static_cast<std::uint64_t>(n))
      .add("k", k)
      .add("build_seconds", build_seconds)
      .add("store_payload_bytes", store.payload_bytes())
      .add("store_encoded_bytes", store.encoded_bytes())
      .add("word_model_bytes_per_node",
           4.0 * store.mean_size_words())
      .add("encoded_bytes_per_node",
           static_cast<double>(store.encoded_bytes()) / n)
      .add("verify_pairs", static_cast<std::uint64_t>(verify_pairs))
      .add("mismatches", static_cast<std::uint64_t>(mismatches))
      .add("bit_identical", mismatches == 0)
      .emit(out);
  if (mismatches > 0) {
    note(out, "e12", "FATAL: store answers diverged from the engine");
    return 1;
  }

  // 4. Workload sweep. The scaling summary compares the smallest and
  // largest thread counts at the largest batch, whatever order the
  // sweep lists were given in.
  const auto big_batch = static_cast<std::size_t>(
      *std::max_element(batch_list.begin(), batch_list.end()));
  const auto threads_lo = static_cast<std::size_t>(
      *std::min_element(thread_list.begin(), thread_list.end()));
  const auto threads_hi = static_cast<std::size_t>(
      *std::max_element(thread_list.begin(), thread_list.end()));
  double qps_lo = 0, qps_hi = 0;
  for (const std::string workload : {"uniform", "zipf"}) {
    for (const std::int64_t threads : thread_list) {
      for (const std::int64_t batch : batch_list) {
        const RunResult r = run_config(
            store, workload, static_cast<std::size_t>(threads), shards,
            static_cast<std::size_t>(batch),
            workload == "zipf" ? cache : 0, queries, /*seed=*/7, out);
        if (workload == "uniform" &&
            static_cast<std::size_t>(batch) == big_batch) {
          if (static_cast<std::size_t>(threads) == threads_lo) qps_lo = r.qps;
          if (static_cast<std::size_t>(threads) == threads_hi) qps_hi = r.qps;
        }
      }
    }
  }

  // 5. Oracle comparison: the same sharded service over any registered
  // oracle — the packed store for the sketch scheme, in-memory baselines
  // resolved by name — so serving throughput lands next to per-node size
  // for sketches and baselines alike.
  {
    const std::size_t cmp_queries = std::min<std::size_t>(queries, 50000);
    for (const std::string& name : parse_name_list(
             flags.get("oracles", std::string("tz,landmark")))) {
      std::unique_ptr<DistanceOracle> built;
      const DistanceOracle* oracle = nullptr;
      if (name == store.scheme()) {
        oracle = &store;  // serve the packed representation, not a rebuild
      } else {
        built = OracleRegistry::instance().build(name, g, flags);
        oracle = built.get();
      }
      QueryServiceConfig svc_cfg;
      svc_cfg.shards = shards;
      svc_cfg.threads = threads_hi;
      QueryService service(*oracle, svc_cfg);
      WorkloadConfig wl;
      wl.kind = WorkloadConfig::Kind::kUniform;
      wl.seed = 7;
      WorkloadGenerator gen(oracle->num_nodes(), wl);
      std::vector<QueryService::Pair> pairs;
      std::vector<Dist> answers;
      std::size_t done = 0;
      while (done < cmp_queries) {
        const std::size_t count = std::min(big_batch, cmp_queries - done);
        pairs = gen.batch(count);
        answers.assign(count, 0);
        service.query_batch(pairs, answers);
        done += count;
      }
      const QueryServiceStats stats = service.stats();
      row("e12", "oracle_serving")
          .add("oracle",
               name == store.scheme() ? name + " (packed store)" : name)
          .add("guarantee", oracle->guarantee())
          .add("n", static_cast<std::uint64_t>(oracle->num_nodes()))
          .add("threads", static_cast<std::uint64_t>(service.num_threads()))
          .add("queries", stats.queries)
          .add("qps", stats.qps)
          .add("mean_size_words", oracle->mean_size_words())
          .emit(out);
    }
  }

  // 6. Observability cost on this store (see bench/obs_overhead.hpp).
  emit_obs_overhead_row("e12", store, std::min<std::size_t>(queries, 50000),
                        out);

  // 7. Scaling summary (acceptance: >= 2x on a >= 4-core host when the
  // sweep spans 1 -> 4 threads).
  row("e12", "thread_scaling")
      .add("threads_lo", static_cast<std::uint64_t>(threads_lo))
      .add("threads_hi", static_cast<std::uint64_t>(threads_hi))
      .add("qps_lo", qps_lo)
      .add("qps_hi", qps_hi)
      .add("speedup", qps_lo > 0 ? qps_hi / qps_lo : 0)
      .add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .emit(out);
  note(out, "e12",
       "Expected shape: the store round-trips bit-identically; uniform qps "
       "scales with threads on multi-core hosts; zipf hit rate rises with "
       "cache size and skew.");
  return 0;
}

}  // namespace dsketch::bench
