// E12 — serving-tier throughput: the build-once / query-many axis.
//
// The paper's motivation (§1) is that once sketches are built, distance
// queries need no network traffic at all — so query throughput of the
// serving representation is a first-class metric alongside build cost
// (E3) and stretch (E1). This harness:
//
//   1. builds a TZ k=3 sketch over an n=4096 ER graph (flags override),
//   2. round-trips it through the binary SketchStore (save + load),
//   3. verifies the loaded store answers bit-identically to the engine,
//   4. sweeps workload shape x batch size x thread count through the
//      sharded QueryService, one JSON line per config,
//   5. emits a scaling summary line (qps at 1 vs 4 threads, uniform
//      workload, largest batch).
//
// Thread scaling is only observable when the host exposes cores; the
// hw_threads key records what was available so trajectories from
// single-core CI boxes are not misread as regressions.
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"
#include "util/flags.hpp"
#include "util/json_lines.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dsketch;
using dsketch::bench::JsonLine;

struct RunResult {
  double qps = 0;
  double hit_rate = 0;
};

RunResult run_config(const SketchStore& store, const std::string& workload,
                     std::size_t threads, std::size_t shards,
                     std::size_t batch, std::size_t cache,
                     std::size_t queries, std::uint64_t seed) {
  QueryServiceConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.cache_capacity = cache;
  QueryService service(store, cfg);

  WorkloadConfig wl;
  wl.kind = parse_workload_kind(workload);
  wl.seed = seed;
  WorkloadGenerator gen(store.num_nodes(), wl);

  std::vector<QueryService::Pair> pairs;
  std::vector<Dist> answers;
  std::size_t done = 0;
  while (done < queries) {
    const std::size_t count = std::min(batch, queries - done);
    pairs = gen.batch(count);
    answers.assign(count, 0);
    service.query_batch(pairs, answers);
    done += count;
  }

  const QueryServiceStats stats = service.stats();
  JsonLine line;
  line.add("bench", "e12_serving")
      .add("workload", workload)
      .add("n", static_cast<std::uint64_t>(store.num_nodes()))
      .add("k", store.k())
      .add("threads", static_cast<std::uint64_t>(service.num_threads()))
      .add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .add("shards", static_cast<std::uint64_t>(service.num_shards()))
      .add("batch", static_cast<std::uint64_t>(batch))
      .add("cache", static_cast<std::uint64_t>(cache))
      .add("queries", stats.queries)
      .add("wall_seconds", stats.wall_seconds)
      .add("qps", stats.qps)
      .add("hit_rate", stats.hit_rate)
      .add("p50_shard_batch_us", stats.p50_shard_batch_us)
      .add("p99_shard_batch_us", stats.p99_shard_batch_us)
      .emit();
  return RunResult{stats.qps, stats.hit_rate};
}

}  // namespace

int main(int argc, char** argv) {
  const FlagSet flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{4096}));
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{100000}));
  const auto shards =
      static_cast<std::size_t>(flags.get("shards", std::int64_t{0}));  // auto
  const auto cache =
      static_cast<std::size_t>(flags.get("cache", std::int64_t{4096}));
  const std::string store_path =
      flags.get("out", std::string("e12_serving.store"));

  // 1. Build (the expensive, once-per-deployment step).
  const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 42);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = k;
  Timer build_timer;
  const SketchEngine engine(g, cfg);
  const double build_seconds = build_timer.seconds();

  // 2. Binary store round trip.
  SketchStore::from_engine(engine).save_file(store_path);
  const SketchStore store = SketchStore::load_file(store_path);

  // 3. The loaded store must answer bit-identically to the engine.
  Rng rng(11);
  std::size_t mismatches = 0;
  const std::size_t verify_pairs = 2000;
  for (std::size_t i = 0; i < verify_pairs; ++i) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (store.query(u, v) != engine.query(u, v)) ++mismatches;
  }
  JsonLine verify_line;
  verify_line.add("bench", "e12_serving_verify")
      .add("n", static_cast<std::uint64_t>(n))
      .add("k", k)
      .add("build_seconds", build_seconds)
      .add("store_payload_bytes", store.payload_bytes())
      .add("verify_pairs", static_cast<std::uint64_t>(verify_pairs))
      .add("mismatches", static_cast<std::uint64_t>(mismatches))
      .add("bit_identical", mismatches == 0)
      .emit();
  if (mismatches > 0) {
    std::fprintf(stderr, "FATAL: store answers diverged from the engine\n");
    return 1;
  }

  // 4. Workload sweep.
  const std::size_t big_batch = 8192;
  double qps_t1 = 0, qps_t4 = 0;
  for (const std::string workload : {"uniform", "zipf"}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const std::size_t batch : {std::size_t{1024}, big_batch}) {
        const RunResult r = run_config(
            store, workload, threads, shards, batch,
            workload == "zipf" ? cache : 0, queries, /*seed=*/7);
        if (workload == "uniform" && batch == big_batch) {
          if (threads == 1) qps_t1 = r.qps;
          if (threads == 4) qps_t4 = r.qps;
        }
      }
    }
  }

  // 5. Scaling summary (acceptance: >= 2x on a >= 4-core host).
  JsonLine scaling;
  scaling.add("bench", "e12_serving_scaling")
      .add("qps_threads1", qps_t1)
      .add("qps_threads4", qps_t4)
      .add("speedup_1_to_4", qps_t1 > 0 ? qps_t4 / qps_t1 : 0)
      .add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .emit();
  return 0;
}
