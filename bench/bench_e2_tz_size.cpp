// E2 — Lemmas 3.1 and 3.6: sketch size.
//
// Lemma 3.1: E[|L(u)|] = O(k n^{1/k}) words. Lemma 3.6: per-level bunches
// exceed 3 n^{1/k} ln n with probability <= 1/n^3. We sweep n and k, report
// mean and max label sizes normalized by k*n^{1/k}, and count nodes whose
// label exceeds the whp bound (expected: 0).
//
// The paper's word model (size_words) bills 4 bytes per u32 word; the v3
// store's delta+varint coding spends far less per entry. Each row reports
// both bytes/node figures side by side — the word model keeps the bound
// column comparable across PRs, the encoded column is the real serving
// footprint (and the ≥2x acceptance gauge for the v3 format).
//
// Flags: --nmax (2048) caps the n sweep, --kmax (4) caps the k sweep.
#include <cmath>

#include "bench_common.hpp"
#include "dynamics/incremental.hpp"
#include "serve/sketch_store.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch::bench {

int run_e2(const FlagSet& flags, std::ostream& out) {
  const auto nmax = static_cast<NodeId>(flags.get("nmax", std::int64_t{2048}));
  const auto kmax =
      static_cast<std::uint32_t>(flags.get("kmax", std::int64_t{4}));

  for (const NodeId n : {256u, 512u, 1024u, 2048u}) {
    if (n > nmax) continue;
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 12}, 9);
    for (std::uint32_t k = 2; k <= kmax; ++k) {
      const Hierarchy h = sampled_hierarchy(n, k, 31 + k);
      const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
      const SketchStore store =
          SketchStore::from_oracle(TzLabelOracle(r.labels, k));
      SampleSet words;
      SampleSet encoded;
      const double n1k = std::pow(n, 1.0 / k);
      // Lemma 3.6 bound per level: 3 n^{1/k} ln n entries; a label has k
      // levels and 2 words per entry plus 2k pivot words.
      const double whp_bound =
          2.0 * k + 2.0 * k * 3.0 * n1k * std::log(static_cast<double>(n));
      std::size_t over = 0;
      for (NodeId u = 0; u < n; ++u) {
        const auto w = static_cast<double>(r.labels.size_words(u));
        words.add(w);
        encoded.add(static_cast<double>(store.encoded_record_bytes(u)));
        if (w > whp_bound) ++over;
      }
      row("e2", "label_words")
          .add("n", static_cast<std::uint64_t>(n))
          .add("k", k)
          .add("mean_words", words.mean())
          .add("max_words", words.max())
          .add("mean_normalized", words.mean() / (k * n1k))
          .add("whp_bound_words", whp_bound)
          .add("nodes_over_bound", static_cast<std::uint64_t>(over))
          .add("word_model_bytes_per_node", 4.0 * words.mean())
          .add("encoded_bytes_per_node", encoded.mean())
          .add("encoded_compression",
               encoded.mean() > 0 ? 4.0 * words.mean() / encoded.mean() : 0.0)
          .emit(out);
    }
  }
  note(out, "e2",
       "Expected shape: mean/(k n^{1/k}) stays O(1) (roughly flat in n); "
       "no node exceeds the whp bound; encoded_compression >= 2x (the v3 "
       "varint coding vs the 4-bytes-per-word model).");
  return 0;
}

}  // namespace dsketch::bench
