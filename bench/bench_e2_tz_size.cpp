// E2 — Lemmas 3.1 and 3.6: sketch size.
//
// Lemma 3.1: E[|L(u)|] = O(k n^{1/k}) words. Lemma 3.6: per-level bunches
// exceed 3 n^{1/k} ln n with probability <= 1/n^3. We sweep n and k, report
// mean and max label sizes normalized by k*n^{1/k}, and count nodes whose
// label exceeds the whp bound (expected: 0).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_distributed.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E2: sketch size vs n and k (Lemma 3.1: E[size] = O(k n^{1/k}))\n");
  print_header("label words on erdos-renyi graphs",
               {"n", "k", "mean words", "max words", "mean/(k n^{1/k})",
                "whp bound words", "nodes over bound"});
  for (const NodeId n : {256u, 512u, 1024u, 2048u}) {
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 12}, 9);
    for (const std::uint32_t k : {2u, 3u, 4u}) {
      Hierarchy h = Hierarchy::sample(n, k, 31 + k);
      for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
        h = Hierarchy::sample(n, k, 31 + k + b);
      }
      const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
      SampleSet words;
      const double n1k = std::pow(n, 1.0 / k);
      // Lemma 3.6 bound per level: 3 n^{1/k} ln n entries; a label has k
      // levels and 2 words per entry plus 2k pivot words.
      const double whp_bound =
          2.0 * k + 2.0 * k * 3.0 * n1k * std::log(static_cast<double>(n));
      std::size_t over = 0;
      for (NodeId u = 0; u < n; ++u) {
        const auto w = static_cast<double>(r.labels[u].size_words());
        words.add(w);
        if (w > whp_bound) ++over;
      }
      print_row({fmt(n), fmt(k), fmt(words.mean()), fmt(words.max()),
                 fmt(words.mean() / (k * n1k)), fmt(whp_bound, 0), fmt(over)});
    }
  }
  std::printf(
      "\nExpected shape: mean/(k n^{1/k}) stays O(1) (roughly flat in n); "
      "no node exceeds the whp bound.\n");
  return 0;
}
