// The pre-PR shortest-path kernels, frozen verbatim as the correctness
// and performance baseline: fresh dist vectors and a binary
// std::priority_queue per call, strictly single-threaded. Shared by the
// E13 microbenchmark (before/after timing + agreement gate) and the
// sp_kernel property tests (fixed-point equivalence) so both validate
// against the same reference.
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch::legacy_ref {

struct QItem {
  Dist dist;
  NodeId node;
  bool operator>(const QItem& o) const {
    return dist != o.dist ? dist > o.dist : node > o.node;
  }
};

inline std::vector<Dist> dijkstra(const Graph& g, NodeId source) {
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      if (nd < dist[he.to]) {
        dist[he.to] = nd;
        pq.push({nd, he.to});
      }
    }
  }
  return dist;
}

inline void multi_source(const Graph& g, const std::vector<NodeId>& sources,
                         std::vector<Dist>& dist,
                         std::vector<NodeId>& owner) {
  dist.assign(g.num_nodes(), kInfDist);
  owner.assign(g.num_nodes(), kInvalidNode);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (NodeId s : sources) {
    if (dist[s] == 0 && owner[s] <= s) continue;
    dist[s] = 0;
    owner[s] = std::min(owner[s], s);
    pq.push({0, s});
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      if (nd < dist[he.to] ||
          (nd == dist[he.to] && owner[u] < owner[he.to])) {
        dist[he.to] = nd;
        owner[he.to] = owner[u];
        pq.push({nd, he.to});
      }
    }
  }
}

inline void min_hops(const Graph& g, NodeId source, std::vector<Dist>& dist,
                     std::vector<std::uint32_t>& hops) {
  struct Item {
    Dist dist;
    std::uint32_t hops;
    NodeId node;
    bool operator>(const Item& o) const {
      if (dist != o.dist) return dist > o.dist;
      if (hops != o.hops) return hops > o.hops;
      return node > o.node;
    }
  };
  dist.assign(g.num_nodes(), kInfDist);
  hops.assign(g.num_nodes(), static_cast<std::uint32_t>(-1));
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  hops[source] = 0;
  pq.push({0, 0, source});
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (d != dist[u] || h != hops[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      const std::uint32_t nh = h + 1;
      if (nd < dist[he.to] || (nd == dist[he.to] && nh < hops[he.to])) {
        dist[he.to] = nd;
        hops[he.to] = nh;
        pq.push({nd, nh, he.to});
      }
    }
  }
}

}  // namespace dsketch::legacy_ref
