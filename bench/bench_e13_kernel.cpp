// E13 — shortest-path kernel microbenchmark (beyond the paper: systems
// telemetry for the repro pipeline itself).
//
// Two tables:
//   relax_ns — ns per relaxed half-edge for full SSSP sweeps under three
//     kernels: the pre-PR reference (fresh allocations + binary
//     std::priority_queue per call), the 4-ary indexed heap, and the
//     monotone bucket queue. All three must agree on every distance.
//   tz_build — wall time of the centralized TZ construction: the pre-PR
//     serial reference vs the kernel build at each --threads value, with
//     the parallel output verified word-identical to the serial one.
//
// The trailing speedup row is the acceptance gauge: kernel parallel vs
// legacy serial on the same graph.
#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments.hpp"
#include "graph/sp_kernel.hpp"
#include "legacy_sp_reference.hpp"
#include "sketch/cdg_sketch.hpp"  // serialize_label, for bit-identity
#include "sketch/tz_centralized.hpp"
#include "util/thread_pool.hpp"

namespace dsketch::bench {

namespace {

/// Pre-PR centralized TZ build (gates via n-vector multi-source Dijkstra,
/// binary-heap cluster growth), for the tz_build baseline row.
std::vector<TzLabelBuilder> legacy_build_tz(const Graph& g,
                                            const Hierarchy& h) {
  struct QItem {
    Dist dist;
    NodeId node;
    bool operator>(const QItem& o) const {
      return dist != o.dist ? dist > o.dist : node > o.node;
    }
  };
  const std::uint32_t k = h.k();
  const NodeId n = g.num_nodes();
  std::vector<std::vector<DistKey>> gates(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    gates[i].assign(n, DistKey{});
    const std::vector<NodeId> members = h.level_members(i);
    if (members.empty()) continue;
    std::vector<Dist> dist;
    std::vector<NodeId> owner;
    legacy_ref::multi_source(g, members, dist, owner);
    for (NodeId u = 0; u < n; ++u) gates[i][u] = DistKey{dist[u], owner[u]};
  }
  std::vector<TzLabelBuilder> labels;
  labels.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    labels.emplace_back(u, k);
    for (std::uint32_t i = 0; i < k; ++i) labels[u].set_pivot(i, gates[i][u]);
  }
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> touched;
  for (std::uint32_t i = 0; i < k; ++i) {
    const bool top = i + 1 >= k;
    for (const NodeId w : h.phase_sources(i)) {
      std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
      dist[w] = 0;
      touched.push_back(w);
      pq.push({0, w});
      while (!pq.empty()) {
        const auto [d, x] = pq.top();
        pq.pop();
        if (d != dist[x]) continue;
        if (!top && !(DistKey{d, w} < gates[i + 1][x])) continue;
        labels[x].add_bunch_entry(BunchEntry{w, i, d});
        for (const HalfEdge& he : g.neighbors(x)) {
          const Dist nd = d + he.weight;
          if (nd < dist[he.to]) {
            if (dist[he.to] == kInfDist) touched.push_back(he.to);
            dist[he.to] = nd;
            pq.push({nd, he.to});
          }
        }
      }
      for (const NodeId t : touched) dist[t] = kInfDist;
      touched.clear();
    }
  }
  for (auto& l : labels) l.sort_bunch();
  return labels;
}

std::vector<std::vector<Word>> serialize_all(
    const std::vector<TzLabelBuilder>& ls) {
  std::vector<std::vector<Word>> words;
  words.reserve(ls.size());
  for (const TzLabelBuilder& l : ls) words.push_back(serialize_label(l.view()));
  return words;
}

std::vector<std::vector<Word>> serialize_all(const LabelArena& labels) {
  std::vector<std::vector<Word>> words;
  words.reserve(labels.num_nodes());
  for (NodeId u = 0; u < labels.num_nodes(); ++u) {
    words.push_back(serialize_label(labels.view(u)));
  }
  return words;
}

}  // namespace

int run_e13(const FlagSet& flags, std::ostream& out) {
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{3}));
  const Graph g = primary_graph(flags, 1024, 0.008, {1, 16}, seed);
  const NodeId n = g.num_nodes();
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{8}));
  if (sources == 0) throw std::runtime_error("--sources must be >= 1");
  const auto k =
      static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));

  // --- relax_ns: full SSSP sweeps, all kernels, agreement enforced ----
  Rng rng(seed ^ 0xe13);
  std::vector<NodeId> srcs;
  for (std::size_t i = 0; i < sources; ++i) {
    srcs.push_back(static_cast<NodeId>(rng.below(n)));
  }
  const double relaxed_edges =
      static_cast<double>(srcs.size()) * 2.0 * static_cast<double>(g.num_edges());

  double legacy_ns = 0;
  struct KernelRow {
    std::string name;
    SpEngine engine;
  };
  const std::vector<KernelRow> kernels = {
      {"kernel_heap", SpEngine::kHeap}, {"kernel_bucket", SpEngine::kBucket}};

  std::vector<std::vector<Dist>> reference;
  {
    Timer t;
    for (const NodeId s : srcs) {
      reference.push_back(legacy_ref::dijkstra(g, s));
    }
    legacy_ns = t.seconds() * 1e9;
    row("e13", "relax_ns")
        .add("kernel", "legacy_heap")
        .add("n", static_cast<std::uint64_t>(n))
        .add("m", static_cast<std::uint64_t>(g.num_edges()))
        .add("sweeps", static_cast<std::uint64_t>(srcs.size()))
        .add("ns_per_edge", legacy_ns / relaxed_edges)
        .add("speedup_vs_legacy", 1.0)
        .emit(out);
  }
  int mismatches = 0;
  for (const KernelRow& kr : kernels) {
    SpWorkspace ws;
    // Warm the workspace so the timed loop measures steady state.
    sp_dijkstra(g, srcs[0], ws, kr.engine);
    Timer t;
    for (const NodeId s : srcs) sp_dijkstra(g, s, ws, kr.engine);
    const double ns = t.seconds() * 1e9;
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      sp_dijkstra(g, srcs[i], ws, kr.engine);
      for (NodeId u = 0; u < n; ++u) {
        if (ws.dist(u) != reference[i][u]) ++mismatches;
      }
    }
    row("e13", "relax_ns")
        .add("kernel", kr.name)
        .add("n", static_cast<std::uint64_t>(n))
        .add("m", static_cast<std::uint64_t>(g.num_edges()))
        .add("sweeps", static_cast<std::uint64_t>(srcs.size()))
        .add("ns_per_edge", ns / relaxed_edges)
        .add("speedup_vs_legacy", legacy_ns / ns)
        .emit(out);
  }

  // --- tz_build: legacy serial vs kernel at each thread count ---------
  const Hierarchy h = sampled_hierarchy(n, k, seed + 1);
  // Symmetric methodology: every timed build (legacy and kernel) follows
  // one untimed warm-up pass, so first-touch faults and allocator growth
  // are billed to neither side.
  legacy_build_tz(g, h);
  Timer legacy_timer;
  const std::vector<TzLabelBuilder> legacy_labels = legacy_build_tz(g, h);
  const double legacy_ms = legacy_timer.millis();
  row("e13", "tz_build")
      .add("build", "legacy_serial")
      .add("n", static_cast<std::uint64_t>(n))
      .add("k", k)
      .add("threads", static_cast<std::uint64_t>(1))
      .add("wall_ms", legacy_ms)
      .add("speedup_vs_legacy", 1.0)
      .add("identical", true)
      .emit(out);

  const std::vector<std::vector<Word>> want = serialize_all(legacy_labels);
  double best_kernel_ms = -1.0;
  for (const std::int64_t threads :
       parse_int_list(flags.get("threads", std::string("1,0")))) {
    if (threads < 0) throw std::runtime_error("--threads must be >= 0");
    ThreadPool pool(static_cast<std::size_t>(threads));
    // Warm-up pass so thread spin-up is not billed to the timed build.
    build_tz_centralized(g, h, &pool);
    Timer t;
    const LabelArena labels = build_tz_centralized(g, h, &pool);
    const double ms = t.millis();
    const bool identical = serialize_all(labels) == want;
    if (!identical) ++mismatches;
    if (best_kernel_ms < 0 || ms < best_kernel_ms) best_kernel_ms = ms;
    row("e13", "tz_build")
        .add("build", "kernel")
        .add("n", static_cast<std::uint64_t>(n))
        .add("k", k)
        .add("threads", static_cast<std::uint64_t>(pool.lanes()))
        .add("wall_ms", ms)
        .add("speedup_vs_legacy", legacy_ms / ms)
        .add("identical", identical)
        .emit(out);
  }

  note(out, "e13",
       "Expected: bucket <= heap < legacy ns/edge (small integer weights "
       "select the Dial queue), and kernel TZ construction >= 2x faster "
       "than the legacy serial build at full manifest scale, with every "
       "thread count producing word-identical labels.");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace dsketch::bench
