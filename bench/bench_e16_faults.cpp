// E16 — fault injection and recovery, end to end. Sweeps a grid of
// message-loss rate × crash count over seeded FaultPlans and drives the
// fault-tolerant in-network TZ build (reliable link layer + echo
// termination) through each cell, reporting completion rate, the
// round/message overhead the recovery machinery pays relative to a
// fault-free build, Theorem 1.1 bound ratios (the padded known-S round
// bound and the whp Lemma 3.1 message bound must hold even while
// retransmitting), and label correctness — every completed cell must be
// byte-identical to the centralized construction.
//
// The second half is the serving-tier drill: the labels from a lossy cell
// are packed into a SketchStore and served through the sharded
// QueryService; then the primary oracle is poisoned (every query throws)
// and the service must circuit-break onto the previous generation with
// zero incorrect answers — the degraded-mode acceptance bar.
//
// Flags: --n (default 512 ER with avg degree 6), --k (2), --sim-threads
// (0 = all hardware threads), --queries (2000), --seed (16).
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "congest/fault_plan.hpp"
#include "core/oracle.hpp"
#include "dynamics/incremental.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"
#include "util/rng.hpp"

namespace dsketch::bench {
namespace {

/// A primary oracle gone bad: every query throws. Swapped in to force the
/// query service's circuit breaker open so the bench can measure the
/// failover path (previous-generation answers, zero incorrect results).
class PoisonedOracle final : public DistanceOracle {
 public:
  explicit PoisonedOracle(NodeId n) : n_(n) {}
  Dist query(NodeId, NodeId) const override {
    throw std::runtime_error("poisoned oracle");
  }
  NodeId num_nodes() const override { return n_; }
  std::size_t size_words(NodeId) const override { return 0; }
  std::string scheme() const override { return "poisoned"; }
  std::string guarantee() const override { return "none (always fails)"; }
  Capabilities capabilities() const override { return {}; }

 private:
  NodeId n_;
};

}  // namespace

int run_e16(const FlagSet& flags, std::ostream& out) {
  const Graph g = primary_graph(flags, 512, 6.0 / 512, {1, 5}, 16);
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{2}));
  const auto sim_threads =
      static_cast<unsigned>(flags.get("sim-threads", std::int64_t{0}));
  const auto num_queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{2000}));
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{16}));

  const NodeId n = g.num_nodes();
  const auto m = static_cast<double>(g.num_edges());
  const std::uint32_t S = sp_diameter_auto(g, 8, 3);
  const Hierarchy h = sampled_hierarchy(n, k, seed + 3);
  const LabelArena central = build_tz_centralized(g, h);

  TzFaultTolerance ft;
  ft.enabled = true;
  ft.rto = 8;

  // Fault-free baseline with the reliable layer on: the overhead
  // denominator, so the grid isolates what the *faults* cost on top of
  // the tolerance machinery itself.
  SimConfig base_cfg;
  base_cfg.threads = sim_threads;
  const TzDistributedResult baseline =
      build_tz_distributed(g, h, TerminationMode::kEcho, base_cfg, false, 0,
                           ft);
  const auto base_rounds = static_cast<double>(baseline.total_rounds());
  const auto base_messages = static_cast<double>(baseline.total_messages());

  const double nk = std::pow(static_cast<double>(n), 1.0 / k);
  const double ln_n = std::log(static_cast<double>(n));
  const double round_bound = k * (3.0 * nk * ln_n * S + 2.0 * S + 16.0);
  const double message_bound = 2.0 * m * k * 4.0 * nk * ln_n;

  // --- loss × crash grid -------------------------------------------------
  const double drops[] = {0.0, 0.01, 0.05, 0.10};
  const std::uint32_t crash_counts[] = {0, 2, 4};
  std::uint64_t cells = 0, completed_cells = 0, mismatched_cells = 0;
  LabelArena lossy_labels;  // labels from the acceptance cell
  for (const double drop : drops) {
    for (const std::uint32_t crashes : crash_counts) {
      FaultConfig fc;
      fc.drop_rate = drop;
      fc.duplicate_rate = drop / 2.0;
      fc.reorder_rate = 0.05;
      fc.node_crashes = crashes;
      fc.crash_horizon = 60;
      fc.crash_downtime = 12;
      fc.seed = seed * 1000003 + cells;
      const FaultPlan plan(g, fc);
      SimConfig cfg;
      cfg.threads = sim_threads;
      cfg.faults = &plan;
      const TzDistributedResult r = build_tz_distributed(
          g, h, TerminationMode::kEcho, cfg, false, 0, ft);
      ++cells;
      std::uint64_t label_mismatches = 0;
      if (r.completed) {
        ++completed_cells;
        for (NodeId u = 0; u < n; ++u) {
          if (!(r.labels.view(u) == central.view(u))) ++label_mismatches;
        }
        if (label_mismatches != 0) ++mismatched_cells;
        if (drop == 0.05 && crashes == 2) lossy_labels = r.labels;
      }
      SimStats combined = r.tree_stats;
      combined += r.stats;
      const auto rounds = static_cast<double>(r.total_rounds());
      const auto messages = static_cast<double>(r.total_messages());
      row("e16", "grid")
          .add("n", static_cast<std::uint64_t>(n))
          .add("drop_rate", drop)
          .add("duplicate_rate", fc.duplicate_rate)
          .add("crashes", crashes)
          .add("fault_seed", fc.seed)
          .add("completed", r.completed)
          .add("rounds", r.total_rounds())
          .add("messages", r.total_messages())
          .add("dropped", combined.dropped)
          .add("duplicated", combined.duplicated)
          .add("retransmits", r.retransmits)
          .add("duplicate_discards", r.duplicate_discards)
          .add("round_overhead", rounds / base_rounds)
          .add("message_overhead", messages / base_messages)
          .add("round_ratio", rounds / round_bound)
          .add("message_ratio", messages / message_bound)
          .add("label_mismatches", label_mismatches)
          .emit(out);
    }
  }
  row("e16", "completion")
      .add("cells", cells)
      .add("completed_cells", completed_cells)
      .add("mismatched_cells", mismatched_cells)
      .add("completion_rate",
           static_cast<double>(completed_cells) / static_cast<double>(cells))
      .emit(out);

  // --- degraded-mode serving drill --------------------------------------
  // Pack the acceptance cell's labels (5% loss + 2 crashes) and serve;
  // every answer must match a tz_query over the centralized labels.
  if (lossy_labels.empty()) lossy_labels = baseline.labels;
  const TzLabelOracle oracle(lossy_labels, k);
  const SketchStore store = SketchStore::from_oracle(oracle);

  QueryServiceConfig qcfg;
  qcfg.shards = 4;
  qcfg.threads = sim_threads;
  qcfg.max_retries = 1;
  qcfg.retry_backoff_us = 0;
  qcfg.breaker_threshold = 2;
  qcfg.breaker_cooldown_batches = 2;
  QueryService service(store, qcfg);

  Rng rng(seed * 131 + 7);
  std::vector<QueryService::Pair> pairs;
  pairs.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n)));
  }
  std::vector<Dist> answers(pairs.size());
  service.query_batch(pairs, answers);
  std::uint64_t healthy_mismatches = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (answers[i] !=
        tz_query(central.view(pairs[i].first), central.view(pairs[i].second))) {
      ++healthy_mismatches;
    }
  }

  // Poison the primary: the breaker must open and fail over to the
  // previous generation (the store) with zero incorrect answers.
  service.swap(std::make_shared<PoisonedOracle>(n));
  const int degraded_batches = 6;
  std::uint64_t incorrect_degraded = 0, served = 0, shed = 0;
  for (int b = 0; b < degraded_batches; ++b) {
    service.query_batch(pairs, answers);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      ++served;
      if (answers[i] == kInfDist) {
        ++shed;  // explicit "don't know", never counted as wrong
      } else if (answers[i] !=
                 store.query(pairs[i].first, pairs[i].second)) {
        ++incorrect_degraded;
      }
    }
  }
  const QueryServiceStats qs = service.stats();
  row("e16", "serve")
      .add("queries", static_cast<std::uint64_t>(pairs.size()))
      .add("healthy_mismatches", healthy_mismatches)
      .add("degraded_batches", static_cast<std::uint64_t>(degraded_batches))
      .add("degraded_served", served)
      .add("incorrect_degraded", incorrect_degraded)
      .add("shed_answers", shed)
      .add("query_failures", qs.query_failures)
      .add("query_retries", qs.query_retries)
      .add("breaker_opens", qs.breaker_opens)
      .add("breaker_probes", qs.breaker_probes)
      .add("stale_answers", qs.stale_answers)
      .emit(out);

  note(out, "e16",
       "Expected shape: completion_rate 1.0 with zero mismatched cells — "
       "the reliable layer recovers every grid cell to byte-identical "
       "labels; round_ratio and message_ratio stay under 1 even at 10% "
       "loss (retransmission overhead fits inside the Theorem 1.1 "
       "slack); round_overhead and message_overhead grow smoothly with "
       "the loss rate; healthy_mismatches and incorrect_degraded exactly "
       "0 — once the poisoned primary trips the breaker, every served "
       "answer comes from the previous generation.");
  return 0;
}

}  // namespace dsketch::bench
