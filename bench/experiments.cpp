#include "experiments.hpp"

#include <exception>
#include <iostream>

namespace dsketch::bench {

const std::vector<Experiment>& experiment_registry() {
  static const std::vector<Experiment> registry = {
      {"e1", "tz_stretch",
       "TZ stretch vs k (Theorem 1.1: stretch <= 2k-1)", run_e1},
      {"e2", "tz_size",
       "TZ sketch size vs n and k (Lemma 3.1: E[size] = O(k n^{1/k}))",
       run_e2},
      {"e3", "tz_cost",
       "TZ construction cost and termination modes (Theorem 1.1)", run_e3},
      {"e4", "slack",
       "eps-slack sketches (Theorem 4.3) + density nets (Lemma 4.2)",
       run_e4},
      {"e5", "cdg", "(eps,k)-CDG sketches (Theorem 4.6)", run_e5},
      {"e6", "graceful",
       "Gracefully degrading sketches vs TZ(k=log n) (Theorem 1.3)", run_e6},
      {"e7", "query",
       "Per-query latency of every scheme, engine vs packed store "
       "(Lemma 3.2)",
       run_e7},
      {"e8", "online",
       "Online query cost: no-preprocessing Omega(S) vs sketch exchange "
       "(section 2.1)",
       run_e8},
      {"e9", "coords",
       "Coordinate systems vs sketches on friendly and hostile graphs "
       "(section 1)",
       run_e9},
      {"e10", "spanner",
       "TZ spanner extraction: size vs stretch tradeoff", run_e10},
      {"e11", "failures",
       "Stale sketches under edge failures, and rebuild cost", run_e11},
      {"e12", "serving",
       "Serving-tier throughput: store round trip + sharded query service",
       run_e12},
      {"e13", "kernel",
       "Shortest-path kernel: bucket vs heap engines, serial vs parallel "
       "TZ construction",
       run_e13},
      {"e14", "dynamic",
       "Live sketch refresh: serving through churn with incremental "
       "repair, rebuild policies, and zero-downtime hot-swap",
       run_e14},
      {"e15", "congest",
       "End-to-end CONGEST pipeline at scale: in-network build, Theorem "
       "1.1 round/message bound ratios, pack + serve verified against "
       "the centralized construction",
       run_e15},
      {"e16", "faults",
       "Fault injection and recovery: loss x crash sweep over seeded "
       "FaultPlans, label identity under retransmission, degraded-mode "
       "serving through the circuit breaker",
       run_e16},
  };
  return registry;
}

const Experiment* find_experiment(const std::string& id) {
  for (const Experiment& exp : experiment_registry()) {
    if (exp.id == id || exp.name == id) return &exp;
  }
  return nullptr;
}

int experiment_main(const std::string& id, int argc, char** argv) {
  const Experiment* exp = find_experiment(id);
  if (exp == nullptr) {
    std::cerr << "unknown experiment: " << id << "\n";
    return 2;
  }
  const FlagSet flags(argc, argv);
  if (flags.get_bool("help")) {
    std::cerr << exp->id << " (" << exp->name << "): " << exp->title
              << "\nSee docs/BENCHMARKS.md for flags and output schema.\n";
    return 0;
  }
  try {
    return exp->run(flags, std::cout);
  } catch (const std::exception& e) {
    std::cerr << exp->id << ": error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dsketch::bench
