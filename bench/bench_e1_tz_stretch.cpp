// E1 — Theorem 1.1 / 3.8: distributed TZ sketches give stretch <= 2k-1.
//
// Sweeps k over several topologies and reports observed mean/p95/max stretch
// against the guarantee. The paper's shape: max stretch always below 2k-1,
// mean stretch far below (typical instances are much better than worst
// case), and both grow with k while the sketch shrinks.
//
// A `baseline_stretch` table evaluates the registered baseline oracles
// (--baselines, default "landmark,vivaldi") over the same ground truth
// through the scheme-agnostic DistanceOracle path, so every E1 stretch
// row — sketch or baseline — comes from the identical evaluator.
//
// Flags: --n (1024) scales every topology, --kmax (5), --sources (16)
// ground-truth rows, --pops (24) ISP core size, --baselines NAME,....
#include <cmath>
#include <memory>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch::bench {

namespace {

struct Topology {
  std::string name;
  Graph graph;
};

std::vector<Topology> make_topologies(NodeId n, NodeId pops) {
  const auto rows = static_cast<NodeId>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(n)))));
  std::vector<Topology> t;
  t.push_back({"erdos_renyi", erdos_renyi(n, 8.0 / n, {1, 16}, 42)});
  t.push_back({"grid_weighted", grid2d(rows, (n + rows - 1) / rows,
                                       {1, 16}, 42)});
  t.push_back({"barabasi_albert", barabasi_albert(n, 3, {1, 16}, 42)});
  t.push_back({"isp_two_level", isp_two_level(n, pops, {1, 4}, {8, 40}, 42)});
  return t;
}

}  // namespace

int run_e1(const FlagSet& flags, std::ostream& out) {
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{1024}));
  const auto kmax =
      static_cast<std::uint32_t>(flags.get("kmax", std::int64_t{5}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const auto pops = static_cast<NodeId>(flags.get("pops", std::int64_t{24}));

  for (const auto& topo : make_topologies(n, pops)) {
    const SampledGroundTruth gt(topo.graph, sources, 7);

    // Baseline oracles over the same ground truth and evaluator; Vivaldi
    // rows rely on the evaluator skipping pairs with no finite ground
    // truth rather than scoring est/infinity.
    for (const std::string& name : parse_name_list(
             flags.get("baselines", std::string("landmark,vivaldi")))) {
      const std::unique_ptr<DistanceOracle> oracle =
          OracleRegistry::instance().build(name, topo.graph, flags);
      const StretchReport report =
          evaluate_stretch(topo.graph, gt, *oracle, {});
      row("e1", "baseline_stretch")
          .add("topology", topo.name)
          .add("oracle", name)
          .add("n", static_cast<std::uint64_t>(topo.graph.num_nodes()))
          .add("guarantee", oracle->guarantee())
          .add("mean_stretch", report.all.mean())
          .add("p95_stretch", report.all.p(95))
          .add("max_stretch", report.all.max())
          .add("underestimates",
               static_cast<std::uint64_t>(report.underestimates))
          .add("mean_sketch_words", oracle->mean_size_words())
          .emit(out);
    }

    for (std::uint32_t k = 1; k <= kmax; ++k) {
      BuildConfig cfg;
      cfg.scheme = Scheme::kThorupZwick;
      cfg.k = k;
      cfg.seed = 100 + k;
      const SketchEngine engine(topo.graph, cfg);
      const auto report =
          eval(topo.graph, gt,
               [&](NodeId u, NodeId v) { return engine.query(u, v); });
      row("e1", "stretch_vs_k")
          .add("topology", topo.name)
          .add("n", static_cast<std::uint64_t>(topo.graph.num_nodes()))
          .add("k", k)
          .add("bound_2k_minus_1", 2 * k - 1)
          .add("mean_stretch", report.all.mean())
          .add("p95_stretch", report.all.p(95))
          .add("max_stretch", report.all.max())
          .add("underestimates",
               static_cast<std::uint64_t>(report.underestimates))
          .add("mean_sketch_words", engine.mean_size_words())
          .emit(out);
    }
  }

  // Ablation: Lemma 3.2's O(k) pivot query vs the exhaustive
  // common-bunch-member scan (same labels, same guarantee, better
  // practical stretch at O(bunch) query cost).
  {
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 42);
    const SampledGroundTruth gt(g, sources, 7);
    for (std::uint32_t k = 2; k <= kmax; ++k) {
      const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, 100 + k);
      const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
      const auto pivot_report = eval(g, gt, [&](NodeId u, NodeId v) {
        return tz_query(r.labels.view(u), r.labels.view(v));
      });
      const auto full_report = eval(g, gt, [&](NodeId u, NodeId v) {
        return tz_query_exhaustive(r.labels.view(u), r.labels.view(v));
      });
      row("e1", "query_variant_ablation")
          .add("n", static_cast<std::uint64_t>(g.num_nodes()))
          .add("k", k)
          .add("mean_stretch_pivot", pivot_report.all.mean())
          .add("max_stretch_pivot", pivot_report.all.max())
          .add("mean_stretch_exhaustive", full_report.all.mean())
          .add("max_stretch_exhaustive", full_report.all.max())
          .emit(out);
    }
  }
  note(out, "e1",
       "Expected shape: max <= bound for every row; mean well below bound; "
       "sketch words shrink as k grows; the exhaustive query strictly "
       "dominates the pivot query at equal sketch size.");
  return 0;
}

}  // namespace dsketch::bench
