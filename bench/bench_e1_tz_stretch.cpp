// E1 — Theorem 1.1 / 3.8: distributed TZ sketches give stretch <= 2k-1.
//
// Sweeps k over several topologies and reports observed mean/p95/max stretch
// against the guarantee. The paper's shape: max stretch always below 2k-1,
// mean stretch far below (typical instances are much better than worst
// case), and both grow with k while the sketch shrinks.
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_distributed.hpp"

using namespace dsketch;
using namespace dsketch::bench;

namespace {

struct Topology {
  std::string name;
  Graph graph;
};

std::vector<Topology> make_topologies() {
  std::vector<Topology> t;
  t.push_back({"erdos_renyi(1024,p=0.008)",
               erdos_renyi(1024, 0.008, {1, 16}, 42)});
  t.push_back({"grid 32x32 weighted", grid2d(32, 32, {1, 16}, 42)});
  t.push_back({"barabasi_albert(1024,m=3)",
               barabasi_albert(1024, 3, {1, 16}, 42)});
  t.push_back({"isp_two_level(1024,pops=24)",
               isp_two_level(1024, 24, {1, 4}, {8, 40}, 42)});
  return t;
}

}  // namespace

int main() {
  std::printf("# E1: Thorup-Zwick stretch vs k (Theorem 1.1: stretch <= 2k-1)\n");
  print_header("stretch by topology and k",
               {"topology", "k", "bound 2k-1", "mean", "p95", "max",
                "underest", "mean sketch words"});
  for (const auto& topo : make_topologies()) {
    const SampledGroundTruth gt(topo.graph, 16, 7);
    for (const std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
      BuildConfig cfg;
      cfg.scheme = Scheme::kThorupZwick;
      cfg.k = k;
      cfg.seed = 100 + k;
      const SketchEngine engine(topo.graph, cfg);
      const auto report =
          eval(topo.graph, gt,
               [&](NodeId u, NodeId v) { return engine.query(u, v); });
      print_row({topo.name, fmt(k), fmt(2 * k - 1), fmt(report.all.mean()),
                 fmt(report.all.p(95)), fmt(report.all.max()),
                 fmt(report.underestimates), fmt(engine.mean_size_words())});
    }
  }
  // Ablation: Lemma 3.2's O(k) pivot query vs the exhaustive
  // common-bunch-member scan (same labels, same guarantee, better
  // practical stretch at O(bunch) query cost).
  print_header("query variant ablation (erdos_renyi n=1024)",
               {"k", "mean (pivot O(k))", "max (pivot)",
                "mean (exhaustive)", "max (exhaustive)"});
  {
    const Graph g = erdos_renyi(1024, 0.008, {1, 16}, 42);
    const SampledGroundTruth gt(g, 16, 7);
    for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
      Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 100 + k);
      for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
        h = Hierarchy::sample(g.num_nodes(), k, 100 + k + b);
      }
      const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
      const auto pivot_report =
          eval(g, gt, [&](NodeId u, NodeId v) {
            return tz_query(r.labels[u], r.labels[v]);
          });
      const auto full_report =
          eval(g, gt, [&](NodeId u, NodeId v) {
            return tz_query_exhaustive(r.labels[u], r.labels[v]);
          });
      print_row({fmt(k), fmt(pivot_report.all.mean()),
                 fmt(pivot_report.all.max()), fmt(full_report.all.mean()),
                 fmt(full_report.all.max())});
    }
  }
  std::printf(
      "\nExpected shape: max <= bound for every row; mean well below bound; "
      "sketch words shrink as k grows; the exhaustive query strictly "
      "dominates the pivot query at equal sketch size.\n");
  return 0;
}
