// E5 — Theorem 4.6: (ε,k)-CDG sketches.
//
// Sweeps the (ε,k) grid: size O(k (1/ε log n)^{1/k} log n) words, stretch
// 8k-1 on ε-far pairs, and the construction cost split including the label
// dissemination step the paper leaves implicit.
//
// Flags: --n (1024) / --p / --graph FILE select the instance, --sources
// (16), --kmax (3).
#include "bench_common.hpp"
#include "sketch/cdg_sketch.hpp"

namespace dsketch::bench {

int run_e5(const FlagSet& flags, std::ostream& out) {
  const Graph g = primary_graph(flags, 1024, 0.008, {1, 16}, 33);
  const NodeId n = g.num_nodes();
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const auto kmax =
      static_cast<std::uint32_t>(flags.get("kmax", std::int64_t{3}));
  const SampledGroundTruth gt(g, sources, 5);

  for (const double eps : {0.05, 0.1, 0.2}) {
    for (std::uint32_t k = 1; k <= kmax; ++k) {
      CdgConfig cfg;
      cfg.epsilon = eps;
      cfg.k = k;
      cfg.seed = 77;
      const auto r = build_cdg_sketches(g, cfg);
      const auto report = eval(
          g, gt, [&](NodeId u, NodeId v) { return r.sketches.query(u, v); },
          eps);
      row("e5", "stretch_and_size")
          .add("n", static_cast<std::uint64_t>(n))
          .add("epsilon", eps)
          .add("k", r.k_used)
          .add("bound_8k_minus_1", 8 * r.k_used - 1)
          .add("far_mean_stretch", report.far_only.mean())
          .add("far_max_stretch", report.far_only.max())
          .add("near_max_stretch", report.near_only.max())
          .add("mean_words", mean_size_words(r.sketches, n))
          .add("underestimates",
               static_cast<std::uint64_t>(report.underestimates))
          .emit(out);
    }
  }

  for (std::uint32_t k = 1; k <= kmax; ++k) {
    CdgConfig cfg;
    cfg.epsilon = 0.1;
    cfg.k = k;
    cfg.seed = 78;
    const auto r = build_cdg_sketches(g, cfg);
    const double total_rounds = static_cast<double>(r.total().rounds);
    row("e5", "construction_cost_split")
        .add("n", static_cast<std::uint64_t>(n))
        .add("epsilon", 0.1)
        .add("k", k)
        .add("voronoi_rounds", r.voronoi_stats.rounds)
        .add("tz_rounds", r.tz_stats.rounds)
        .add("dissemination_rounds", r.dissemination_stats.rounds)
        .add("dissemination_share",
             static_cast<double>(r.dissemination_stats.rounds) / total_rounds)
        .add("total_messages", r.total().messages)
        .emit(out);
  }
  note(out, "e5",
       "Expected shape: far max <= 8k-1 everywhere; sketch words shrink "
       "with eps and k; dissemination is a minor share of rounds.");
  return 0;
}

}  // namespace dsketch::bench
