// E5 — Theorem 4.6: (ε,k)-CDG sketches.
//
// Sweeps the (ε,k) grid: size O(k (1/ε log n)^{1/k} log n) words, stretch
// 8k-1 on ε-far pairs, and the construction cost split including the label
// dissemination step the paper leaves implicit.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/cdg_sketch.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E5: (eps,k)-CDG sketches (Theorem 4.6)\n");
  const NodeId n = 1024;
  const Graph g = erdos_renyi(n, 0.008, {1, 16}, 33);
  const SampledGroundTruth gt(g, 16, 5);

  print_header("stretch and size over the (eps,k) grid",
               {"eps", "k", "bound 8k-1", "far mean", "far max", "near max",
                "mean words", "underest"});
  for (const double eps : {0.05, 0.1, 0.2}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      CdgConfig cfg;
      cfg.epsilon = eps;
      cfg.k = k;
      cfg.seed = 77;
      const auto r = build_cdg_sketches(g, cfg);
      const auto report = eval(
          g, gt, [&](NodeId u, NodeId v) { return r.sketches.query(u, v); },
          eps);
      double words = 0;
      for (NodeId u = 0; u < n; ++u) {
        words += static_cast<double>(r.sketches.size_words(u));
      }
      print_row({fmt(eps), fmt(r.k_used), fmt(8 * r.k_used - 1),
                 fmt(report.far_only.mean()), fmt(report.far_only.max()),
                 fmt(report.near_only.max()), fmt(words / n),
                 fmt(report.underestimates)});
    }
  }

  print_header("construction cost split (eps=0.1)",
               {"k", "voronoi rounds", "tz rounds", "dissem rounds",
                "dissem share", "total msgs"});
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    CdgConfig cfg;
    cfg.epsilon = 0.1;
    cfg.k = k;
    cfg.seed = 78;
    const auto r = build_cdg_sketches(g, cfg);
    const double total_rounds = static_cast<double>(r.total().rounds);
    print_row({fmt(k), fmt(r.voronoi_stats.rounds), fmt(r.tz_stats.rounds),
               fmt(r.dissemination_stats.rounds),
               fmt(static_cast<double>(r.dissemination_stats.rounds) /
                   total_rounds),
               fmt(r.total().messages)});
  }
  std::printf(
      "\nExpected shape: far max <= 8k-1 everywhere; sketch words shrink "
      "with eps and k; dissemination is a minor share of rounds.\n");
  return 0;
}
