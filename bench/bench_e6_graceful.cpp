// E6 — Theorems 4.8 and 1.3: gracefully degrading sketches.
//
// Reports, per n: average and max stretch vs the Thorup-Zwick k=log n
// sketch (paper: graceful pays an extra log^2 n size factor to turn
// O(log n) average stretch into O(1)), plus the level-count ablation.
//
// Flags: --nmax (1024) caps the n sweep (the ablation runs at
// min(512, nmax)), --sources (12).
#include <cmath>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "sketch/graceful_sketch.hpp"

namespace dsketch::bench {

int run_e6(const FlagSet& flags, std::ostream& out) {
  const auto nmax = static_cast<NodeId>(flags.get("nmax", std::int64_t{1024}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{12}));

  for (const NodeId n : {256u, 512u, 1024u}) {
    if (n > nmax) continue;
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 13);
    const SampledGroundTruth gt(g, sources, 3);
    const auto logn = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(n))));

    BuildConfig tz;
    tz.scheme = Scheme::kThorupZwick;
    tz.k = logn;
    tz.seed = 3;
    const SketchEngine tz_engine(g, tz);
    const auto tz_report =
        eval(g, gt, [&](NodeId u, NodeId v) { return tz_engine.query(u, v); });
    row("e6", "graceful_vs_tz")
        .add("n", static_cast<std::uint64_t>(n))
        .add("scheme", "tz_k_log_n")
        .add("avg_stretch", tz_report.average_stretch())
        .add("max_stretch", tz_report.max_stretch())
        .add("mean_words", tz_engine.mean_size_words())
        .add("build_rounds", tz_engine.cost().rounds)
        .emit(out);

    GracefulConfig gc;
    gc.seed = 3;
    const auto gr = build_graceful_sketches(g, gc);
    const auto gr_report = eval(
        g, gt, [&](NodeId u, NodeId v) { return gr.sketches.query(u, v); });
    row("e6", "graceful_vs_tz")
        .add("n", static_cast<std::uint64_t>(n))
        .add("scheme", "graceful")
        .add("avg_stretch", gr_report.average_stretch())
        .add("max_stretch", gr_report.max_stretch())
        .add("mean_words", mean_size_words(gr.sketches, n))
        .add("build_rounds", gr.total.rounds)
        .emit(out);
  }

  {
    const NodeId n = std::min<NodeId>(512, nmax);
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 13);
    const SampledGroundTruth gt(g, sources, 3);
    for (const std::uint32_t levels : {1u, 2u, 4u, 6u, 9u}) {
      GracefulConfig gc;
      gc.seed = 3;
      gc.max_levels = levels;
      const auto gr = build_graceful_sketches(g, gc);
      const auto report = eval(
          g, gt, [&](NodeId u, NodeId v) { return gr.sketches.query(u, v); });
      row("e6", "level_count_ablation")
          .add("n", static_cast<std::uint64_t>(n))
          .add("levels", levels)
          .add("avg_stretch", report.average_stretch())
          .add("max_stretch", report.max_stretch())
          .add("mean_words", mean_size_words(gr.sketches, n))
          .emit(out);
    }
  }
  note(out, "e6",
       "Expected shape: graceful average stretch roughly flat (O(1)) in n "
       "and clearly below TZ(k=log n)'s; graceful pays a polylog size "
       "premium; fewer levels => worse average stretch.");
  return 0;
}

}  // namespace dsketch::bench
