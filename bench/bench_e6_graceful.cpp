// E6 — Theorems 4.8 and 1.3: gracefully degrading sketches.
//
// Reports, per n: average and max stretch vs the Thorup-Zwick k=log n
// sketch (paper: graceful pays an extra log^2 n size factor to turn
// O(log n) average stretch into O(1)), plus the level-count ablation.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "sketch/graceful_sketch.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E6: gracefully degrading sketches (Theorem 1.3)\n");

  print_header("graceful vs TZ(k=log n)",
               {"n", "scheme", "avg stretch", "max stretch", "mean words",
                "build rounds"});
  for (const NodeId n : {256u, 512u, 1024u}) {
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 13);
    const SampledGroundTruth gt(g, 12, 3);
    const auto logn = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(n))));

    BuildConfig tz;
    tz.scheme = Scheme::kThorupZwick;
    tz.k = logn;
    tz.seed = 3;
    const SketchEngine tz_engine(g, tz);
    const auto tz_report = eval(
        g, gt, [&](NodeId u, NodeId v) { return tz_engine.query(u, v); });
    print_row({fmt(n), "TZ k=log n", fmt(tz_report.average_stretch()),
               fmt(tz_report.max_stretch()), fmt(tz_engine.mean_size_words()),
               fmt(tz_engine.cost().rounds)});

    GracefulConfig gc;
    gc.seed = 3;
    const auto gr = build_graceful_sketches(g, gc);
    const auto gr_report = eval(
        g, gt, [&](NodeId u, NodeId v) { return gr.sketches.query(u, v); });
    double words = 0;
    for (NodeId u = 0; u < n; ++u) {
      words += static_cast<double>(gr.sketches.size_words(u));
    }
    print_row({fmt(n), "graceful", fmt(gr_report.average_stretch()),
               fmt(gr_report.max_stretch()), fmt(words / n),
               fmt(gr.total.rounds)});
  }

  print_header("level-count ablation (n=512)",
               {"levels", "avg stretch", "max stretch", "mean words"});
  {
    const NodeId n = 512;
    const Graph g = erdos_renyi(n, 8.0 / n, {1, 16}, 13);
    const SampledGroundTruth gt(g, 12, 3);
    for (const std::uint32_t levels : {1u, 2u, 4u, 6u, 9u}) {
      GracefulConfig gc;
      gc.seed = 3;
      gc.max_levels = levels;
      const auto gr = build_graceful_sketches(g, gc);
      const auto report = eval(
          g, gt, [&](NodeId u, NodeId v) { return gr.sketches.query(u, v); });
      double words = 0;
      for (NodeId u = 0; u < n; ++u) {
        words += static_cast<double>(gr.sketches.size_words(u));
      }
      print_row({fmt(levels), fmt(report.average_stretch()),
                 fmt(report.max_stretch()), fmt(words / n)});
    }
  }
  std::printf(
      "\nExpected shape: graceful average stretch roughly flat (O(1)) in n "
      "and clearly below TZ(k=log n)'s; graceful pays a polylog size "
      "premium; fewer levels => worse average stretch.\n");
  return 0;
}
