// E4 — Theorem 4.3 (stretch-3 ε-slack sketches) and Lemma 4.2 (density
// nets, folded-in E10).
//
// Sweeps ε: reports net size vs the 10 ln(n)/ε bound and coverage
// violations (E10), then sketch size, construction rounds, and stretch
// split into ε-far pairs (guarantee: <= 3) vs near pairs (no guarantee).
//
// Flags: --n (1024) / --p / --graph FILE select the instance, --sources
// (16) ground-truth rows.
#include <cmath>

#include "bench_common.hpp"
#include "obs/round_log.hpp"
#include "sketch/density_net.hpp"
#include "sketch/slack_sketch.hpp"

namespace dsketch::bench {

int run_e4(const FlagSet& flags, std::ostream& out) {
  const Graph g = primary_graph(flags, 1024, 0.008, {1, 16}, 21);
  const NodeId n = g.num_nodes();
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const SampledGroundTruth gt(g, sources, 3);

  for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const auto net = sample_density_net(n, eps, 5);
    const double bound = 10.0 * std::log(static_cast<double>(n)) / eps;
    row("e4", "density_nets")
        .add("n", static_cast<std::uint64_t>(n))
        .add("epsilon", eps)
        .add("net_size", static_cast<std::uint64_t>(net.size()))
        .add("bound_10_ln_n_over_eps", bound)
        .add("coverage_violations",
             static_cast<std::uint64_t>(
                 count_density_net_violations(g, net, eps)))
        .emit(out);
  }

  for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    // One representative construction (eps = 0.1) streams its per-round
    // CONGEST telemetry into the row stream: same JSON-lines schema as
    // every other table, rendered as `congest_rounds` in the report.
    SimConfig sim_cfg;
    obs::RoundLog::Options log_opts;
    log_opts.experiment = "e4";
    obs::RoundLog round_log(out, log_opts);
    if (eps == 0.1) sim_cfg.round_log = &round_log;
    const auto r = build_slack_sketches(g, eps, 9, sim_cfg);
    round_log.flush();
    const auto report = eval(
        g, gt, [&](NodeId u, NodeId v) { return r.sketches.query(u, v); },
        eps);
    row("e4", "slack_sketches")
        .add("n", static_cast<std::uint64_t>(n))
        .add("epsilon", eps)
        .add("sketch_words", static_cast<std::uint64_t>(
                                 r.sketches.size_words(0)))
        .add("rounds", r.stats.rounds)
        .add("messages", r.stats.messages)
        .add("far_mean_stretch", report.far_only.mean())
        .add("far_max_stretch", report.far_only.max())
        .add("near_mean_stretch", report.near_only.mean())
        .add("near_max_stretch", report.near_only.max())
        .add("underestimates",
             static_cast<std::uint64_t>(report.underestimates))
        .emit(out);
  }
  note(out, "e4",
       "Expected shape: |N| under its bound with zero violations; far max "
       "<= 3 for every eps; near pairs may exceed 3 (that is the slack); "
       "size and rounds shrink as eps grows.");
  return 0;
}

}  // namespace dsketch::bench
