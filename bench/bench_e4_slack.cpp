// E4 — Theorem 4.3 (stretch-3 ε-slack sketches) and Lemma 4.2 (density
// nets, folded-in E10).
//
// Sweeps ε: reports net size vs the 10 ln(n)/ε bound and coverage
// violations (E10), then sketch size, construction rounds, and stretch
// split into ε-far pairs (guarantee: <= 3) vs near pairs (no guarantee).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/density_net.hpp"
#include "sketch/slack_sketch.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E4: eps-slack sketches (Theorem 4.3) + density nets (Lemma 4.2)\n");
  const NodeId n = 1024;
  const Graph g = erdos_renyi(n, 0.008, {1, 16}, 21);
  const SampledGroundTruth gt(g, 16, 3);

  print_header("density nets (Lemma 4.2 verification)",
               {"eps", "|N|", "bound 10 ln n/eps", "coverage violations"});
  for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const auto net = sample_density_net(n, eps, 5);
    const double bound = 10.0 * std::log(static_cast<double>(n)) / eps;
    print_row({fmt(eps), fmt(net.size()), fmt(bound, 0),
               fmt(count_density_net_violations(g, net, eps))});
  }

  print_header("slack sketches",
               {"eps", "sketch words", "rounds", "messages",
                "far mean", "far max (<=3)", "near mean", "near max",
                "underest"});
  for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const auto r = build_slack_sketches(g, eps, 9);
    const auto report = eval(
        g, gt, [&](NodeId u, NodeId v) { return r.sketches.query(u, v); },
        eps);
    print_row({fmt(eps), fmt(r.sketches.size_words(0)), fmt(r.stats.rounds),
               fmt(r.stats.messages), fmt(report.far_only.mean()),
               fmt(report.far_only.max()), fmt(report.near_only.mean()),
               fmt(report.near_only.max()), fmt(report.underestimates)});
  }
  std::printf(
      "\nExpected shape: |N| under its bound with zero violations; far max "
      "<= 3 for every eps; near pairs may exceed 3 (that is the slack); "
      "size and rounds shrink as eps grows.\n");
  return 0;
}
