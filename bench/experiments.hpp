// The experiment library: every paper experiment E1–E12 as a callable,
// plus the systems experiments E13 (shortest-path kernel) and E14 (live
// sketch refresh under churn).
//
// Each `run_eN` reproduces one experiment grid from the paper (see
// docs/BENCHMARKS.md for what each measures and its flags), reads scale
// overrides from a FlagSet, and writes JSON lines (util/json_lines.hpp) to
// the supplied stream. Three callers share these entry points:
//
//   - the standalone bench binaries (bench_main.cpp shim, one per
//     experiment, streaming to stdout),
//   - `dsketch repro` (src/exp/runner.cpp, one output file per manifest
//     cell, cells running in parallel), and
//   - ad-hoc tooling that wants an experiment in-process.
//
// Functions are thread-safe with respect to each other: all state is
// local, and the output stream is caller-owned.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/flags.hpp"

namespace dsketch::bench {

/// Runs one experiment with `flags` overrides, emitting JSON lines to
/// `out`. Returns a process-style exit code (0 = success; nonzero means
/// the experiment's internal invariant check failed, e.g. E12's
/// store-vs-engine verification).
using ExperimentFn = int (*)(const FlagSet& flags, std::ostream& out);

/// Registry entry describing one experiment.
struct Experiment {
  std::string id;     ///< short id: "e1" .. "e12" (manifest key)
  std::string name;   ///< slug used in binary names, e.g. "tz_stretch"
  std::string title;  ///< one-line description for reports and --help
  ExperimentFn run;   ///< the entry point
};

/// All experiments, ordered e1..e14.
const std::vector<Experiment>& experiment_registry();

/// Looks an experiment up by id ("e7") or name ("query"); nullptr if
/// unknown.
const Experiment* find_experiment(const std::string& id);

/// Shared main() body for the standalone bench shims: parses argv into a
/// FlagSet, runs the experiment against stdout, reports errors on stderr.
int experiment_main(const std::string& id, int argc, char** argv);

int run_e1(const FlagSet& flags, std::ostream& out);
int run_e2(const FlagSet& flags, std::ostream& out);
int run_e3(const FlagSet& flags, std::ostream& out);
int run_e4(const FlagSet& flags, std::ostream& out);
int run_e5(const FlagSet& flags, std::ostream& out);
int run_e6(const FlagSet& flags, std::ostream& out);
int run_e7(const FlagSet& flags, std::ostream& out);
int run_e8(const FlagSet& flags, std::ostream& out);
int run_e9(const FlagSet& flags, std::ostream& out);
int run_e10(const FlagSet& flags, std::ostream& out);
int run_e11(const FlagSet& flags, std::ostream& out);
int run_e12(const FlagSet& flags, std::ostream& out);
int run_e13(const FlagSet& flags, std::ostream& out);
int run_e14(const FlagSet& flags, std::ostream& out);
int run_e15(const FlagSet& flags, std::ostream& out);
int run_e16(const FlagSet& flags, std::ostream& out);

}  // namespace dsketch::bench
