// E11 — failure dynamics (§1 "the network itself changes frequently, and
// this would require altering the sketches periodically"; §5 future work).
//
// Builds TZ sketches on a healthy graph, fails a growing fraction of edges
// (connectivity-preserving), and measures how stale sketches behave against
// the degraded metric: underestimate rate (one-sided guarantee violations),
// stretch distribution, and the cost of rebuilding from scratch — the
// paper's stated remediation.
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "dynamics/failure_model.hpp"
#include "graph/generators.hpp"

using namespace dsketch;
using namespace dsketch::bench;

int main() {
  std::printf("# E11: stale sketches under edge failures, and rebuild cost\n");
  const NodeId n = 512;
  const Graph g = erdos_renyi(n, 0.015, {1, 12}, 21);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 3;
  const SketchEngine stale(g, cfg);

  print_header("stale TZ(k=3) sketches vs degraded ground truth",
               {"failed edges", "fraction", "underest rate", "mean stretch",
                "p95 stretch", "max stretch", "rebuild rounds",
                "rebuild msgs"});
  for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const FailurePlan plan = sample_edge_failures(g, fraction, 9);
    const Graph degraded = apply_failures(g, plan);
    const StalenessReport report = evaluate_staleness(
        degraded, [&](NodeId u, NodeId v) { return stale.query(u, v); }, 12,
        5);
    const SketchEngine rebuilt(degraded, cfg);
    print_row({fmt(plan.failed_edges.size()), fmt(fraction),
               fmt(static_cast<double>(report.underestimates) /
                       static_cast<double>(report.pairs),
                   4),
               fmt(report.stretch.mean()), fmt(report.stretch.p(95)),
               fmt(report.stretch.max()), fmt(rebuilt.cost().rounds),
               fmt(rebuilt.cost().messages)});
  }
  std::printf(
      "\nExpected shape: zero underestimates at fraction 0 (the guarantee), "
      "a growing underestimate rate with churn (stale estimates route "
      "through dead edges), and rebuild cost roughly flat (the degraded "
      "graph is no harder to preprocess).\n");
  return 0;
}
