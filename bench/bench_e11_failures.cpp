// E11 — failure dynamics (§1 "the network itself changes frequently, and
// this would require altering the sketches periodically"; §5 future work).
//
// Builds TZ sketches on a healthy graph, fails a growing fraction of edges
// (connectivity-preserving), and measures how stale sketches behave against
// the degraded metric: underestimate rate (one-sided guarantee violations),
// stretch distribution, and the cost of rebuilding from scratch — the
// paper's stated remediation.
//
// Flags: --n (512) / --p / --graph FILE select the instance, --k (3),
// --sources (12).
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "dynamics/failure_model.hpp"

namespace dsketch::bench {

int run_e11(const FlagSet& flags, std::ostream& out) {
  const Graph g = primary_graph(flags, 512, 0.015, {1, 12}, 21);
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{12}));
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = k;
  const SketchEngine stale(g, cfg);

  for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const FailurePlan plan = sample_edge_failures(g, fraction, 9);
    const Graph degraded = apply_failures(g, plan);
    const StalenessReport report = evaluate_staleness(
        degraded, [&](NodeId u, NodeId v) { return stale.query(u, v); },
        sources, 5);
    const SketchEngine rebuilt(degraded, cfg);
    row("e11", "stale_sketches")
        .add("n", static_cast<std::uint64_t>(g.num_nodes()))
        .add("k", k)
        .add("failed_edges",
             static_cast<std::uint64_t>(plan.failed_edges.size()))
        .add("failed_fraction", fraction)
        .add("underestimate_rate",
             static_cast<double>(report.underestimates) /
                 static_cast<double>(report.pairs))
        .add("mean_stretch", report.stretch.mean())
        .add("p95_stretch", report.stretch.p(95))
        .add("max_stretch", report.stretch.max())
        .add("rebuild_rounds", rebuilt.cost().rounds)
        .add("rebuild_messages", rebuilt.cost().messages)
        .emit(out);
  }
  note(out, "e11",
       "Expected shape: zero underestimates at fraction 0 (the guarantee), "
       "a growing underestimate rate with churn (stale estimates route "
       "through dead edges), and rebuild cost roughly flat (the degraded "
       "graph is no harder to preprocess).");
  return 0;
}

}  // namespace dsketch::bench
