// P2P overlay scenario (§1, §2.1): peers want cheap pairwise latency
// estimates for neighbor selection without flooding the network per query.
//
// We model an overlay as a Barabasi-Albert graph (heavy-tailed degrees,
// like real unstructured P2P) with link latencies, build *slack* sketches
// (Theorem 4.3) — small tables good for all but the closest pairs — and use
// them to pick the best replica among candidates, measuring how often the
// sketch-based choice matches the true-latency choice.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/rng.hpp"

using namespace dsketch;

int main() {
  const NodeId n = 1500;
  const Graph overlay = barabasi_albert(n, 3, /*latencies=*/{5, 120}, 7);
  std::printf("overlay: %u peers, %zu links\n", overlay.num_nodes(),
              overlay.num_edges());

  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.05;  // guarantee holds for all but the closest 5%
  const SketchEngine engine(overlay, cfg);
  std::printf("sketches: %s, %.0f words/peer, built in %llu rounds\n",
              engine.guarantee().c_str(), engine.mean_size_words(),
              static_cast<unsigned long long>(engine.cost().rounds));

  // Replica selection: a client picks the closest of 5 candidate replicas.
  Rng rng(13);
  const int trials = 200;
  int agree = 0;
  double latency_ratio_sum = 0;
  for (int t = 0; t < trials; ++t) {
    const NodeId client = static_cast<NodeId>(rng.below(n));
    const auto exact = dijkstra(overlay, client);
    std::vector<NodeId> candidates;
    while (candidates.size() < 5) {
      const NodeId c = static_cast<NodeId>(rng.below(n));
      if (c != client) candidates.push_back(c);
    }
    NodeId best_true = candidates[0], best_est = candidates[0];
    for (const NodeId c : candidates) {
      if (exact[c] < exact[best_true]) best_true = c;
      if (engine.query(client, c) < engine.query(client, best_est)) {
        best_est = c;
      }
    }
    if (best_true == best_est) ++agree;
    latency_ratio_sum += static_cast<double>(exact[best_est]) /
                         static_cast<double>(exact[best_true]);
  }
  std::printf("\nreplica selection over %d trials:\n", trials);
  std::printf("  sketch picked the true-closest replica: %.0f%%\n",
              100.0 * agree / trials);
  std::printf("  mean latency penalty of sketch choice: %.2fx\n",
              latency_ratio_sum / trials);
  return 0;
}
