// Monitoring-overlay scenario (§2.1 cites AVMON-style systems): pick a few
// monitor nodes so every node has a nearby monitor, then verify proximity
// claims with sketches instead of per-pair measurements.
//
// This is exactly what ε-density nets give for free (Lemma 4.2): the net IS
// a provably-good monitor set. We build one on an ISP-like two-level
// topology, assign every node to its nearest monitor via the distributed
// super-source Bellman-Ford, and use gracefully degrading sketches
// (Theorem 1.3) to audit monitor assignment quality.
#include <cstdio>

#include "congest/bellman_ford.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/density_net.hpp"
#include "sketch/graceful_sketch.hpp"

using namespace dsketch;

int main() {
  const NodeId n = 1200;
  const Graph net_graph = isp_two_level(n, 20, {1, 4}, {10, 60}, 11);
  std::printf("ISP topology: %u nodes (20 PoPs), %zu links\n", n,
              net_graph.num_edges());

  // Monitors = an eps-density net: every node provably has a monitor within
  // the radius of its eps-ball.
  const double eps = 0.08;
  const auto monitors = sample_density_net(n, eps, 5);
  std::printf("monitor set: %zu nodes (eps=%.2f density net)\n",
              monitors.size(), eps);

  // Distributed assignment: one super-source Bellman-Ford.
  const auto assignment = run_super_source_bf(net_graph, monitors);
  std::printf("assignment built in %llu rounds / %llu messages\n",
              static_cast<unsigned long long>(assignment.stats.rounds),
              static_cast<unsigned long long>(assignment.stats.messages));

  // Audit with sketches: estimate each node's distance to its monitor and
  // compare with the exact assignment distance.
  GracefulConfig gc;
  gc.max_levels = 6;  // keep the demo quick
  const auto sketches = build_graceful_sketches(net_graph, gc);

  double worst = 0, sum = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (assignment.owner[u] == u) continue;
    const double est = static_cast<double>(
        sketches.sketches.query(u, assignment.owner[u]));
    const double d = static_cast<double>(assignment.dist[u]);
    const double ratio = est / d;
    worst = std::max(worst, ratio);
    sum += ratio;
  }
  std::printf("\nsketch audit of monitor distances:\n");
  std::printf("  mean estimate/true: %.2f, worst: %.2f\n",
              sum / (n - monitors.size()), worst);

  // Coverage check against the Lemma 4.2 guarantee.
  const auto violations = count_density_net_violations(net_graph, monitors, eps);
  std::printf("  nodes lacking a monitor within R(u,eps): %u (expected 0)\n",
              violations);
  return 0;
}
