// Quickstart: build distance sketches on a random network and query them.
//
//   $ ./quickstart
//
// Walks through the core API: generate a topology, run the distributed
// Thorup-Zwick construction in the CONGEST simulator, and answer distance
// queries from sketches alone, comparing against exact distances.
#include <cstdio>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

using namespace dsketch;

int main() {
  // A 1000-node weighted network (Erdos-Renyi with a connectivity backbone).
  const NodeId n = 1000;
  const Graph g = erdos_renyi(n, 0.008, /*weights=*/{1, 20}, /*seed=*/42);
  std::printf("network: %u nodes, %zu edges\n", g.num_nodes(), g.num_edges());

  // Build Thorup-Zwick sketches with k=3 (stretch guarantee 2k-1 = 5),
  // using the paper's fully distributed termination detection (§3.3).
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 3;
  cfg.termination = TerminationMode::kEcho;
  const SketchEngine engine(g, cfg);

  std::printf("built sketches: %s\n", engine.guarantee().c_str());
  std::printf("  construction: %llu CONGEST rounds, %llu messages\n",
              static_cast<unsigned long long>(engine.cost().rounds),
              static_cast<unsigned long long>(engine.cost().messages));
  std::printf("  mean sketch size: %.1f words per node (vs %u for APSP rows)\n",
              engine.mean_size_words(), n);

  // Query a few pairs and compare with exact distances.
  const auto exact_from_3 = dijkstra(g, 3);
  std::printf("\n%-8s %-8s %-10s %-10s %s\n", "u", "v", "exact", "estimate",
              "stretch");
  for (const NodeId v : {77u, 250u, 512u, 999u}) {
    const Dist d = exact_from_3[v];
    const Dist est = engine.query(3, v);
    std::printf("%-8u %-8u %-10llu %-10llu %.2f\n", 3u, v,
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(est),
                static_cast<double>(est) / static_cast<double>(d));
  }
  return 0;
}
