// Build-once / serve-many: the deployment shape the paper motivates.
//
// An offline builder pays the distributed construction cost once and
// writes a compact binary store; any number of stateless frontends then
// load the store and answer distance queries from sketches alone — no
// graph, no network traffic, microseconds per batch.
//
//   build phase:  graph -> SketchEngine -> SketchStore::save_file
//   serve phase:  SketchStore::load_file -> QueryService -> answers
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"

using namespace dsketch;

int main() {
  const std::string store_path = "serve_pipeline.store";

  // ---- offline build (expensive, run once) ---------------------------------
  {
    const Graph g = erdos_renyi(1024, 0.008, {1, 16}, 42);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 3;
    const SketchEngine engine(g, cfg);
    const SketchStore store = SketchStore::from_engine(engine);
    store.save_file(store_path);
    std::printf("built %s: %u rounds of CONGEST, %.1f words/node, "
                "%zu packed bytes on disk\n",
                engine.guarantee().c_str(),
                static_cast<unsigned>(engine.cost().rounds),
                engine.mean_size_words(), store.payload_bytes());
  }

  // ---- serving frontend (cheap, run anywhere, any number of replicas) ------
  const SketchStore store = SketchStore::load_file(store_path);
  QueryService service(store, {.shards = 8, .threads = 4,
                               .cache_capacity = 4096});

  WorkloadConfig wl;
  wl.kind = WorkloadConfig::Kind::kZipf;  // hot-pair traffic
  WorkloadGenerator gen(store.num_nodes(), wl);

  std::vector<Dist> answers;
  for (int batch = 0; batch < 20; ++batch) {
    const auto pairs = gen.batch(4096);
    answers.assign(pairs.size(), 0);
    service.query_batch(pairs, answers);
  }

  const QueryServiceStats stats = service.stats();
  std::printf("served %llu queries in %.2f ms: %.2fM qps, %.0f%% cache hits, "
              "p99 shard slice %.1f us\n",
              static_cast<unsigned long long>(stats.queries),
              stats.wall_seconds * 1e3, stats.qps / 1e6,
              stats.hit_rate * 100, stats.p99_shard_batch_us);
  std::printf("example answer: d(1, 900) <= %llu\n",
              static_cast<unsigned long long>(service.query(1, 900)));
  return 0;
}
