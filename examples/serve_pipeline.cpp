// Build-once / serve-many: the deployment shape the paper motivates.
//
// An offline builder pays the distributed construction cost once and
// writes a compact binary store; any number of stateless frontends then
// load the store and answer distance queries from sketches alone — no
// graph, no network traffic, microseconds per batch.
//
//   build phase:  graph -> OracleRegistry::build -> SketchStore::save_file
//   serve phase:  SketchStore::load_oracle -> QueryService -> answers
//
// Everything below is scheme-agnostic: swap "tz" for any registered
// scheme name (dsketch list-schemes) and the pipeline still runs —
// sketch schemes ship the packed binary store, baselines persist their
// text envelope, and both serve through the same sharded service.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "congest/accounting.hpp"
#include "core/oracle_registry.hpp"
#include "graph/generators.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"

using namespace dsketch;

namespace {

constexpr const char* kScheme = "tz";  // any name from `dsketch list-schemes`

/// Where the build phase ships the store: $DSKETCH_OUT_DIR if set, else
/// the system temp dir — never the invoking directory.
std::string store_path() {
  const char* out_dir = std::getenv("DSKETCH_OUT_DIR");
  const std::filesystem::path dir =
      out_dir != nullptr ? std::filesystem::path(out_dir)
                         : std::filesystem::temp_directory_path();
  return (dir / "serve_pipeline.store").string();
}

/// Loads whatever the build phase shipped back to a DistanceOracle.
std::unique_ptr<DistanceOracle> load_shipped(bool packed) {
  if (packed) return SketchStore::load_oracle(store_path());
  std::ifstream in(store_path());
  return OracleRegistry::instance().load(in).oracle;
}

}  // namespace

int main() {
  // ---- offline build (expensive, run once) ---------------------------------
  bool packed = false;
  {
    const Graph g = erdos_renyi(1024, 0.008, {1, 16}, 42);
    const FlagSet flags(
        std::vector<std::pair<std::string, std::string>>{{"k", "3"}});
    const std::unique_ptr<DistanceOracle> oracle =
        OracleRegistry::instance().build(kScheme, g, flags);
    std::size_t shipped_bytes = 0;
    packed = SketchStore::packable(*oracle);
    if (packed) {
      // Sketch schemes: pack the binary serving representation.
      const SketchStore store = SketchStore::from_oracle(*oracle);
      store.save_file(store_path());
      shipped_bytes = store.payload_bytes();
    } else {
      // Baselines: no packed form — ship the text envelope instead.
      std::ofstream out(store_path());
      oracle->save(out);
    }
    if (const SimStats* cost = oracle->build_cost()) {
      std::printf("built %s: %u rounds of CONGEST paid once\n",
                  oracle->guarantee().c_str(),
                  static_cast<unsigned>(cost->rounds));
    } else {
      std::printf("built %s (centralized baseline)\n",
                  oracle->guarantee().c_str());
    }
    std::printf("  %.1f words/node, %zu packed bytes on disk\n",
                oracle->mean_size_words(), shipped_bytes);
  }

  // ---- serving frontend (cheap, run anywhere, any number of replicas) ------
  const std::unique_ptr<DistanceOracle> store = load_shipped(packed);
  QueryService service(*store, {.shards = 8, .threads = 4,
                                .cache_capacity = 4096});

  WorkloadConfig wl;
  wl.kind = WorkloadConfig::Kind::kZipf;  // hot-pair traffic
  WorkloadGenerator gen(store->num_nodes(), wl);

  std::vector<Dist> answers;
  for (int batch = 0; batch < 20; ++batch) {
    const auto pairs = gen.batch(4096);
    answers.assign(pairs.size(), 0);
    service.query_batch(pairs, answers);
  }

  const QueryServiceStats stats = service.stats();
  std::printf("served %llu queries in %.2f ms: %.2fM qps, %.0f%% cache hits, "
              "p99 shard slice %.1f us\n",
              static_cast<unsigned long long>(stats.queries),
              stats.wall_seconds * 1e3, stats.qps / 1e6,
              stats.hit_rate * 100, stats.p99_shard_batch_us);
  std::printf("example answer: d(1, 900) <= %llu\n",
              static_cast<unsigned long long>(service.query(1, 900)));
  return 0;
}
