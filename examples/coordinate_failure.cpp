// Why provable sketches (§1): coordinate systems like Vivaldi can fail
// badly on networks that do not embed into low-dimensional space, while
// the Thorup-Zwick guarantee is topology-independent.
//
// We run both on a friendly geometric network and on a ring with random
// low-latency chords (a classic non-embeddable instance), printing the
// distortion tails side by side.
#include <cstdio>

#include "baselines/vivaldi.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/stats.hpp"

using namespace dsketch;

namespace {

void compare(const char* label, const Graph& g) {
  VivaldiConfig vc;
  vc.rounds = 40;
  const VivaldiCoordinates viv(g, vc);

  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 3;
  const SketchEngine tz(g, cfg);

  const SampledGroundTruth gt(g, 10, 3);
  SampleSet viv_dist, tz_dist;
  for (std::size_t r = 0; r < gt.num_rows(); ++r) {
    const NodeId s = gt.sources()[r];
    for (NodeId v = 0; v < g.num_nodes(); v += 4) {
      if (v == s) continue;
      const double d = static_cast<double>(gt.dist(r, v));
      const double ev =
          std::max(1.0, static_cast<double>(viv.query(s, v)));
      const double et = static_cast<double>(tz.query(s, v));
      viv_dist.add(std::max(ev / d, d / ev));
      tz_dist.add(et / d);  // TZ never underestimates
    }
  }
  std::printf("%-28s vivaldi p50/p95/max: %5.2f %6.2f %7.2f   ", label,
              viv_dist.p(50), viv_dist.p(95), viv_dist.max());
  std::printf("TZ k=3 p50/p95/max: %5.2f %5.2f %5.2f (bound 5)\n",
              tz_dist.p(50), tz_dist.p(95), tz_dist.max());
}

}  // namespace

int main() {
  std::printf("Coordinate embeddings vs distance sketches\n");
  std::printf("distortion = max(est/true, true/est); 1.00 is perfect\n\n");
  compare("geometric (embeddable):", random_geometric(400, 0.09, 3, true));
  compare("ring+chords (hostile):", ring_with_chords(400, 200, 32, 1, 3));
  std::printf(
      "\nThe sketch bound holds on both; the embedding degrades on the "
      "non-Euclidean topology exactly as §1 of the paper argues.\n");
  return 0;
}
