// Approximate routing: the sketches don't just estimate distances — the
// Algorithm 2 by-product forwarding state lets nodes route packets along
// real paths whose length equals the sketch estimate (stretch <= 2k-1).
//
// We build TZ sketches on an ISP-like topology and route packets between
// random pairs, comparing realized path weight to the true shortest path
// and showing the witness ("meet me at landmark w") structure.
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/path_extraction.hpp"
#include "sketch/tz_distributed.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace dsketch;

int main() {
  const NodeId n = 800;
  const Graph g = isp_two_level(n, 16, {1, 4}, {8, 40}, 7);
  std::printf("topology: %u nodes, %zu links\n", n, g.num_edges());

  const std::uint32_t k = 3;
  Hierarchy h = Hierarchy::sample(n, k, 5);
  while (!h.top_level_nonempty()) h = Hierarchy::sample(n, k, 6);
  const auto r = build_tz_distributed(g, h, TerminationMode::kEcho);
  std::printf("TZ k=%u sketches + forwarding state built in %llu rounds\n\n",
              k, static_cast<unsigned long long>(r.total_rounds()));

  Rng rng(13);
  SampleSet stretch, hops;
  std::printf("%-6s %-6s %-9s %-10s %-10s %-8s %s\n", "src", "dst", "witness",
              "true dist", "path len", "stretch", "path hops");
  for (int t = 0; t < 8; ++t) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (v == u) v = (v + 1) % n;
    const ApproxPath p = extract_approximate_path(g, r.labels, r.routing, u, v);
    const Dist d = dijkstra(g, u)[v];
    std::printf("%-6u %-6u %-9u %-10llu %-10llu %-8.2f %zu\n", u, v, p.witness,
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(p.weight),
                static_cast<double>(p.weight) / static_cast<double>(d),
                p.nodes.size() - 1);
  }

  // Aggregate over many pairs.
  for (int t = 0; t < 500; ++t) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (v == u) v = (v + 1) % n;
    const ApproxPath p = extract_approximate_path(g, r.labels, r.routing, u, v);
    const Dist d = dijkstra(g, u)[v];
    stretch.add(static_cast<double>(p.weight) / static_cast<double>(d));
    hops.add(static_cast<double>(p.nodes.size() - 1));
  }
  std::printf("\nover 500 random pairs: path stretch mean %.2f p95 %.2f max "
              "%.2f (bound %u); mean hops %.1f\n",
              stretch.mean(), stretch.p(95), stretch.max(), 2 * k - 1,
              hops.mean());
  std::printf("every packet followed real edges; length == sketch estimate "
              "by construction.\n");
  return 0;
}
