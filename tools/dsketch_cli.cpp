// dsketch — command-line front end to the library.
//
//   dsketch gen   --topology er --n 1024 --p 0.01 --wmin 1 --wmax 16
//                 --seed 42 --out net.graph
//   dsketch info  --graph net.graph [--exact-diameters]
//   dsketch build --graph net.graph --scheme tz --k 3 [--echo] [--async 4]
//                 [--save text.sketch] [--store net.store]
//   dsketch query --graph net.graph --scheme slack --epsilon 0.1
//                 --pairs 0:17,3:999 [--exact] [--load text.sketch]
//   dsketch eval  --graph net.graph --scheme graceful --sources 16
//   dsketch convert    --in text.sketch --out net.store
//   dsketch serve-bench --store net.store --workload zipf --batch 1024
//                 --threads 1,2,4 --shards 8 --cache 4096
//   dsketch repro --manifest bench/manifests/quick.toml [--out-dir DIR]
//                 [--threads N] [--force] [--list] [--no-report]
//
// Schemes: tz | slack | cdg | graceful. See README for the guarantees.
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/exact_oracle.hpp"
#include "core/engine.hpp"
#include "exp/corpus_cache.hpp"
#include "exp/manifest.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"
#include "sketch/stretch_eval.hpp"
#include "util/flags.hpp"
#include "util/json_lines.hpp"
#include "util/timer.hpp"

using namespace dsketch;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dsketch "
               "<gen|info|build|query|eval|convert|serve-bench|repro>"
               " [--flags]\n"
               "  gen   --topology er|grid|ring|path|ba|ws|geometric|tree|"
               "isp|ring_chords --n N [--p P] [--m M] [--wmin W --wmax W] "
               "[--seed S] --out FILE\n"
               "  info  --graph FILE [--exact-diameters]\n"
               "  build --graph FILE --scheme tz|slack|cdg|graceful [--k K] "
               "[--epsilon E] [--echo|--known-s] [--async DMAX] [--seed S] "
               "[--save FILE] [--store FILE]\n"
               "  query --graph FILE --scheme ... --pairs u:v,u:v [--exact] "
               "[--load FILE]\n"
               "  eval  --graph FILE --scheme ... [--sources N] "
               "[--epsilon-far E]\n"
               "  convert --in FILE --out FILE   (text <-> binary store, "
               "direction auto-detected from the input magic)\n"
               "  serve-bench (--store FILE | --graph FILE --scheme ...) "
               "[--queries N] [--batch B,B,...] [--threads T,T,...] "
               "[--shards S] [--cache C] [--workload uniform|zipf] "
               "[--zipf-s S] [--hot-pairs H] [--seed S] [--verify N]\n"
               "  repro (--manifest FILE | --quick) [--out-dir DIR] "
               "[--corpus-dir DIR] [--threads N] [--force] [--list] "
               "[--no-report] [--report FILE]\n");
  return 2;
}

BuildConfig parse_build_config(const FlagSet& flags) {
  BuildConfig cfg;
  const std::string scheme = flags.get("scheme", std::string("tz"));
  if (scheme == "tz") {
    cfg.scheme = Scheme::kThorupZwick;
  } else if (scheme == "slack") {
    cfg.scheme = Scheme::kSlack;
  } else if (scheme == "cdg") {
    cfg.scheme = Scheme::kCdg;
  } else if (scheme == "graceful") {
    cfg.scheme = Scheme::kGraceful;
  } else {
    throw std::runtime_error("unknown scheme: " + scheme);
  }
  cfg.k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  cfg.epsilon = flags.get("epsilon", 0.1);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
  if (flags.get_bool("echo")) cfg.termination = TerminationMode::kEcho;
  if (flags.get_bool("known-s")) cfg.termination = TerminationMode::kKnownS;
  cfg.sim.async_max_delay =
      static_cast<std::uint32_t>(flags.get("async", std::int64_t{1}));
  return cfg;
}

int cmd_gen(const FlagSet& flags) {
  const Graph g = exp::generate_graph(flags);
  const std::string out = flags.require("out");
  write_graph_file(out, g);
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(), g.num_nodes(),
              g.num_edges());
  return 0;
}

int cmd_info(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  std::printf("nodes:  %u\nedges:  %zu\n", g.num_nodes(), g.num_edges());
  std::printf("connected: %s\n", g.connected() ? "yes" : "no");
  double total_deg = 0;
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    total_deg += static_cast<double>(g.degree(u));
    max_deg = std::max(max_deg, g.degree(u));
  }
  std::printf("degree: mean %.2f, max %zu\n", total_deg / g.num_nodes(),
              max_deg);
  if (flags.get_bool("exact-diameters")) {
    std::printf("hop diameter D:           %u\n", hop_diameter(g));
    std::printf("shortest-path diameter S: %u\n", shortest_path_diameter(g));
  } else {
    std::printf("hop diameter D (sampled lower bound):           %u\n",
                hop_diameter_estimate(g, 8, 1));
    std::printf("shortest-path diameter S (sampled lower bound): %u\n",
                shortest_path_diameter_estimate(g, 8, 1));
  }
  return 0;
}

int cmd_build(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const BuildConfig cfg = parse_build_config(flags);
  const SketchEngine engine(g, cfg);
  if (flags.has("save")) {
    std::ofstream out(flags.get("save", std::string{}));
    if (!out) throw std::runtime_error("cannot open --save file");
    engine.save(out);
    std::printf("sketches saved to %s\n",
                flags.get("save", std::string{}).c_str());
  }
  if (flags.has("store")) {
    const std::string path = flags.get("store", std::string{});
    const SketchStore store = SketchStore::from_engine(engine);
    store.save_file(path);
    std::printf("binary store saved to %s (%zu payload bytes)\n",
                path.c_str(), store.payload_bytes());
  }
  std::printf("scheme:     %s\n", engine.guarantee().c_str());
  std::printf("rounds:     %llu\n",
              static_cast<unsigned long long>(engine.cost().rounds));
  std::printf("messages:   %llu\n",
              static_cast<unsigned long long>(engine.cost().messages));
  std::printf("words sent: %llu\n",
              static_cast<unsigned long long>(engine.cost().words));
  std::printf("mean sketch size: %.1f words/node\n", engine.mean_size_words());
  return 0;
}

/// A loaded sketch answers with whatever configuration it was built with;
/// silently ignoring contradicting flags would report estimates under the
/// wrong guarantee. Reject explicit flags that disagree with the file.
void check_loaded_config(const FlagSet& flags, const SketchEngine& engine,
                         const std::string& path) {
  const BuildConfig& loaded = engine.config();
  const auto fail = [&](const std::string& what, const std::string& have,
                        const std::string& want) {
    throw std::runtime_error("--load " + path + ": sketch was built with " +
                             what + " " + have + " but --" + what + " " +
                             want + " was requested; rebuild with `dsketch "
                             "build` or drop the flag");
  };
  if (flags.has("scheme")) {
    const BuildConfig requested = parse_build_config(flags);
    if (requested.scheme != loaded.scheme) {
      fail("scheme", scheme_name(loaded.scheme),
           scheme_name(requested.scheme));
    }
  }
  if (flags.has("k")) {
    const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{0}));
    if (k != loaded.k) {
      fail("k", std::to_string(loaded.k), std::to_string(k));
    }
  }
  // Pre-epsilon files never recorded the build epsilon; nothing to check
  // against then.
  if (flags.has("epsilon") && engine.epsilon_known()) {
    const double eps = flags.get("epsilon", 0.0);
    if (eps != loaded.epsilon) {
      fail("epsilon", std::to_string(loaded.epsilon), std::to_string(eps));
    }
  }
}

int cmd_query(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const SketchEngine engine = [&] {
    if (flags.has("load")) {
      const std::string path = flags.get("load", std::string{});
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open --load file");
      SketchEngine loaded = SketchEngine::load(in);
      check_loaded_config(flags, loaded, path);
      if (loaded.num_nodes() != g.num_nodes()) {
        throw std::runtime_error(
            "--load " + path + ": sketch covers " +
            std::to_string(loaded.num_nodes()) + " nodes but --graph has " +
            std::to_string(g.num_nodes()));
      }
      return loaded;
    }
    return SketchEngine(g, parse_build_config(flags));
  }();
  const std::string pairs = flags.require("pairs");
  const bool exact = flags.get_bool("exact");
  std::printf("%-8s %-8s %-12s%s\n", "u", "v", "estimate",
              exact ? " exact      stretch" : "");
  std::size_t pos = 0;
  while (pos < pairs.size()) {
    const auto comma = pairs.find(',', pos);
    const std::string pair =
        pairs.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? pairs.size() : comma + 1;
    const auto colon = pair.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("bad pair (want u:v): " + pair);
    }
    const auto u = static_cast<NodeId>(std::stoul(pair.substr(0, colon)));
    const auto v = static_cast<NodeId>(std::stoul(pair.substr(colon + 1)));
    const Dist est = engine.query(u, v);
    if (exact) {
      const Dist d = dijkstra(g, u)[v];
      std::printf("%-8u %-8u %-12llu %-10llu %.3f\n", u, v,
                  static_cast<unsigned long long>(est),
                  static_cast<unsigned long long>(d),
                  d == 0 ? 1.0
                         : static_cast<double>(est) / static_cast<double>(d));
    } else {
      std::printf("%-8u %-8u %-12llu\n", u, v,
                  static_cast<unsigned long long>(est));
    }
  }
  return 0;
}

int cmd_eval(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const BuildConfig cfg = parse_build_config(flags);
  const SketchEngine engine(g, cfg);
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const SampledGroundTruth gt(g, sources, 7);
  EvalOptions opts;
  opts.epsilon = flags.get("epsilon-far", 0.0);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId u, NodeId v) { return engine.query(u, v); }, opts);
  std::printf("pairs evaluated: %zu\n", report.all.count());
  std::printf("stretch: mean %.3f  p50 %.3f  p95 %.3f  max %.3f\n",
              report.all.mean(), report.all.p(50), report.all.p(95),
              report.all.max());
  if (opts.epsilon > 0) {
    std::printf("eps-far pairs: mean %.3f max %.3f | near pairs: mean %.3f "
                "max %.3f\n",
                report.far_only.mean(), report.far_only.max(),
                report.near_only.mean(), report.near_only.max());
  }
  std::printf("underestimates: %zu (must be 0)\n", report.underestimates);
  std::printf("build cost: %llu rounds, %llu messages; mean sketch %.1f "
              "words\n",
              static_cast<unsigned long long>(engine.cost().rounds),
              static_cast<unsigned long long>(engine.cost().messages),
              engine.mean_size_words());
  return 0;
}

int cmd_convert(const FlagSet& flags) {
  const std::string in_path = flags.require("in");
  const std::string out_path = flags.require("out");
  std::ifstream in(in_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open --in file: " + in_path);
  char magic[8] = {};
  in.read(magic, 8);
  in.clear();
  in.seekg(0);
  const bool input_is_binary = std::string(magic, 8) == "DSKSTOR1";
  if (input_is_binary) {
    const SketchStore store = SketchStore::read(in);
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open --out file: " + out_path);
    store.to_text(out);
    std::printf("converted binary store %s -> text %s\n", in_path.c_str(),
                out_path.c_str());
  } else {
    const SketchStore store = SketchStore::from_text(in);
    store.save_file(out_path);
    std::printf("converted text %s -> binary store %s (%zu payload bytes)\n",
                in_path.c_str(), out_path.c_str(), store.payload_bytes());
  }
  return 0;
}

int cmd_serve_bench(const FlagSet& flags) {
  const SketchStore store = [&] {
    if (flags.has("store")) {
      return SketchStore::load_file(flags.get("store", std::string{}));
    }
    // No store on disk: build in-process so one command covers the
    // whole build-once/serve-many pipeline.
    const Graph g = read_graph_file(flags.require("graph"));
    return SketchStore::from_engine(SketchEngine(g, parse_build_config(flags)));
  }();

  WorkloadConfig wl;
  wl.kind = parse_workload_kind(flags.get("workload", std::string("uniform")));
  wl.hot_pairs =
      static_cast<std::size_t>(flags.get("hot-pairs", std::int64_t{4096}));
  wl.zipf_s = flags.get("zipf-s", 1.2);
  wl.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{7}));

  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{200000}));
  const auto shards = flags.get("shards", std::int64_t{0});  // 0 = auto
  const auto cache = flags.get("cache", std::int64_t{0});
  const auto verify =
      static_cast<std::size_t>(flags.get("verify", std::int64_t{1000}));
  if (shards < 0) throw std::runtime_error("--shards must be >= 0");
  if (cache < 0) throw std::runtime_error("--cache must be >= 0");

  for (const std::int64_t threads :
       parse_int_list(flags.get("threads", std::string("0")))) {
    if (threads < 0) throw std::runtime_error("--threads must be >= 0");
    for (const std::int64_t batch :
         parse_int_list(flags.get("batch", std::string("1024")))) {
      if (batch <= 0) throw std::runtime_error("--batch must be positive");
      QueryServiceConfig cfg;
      cfg.shards = static_cast<std::size_t>(shards);
      cfg.threads = static_cast<std::size_t>(threads);
      cfg.cache_capacity = static_cast<std::size_t>(cache);
      QueryService service(store, cfg);
      WorkloadGenerator gen(store.num_nodes(), wl);

      std::vector<QueryService::Pair> pairs;
      std::vector<Dist> answers;
      std::size_t mismatches = 0;
      std::size_t done = 0;
      while (done < queries) {
        const std::size_t count =
            std::min(static_cast<std::size_t>(batch), queries - done);
        pairs = gen.batch(count);
        answers.assign(count, 0);
        service.query_batch(pairs, answers);
        // Spot-check the first batch against the store's single-threaded
        // answers; the service must be bit-identical.
        if (done == 0) {
          for (std::size_t i = 0; i < std::min(verify, count); ++i) {
            if (answers[i] != store.query(pairs[i].first, pairs[i].second)) {
              ++mismatches;
            }
          }
        }
        done += count;
      }

      const QueryServiceStats stats = service.stats();
      dsketch::bench::JsonLine line;
      line.add("bench", "serve")
          .add("scheme", scheme_name(store.scheme()))
          .add("n", static_cast<std::uint64_t>(store.num_nodes()))
          .add("k", store.k())
          .add("workload",
               wl.kind == WorkloadConfig::Kind::kUniform ? "uniform" : "zipf")
          .add("threads", static_cast<std::uint64_t>(service.num_threads()))
          .add("shards", static_cast<std::uint64_t>(service.num_shards()))
          .add("batch", static_cast<std::uint64_t>(batch))
          .add("cache", static_cast<std::uint64_t>(cache))
          .add("queries", stats.queries)
          .add("wall_seconds", stats.wall_seconds)
          .add("qps", stats.qps)
          .add("hit_rate", stats.hit_rate)
          .add("p50_shard_batch_us", stats.p50_shard_batch_us)
          .add("p99_shard_batch_us", stats.p99_shard_batch_us)
          .add("mismatches", static_cast<std::uint64_t>(mismatches))
          .emit();
      if (mismatches > 0) {
        throw std::runtime_error("service answers diverged from the store");
      }
    }
  }
  return 0;
}

/// Runs a manifest's experiment grid and regenerates the results report.
/// Resume is the default: cells whose artifacts already exist and
/// validate are skipped, so an interrupted grid picks up where it left
/// off; --force reruns everything.
int cmd_repro(const FlagSet& flags) {
  const exp::Manifest manifest = [&] {
    if (flags.has("manifest")) {
      return exp::load_manifest_file(flags.get("manifest", std::string{}));
    }
    if (flags.get_bool("quick")) {
      return exp::parse_manifest(exp::default_quick_manifest());
    }
    throw std::runtime_error("repro needs --manifest FILE or --quick");
  }();

  const std::vector<exp::Cell> cells = exp::expand_cells(manifest);
  if (flags.get_bool("list")) {
    std::printf("manifest %s: %zu cell(s)\n", manifest.name.c_str(),
                cells.size());
    for (const exp::Cell& cell : cells) {
      std::string params;
      for (const auto& [k, v] : cell.params) {
        params += " " + k + "=" + v;
      }
      std::printf("  %s%s\n", cell.id().c_str(), params.c_str());
    }
    return 0;
  }

  exp::RunOptions opts;
  opts.out_dir =
      flags.get("out-dir", std::string("exp_out/") + manifest.name);
  opts.corpus_dir = flags.get("corpus-dir", std::string{});
  opts.threads =
      static_cast<std::size_t>(flags.get("threads", std::int64_t{0}));
  opts.force = flags.get_bool("force");
  opts.progress = &std::cerr;

  const exp::RunSummary summary = exp::run_manifest(manifest, opts);
  std::printf("repro %s: %zu ran, %zu skipped (resume), %zu failed in "
              "%.1f s -> %s\n",
              manifest.name.c_str(), summary.ran, summary.skipped,
              summary.failed, summary.wall_seconds, opts.out_dir.c_str());
  for (const exp::CellResult& cell : summary.cells) {
    if (cell.status == exp::CellResult::Status::kFailed) {
      std::fprintf(stderr, "  failed: %s (%s)\n", cell.id.c_str(),
                   cell.error.c_str());
    }
  }

  if (!flags.get_bool("no-report")) {
    const std::string report_path =
        flags.get("report", std::string("docs/RESULTS.md"));
    exp::write_report(opts.out_dir, manifest.name, report_path);
    std::printf("report regenerated: %s\n", report_path.c_str());
  }
  return summary.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const FlagSet flags(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "info") return cmd_info(flags);
    if (cmd == "build") return cmd_build(flags);
    if (cmd == "query") return cmd_query(flags);
    if (cmd == "eval") return cmd_eval(flags);
    if (cmd == "convert") return cmd_convert(flags);
    if (cmd == "serve-bench") return cmd_serve_bench(flags);
    if (cmd == "repro") return cmd_repro(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
