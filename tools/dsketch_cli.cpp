// dsketch — command-line front end to the library.
//
//   dsketch gen   --topology er --n 1024 --p 0.01 --wmin 1 --wmax 16
//                 --seed 42 --out net.graph
//   dsketch info  --graph net.graph [--exact-diameters]
//   dsketch build --graph net.graph --scheme tz --k 3 [--echo] [--async 4]
//                 [--sim-threads 0]
//                 [--save text.sketch] [--store net.store]
//   dsketch query --graph net.graph --scheme slack --epsilon 0.1
//                 --pairs 0:17,3:999 [--exact] [--load text.sketch]
//   dsketch eval  --graph net.graph --scheme graceful --sources 16
//   dsketch convert    --in text.sketch --out net.store
//   dsketch serve-bench --store net.store --workload zipf --batch 1024
//                 --threads 1,2,4 --shards 8 --cache 4096
//                 [--metrics-out m.json] [--trace-out t.json]
//   dsketch metrics-dump --store net.store --format prom
//   dsketch dynamic-bench --n 512 --rounds 6 --updates 8
//                 --policies stale,count,adaptive,repair
//   dsketch list-schemes
//   dsketch faults --graph net.graph --drop 0.05 --crashes 2 --seed 7
//   dsketch faults --store net.store --out bad.store --flip 8 --recover
//   dsketch repro --manifest bench/manifests/quick.toml [--out-dir DIR]
//                 [--threads N] [--force] [--list] [--no-report]
//
// Every --scheme is resolved through the OracleRegistry: the 4 sketch
// families (tz | slack | cdg | graceful) and the 3 baselines
// (exact | landmark | vivaldi) share one polymorphic query API. Run
// `dsketch list-schemes` for the registered table and guarantees.
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "congest/accounting.hpp"
#include "core/oracle.hpp"
#include "experiments.hpp"
#include "core/oracle_registry.hpp"
#include "core/sketch_oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/round_log.hpp"
#include "obs/trace.hpp"
#include "exp/corpus_cache.hpp"
#include "exp/manifest.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "serve/mmap_store.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"
#include "congest/fault_plan.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/stretch_eval.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"
#include "util/rng.hpp"
#include "util/flags.hpp"
#include "util/json_lines.hpp"
#include "util/timer.hpp"

using namespace dsketch;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dsketch "
               "<gen|ingest|info|build|query|eval|convert|serve-bench|"
               "dynamic-bench|list-schemes|faults|repro>"
               " [--flags]\n"
               "  gen   --topology er|grid|ring|path|ba|ws|geometric|tree|"
               "isp|ring_chords --n N [--p P] [--m M] [--wmin W --wmax W] "
               "[--seed S] --out FILE\n"
               "  ingest --in FILE --out FILE [--format auto|snap|dimacs]   "
               "(stream an external edge list into the native graph format; "
               "manifests can also name one directly with topology=\"file\")\n"
               "  info  --graph FILE [--exact-diameters]\n"
               "  build --graph FILE --scheme NAME [--k K] "
               "[--epsilon E] [--echo|--known-s] [--async DMAX] "
               "[--sim-threads T] [--seed S] "
               "[--landmarks L] [--save FILE] [--store FILE] "
               "[--round-log FILE]\n"
               "  query --graph FILE --scheme NAME --pairs u:v,u:v [--exact] "
               "[--load FILE]\n"
               "  eval  --graph FILE --scheme NAME [--sources N] "
               "[--epsilon-far E]\n"
               "  list-schemes   (every registered oracle scheme with its "
               "guarantee and capabilities)\n"
               "  convert --in FILE --out FILE [--format v2|v3]   "
               "(text <-> binary store, direction auto-detected from the "
               "input magic; --format forces a binary store in that layout, "
               "including binary -> binary re-encoding)\n"
               "  serve-bench (--store FILE [--mmap [--verify-checksum]] | "
               "--graph FILE --scheme NAME) "
               "[--queries N] [--batch B,B,...] [--threads T,T,...] "
               "[--shards S] [--cache C] [--workload uniform|zipf] "
               "[--zipf-s S] [--hot-pairs H] [--mirror] [--ordered-keys] "
               "[--seed S] [--verify N] [--metrics-out FILE] "
               "[--trace-out FILE]\n"
               "  metrics-dump (--store FILE | --graph FILE --scheme NAME) "
               "[--queries N] [--batch B] [--format prom|json]   "
               "(runs a short workload, prints the metrics registry)\n"
               "  dynamic-bench (--graph FILE | --n N) [--k K] [--rounds R] "
               "[--updates U] [--policies stale,count,adaptive,repair] "
               "[--budget B] [--unrepaired-budget B] [--rate-threshold T] "
               "[--batch B] [--cache C] [--seed S]   "
               "(E14: live refresh under churn, JSON lines)\n"
               "  faults --graph FILE [--k K] [--drop R] [--duplicate R] "
               "[--reorder R] [--crashes N] [--link-faults N] [--seed S] "
               "[--no-tolerance] [--rto R] [--max-rounds R]   "
               "(replay a seeded FaultPlan against the TZ build)\n"
               "  faults --store FILE --out FILE (--truncate N | --flip N) "
               "[--seed S] [--recover]   "
               "(corrupt a binary store; --recover runs the quarantine "
               "loader on the result)\n"
               "  repro (--manifest FILE | --quick) [--out-dir DIR] "
               "[--corpus-dir DIR] [--threads N] [--force] [--list] "
               "[--no-report] [--report FILE]\n");
  return 2;
}

/// Resolves --scheme (default "tz") through the registry; the factory
/// reads its own scheme flags (--k, --epsilon, --landmarks, ...).
std::unique_ptr<DistanceOracle> build_oracle(const Graph& g,
                                             const FlagSet& flags) {
  const std::string scheme = flags.get("scheme", std::string("tz"));
  return OracleRegistry::instance().build(scheme, g, flags);
}

int cmd_gen(const FlagSet& flags) {
  const Graph g = exp::generate_graph(flags);
  const std::string out = flags.require("out");
  write_graph_file(out, g);
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(), g.num_nodes(),
              g.num_edges());
  return 0;
}

int cmd_info(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  std::printf("nodes:  %u\nedges:  %zu\n", g.num_nodes(), g.num_edges());
  std::printf("connected: %s\n", g.connected() ? "yes" : "no");
  double total_deg = 0;
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    total_deg += static_cast<double>(g.degree(u));
    max_deg = std::max(max_deg, g.degree(u));
  }
  std::printf("degree: mean %.2f, max %zu\n", total_deg / g.num_nodes(),
              max_deg);
  if (flags.get_bool("exact-diameters")) {
    std::printf("hop diameter D:           %u\n", hop_diameter(g));
    std::printf("shortest-path diameter S: %u\n", shortest_path_diameter(g));
  } else {
    std::printf("hop diameter D (sampled lower bound):           %u\n",
                hop_diameter_estimate(g, 8, 1));
    std::printf("shortest-path diameter S (sampled lower bound): %u\n",
                shortest_path_diameter_estimate(g, 8, 1));
  }
  return 0;
}

/// Prints a loud, unmissable warning when a CONGEST run was truncated by
/// the round budget: every cost figure below it is a lower bound, not the
/// real cost. Shared by build and eval.
void warn_round_limit(const SimStats& cost) {
  if (!cost.hit_round_limit) return;
  std::fprintf(stderr,
               "WARNING: CONGEST round limit hit in phase(s): %s\n"
               "WARNING: rounds/messages/words below are TRUNCATED lower "
               "bounds; rerun with a larger sim round budget\n",
               cost.limited_phases().c_str());
}

/// Shared tail of `dsketch build`: save/store/report for a built oracle.
int finish_build(const FlagSet& flags, const DistanceOracle& oracle) {
  if (flags.has("save")) {
    std::ofstream out(flags.get("save", std::string{}));
    if (!out) throw std::runtime_error("cannot open --save file");
    oracle.save(out);
    std::printf("oracle saved to %s\n",
                flags.get("save", std::string{}).c_str());
  }
  if (flags.has("store")) {
    const std::string path = flags.get("store", std::string{});
    const SketchStore store = SketchStore::from_oracle(oracle);
    store.save_file(path);
    std::printf("binary store saved to %s (%zu payload bytes)\n",
                path.c_str(), store.payload_bytes());
  }
  std::printf("scheme:     %s (%s)\n", oracle.scheme().c_str(),
              oracle.guarantee().c_str());
  if (const SimStats* cost = oracle.build_cost()) {
    warn_round_limit(*cost);
    std::printf("rounds:     %llu\n",
                static_cast<unsigned long long>(cost->rounds));
    std::printf("messages:   %llu\n",
                static_cast<unsigned long long>(cost->messages));
    std::printf("words sent: %llu\n",
                static_cast<unsigned long long>(cost->words));
    const std::vector<SimPhase> phases = cost->breakdown();
    if (phases.size() > 1) {
      std::printf("phases:\n");
      for (const SimPhase& p : phases) {
        std::printf("  %-20s rounds %-8llu messages %-10llu words %llu%s\n",
                    p.label.c_str(),
                    static_cast<unsigned long long>(p.rounds),
                    static_cast<unsigned long long>(p.messages),
                    static_cast<unsigned long long>(p.words),
                    p.hit_round_limit ? "  [ROUND LIMIT]" : "");
      }
    }
  }
  std::printf("mean sketch size: %.1f words/node\n",
              oracle.mean_size_words());
  return 0;
}

int cmd_build(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));

  // --round-log FILE: stream per-round CONGEST telemetry (JSON lines)
  // while the construction runs. Only the four sketch families execute a
  // simulator, so the flag builds through BuildConfig directly; baseline
  // schemes have no rounds to log.
  std::ofstream round_log_out;
  std::unique_ptr<obs::RoundLog> round_log;
  const std::string scheme_name_flag = flags.get("scheme", std::string("tz"));
  if (flags.has("round-log")) {
    const auto scheme_of = [](const std::string& name, Scheme& out) {
      if (name == "tz") out = Scheme::kThorupZwick;
      else if (name == "slack") out = Scheme::kSlack;
      else if (name == "cdg") out = Scheme::kCdg;
      else if (name == "graceful") out = Scheme::kGraceful;
      else return false;
      return true;
    };
    Scheme scheme;
    if (!scheme_of(scheme_name_flag, scheme)) {
      throw std::runtime_error("--round-log only applies to the sketch "
                               "schemes (tz|slack|cdg|graceful); scheme " +
                               scheme_name_flag + " runs no CONGEST rounds");
    }
    const std::string path = flags.get("round-log", std::string{});
    round_log_out.open(path);
    if (!round_log_out) {
      throw std::runtime_error("cannot open --round-log file: " + path);
    }
    round_log = std::make_unique<obs::RoundLog>(round_log_out);
    BuildConfig cfg = sketch_build_config(scheme, flags);
    cfg.sim.round_log = round_log.get();
    std::unique_ptr<DistanceOracle> oracle =
        std::make_unique<SketchOracle>(g, cfg);
    round_log->flush();
    std::printf("round log written to %s (%zu line(s))\n", path.c_str(),
                round_log->lines_emitted());
    return finish_build(flags, *oracle);
  }
  const std::unique_ptr<DistanceOracle> oracle = build_oracle(g, flags);
  return finish_build(flags, *oracle);
}

/// A loaded oracle answers with whatever configuration it was built with;
/// silently ignoring contradicting flags would report estimates under the
/// wrong guarantee. Reject explicit flags that disagree with the envelope.
void check_loaded_config(const FlagSet& flags, const OracleEnvelope& envelope,
                         const std::string& path) {
  const auto fail = [&](const std::string& what, const std::string& have,
                        const std::string& want) {
    throw std::runtime_error("--load " + path + ": oracle was built with " +
                             what + " " + have + " but --" + what + " " +
                             want + " was requested; rebuild with `dsketch "
                             "build` or drop the flag");
  };
  if (flags.has("scheme")) {
    const std::string requested = flags.get("scheme", std::string{});
    OracleRegistry::instance().at(requested);  // typo check with name list
    if (requested != envelope.scheme) {
      fail("scheme", envelope.scheme, requested);
    }
  }
  // The envelope's k slot records the scheme's size parameter under the
  // flag name the registry declares (--k, --landmarks, --dim); schemes
  // without one record 0 and there is nothing to check. Same for the
  // pre-epsilon header vintage below.
  const OracleScheme& scheme_entry =
      OracleRegistry::instance().at(envelope.scheme);
  const std::string& k_flag = scheme_entry.k_flag;
  if (!k_flag.empty() && flags.has(k_flag) && envelope.k != 0) {
    const auto k = static_cast<std::uint32_t>(
        flags.get(k_flag, std::int64_t{0}));
    if (k != envelope.k) {
      fail(k_flag, std::to_string(envelope.k), std::to_string(k));
    }
  }
  // Schemes without an epsilon parameter record a meaningless 0; a
  // harmless --epsilon must not be rejected against it.
  if (scheme_entry.uses_epsilon && flags.has("epsilon") &&
      envelope.epsilon_recorded) {
    const double eps = flags.get("epsilon", 0.0);
    if (eps != envelope.epsilon) {
      fail("epsilon", std::to_string(envelope.epsilon),
           std::to_string(eps));
    }
  }
}

int cmd_query(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const std::unique_ptr<DistanceOracle> oracle = [&] {
    if (flags.has("load")) {
      const std::string path = flags.get("load", std::string{});
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open --load file");
      LoadedOracle loaded = OracleRegistry::instance().load(in);
      check_loaded_config(flags, loaded.envelope, path);
      if (loaded.oracle->num_nodes() != g.num_nodes()) {
        throw std::runtime_error(
            "--load " + path + ": oracle covers " +
            std::to_string(loaded.oracle->num_nodes()) +
            " nodes but --graph has " + std::to_string(g.num_nodes()));
      }
      return std::move(loaded.oracle);
    }
    return build_oracle(g, flags);
  }();
  const std::string pairs = flags.require("pairs");
  const bool exact = flags.get_bool("exact");
  std::printf("%-8s %-8s %-12s%s\n", "u", "v", "estimate",
              exact ? " exact      stretch" : "");
  std::size_t pos = 0;
  while (pos < pairs.size()) {
    const auto comma = pairs.find(',', pos);
    const std::string pair =
        pairs.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? pairs.size() : comma + 1;
    const auto colon = pair.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("bad pair (want u:v): " + pair);
    }
    const auto u = static_cast<NodeId>(std::stoul(pair.substr(0, colon)));
    const auto v = static_cast<NodeId>(std::stoul(pair.substr(colon + 1)));
    // Validate here: not every oracle bounds-checks its own query path.
    if (u >= oracle->num_nodes() || v >= oracle->num_nodes()) {
      throw std::runtime_error("pair " + pair + " out of range (oracle "
                               "covers nodes 0.." +
                               std::to_string(oracle->num_nodes() - 1) + ")");
    }
    const Dist est = oracle->query(u, v);
    if (exact) {
      const Dist d = dijkstra(g, u)[v];
      std::printf("%-8u %-8u %-12llu %-10llu %.3f\n", u, v,
                  static_cast<unsigned long long>(est),
                  static_cast<unsigned long long>(d),
                  d == 0 ? 1.0
                         : static_cast<double>(est) / static_cast<double>(d));
    } else {
      std::printf("%-8u %-8u %-12llu\n", u, v,
                  static_cast<unsigned long long>(est));
    }
  }
  return 0;
}

int cmd_eval(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const std::unique_ptr<DistanceOracle> oracle = build_oracle(g, flags);
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const SampledGroundTruth gt(g, sources, 7);
  EvalOptions opts;
  opts.epsilon = flags.get("epsilon-far", 0.0);
  const auto report = evaluate_stretch(g, gt, *oracle, opts);
  std::printf("pairs evaluated: %zu\n", report.all.count());
  std::printf("stretch: mean %.3f  p50 %.3f  p95 %.3f  max %.3f\n",
              report.all.mean(), report.all.p(50), report.all.p(95),
              report.all.max());
  if (opts.epsilon > 0) {
    std::printf("eps-far pairs: mean %.3f max %.3f | near pairs: mean %.3f "
                "max %.3f\n",
                report.far_only.mean(), report.far_only.max(),
                report.near_only.mean(), report.near_only.max());
  }
  std::printf("underestimates: %zu (%s)\n", report.underestimates,
              oracle->capabilities().supports_paths ? "must be 0"
                                                    : "no guarantee");
  if (const SimStats* cost = oracle->build_cost()) {
    warn_round_limit(*cost);
    std::printf("build cost: %llu rounds, %llu messages; ",
                static_cast<unsigned long long>(cost->rounds),
                static_cast<unsigned long long>(cost->messages));
  }
  std::printf("mean sketch %.1f words\n", oracle->mean_size_words());
  return 0;
}

StoreFormat parse_store_format(const std::string& name) {
  if (name == "v2") return StoreFormat::kV2;
  if (name == "v3") return StoreFormat::kV3;
  throw std::runtime_error("unknown store format: " + name +
                           " (expected v2|v3)");
}

int cmd_convert(const FlagSet& flags) {
  const std::string in_path = flags.require("in");
  const std::string out_path = flags.require("out");
  std::ifstream in(in_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open --in file: " + in_path);
  char magic[8] = {};
  in.read(magic, 8);
  in.clear();
  in.seekg(0);
  const bool input_is_binary = std::string(magic, 7) == "DSKSTOR";
  // --format forces a binary output (v2 fixed-width or v3 delta+varint),
  // which also makes binary -> binary re-encoding — upgrading a v1/v2
  // store to the mmap-servable v3 layout, or downgrading — a one-liner.
  if (flags.has("format")) {
    const StoreFormat format =
        parse_store_format(flags.get("format", std::string("v3")));
    const SketchStore store = input_is_binary
                                  ? SketchStore::read(in)
                                  : SketchStore::from_text(in);
    store.save_file(out_path, format);
    std::printf("converted %s %s -> %s binary store %s (%zu bytes)\n",
                input_is_binary ? "binary" : "text", in_path.c_str(),
                format == StoreFormat::kV3 ? "v3" : "v2", out_path.c_str(),
                format == StoreFormat::kV3 ? store.encoded_bytes()
                                           : store.payload_bytes());
    return 0;
  }
  if (input_is_binary) {
    const SketchStore store = SketchStore::read(in);
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open --out file: " + out_path);
    store.to_text(out);
    std::printf("converted binary store %s -> text %s\n", in_path.c_str(),
                out_path.c_str());
  } else {
    const SketchStore store = SketchStore::from_text(in);
    store.save_file(out_path);
    std::printf("converted text %s -> binary store %s (%zu payload bytes)\n",
                in_path.c_str(), out_path.c_str(), store.payload_bytes());
  }
  return 0;
}

int cmd_ingest(const FlagSet& flags) {
  const std::string in_path = flags.require("in");
  const std::string out_path = flags.require("out");
  IngestStats stats;
  Timer timer;
  const Graph g = ingest_edge_list_file(
      in_path, parse_ingest_format(flags.get("format", std::string("auto"))),
      &stats);
  const double seconds = timer.seconds();
  write_graph_file(out_path, g);
  std::printf(
      "ingested %s: %u nodes, %zu edges (%zu edge lines, %zu self-loops "
      "dropped) in %.2fs -> %s\n",
      in_path.c_str(), g.num_nodes(), g.num_edges(), stats.edge_lines,
      stats.self_loops, seconds, out_path.c_str());
  return 0;
}

int cmd_serve_bench(const FlagSet& flags) {
  const std::unique_ptr<DistanceOracle> oracle = [&]() -> std::unique_ptr<DistanceOracle> {
    if (flags.has("store")) {
      const std::string store_path = flags.get("store", std::string{});
      if (flags.get_bool("mmap")) {
        // Zero-copy serving: queries decode straight off the mapped v3
        // bytes; --verify-checksum pays one full payload pass up front.
        return MmapSketchStore::open(store_path,
                                     flags.get_bool("verify-checksum"));
      }
      return SketchStore::load_oracle(store_path);
    }
    // No store on disk: build in-process so one command covers the
    // whole build-once/serve-many pipeline — any registered scheme
    // serves, baselines included. Sketch-backed oracles are packed into
    // the store first so this path benches the serving representation
    // (what a deployment ships), same as --store.
    const Graph g = read_graph_file(flags.require("graph"));
    std::unique_ptr<DistanceOracle> built = build_oracle(g, flags);
    if (SketchStore::packable(*built)) {
      built = std::make_unique<SketchStore>(SketchStore::from_oracle(*built));
    }
    return built;
  }();

  WorkloadConfig wl;
  wl.kind = parse_workload_kind(flags.get("workload", std::string("uniform")));
  wl.hot_pairs =
      static_cast<std::size_t>(flags.get("hot-pairs", std::int64_t{4096}));
  wl.zipf_s = flags.get("zipf-s", 1.2);
  wl.mirror = flags.get_bool("mirror");
  wl.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{7}));

  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{200000}));
  const auto shards = flags.get("shards", std::int64_t{0});  // 0 = auto
  const auto cache = flags.get("cache", std::int64_t{0});
  const auto verify =
      static_cast<std::size_t>(flags.get("verify", std::int64_t{1000}));
  if (shards < 0) throw std::runtime_error("--shards must be >= 0");
  if (cache < 0) throw std::runtime_error("--cache must be >= 0");

  // --metrics-out: collect a registry snapshot across the whole sweep.
  // Batch latencies are recorded into both the log-bucketed histogram
  // and an exact sample set, so the output file carries its own
  // accuracy cross-check (histogram percentiles vs exact ones).
  const std::string metrics_out = flags.get("metrics-out", std::string{});
  const std::string trace_out = flags.get("trace-out", std::string{});
  obs::MetricsRegistry registry;
  obs::LatencyHistogram* batch_hist =
      metrics_out.empty() ? nullptr : &registry.histogram("serve_batch_us");
  SampleSet exact_batch_us;
  if (!trace_out.empty()) obs::TraceSession::start(1 << 19);

  for (const std::int64_t threads :
       parse_int_list(flags.get("threads", std::string("0")))) {
    if (threads < 0) throw std::runtime_error("--threads must be >= 0");
    for (const std::int64_t batch :
         parse_int_list(flags.get("batch", std::string("1024")))) {
      if (batch <= 0) throw std::runtime_error("--batch must be positive");
      QueryServiceConfig cfg;
      cfg.shards = static_cast<std::size_t>(shards);
      cfg.threads = static_cast<std::size_t>(threads);
      cfg.cache_capacity = static_cast<std::size_t>(cache);
      // Debug A/B: measure the hit-rate cost of ordered cache keys on a
      // symmetric oracle (the pre-canonical-key behavior).
      cfg.force_ordered_keys = flags.get_bool("ordered-keys");
      QueryService service(*oracle, cfg);
      WorkloadGenerator gen(oracle->num_nodes(), wl);

      std::vector<QueryService::Pair> pairs;
      std::vector<Dist> answers;
      std::size_t mismatches = 0;
      std::size_t done = 0;
      while (done < queries) {
        const std::size_t count =
            std::min(static_cast<std::size_t>(batch), queries - done);
        pairs = gen.batch(count);
        answers.assign(count, 0);
        if (batch_hist != nullptr) {
          Timer batch_timer;
          service.query_batch(pairs, answers);
          const double us = batch_timer.seconds() * 1e6;
          batch_hist->record(us);
          exact_batch_us.add(us);
        } else {
          service.query_batch(pairs, answers);
        }
        // Spot-check the first batch against the store's single-threaded
        // answers; the service must be bit-identical.
        if (done == 0) {
          for (std::size_t i = 0; i < std::min(verify, count); ++i) {
            if (answers[i] !=
                oracle->query(pairs[i].first, pairs[i].second)) {
              ++mismatches;
            }
          }
        }
        done += count;
      }

      const QueryServiceStats stats = service.stats();
      if (!metrics_out.empty()) service.export_metrics(registry);
      dsketch::bench::JsonLine line;
      line.add("bench", "serve")
          .add("scheme", oracle->scheme())
          .add("n", static_cast<std::uint64_t>(oracle->num_nodes()))
          .add("guarantee", oracle->guarantee())
          .add("workload",
               wl.kind == WorkloadConfig::Kind::kUniform ? "uniform" : "zipf")
          .add("threads", static_cast<std::uint64_t>(service.num_threads()))
          .add("shards", static_cast<std::uint64_t>(service.num_shards()))
          .add("batch", static_cast<std::uint64_t>(batch))
          .add("cache", static_cast<std::uint64_t>(cache))
          .add("queries", stats.queries)
          .add("wall_seconds", stats.wall_seconds)
          .add("qps", stats.qps)
          .add("hit_rate", stats.hit_rate)
          .add("p50_shard_batch_us", stats.p50_shard_batch_us)
          .add("p99_shard_batch_us", stats.p99_shard_batch_us)
          .add("mismatches", static_cast<std::uint64_t>(mismatches))
          .emit();
      if (mismatches > 0) {
        throw std::runtime_error("service answers diverged from the oracle");
      }
    }
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open --metrics-out file: " +
                               metrics_out);
    }
    registry.write_json(out);
    // Exact-sample twin of the "serve_batch_us" histogram line above it:
    // readers can diff the two to bound the log-bucket error in situ.
    const Summary exact = exact_batch_us.summary();
    dsketch::bench::JsonLine line;
    line.add("metric", "serve_batch_us_exact")
        .add("kind", "summary")
        .add("count", static_cast<std::uint64_t>(exact.count))
        .add("mean", exact.mean)
        .add("min", exact.min)
        .add("p50", exact.p50)
        .add("p95", exact.p95)
        .add("p99", exact.p99)
        .add("max", exact.max)
        .emit(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const std::shared_ptr<obs::TraceSession> session =
        obs::TraceSession::stop();
    if (session != nullptr) {
      std::ofstream out(trace_out);
      if (!out) {
        throw std::runtime_error("cannot open --trace-out file: " +
                                 trace_out);
      }
      session->write_chrome_trace(out);
      std::fprintf(stderr,
                   "chrome trace written to %s (%llu event(s), %llu "
                   "dropped) — load in chrome://tracing or ui.perfetto.dev\n",
                   trace_out.c_str(),
                   static_cast<unsigned long long>(session->event_count()),
                   static_cast<unsigned long long>(session->dropped()));
    }
  }
  return 0;
}

/// Runs a short workload through a QueryService and prints the metrics
/// registry — the quickest way to see what the serving metrics look like
/// (and the format a scrape endpoint would expose).
int cmd_metrics_dump(const FlagSet& flags) {
  const std::unique_ptr<DistanceOracle> oracle = [&] {
    if (flags.has("store")) {
      return SketchStore::load_oracle(flags.get("store", std::string{}));
    }
    const Graph g = read_graph_file(flags.require("graph"));
    std::unique_ptr<DistanceOracle> built = build_oracle(g, flags);
    if (SketchStore::packable(*built)) {
      built = std::make_unique<SketchStore>(SketchStore::from_oracle(*built));
    }
    return built;
  }();
  const std::string format = flags.get("format", std::string("prom"));
  if (format != "prom" && format != "json") {
    throw std::runtime_error("--format must be prom or json");
  }
  const auto queries =
      static_cast<std::size_t>(flags.get("queries", std::int64_t{20000}));
  const auto batch =
      static_cast<std::size_t>(flags.get("batch", std::int64_t{1024}));
  if (batch == 0) throw std::runtime_error("--batch must be positive");

  QueryServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 4096;
  QueryService service(*oracle, cfg);
  WorkloadConfig wl;
  wl.kind = WorkloadConfig::Kind::kZipf;
  wl.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{7}));
  WorkloadGenerator gen(oracle->num_nodes(), wl);
  std::vector<Dist> answers;
  for (std::size_t done = 0; done < queries; done += batch) {
    const std::vector<QueryService::Pair> pairs =
        gen.batch(std::min(batch, queries - done));
    answers.assign(pairs.size(), 0);
    service.query_batch(pairs, answers);
  }

  obs::MetricsRegistry registry;
  service.export_metrics(registry);
  if (format == "prom") {
    registry.write_prometheus(std::cout);
  } else {
    registry.write_json(std::cout);
  }
  return 0;
}

/// Prints every registered oracle scheme with its capabilities — sourced
/// from the registry, so a newly registered scheme shows up with no CLI
/// change.
int cmd_list_schemes() {
  std::printf("%-10s %-38s %-28s %s\n", "scheme", "guarantee",
              "capabilities", "summary");
  for (const OracleScheme* s : OracleRegistry::instance().schemes()) {
    std::string caps;
    const auto mark = [&caps](bool on, const char* name) {
      if (!on) return;
      if (!caps.empty()) caps += ",";
      caps += name;
    };
    mark(s->caps.exact, "exact");
    mark(s->caps.slack_only, "slack");
    mark(s->caps.supports_paths, "paths");
    mark(s->caps.symmetric, "sym");
    mark(s->caps.supports_save, "save");
    mark(s->caps.build_cost_available, "cost");
    std::printf("%-10s %-38s %-28s %s\n", s->name.c_str(),
                s->guarantee.c_str(), caps.c_str(), s->summary.c_str());
  }
  return 0;
}

/// Fault tooling, two modes sharing one subcommand:
///   dsketch faults --graph FILE [--k K] [--drop R] [--duplicate R]
///       [--reorder R] [--crashes N] [--link-faults N] [--seed S]
///       [--no-tolerance] [--rto R] [--sim-threads T] [--max-rounds R]
///     Replays the seeded FaultPlan against the fault-tolerant in-network
///     TZ build and prints the run as JSON lines (schedule, stats, label
///     verification against the centralized construction). The same
///     --seed always replays the same run — this is the debugging entry
///     point for any fault failure seen in E16 or the fuzz tests.
///   dsketch faults --store FILE --out FILE (--truncate N | --flip N)
///       [--seed S] [--recover]
///     Writes a deliberately corrupted copy of a binary sketch store
///     (truncate the tail, or flip N seeded random payload bytes);
///     --recover then runs the quarantine loader on the damaged copy and
///     reports what survived.
int cmd_faults(const FlagSet& flags) {
  if (flags.has("store")) {
    const std::string in_path = flags.get("store", std::string{});
    const std::string out_path = flags.require("out");
    std::ifstream in(in_path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open --store file: " + in_path);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    const auto seed =
        static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
    const auto truncate_bytes =
        static_cast<std::size_t>(flags.get("truncate", std::int64_t{0}));
    const auto flips =
        static_cast<std::size_t>(flags.get("flip", std::int64_t{0}));
    if (truncate_bytes == 0 && flips == 0) {
      throw std::runtime_error("--store mode needs --truncate N or --flip N");
    }
    if (truncate_bytes > 0) {
      bytes.resize(bytes.size() > truncate_bytes
                       ? bytes.size() - truncate_bytes
                       : 0);
    }
    Rng rng(seed);
    for (std::size_t i = 0; i < flips && !bytes.empty(); ++i) {
      // Flip payload bytes (past the 64-byte header) so the damage lands
      // in records, not the magic; header damage is always fatal anyway.
      const std::size_t lo = bytes.size() > 64 ? 64 : 0;
      const std::size_t at = lo + rng.below(bytes.size() - lo);
      bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.below(8)));
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open --out file: " + out_path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    std::printf("corrupted %s -> %s (%zu bytes, truncated %zu, flipped %zu)\n",
                in_path.c_str(), out_path.c_str(), bytes.size(),
                truncate_bytes, flips);
    if (flags.get_bool("recover")) {
      try {
        const SketchStore::Recovery rec = SketchStore::recover_file(out_path);
        std::printf("recovered: scheme=%s nodes=%u quarantined=%zu "
                    "checksum_ok=%d\n",
                    rec.store.scheme().c_str(), rec.store.num_nodes(),
                    rec.quarantined.size(), rec.checksum_ok ? 1 : 0);
        for (const NodeId u : rec.quarantined) {
          std::printf("  quarantined node %u\n", u);
        }
      } catch (const StoreCorruptionError& e) {
        std::printf("unrecoverable: %s\n", e.what());
        return 1;
      }
    }
    return 0;
  }

  const Graph g = read_graph_file(flags.require("graph"));
  const auto k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{2}));
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{7}));
  FaultConfig fc;
  fc.drop_rate = flags.get("drop", 0.05);
  fc.duplicate_rate = flags.get("duplicate", 0.02);
  fc.reorder_rate = flags.get("reorder", 0.05);
  fc.node_crashes =
      static_cast<std::uint32_t>(flags.get("crashes", std::int64_t{2}));
  fc.crash_horizon = static_cast<std::uint64_t>(
      flags.get("crash-horizon", std::int64_t{64}));
  fc.crash_downtime = static_cast<std::uint64_t>(
      flags.get("crash-downtime", std::int64_t{12}));
  fc.link_faults =
      static_cast<std::uint32_t>(flags.get("link-faults", std::int64_t{0}));
  fc.seed = seed;
  const FaultPlan plan(g, fc);
  bench::JsonLine schedule;
  schedule.add("table", "schedule")
      .add("seed", fc.seed)
      .add("drop_rate", fc.drop_rate)
      .add("duplicate_rate", fc.duplicate_rate)
      .add("reorder_rate", fc.reorder_rate)
      .add("crashes", fc.node_crashes)
      .add("link_faults", fc.link_faults);
  schedule.emit(std::cout);
  for (const CrashEvent& c : plan.crashes()) {
    bench::JsonLine line;
    line.add("table", "crash")
        .add("node", static_cast<std::uint64_t>(c.node))
        .add("at", c.at)
        .add("restart", c.restart)
        .emit(std::cout);
  }

  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, seed + 3);
  for (std::uint64_t b = 1; !h.top_level_nonempty(); ++b) {
    h = Hierarchy::sample(g.num_nodes(), k, seed + 3 + b);
  }
  SimConfig cfg;
  cfg.threads =
      static_cast<unsigned>(flags.get("sim-threads", std::int64_t{0}));
  cfg.faults = &plan;
  if (flags.has("max-rounds")) {
    cfg.max_rounds = static_cast<std::uint64_t>(
        flags.get("max-rounds", std::int64_t{0}));
  }
  TzFaultTolerance ft;
  ft.enabled = !flags.get_bool("no-tolerance");
  ft.rto = static_cast<std::uint32_t>(flags.get("rto", std::int64_t{8}));
  Timer timer;
  const TzDistributedResult r = build_tz_distributed(
      g, h, TerminationMode::kEcho, cfg, false, 0, ft);
  const double seconds = timer.seconds();

  std::uint64_t label_mismatches = 0;
  bool verified = false;
  if (r.completed && g.num_nodes() <= 4096) {
    const LabelArena central = build_tz_centralized(g, h);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!(r.labels.view(u) == central.view(u))) ++label_mismatches;
    }
    verified = true;
  }
  SimStats combined = r.tree_stats;
  combined += r.stats;
  bench::JsonLine result;
  result.add("table", "run")
      .add("completed", r.completed)
      .add("rounds", r.total_rounds())
      .add("messages", r.total_messages())
      .add("dropped", combined.dropped)
      .add("duplicated", combined.duplicated)
      .add("retransmits", r.retransmits)
      .add("duplicate_discards", r.duplicate_discards)
      .add("tolerance", ft.enabled)
      .add("verified", verified)
      .add("label_mismatches", label_mismatches)
      .add("seconds", seconds);
  result.emit(std::cout);
  return r.completed && label_mismatches == 0 ? 0 : 1;
}

/// Runs a manifest's experiment grid and regenerates the results report.
/// Resume is the default: cells whose artifacts already exist and
/// validate are skipped, so an interrupted grid picks up where it left
/// off; --force reruns everything.
int cmd_repro(const FlagSet& flags) {
  const exp::Manifest manifest = [&] {
    if (flags.has("manifest")) {
      return exp::load_manifest_file(flags.get("manifest", std::string{}));
    }
    if (flags.get_bool("quick")) {
      return exp::parse_manifest(exp::default_quick_manifest());
    }
    throw std::runtime_error("repro needs --manifest FILE or --quick");
  }();

  const std::vector<exp::Cell> cells = exp::expand_cells(manifest);
  if (flags.get_bool("list")) {
    std::printf("manifest %s: %zu cell(s)\n", manifest.name.c_str(),
                cells.size());
    for (const exp::Cell& cell : cells) {
      std::string params;
      for (const auto& [k, v] : cell.params) {
        params += " " + k + "=" + v;
      }
      std::printf("  %s%s\n", cell.id().c_str(), params.c_str());
    }
    return 0;
  }

  exp::RunOptions opts;
  opts.out_dir =
      flags.get("out-dir", std::string("exp_out/") + manifest.name);
  opts.corpus_dir = flags.get("corpus-dir", std::string{});
  opts.threads =
      static_cast<std::size_t>(flags.get("threads", std::int64_t{0}));
  opts.force = flags.get_bool("force");
  opts.progress = &std::cerr;

  const exp::RunSummary summary = exp::run_manifest(manifest, opts);
  std::printf("repro %s: %zu ran, %zu skipped (resume), %zu failed in "
              "%.1f s -> %s\n",
              manifest.name.c_str(), summary.ran, summary.skipped,
              summary.failed, summary.wall_seconds, opts.out_dir.c_str());
  for (const exp::CellResult& cell : summary.cells) {
    if (cell.status == exp::CellResult::Status::kFailed) {
      std::fprintf(stderr, "  failed: %s (%s)\n", cell.id.c_str(),
                   cell.error.c_str());
    }
  }

  if (!flags.get_bool("no-report")) {
    const std::string report_path =
        flags.get("report", std::string("docs/RESULTS.md"));
    exp::write_report(opts.out_dir, manifest.name, report_path);
    std::printf("report regenerated: %s\n", report_path.c_str());
  }
  return summary.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const FlagSet flags(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "ingest") return cmd_ingest(flags);
    if (cmd == "info") return cmd_info(flags);
    if (cmd == "build") return cmd_build(flags);
    if (cmd == "query") return cmd_query(flags);
    if (cmd == "eval") return cmd_eval(flags);
    if (cmd == "convert") return cmd_convert(flags);
    if (cmd == "serve-bench") return cmd_serve_bench(flags);
    if (cmd == "metrics-dump") return cmd_metrics_dump(flags);
    if (cmd == "dynamic-bench") {
      return dsketch::bench::run_e14(flags, std::cout);
    }
    if (cmd == "list-schemes" || cmd == "--list-schemes") {
      return cmd_list_schemes();
    }
    if (cmd == "faults") return cmd_faults(flags);
    if (cmd == "repro") return cmd_repro(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
