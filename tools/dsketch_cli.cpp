// dsketch — command-line front end to the library.
//
//   dsketch gen   --topology er --n 1024 --p 0.01 --wmin 1 --wmax 16
//                 --seed 42 --out net.graph
//   dsketch info  --graph net.graph [--exact-diameters]
//   dsketch build --graph net.graph --scheme tz --k 3 [--echo] [--async 4]
//   dsketch query --graph net.graph --scheme slack --epsilon 0.1
//                 --pairs 0:17,3:999 [--exact]
//   dsketch eval  --graph net.graph --scheme graceful --sources 16
//
// Schemes: tz | slack | cdg | graceful. See README for the guarantees.
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/exact_oracle.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/stretch_eval.hpp"
#include "util/flags.hpp"

using namespace dsketch;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dsketch <gen|info|build|query|eval> [--flags]\n"
               "  gen   --topology er|grid|ring|path|ba|ws|geometric|tree|"
               "isp|ring_chords --n N [--p P] [--m M] [--wmin W --wmax W] "
               "[--seed S] --out FILE\n"
               "  info  --graph FILE [--exact-diameters]\n"
               "  build --graph FILE --scheme tz|slack|cdg|graceful [--k K] "
               "[--epsilon E] [--echo|--known-s] [--async DMAX] [--seed S] "
               "[--save FILE]\n"
               "  query --graph FILE --scheme ... --pairs u:v,u:v [--exact]\n"
               "  eval  --graph FILE --scheme ... [--sources N] "
               "[--epsilon-far E]\n");
  return 2;
}

Graph generate(const FlagSet& flags) {
  const std::string topo = flags.get("topology", std::string("er"));
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{1024}));
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
  WeightSpec w{static_cast<Weight>(flags.get("wmin", std::int64_t{1})),
               static_cast<Weight>(flags.get("wmax", std::int64_t{1}))};
  if (topo == "er") {
    return erdos_renyi(n, flags.get("p", 8.0 / n), w, seed);
  }
  if (topo == "grid") {
    const auto rows = static_cast<NodeId>(
        flags.get("rows", static_cast<std::int64_t>(std::max<NodeId>(
                              2, static_cast<NodeId>(std::sqrt(n))))));
    return grid2d(rows, (n + rows - 1) / rows, w, seed);
  }
  if (topo == "ring") return ring(n, w, seed);
  if (topo == "path") return path(n, w, seed);
  if (topo == "ba") {
    return barabasi_albert(
        n, static_cast<NodeId>(flags.get("m", std::int64_t{2})), w, seed);
  }
  if (topo == "ws") {
    return watts_strogatz(n,
                          static_cast<NodeId>(flags.get("m", std::int64_t{3})),
                          flags.get("beta", 0.1), w, seed);
  }
  if (topo == "geometric") {
    return random_geometric(n, flags.get("radius", 0.08), seed, true);
  }
  if (topo == "tree") return random_tree(n, w, seed);
  if (topo == "isp") {
    return isp_two_level(
        n, static_cast<NodeId>(flags.get("pops", std::int64_t{16})), {1, 4},
        w, seed);
  }
  if (topo == "ring_chords") {
    return ring_with_chords(
        n, static_cast<std::size_t>(flags.get("chords", std::int64_t{n})),
        static_cast<Weight>(flags.get("ring-weight", std::int64_t{1})),
        static_cast<Weight>(flags.get("chord-weight", std::int64_t{1000})),
        seed);
  }
  throw std::runtime_error("unknown topology: " + topo);
}

BuildConfig parse_build_config(const FlagSet& flags) {
  BuildConfig cfg;
  const std::string scheme = flags.get("scheme", std::string("tz"));
  if (scheme == "tz") {
    cfg.scheme = Scheme::kThorupZwick;
  } else if (scheme == "slack") {
    cfg.scheme = Scheme::kSlack;
  } else if (scheme == "cdg") {
    cfg.scheme = Scheme::kCdg;
  } else if (scheme == "graceful") {
    cfg.scheme = Scheme::kGraceful;
  } else {
    throw std::runtime_error("unknown scheme: " + scheme);
  }
  cfg.k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  cfg.epsilon = flags.get("epsilon", 0.1);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
  if (flags.get_bool("echo")) cfg.termination = TerminationMode::kEcho;
  if (flags.get_bool("known-s")) cfg.termination = TerminationMode::kKnownS;
  cfg.sim.async_max_delay =
      static_cast<std::uint32_t>(flags.get("async", std::int64_t{1}));
  return cfg;
}

int cmd_gen(const FlagSet& flags) {
  const Graph g = generate(flags);
  const std::string out = flags.require("out");
  write_graph_file(out, g);
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(), g.num_nodes(),
              g.num_edges());
  return 0;
}

int cmd_info(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  std::printf("nodes:  %u\nedges:  %zu\n", g.num_nodes(), g.num_edges());
  std::printf("connected: %s\n", g.connected() ? "yes" : "no");
  double total_deg = 0;
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    total_deg += static_cast<double>(g.degree(u));
    max_deg = std::max(max_deg, g.degree(u));
  }
  std::printf("degree: mean %.2f, max %zu\n", total_deg / g.num_nodes(),
              max_deg);
  if (flags.get_bool("exact-diameters")) {
    std::printf("hop diameter D:           %u\n", hop_diameter(g));
    std::printf("shortest-path diameter S: %u\n", shortest_path_diameter(g));
  } else {
    std::printf("hop diameter D (sampled lower bound):           %u\n",
                hop_diameter_estimate(g, 8, 1));
    std::printf("shortest-path diameter S (sampled lower bound): %u\n",
                shortest_path_diameter_estimate(g, 8, 1));
  }
  return 0;
}

int cmd_build(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const BuildConfig cfg = parse_build_config(flags);
  const SketchEngine engine(g, cfg);
  if (flags.has("save")) {
    std::ofstream out(flags.get("save", std::string{}));
    if (!out) throw std::runtime_error("cannot open --save file");
    engine.save(out);
    std::printf("sketches saved to %s\n",
                flags.get("save", std::string{}).c_str());
  }
  std::printf("scheme:     %s\n", engine.guarantee().c_str());
  std::printf("rounds:     %llu\n",
              static_cast<unsigned long long>(engine.cost().rounds));
  std::printf("messages:   %llu\n",
              static_cast<unsigned long long>(engine.cost().messages));
  std::printf("words sent: %llu\n",
              static_cast<unsigned long long>(engine.cost().words));
  std::printf("mean sketch size: %.1f words/node\n", engine.mean_size_words());
  return 0;
}

int cmd_query(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const SketchEngine engine = [&] {
    if (flags.has("load")) {
      std::ifstream in(flags.get("load", std::string{}));
      if (!in) throw std::runtime_error("cannot open --load file");
      return SketchEngine::load(in);
    }
    return SketchEngine(g, parse_build_config(flags));
  }();
  const std::string pairs = flags.require("pairs");
  const bool exact = flags.get_bool("exact");
  std::printf("%-8s %-8s %-12s%s\n", "u", "v", "estimate",
              exact ? " exact      stretch" : "");
  std::size_t pos = 0;
  while (pos < pairs.size()) {
    const auto comma = pairs.find(',', pos);
    const std::string pair =
        pairs.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? pairs.size() : comma + 1;
    const auto colon = pair.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("bad pair (want u:v): " + pair);
    }
    const auto u = static_cast<NodeId>(std::stoul(pair.substr(0, colon)));
    const auto v = static_cast<NodeId>(std::stoul(pair.substr(colon + 1)));
    const Dist est = engine.query(u, v);
    if (exact) {
      const Dist d = dijkstra(g, u)[v];
      std::printf("%-8u %-8u %-12llu %-10llu %.3f\n", u, v,
                  static_cast<unsigned long long>(est),
                  static_cast<unsigned long long>(d),
                  d == 0 ? 1.0
                         : static_cast<double>(est) / static_cast<double>(d));
    } else {
      std::printf("%-8u %-8u %-12llu\n", u, v,
                  static_cast<unsigned long long>(est));
    }
  }
  return 0;
}

int cmd_eval(const FlagSet& flags) {
  const Graph g = read_graph_file(flags.require("graph"));
  const BuildConfig cfg = parse_build_config(flags);
  const SketchEngine engine(g, cfg);
  const auto sources =
      static_cast<std::size_t>(flags.get("sources", std::int64_t{16}));
  const SampledGroundTruth gt(g, sources, 7);
  EvalOptions opts;
  opts.epsilon = flags.get("epsilon-far", 0.0);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId u, NodeId v) { return engine.query(u, v); }, opts);
  std::printf("pairs evaluated: %zu\n", report.all.count());
  std::printf("stretch: mean %.3f  p50 %.3f  p95 %.3f  max %.3f\n",
              report.all.mean(), report.all.p(50), report.all.p(95),
              report.all.max());
  if (opts.epsilon > 0) {
    std::printf("eps-far pairs: mean %.3f max %.3f | near pairs: mean %.3f "
                "max %.3f\n",
                report.far_only.mean(), report.far_only.max(),
                report.near_only.mean(), report.near_only.max());
  }
  std::printf("underestimates: %zu (must be 0)\n", report.underestimates);
  std::printf("build cost: %llu rounds, %llu messages; mean sketch %.1f "
              "words\n",
              static_cast<unsigned long long>(engine.cost().rounds),
              static_cast<unsigned long long>(engine.cost().messages),
              engine.mean_size_words());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const FlagSet flags(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "info") return cmd_info(flags);
    if (cmd == "build") return cmd_build(flags);
    if (cmd == "query") return cmd_query(flags);
    if (cmd == "eval") return cmd_eval(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
