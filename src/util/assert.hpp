// Lightweight always-on assertion macro for invariant checks.
//
// Unlike <cassert>, DS_CHECK stays active in release builds: the simulator and
// the sketch constructions rely on model invariants (edge capacity, bunch
// monotonicity) whose violation must never pass silently in benchmarks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsketch {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "DS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dsketch

#define DS_CHECK(expr)                                     \
  do {                                                     \
    if (!(expr)) ::dsketch::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#define DS_CHECK_MSG(expr, msg)                                 \
  do {                                                          \
    if (!(expr)) ::dsketch::check_failed(msg, __FILE__, __LINE__); \
  } while (0)
