// The library-wide 64-bit packing of a node-id pair.
//
// One encoding, two identities: the ordered key distinguishes (u, v)
// from (v, u) — the cache identity of orientation-dependent oracles —
// and the canonical key maps both orientations to one value — shard
// routing, symmetric-oracle caching, edge-set membership. Every
// consumer (query service, workload universes, update streams, graph
// builders) shares these two helpers so the packing can never diverge
// between a writer and a reader of the same key space.
#pragma once

#include <cstdint>
#include <utility>

namespace dsketch {

/// Ordered pair key: (u, v) != (v, u).
inline std::uint64_t ordered_pair_key(std::uint32_t u, std::uint32_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Canonical pair key: both orientations map to (min, max).
inline std::uint64_t canonical_pair_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return ordered_pair_key(u, v);
}

}  // namespace dsketch
