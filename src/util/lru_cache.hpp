// Fixed-capacity LRU map for hot-entry caching on the serving path.
//
// Single-threaded by design: the query service gives each shard its own
// instance, so no locking is needed. Doubly-linked recency list threaded
// through a vector of slots (no per-entry allocation after warmup), with
// an unordered_map index from key to slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dsketch {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// capacity == 0 disables the cache: get() always misses, put() drops.
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {
    slots_.reserve(capacity);
    index_.reserve(capacity);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return slots_.size(); }

  /// Pointer to the cached value (valid until the next put), or nullptr.
  /// A hit moves the entry to the front of the recency list.
  const V* get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    touch(it->second);
    return &slots_[it->second].value;
  }

  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      slots_[it->second].value = std::move(value);
      touch(it->second);
      return;
    }
    if (slots_.size() < capacity_) {
      const std::size_t slot = slots_.size();
      slots_.push_back(Slot{key, std::move(value), kNil, kNil});
      index_.emplace(key, slot);
      link_front(slot);
      return;
    }
    // Evict the tail slot in place.
    const std::size_t victim = tail_;
    unlink(victim);
    index_.erase(slots_[victim].key);
    slots_[victim].key = key;
    slots_[victim].value = std::move(value);
    index_.emplace(key, victim);
    link_front(victim);
  }

  void clear() {
    slots_.clear();
    index_.clear();
    head_ = tail_ = kNil;
  }

 private:
  static constexpr std::size_t kNil = static_cast<std::size_t>(-1);

  struct Slot {
    K key;
    V value;
    std::size_t prev;
    std::size_t next;
  };

  void link_front(std::size_t slot) {
    slots_[slot].prev = kNil;
    slots_[slot].next = head_;
    if (head_ != kNil) slots_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNil) tail_ = slot;
  }

  void unlink(std::size_t slot) {
    auto& s = slots_[slot];
    if (s.prev != kNil) slots_[s.prev].next = s.next;
    if (s.next != kNil) slots_[s.next].prev = s.prev;
    if (head_ == slot) head_ = s.next;
    if (tail_ == slot) tail_ = s.prev;
  }

  void touch(std::size_t slot) {
    if (head_ == slot) return;
    unlink(slot);
    link_front(slot);
  }

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::unordered_map<K, std::size_t, Hash> index_;
  std::size_t head_ = kNil;
  std::size_t tail_ = kNil;
};

}  // namespace dsketch
