// Streaming and batch summary statistics used by the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace dsketch {

/// Online mean/min/max/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over already-sorted samples (linear interpolation).
inline double percentile_sorted(const std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Batch percentile over a copy of the samples.
inline double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

/// Fixed-shape roll-up of a sample distribution. The single summary type
/// shared by the serving tier (shard-slice latencies) and the experiment
/// harness (stretch/size/latency rows), so reports agree on which
/// percentiles exist and how they are computed.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Collects samples and reports a compact summary; used for table rows.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    acc_.add(x);
  }
  /// Folds another set's samples in (used to roll shard-local stats up
  /// into a service-wide view without re-collecting).
  void merge(const SampleSet& other) {
    for (const double x : other.samples_) add(x);
  }
  std::size_t count() const { return acc_.count(); }
  double mean() const { return acc_.mean(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  double stddev() const { return acc_.stddev(); }
  double p(double pct) const { return percentile(samples_, pct); }
  Summary summary() const {
    Summary s;
    s.count = count();
    s.mean = mean();
    s.stddev = stddev();
    s.min = min();
    s.max = max();
    // One copy + one sort covers every percentile.
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.p50 = percentile_sorted(sorted, 50);
    s.p95 = percentile_sorted(sorted, 95);
    s.p99 = percentile_sorted(sorted, 99);
    return s;
  }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  Accumulator acc_;
};

/// One-shot summary of a raw sample vector.
inline Summary summarize(const std::vector<double>& xs) {
  SampleSet set;
  for (const double x : xs) set.add(x);
  return set.summary();
}

}  // namespace dsketch
