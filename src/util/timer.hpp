// Wall-clock timer for harness-level timing (not used for simulated rounds).
#pragma once

#include <chrono>

namespace dsketch {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsketch
