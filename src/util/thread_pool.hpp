// Minimal work-sharing thread pool for deterministic data-parallel loops.
//
// The CONGEST simulator steps all active nodes each round; node steps are
// independent (they read their own inbox and write their own outboxes), so a
// parallel_for over the active set is safe. Determinism is preserved because
// message *delivery* order is fixed by edge indices, independent of which
// thread executed which node.
//
// Two loop shapes:
//   parallel_for      — static contiguous chunks; best for homogeneous
//                       bodies (simulator node steps, per-node exports).
//   for_each_dynamic  — atomic work pulling; best for heterogeneous bodies
//                       (per-source shortest-path searches whose cluster
//                       sizes vary by orders of magnitude). The body also
//                       receives a lane id in [0, lanes()) for per-lane
//                       accumulators.
//
// Both entry points are safe to call from multiple threads at once (the
// repro runner executes manifest cells on its own threads, and cells call
// into parallel builds): one caller drives the workers, concurrent callers
// fall back to running their loop serially on their own thread, and
// re-entrant calls from inside a pool task degrade to serial likewise.
//
// Exceptions: a body that throws — on any lane — does not crash the
// process (a throw escaping a worker thread would call std::terminate).
// The first exception is captured, remaining lanes stop pulling work as
// soon as they notice, and the exception is rethrown on the calling
// thread once every lane has quiesced. The pool itself stays usable; the
// captured error is cleared per invocation. With more than one throwing
// lane, which exception wins is a race — one of them is rethrown, the
// rest are dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsketch {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Number of execution lanes (workers plus the calling thread); the
  /// upper bound on the lane ids for_each_dynamic hands out.
  std::size_t lanes() const { return workers_.size() + 1; }

  /// Runs body(i) for i in [0, count), blocking until all complete.
  /// Work is divided into contiguous chunks, one per worker plus caller.
  /// If any body throws, the first exception is rethrown here after all
  /// lanes quiesce (see the file comment).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Runs body(lane, i) for i in [0, count) with dynamic load balancing:
  /// lanes pull the next index from a shared counter, so wildly uneven
  /// per-index costs still spread evenly. Blocks until all complete.
  /// Index-to-lane assignment is nondeterministic; merges keyed by index
  /// (not lane) stay deterministic. Exceptions rethrow as in parallel_for.
  void for_each_dynamic(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop(std::size_t worker_index);
  /// Captures std::current_exception() as the invocation's error (first
  /// writer wins) and raises the stop flag other lanes poll.
  void record_error() noexcept;
  /// Rethrows and clears the captured error, if any. Driver-side, after
  /// all lanes quiesced.
  void rethrow_pending_error();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::mutex entry_mutex_;       // one driving caller at a time
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;      // one slot per worker (static mode)
  std::size_t generation_ = 0;   // bumped per parallel call
  std::size_t pending_ = 0;      // workers still running this generation
  bool stop_ = false;

  // Dynamic-mode state, valid while dyn_active_.
  bool dyn_active_ = false;
  std::size_t dyn_count_ = 0;
  const std::function<void(std::size_t, std::size_t)>* dyn_body_ = nullptr;
  std::atomic<std::size_t> dyn_next_{0};

  // Error capture, cleared per invocation (guarded by error_mutex_; the
  // flag is the lock-free fast-path poll).
  std::atomic<bool> error_flag_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

/// Global pool used by the simulator when parallel stepping is requested.
ThreadPool& global_pool();

}  // namespace dsketch
