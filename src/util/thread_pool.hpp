// Minimal work-sharing thread pool for deterministic data-parallel loops.
//
// The CONGEST simulator steps all active nodes each round; node steps are
// independent (they read their own inbox and write their own outboxes), so a
// parallel_for over the active set is safe. Determinism is preserved because
// message *delivery* order is fixed by edge indices, independent of which
// thread executed which node.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsketch {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count), blocking until all complete.
  /// Work is divided into contiguous chunks, one per worker plus caller.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;      // one slot per worker
  std::size_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;      // workers still running this generation
  bool stop_ = false;
};

/// Global pool used by the simulator when parallel stepping is requested.
ThreadPool& global_pool();

}  // namespace dsketch
