#include "util/thread_pool.hpp"

#include <algorithm>

namespace dsketch {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn threads-1.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  const std::size_t lanes = workers_.size() + 1;
  if (count == 0) return;
  if (lanes == 1 || count < 2 * lanes) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const std::size_t chunk = (count + lanes - 1) / lanes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::size_t begin = std::min(count, (w + 1) * chunk);
      const std::size_t end = std::min(count, (w + 2) * chunk);
      tasks_[w] = Task{begin, end, &body};
      if (begin < end) ++pending_;
    }
  }
  cv_start_.notify_all();
  // Caller handles the first chunk.
  for (std::size_t i = 0; i < std::min(count, chunk); ++i) body(i);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
    }
    if (task.begin < task.end) {
      for (std::size_t i = task.begin; i < task.end; ++i) (*task.body)(i);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dsketch
