#include "util/thread_pool.hpp"

#include <algorithm>

namespace dsketch {

namespace {
/// True while this thread is executing inside a pool parallel section
/// (as the driving caller or as a worker). Nested parallel calls from
/// such a thread run serially instead of deadlocking on entry_mutex_.
thread_local bool tl_inside_pool = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel loops, so spawn threads-1.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::record_error() noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::current_exception();
  error_flag_.store(true, std::memory_order_release);
}

void ThreadPool::rethrow_pending_error() {
  if (!error_flag_.load(std::memory_order_acquire)) return;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    err = std::move(error_);
    error_ = nullptr;
    error_flag_.store(false, std::memory_order_release);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  const std::size_t lanes = workers_.size() + 1;
  if (count == 0) return;
  if (lanes == 1 || count < 2 * lanes || tl_inside_pool) {
    // Serial fallbacks run on the caller's own stack: a throw propagates
    // directly, no capture needed.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::unique_lock<std::mutex> entry(entry_mutex_, std::try_to_lock);
  if (!entry.owns_lock()) {
    // Another thread is driving the workers; do our loop ourselves.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  tl_inside_pool = true;
  const std::size_t chunk = (count + lanes - 1) / lanes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = 0;
    dyn_active_ = false;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::size_t begin = std::min(count, (w + 1) * chunk);
      const std::size_t end = std::min(count, (w + 2) * chunk);
      tasks_[w] = Task{begin, end, &body};
      if (begin < end) ++pending_;
    }
  }
  cv_start_.notify_all();
  // Caller handles the first chunk. A caller-side throw must still wait
  // for the workers below — they hold a pointer into our frame.
  try {
    for (std::size_t i = 0; i < std::min(count, chunk); ++i) {
      if (error_flag_.load(std::memory_order_acquire)) break;
      body(i);
    }
  } catch (...) {
    record_error();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  }
  tl_inside_pool = false;
  rethrow_pending_error();
}

void ThreadPool::for_each_dynamic(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t lanes = workers_.size() + 1;
  if (lanes == 1 || count == 1 || tl_inside_pool) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  std::unique_lock<std::mutex> entry(entry_mutex_, std::try_to_lock);
  if (!entry.owns_lock()) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  tl_inside_pool = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = workers_.size();  // every worker acknowledges dynamic jobs
    dyn_active_ = true;
    dyn_count_ = count;
    dyn_body_ = &body;
    dyn_next_.store(0, std::memory_order_relaxed);
  }
  cv_start_.notify_all();
  // Caller pulls as lane 0.
  try {
    for (;;) {
      if (error_flag_.load(std::memory_order_acquire)) break;
      const std::size_t i = dyn_next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      body(0, i);
    }
  } catch (...) {
    record_error();
    // Fast-forward the shared counter so other lanes stop pulling even
    // before they poll the flag.
    dyn_next_.store(count, std::memory_order_relaxed);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    dyn_active_ = false;
  }
  tl_inside_pool = false;
  rethrow_pending_error();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    bool dynamic = false;
    std::size_t dyn_count = 0;
    const std::function<void(std::size_t, std::size_t)>* dyn_body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      dynamic = dyn_active_;
      if (dynamic) {
        dyn_count = dyn_count_;
        dyn_body = dyn_body_;
      } else {
        task = tasks_[worker_index];
      }
    }
    if (dynamic) {
      tl_inside_pool = true;
      try {
        for (;;) {
          if (error_flag_.load(std::memory_order_acquire)) break;
          const std::size_t i =
              dyn_next_.fetch_add(1, std::memory_order_relaxed);
          if (i >= dyn_count) break;
          (*dyn_body)(worker_index + 1, i);
        }
      } catch (...) {
        record_error();
        dyn_next_.store(dyn_count, std::memory_order_relaxed);
      }
      tl_inside_pool = false;
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    } else if (task.begin < task.end) {
      tl_inside_pool = true;
      try {
        for (std::size_t i = task.begin; i < task.end; ++i) {
          if (error_flag_.load(std::memory_order_acquire)) break;
          (*task.body)(i);
        }
      } catch (...) {
        record_error();
      }
      tl_inside_pool = false;
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dsketch
