#include "util/flags.hpp"

#include <algorithm>
#include <sstream>

namespace dsketch {
namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

FlagSet::FlagSet(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  for (const auto& [key, value] : kv) values_[key] = value;
}

FlagSet::FlagSet(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string key = arg.substr(2);
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "true";
    }
  }
}

std::string FlagSet::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t FlagSet::get(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  // Derived 64-bit seeds may land in [2^63, 2^64); wrap them into the
  // signed range (callers reading seeds cast straight back to uint64)
  // instead of letting stoll throw on half of all possible seeds.
  try {
    return std::stoll(it->second);
  } catch (const std::out_of_range&) {
    return static_cast<std::int64_t>(std::stoull(it->second));
  }
}

double FlagSet::get(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

bool FlagSet::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string FlagSet::require(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::runtime_error("missing required flag --" + key);
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>> FlagSet::items() const {
  std::vector<std::pair<std::string, std::string>> out(values_.begin(),
                                                       values_.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Parses "1,2,4" into integers; used for sweep-style CLI flags.
std::vector<std::int64_t> parse_int_list(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  if (out.empty()) throw std::runtime_error("empty integer list: " + csv);
  return out;
}

std::vector<std::string> parse_name_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw std::runtime_error("empty name list: " + csv);
  return out;
}

}  // namespace dsketch
