// Minimal command-line flag parsing for the CLI tool and harness binaries.
//
//   FlagSet flags(argc, argv);             // "--key value" / "--switch"
//   flags.get("n", 1024);                  // typed lookup with default
//   flags.require("graph");                // throws if missing
//   flags.positional();                    // non-flag arguments in order
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace dsketch {

class FlagSet {
 public:
  FlagSet(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get(const std::string& key, std::int64_t def) const;
  double get(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def = false) const;

  std::string require(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dsketch
