// Minimal command-line flag parsing for the CLI tool and harness binaries.
//
//   FlagSet flags(argc, argv);             // "--key value" / "--switch"
//   flags.get("n", 1024);                  // typed lookup with default
//   flags.require("graph");                // throws if missing
//   flags.positional();                    // non-flag arguments in order
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dsketch {

class FlagSet {
 public:
  FlagSet(int argc, const char* const* argv);

  /// Builds a flag set from explicit key/value pairs — how the repro
  /// harness passes manifest cell parameters to an experiment without
  /// synthesizing an argv.
  explicit FlagSet(const std::vector<std::pair<std::string, std::string>>& kv);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get(const std::string& key, std::int64_t def) const;
  double get(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def = false) const;

  std::string require(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All stored key/value pairs, sorted by key (for logging a cell's
  /// resolved parameters deterministically).
  std::vector<std::pair<std::string, std::string>> items() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Parses "1,2,4" into integers; throws on an empty list.
std::vector<std::int64_t> parse_int_list(const std::string& csv);

/// Parses "tz,landmark,exact" into names, skipping empty items; throws
/// on an empty list (the sibling of parse_int_list for oracle sweeps).
std::vector<std::string> parse_name_list(const std::string& csv);

}  // namespace dsketch
