// Deterministic, fast pseudo-random number generation.
//
// All randomized pieces of the library (hierarchy sampling, density nets,
// graph generators, workload samplers) take a seed and derive per-purpose
// streams via split(), so experiments are reproducible bit-for-bit across
// platforms and thread counts. xoshiro256** is used for generation and
// SplitMix64 for seeding, following the reference constructions by
// Blackman & Vigna.
#pragma once

#include <cstdint>
#include <limits>

namespace dsketch {

/// SplitMix64 step; used to expand seeds and derive independent streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream; `salt` distinguishes sibling streams.
  Rng split(std::uint64_t salt) {
    std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, bound) via Lemire's method (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply rejection-free enough for our purposes; use simple
    // rejection to keep exact uniformity.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace dsketch
