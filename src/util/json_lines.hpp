// Machine-readable harness output: one JSON object per line on stdout.
//
// Used by the serving CLI and the bench binaries. The perf-trajectory
// tooling ingests BENCH_*.json files built from these lines, so keys
// should stay stable across PRs; add keys rather than renaming. Values
// are emitted in insertion order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace dsketch::bench {

class JsonLine {
 public:
  JsonLine& add(const std::string& key, const std::string& value) {
    return raw(key, "\"" + escape(value) + "\"");
  }
  JsonLine& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonLine& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  JsonLine& add(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, std::uint32_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  /// Prints `{...}\n` and flushes so lines survive interleaved crashes.
  void emit() {
    std::printf("{%s}\n", body_.c_str());
    std::fflush(stdout);
  }

 private:
  JsonLine& raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + escape(key) + "\":" + value;
    return *this;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::string body_;
};

}  // namespace dsketch::bench
