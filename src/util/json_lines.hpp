// Machine-readable harness output: one JSON object per line.
//
// Used by the serving CLI, the experiment library (bench/), and the
// repro harness (src/exp). Perf-trajectory tooling ingests the JSON-lines
// artifacts, so keys should stay stable across PRs; add keys rather than
// renaming. The stable discriminators are `experiment` (e1..e12) and
// `table` (one rendered table per value) — see docs/BENCHMARKS.md for the
// per-experiment schema. (PR 2 migrated the pre-harness `bench` key to
// this scheme; that is the last rename.) Values are emitted in insertion
// order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

#include "util/stats.hpp"

namespace dsketch::bench {

class JsonLine {
 public:
  JsonLine& add(const std::string& key, const std::string& value) {
    return raw(key, "\"" + escape(value) + "\"");
  }
  JsonLine& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonLine& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  JsonLine& add(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, std::uint32_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& add(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  /// Emits `<prefix>_mean/p50/p95/p99/max` from a Summary — the shared
  /// shape for any latency/size/stretch distribution in harness output.
  JsonLine& add_summary(const std::string& prefix, const Summary& s) {
    add(prefix + "_mean", s.mean);
    add(prefix + "_p50", s.p50);
    add(prefix + "_p95", s.p95);
    add(prefix + "_p99", s.p99);
    return add(prefix + "_max", s.max);
  }

  /// The serialized object, `{...}` (no trailing newline).
  std::string str() const { return "{" + body_ + "}"; }

  /// Prints `{...}\n` and flushes so lines survive interleaved crashes.
  void emit() {
    std::printf("{%s}\n", body_.c_str());
    std::fflush(stdout);
  }

  /// Writes `{...}\n` to an arbitrary sink (per-cell output files in the
  /// repro harness; std::cout in the standalone bench shims).
  void emit(std::ostream& out) { out << str() << '\n'; }

 private:
  JsonLine& raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + escape(key) + "\":" + value;
    return *this;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::string body_;
};

}  // namespace dsketch::bench
