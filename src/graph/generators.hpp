// Seeded topology generators spanning the regimes the paper cares about.
//
// The theorems bound rounds by the shortest-path diameter S and sketch
// quality by n and k, so the benchmark suite needs topologies with:
//   - small S (expanders: Erdős–Rényi, hypercube, Barabási–Albert),
//   - large S (weighted paths, rings, 2-D grids),
//   - low doubling dimension (random geometric, grids) where coordinate
//     systems such as Vivaldi do well, and
//   - high "dimensionality" (expanders, ring+random chords) where §1 argues
//     coordinate systems break down but sketch bounds still hold.
// Every generator takes an explicit seed, always returns a connected graph
// (a Hamiltonian-path backbone is added where the base model may disconnect),
// and draws integer weights from a configurable range.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dsketch {

/// Weight model applied on top of a topology.
struct WeightSpec {
  Weight min_weight = 1;
  Weight max_weight = 1;  ///< max == min gives an unweighted graph

  Weight sample(Rng& rng) const {
    if (max_weight <= min_weight) return min_weight;
    return static_cast<Weight>(
        rng.range(static_cast<std::int64_t>(min_weight),
                  static_cast<std::int64_t>(max_weight)));
  }
};

/// G(n, p) with a random Hamiltonian-path backbone for connectivity.
Graph erdos_renyi(NodeId n, double p, WeightSpec weights, std::uint64_t seed);

/// G(n, m) sampled uniformly without replacement, plus backbone.
Graph random_graph_nm(NodeId n, std::size_t m, WeightSpec weights,
                      std::uint64_t seed);

/// Unit-square random geometric graph with connection radius r (plus
/// backbone); weights default to quantized Euclidean lengths when
/// `euclidean_weights`.
Graph random_geometric(NodeId n, double radius, std::uint64_t seed,
                       bool euclidean_weights = true);

/// rows x cols 2-D grid; S = rows + cols - 2 when unweighted.
Graph grid2d(NodeId rows, NodeId cols, WeightSpec weights, std::uint64_t seed);

/// rows x cols 2-D torus (wrap-around grid).
Graph torus2d(NodeId rows, NodeId cols, WeightSpec weights, std::uint64_t seed);

/// Simple cycle on n nodes.
Graph ring(NodeId n, WeightSpec weights, std::uint64_t seed);

/// Path on n nodes — maximizes S (= n-1), the paper's worst case for
/// no-preprocessing distance computation.
Graph path(NodeId n, WeightSpec weights, std::uint64_t seed);

/// Hypercube on 2^dim nodes (dim <= 20).
Graph hypercube(unsigned dim, WeightSpec weights, std::uint64_t seed);

/// Barabási–Albert preferential attachment, `attach` edges per new node.
Graph barabasi_albert(NodeId n, NodeId attach, WeightSpec weights,
                      std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k_nearest` neighbors per
/// side, each edge rewired with probability beta.
Graph watts_strogatz(NodeId n, NodeId k_nearest, double beta,
                     WeightSpec weights, std::uint64_t seed);

/// Uniform random spanning tree topology (random attachment tree).
Graph random_tree(NodeId n, WeightSpec weights, std::uint64_t seed);

/// Ring with `chords` uniformly random long-range chords. With unit chord
/// weight and heavy ring weight this is a classic high-dimensional instance
/// that embeds badly into low-dimensional coordinate spaces.
Graph ring_with_chords(NodeId n, std::size_t chords, Weight ring_weight,
                       Weight chord_weight, std::uint64_t seed);

/// Two-level "ISP-like" topology: `pops` well-connected core nodes (random
/// m-regular-ish core with low weights), each with n/pops access nodes
/// star-attached with higher weights. Models the paper's networking setting.
Graph isp_two_level(NodeId n, NodeId pops, WeightSpec core_weights,
                    WeightSpec access_weights, std::uint64_t seed);

/// Star graph: node 0 is the hub.
Graph star(NodeId n, WeightSpec weights, std::uint64_t seed);

/// Complete graph on n nodes (small n only).
Graph complete(NodeId n, WeightSpec weights, std::uint64_t seed);

/// Caterpillar: heavy-weighted spine with unit legs — makes S large while D
/// stays moderate; stresses the S-vs-D gap discussed in §2.1.
Graph caterpillar(NodeId spine, NodeId legs_per_node, Weight spine_weight,
                  std::uint64_t seed);

/// Complete k-ary tree with `levels` levels (root at node 0).
Graph kary_tree(NodeId arity, NodeId levels, WeightSpec weights,
                std::uint64_t seed);

/// Barbell: two cliques of `clique` nodes joined by a path of `bridge`
/// nodes — a classic bottleneck topology (poor expansion, large S).
Graph barbell(NodeId clique, NodeId bridge, WeightSpec weights,
              std::uint64_t seed);

/// Stochastic-Kronecker-style graph on 2^dim nodes: edge (u,v) appears
/// with probability prod over bits of P[u_bit][v_bit], the standard
/// internet/social topology model (R-MAT initiator). Backbone added.
Graph kronecker(unsigned dim, double a, double b, double c, double d,
                WeightSpec weights, std::uint64_t seed);

}  // namespace dsketch
