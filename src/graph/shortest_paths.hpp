// Centralized shortest-path machinery: ground truth for every experiment.
//
// Provides exact weighted SSSP (Dijkstra), multi-source variants, hop-count
// BFS, and the two diameters the paper distinguishes (§2.2):
//   D — hop diameter: max over pairs of the unweighted distance;
//   S — shortest-path diameter: max over pairs of the minimum hop count
//       among *weighted* shortest paths. D <= S, and every distributed
//       distance computation needs Omega(S) rounds.
// S is computed with a lexicographic Dijkstra on keys (dist, hops).
//
// Everything here is a thin driver over graph/sp_kernel.hpp: single-shot
// wrappers reuse the calling thread's workspace, and the all-source sweeps
// (diameters, estimates, SampledGroundTruth) run source-parallel over the
// global thread pool with one workspace per worker. Results are identical
// across engines and thread counts (see the kernel's determinism
// contract).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dsketch {

/// Exact weighted distances from `source` to every node.
std::vector<Dist> dijkstra(const Graph& g, NodeId source);

/// Weighted distances from the nearest of `sources` (super-source Dijkstra);
/// `owner[u]` reports which source is nearest under (dist, source id) keys.
struct MultiSourceResult {
  std::vector<Dist> dist;
  std::vector<NodeId> owner;
};
MultiSourceResult multi_source_dijkstra(const Graph& g,
                                        const std::vector<NodeId>& sources);

/// Hop counts (unweighted BFS) from `source`.
std::vector<std::uint32_t> hop_bfs(const Graph& g, NodeId source);

/// For each node: (weighted distance, min hops among weighted shortest paths).
struct DistHops {
  std::vector<Dist> dist;
  std::vector<std::uint32_t> hops;
};
DistHops dijkstra_min_hops(const Graph& g, NodeId source);

/// Hop diameter D (exact; runs BFS from every node — use on small graphs,
/// or `hop_diameter_estimate` for large ones).
std::uint32_t hop_diameter(const Graph& g);

/// Shortest-path diameter S (exact; n Dijkstras).
std::uint32_t shortest_path_diameter(const Graph& g);

/// Lower-bound estimates via `samples` random sources (cheap, used to size
/// simulator budgets on large graphs).
std::uint32_t hop_diameter_estimate(const Graph& g, int samples,
                                    std::uint64_t seed);
std::uint32_t shortest_path_diameter_estimate(const Graph& g, int samples,
                                              std::uint64_t seed);

/// Ground-truth oracle over a sampled set of source rows. Evaluation on large
/// graphs samples `rows` sources and compares sketch estimates against exact
/// distances from those rows.
class SampledGroundTruth {
 public:
  SampledGroundTruth(const Graph& g, std::size_t rows, std::uint64_t seed);

  const std::vector<NodeId>& sources() const { return sources_; }
  /// Exact d(sources()[row], v).
  Dist dist(std::size_t row, NodeId v) const { return table_[row][v]; }
  std::size_t num_rows() const { return sources_.size(); }

 private:
  std::vector<NodeId> sources_;
  std::vector<std::vector<Dist>> table_;
};

}  // namespace dsketch
