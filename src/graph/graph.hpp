// Weighted undirected graph in CSR (compressed sparse row) form.
//
// This is the network topology substrate: every node of the CONGEST simulator
// corresponds to one vertex, every simulator link to one undirected edge.
// Edge weights are nonnegative integers bounded by poly(n) per the paper's
// model (§2.2), so a distance always fits one machine word.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dsketch {

using NodeId = std::uint32_t;
using Weight = std::uint32_t;
using Dist = std::uint64_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr Dist kInfDist = static_cast<Dist>(-1);

/// Half-edge stored in the adjacency of one endpoint.
struct HalfEdge {
  NodeId to;
  Weight weight;
};

/// One undirected edge (u < v canonical order) with weight.
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

/// Immutable CSR graph. Build with GraphBuilder or from an edge list.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list; parallel edges are kept (the
  /// simulator treats each as a distinct link), self-loops are rejected.
  static Graph from_edges(NodeId n, const std::vector<Edge>& edges);

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  std::span<const HalfEdge> neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }
  std::size_t degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Global index of the d-th half-edge of u; used by the simulator to map a
  /// (node, local edge index) pair onto a link endpoint.
  std::size_t half_edge_index(NodeId u, std::size_t local) const {
    return offsets_[u] + local;
  }

  /// Sum of all edge weights (useful for upper bounds on distances).
  Dist total_weight() const;

  /// True when every node can reach every other (BFS check).
  bool connected() const;

 private:
  NodeId n_ = 0;
  std::vector<std::size_t> offsets_;  // n_+1 entries
  std::vector<HalfEdge> adj_;
  std::vector<Edge> edges_;
};

/// Incremental builder used by generators.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Adds edge {u, v} with weight w; ignores self loops; deduplicates exact
  /// duplicates of the same unordered pair, keeping the smaller weight.
  void add_edge(NodeId u, NodeId v, Weight w);

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }
  bool has_edge(NodeId u, NodeId v) const;

  Graph build() const { return Graph::from_edges(n_, edges_); }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  NodeId n_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // pair key -> slot
};

}  // namespace dsketch
