// Weighted undirected graph in CSR (compressed sparse row) form.
//
// This is the network topology substrate: every node of the CONGEST simulator
// corresponds to one vertex, every simulator link to one undirected edge.
// Edge weights are nonnegative integers bounded by poly(n) per the paper's
// model (§2.2), so a distance always fits one machine word.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/pair_key.hpp"

namespace dsketch {

using NodeId = std::uint32_t;
using Weight = std::uint32_t;
using Dist = std::uint64_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr Dist kInfDist = static_cast<Dist>(-1);

/// Half-edge stored in the adjacency of one endpoint.
struct HalfEdge {
  NodeId to;
  Weight weight;
};

/// One undirected edge (u < v canonical order) with weight.
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

/// Immutable CSR graph. Build with GraphBuilder or from an edge list.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list; parallel edges are kept (the
  /// simulator treats each as a distinct link), self-loops are rejected.
  static Graph from_edges(NodeId n, const std::vector<Edge>& edges);

  /// Builds from pre-assembled CSR buffers: offsets has n+1 entries and
  /// adj holds both half-edges of every undirected edge. Each row is
  /// sorted and deduplicated by neighbor (smallest weight wins), rows are
  /// compacted, and the canonical edge list is derived from the u < v
  /// halves. This is the streaming-ingest entry point (graph_io fills the
  /// two buffers straight off an edge-list file, never holding a separate
  /// Edge vector); self half-edges are dropped.
  static Graph from_adjacency(NodeId n, std::vector<std::size_t> offsets,
                              std::vector<HalfEdge> adj);

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  std::span<const HalfEdge> neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }
  std::size_t degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Global index of the d-th half-edge of u; used by the simulator to map a
  /// (node, local edge index) pair onto a link endpoint.
  std::size_t half_edge_index(NodeId u, std::size_t local) const {
    return offsets_[u] + local;
  }

  /// Sum of all edge weights (useful for upper bounds on distances).
  Dist total_weight() const;

  /// Largest edge weight (0 for an edgeless graph); cached at build time.
  /// The shortest-path kernel selects its frontier engine from this.
  Weight max_weight() const { return max_weight_; }

  /// True when every node can reach every other (BFS check).
  bool connected() const;

 private:
  NodeId n_ = 0;
  Weight max_weight_ = 0;
  std::vector<std::size_t> offsets_;  // n_+1 entries
  std::vector<HalfEdge> adj_;
  std::vector<Edge> edges_;
};

/// Incremental builder used by generators.
///
/// add_edge is append-only: duplicates of the same unordered pair are
/// collapsed by sort-and-unique at build() time (smaller weight wins), so
/// the hot generation path carries no hash map. Generators that need
/// membership queries pay for an index only once they call has_edge —
/// the set is materialized lazily on first use and kept incrementally
/// updated from then on.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Records edge {u, v} with weight w; ignores self loops. Duplicates of
  /// the same unordered pair are collapsed at build() time, keeping the
  /// smaller weight.
  void add_edge(NodeId u, NodeId v, Weight w);

  NodeId num_nodes() const { return n_; }
  /// Number of add_edge calls recorded so far (duplicates included —
  /// dedup happens at build()).
  std::size_t num_edges() const { return edges_.size(); }
  bool has_edge(NodeId u, NodeId v) const;

  /// Sorts, deduplicates (min weight per unordered pair), and freezes.
  Graph build() const;
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    return canonical_pair_key(u, v);
  }
  NodeId n_;
  std::vector<Edge> edges_;
  mutable bool indexed_ = false;
  mutable std::unordered_set<std::uint64_t> index_;  // lazy, has_edge only
};

}  // namespace dsketch
