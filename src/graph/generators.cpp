#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace dsketch {
namespace {

/// Adds a random Hamiltonian path over a permutation of the nodes, which
/// guarantees connectivity without changing the asymptotic edge count.
void add_backbone(GraphBuilder& b, WeightSpec weights, Rng& rng) {
  const NodeId n = b.num_nodes();
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  for (NodeId i = 0; i + 1 < n; ++i) {
    b.add_edge(perm[i], perm[i + 1], weights.sample(rng));
  }
}

}  // namespace

Graph erdos_renyi(NodeId n, double p, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  // Geometric skipping: expected work O(p n^2) instead of n^2 coin flips.
  if (p > 0) {
    const double log1mp = std::log1p(-std::min(p, 0.999999999999));
    std::uint64_t idx = 0;  // linear index over pairs (u < v)
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    for (;;) {
      const double skip =
          p >= 1.0 ? 0.0
                   : std::floor(std::log(1.0 - rng.uniform()) / log1mp);
      if (skip > static_cast<double>(total)) break;
      idx += static_cast<std::uint64_t>(skip);
      if (idx >= total) break;
      // invert pair index -> (u, v)
      const double dn = static_cast<double>(n);
      NodeId u = static_cast<NodeId>(
          dn - 0.5 -
          std::sqrt((dn - 0.5) * (dn - 0.5) - 2.0 * static_cast<double>(idx)));
      // fix rounding
      auto row_start = [&](NodeId r) {
        return static_cast<std::uint64_t>(r) * n - static_cast<std::uint64_t>(r) * (r + 1) / 2;
      };
      while (u + 1 < n && row_start(u + 1) <= idx) ++u;
      while (u > 0 && row_start(u) > idx) --u;
      const NodeId v = static_cast<NodeId>(u + 1 + (idx - row_start(u)));
      if (v < n) b.add_edge(u, v, weights.sample(rng));
      ++idx;
    }
  }
  add_backbone(b, weights, rng);
  return b.build();
}

Graph random_graph_nm(NodeId n, std::size_t m, WeightSpec weights,
                      std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * m + 1000;
  while (b.num_edges() < m && attempts < max_attempts) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u != v && !b.has_edge(u, v)) b.add_edge(u, v, weights.sample(rng));
    ++attempts;
  }
  add_backbone(b, weights, rng);
  return b.build();
}

Graph random_geometric(NodeId n, double radius, std::uint64_t seed,
                       bool euclidean_weights) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (NodeId i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  GraphBuilder b(n);
  // Grid-bucket neighbor search: O(n) cells of side `radius`.
  const int cells = std::max(1, static_cast<int>(1.0 / std::max(radius, 1e-6)));
  std::vector<std::vector<NodeId>> bucket(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](NodeId i) {
    const int cx = std::min(cells - 1, static_cast<int>(x[i] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[i] * cells));
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (NodeId i = 0; i < n; ++i) bucket[cell_of(i)].push_back(i);
  const double r2 = radius * radius;
  for (NodeId i = 0; i < n; ++i) {
    const int cx = std::min(cells - 1, static_cast<int>(x[i] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[i] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (NodeId j : bucket[static_cast<std::size_t>(ny) * cells + nx]) {
          if (j <= i) continue;
          const double ddx = x[i] - x[j], ddy = y[i] - y[j];
          const double d2 = ddx * ddx + ddy * ddy;
          if (d2 <= r2) {
            const Weight w =
                euclidean_weights
                    ? static_cast<Weight>(1 + std::llround(std::sqrt(d2) * 1000))
                    : 1;
            b.add_edge(i, j, w);
          }
        }
      }
    }
  }
  WeightSpec backbone{1, euclidean_weights ? Weight{1415} : Weight{1}};
  add_backbone(b, backbone, rng);
  return b.build();
}

Graph grid2d(NodeId rows, NodeId cols, WeightSpec weights,
             std::uint64_t seed) {
  DS_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Rng rng(seed);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), weights.sample(rng));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), weights.sample(rng));
    }
  }
  return b.build();
}

Graph torus2d(NodeId rows, NodeId cols, WeightSpec weights,
              std::uint64_t seed) {
  DS_CHECK(rows >= 2 && cols >= 2);
  Rng rng(seed);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols), weights.sample(rng));
      b.add_edge(id(r, c), id((r + 1) % rows, c), weights.sample(rng));
    }
  }
  return b.build();
}

Graph ring(NodeId n, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 3);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    b.add_edge(i, (i + 1) % n, weights.sample(rng));
  }
  return b.build();
}

Graph path(NodeId n, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, weights.sample(rng));
  return b.build();
}

Graph hypercube(unsigned dim, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(dim >= 1 && dim <= 20);
  Rng rng(seed);
  const NodeId n = NodeId{1} << dim;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      const NodeId v = u ^ (NodeId{1} << bit);
      if (v > u) b.add_edge(u, v, weights.sample(rng));
    }
  }
  return b.build();
}

Graph barabasi_albert(NodeId n, NodeId attach, WeightSpec weights,
                      std::uint64_t seed) {
  DS_CHECK(n >= 2 && attach >= 1);
  Rng rng(seed);
  GraphBuilder b(n);
  // Repeated-endpoint list gives preferential attachment.
  std::vector<NodeId> endpoints;
  const NodeId seed_nodes = std::min<NodeId>(n, attach + 1);
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      b.add_edge(u, v, weights.sample(rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = seed_nodes; u < n; ++u) {
    NodeId added = 0;
    std::size_t guard = 0;
    while (added < attach && guard < 50u * attach + 100) {
      const NodeId v = endpoints[rng.below(endpoints.size())];
      ++guard;
      if (v != u && !b.has_edge(u, v)) {
        b.add_edge(u, v, weights.sample(rng));
        endpoints.push_back(u);
        endpoints.push_back(v);
        ++added;
      }
    }
    if (added == 0) {  // degenerate fallback keeps the graph connected
      b.add_edge(u, static_cast<NodeId>(rng.below(u)), weights.sample(rng));
    }
  }
  return b.build();
}

Graph watts_strogatz(NodeId n, NodeId k_nearest, double beta,
                     WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 4 && k_nearest >= 1 && 2 * k_nearest < n);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k_nearest; ++j) {
      NodeId v = (u + j) % n;
      if (rng.bernoulli(beta)) {
        // rewire to a uniform non-self, non-duplicate target
        for (int tries = 0; tries < 32; ++tries) {
          const NodeId w = static_cast<NodeId>(rng.below(n));
          if (w != u && !b.has_edge(u, w)) {
            v = w;
            break;
          }
        }
      }
      b.add_edge(u, v, weights.sample(rng));
    }
  }
  add_backbone(b, weights, rng);
  return b.build();
}

Graph random_tree(NodeId n, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) {
    b.add_edge(u, static_cast<NodeId>(rng.below(u)), weights.sample(rng));
  }
  return b.build();
}

Graph ring_with_chords(NodeId n, std::size_t chords, Weight ring_weight,
                       Weight chord_weight, std::uint64_t seed) {
  DS_CHECK(n >= 4);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n, ring_weight);
  std::size_t added = 0, guard = 0;
  while (added < chords && guard < 50 * chords + 100) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    ++guard;
    if (u != v && !b.has_edge(u, v)) {
      b.add_edge(u, v, chord_weight);
      ++added;
    }
  }
  return b.build();
}

Graph isp_two_level(NodeId n, NodeId pops, WeightSpec core_weights,
                    WeightSpec access_weights, std::uint64_t seed) {
  DS_CHECK(pops >= 2 && n >= 2 * pops);
  Rng rng(seed);
  GraphBuilder b(n);
  // Core: ring over PoPs plus random chords, densifying to ~3 edges per PoP.
  for (NodeId i = 0; i < pops; ++i) {
    b.add_edge(i, (i + 1) % pops, core_weights.sample(rng));
  }
  for (NodeId extra = 0; extra < 2 * pops; ++extra) {
    const NodeId u = static_cast<NodeId>(rng.below(pops));
    const NodeId v = static_cast<NodeId>(rng.below(pops));
    if (u != v) b.add_edge(u, v, core_weights.sample(rng));
  }
  // Access nodes attach to one primary PoP and, half the time, one backup.
  for (NodeId u = pops; u < n; ++u) {
    const NodeId primary = static_cast<NodeId>(rng.below(pops));
    b.add_edge(u, primary, access_weights.sample(rng));
    if (rng.bernoulli(0.5)) {
      const NodeId backup = static_cast<NodeId>(rng.below(pops));
      if (backup != primary) b.add_edge(u, backup, access_weights.sample(rng));
    }
  }
  return b.build();
}

Graph star(NodeId n, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) b.add_edge(0, u, weights.sample(rng));
  return b.build();
}

Graph complete(NodeId n, WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v, weights.sample(rng));
  }
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs_per_node, Weight spine_weight,
                  std::uint64_t seed) {
  DS_CHECK(spine >= 2);
  Rng rng(seed);
  const NodeId n = spine * (1 + legs_per_node);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1, spine_weight);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i) {
    for (NodeId l = 0; l < legs_per_node; ++l) b.add_edge(i, next++, 1);
  }
  (void)rng;
  return b.build();
}

Graph kary_tree(NodeId arity, NodeId levels, WeightSpec weights,
                std::uint64_t seed) {
  DS_CHECK(arity >= 2 && levels >= 2);
  Rng rng(seed);
  // n = (arity^levels - 1) / (arity - 1)
  NodeId n = 1, layer = 1;
  for (NodeId l = 1; l < levels; ++l) {
    layer *= arity;
    n += layer;
  }
  GraphBuilder b(n);
  for (NodeId child = 1; child < n; ++child) {
    b.add_edge(child, (child - 1) / arity, weights.sample(rng));
  }
  return b.build();
}

Graph barbell(NodeId clique, NodeId bridge, WeightSpec weights,
              std::uint64_t seed) {
  DS_CHECK(clique >= 2);
  Rng rng(seed);
  const NodeId n = 2 * clique + bridge;
  GraphBuilder b(n);
  for (NodeId u = 0; u < clique; ++u) {
    for (NodeId v = u + 1; v < clique; ++v) {
      b.add_edge(u, v, weights.sample(rng));
      b.add_edge(clique + bridge + u, clique + bridge + v,
                 weights.sample(rng));
    }
  }
  NodeId prev = clique - 1;  // last node of the left clique
  for (NodeId i = 0; i < bridge; ++i) {
    b.add_edge(prev, clique + i, weights.sample(rng));
    prev = clique + i;
  }
  b.add_edge(prev, clique + bridge, weights.sample(rng));  // right clique
  return b.build();
}

Graph kronecker(unsigned dim, double a, double bb, double c, double d,
                WeightSpec weights, std::uint64_t seed) {
  DS_CHECK(dim >= 2 && dim <= 20);
  Rng rng(seed);
  const NodeId n = NodeId{1} << dim;
  GraphBuilder b(n);
  // Sample expected-edge-count many R-MAT draws; duplicates deduplicate.
  const double sum = a + bb + c + d;
  const auto draws = static_cast<std::size_t>(
      static_cast<double>(n) * 8.0 * sum);  // density knob: ~8·sum edges/node
  for (std::size_t i = 0; i < draws; ++i) {
    NodeId u = 0, v = 0;
    for (unsigned bit = 0; bit < dim; ++bit) {
      const double r = rng.uniform() * sum;
      unsigned ub, vb;
      if (r < a) {
        ub = 0, vb = 0;
      } else if (r < a + bb) {
        ub = 0, vb = 1;
      } else if (r < a + bb + c) {
        ub = 1, vb = 0;
      } else {
        ub = 1, vb = 1;
      }
      u = (u << 1) | ub;
      v = (v << 1) | vb;
    }
    if (u != v) b.add_edge(u, v, weights.sample(rng));
  }
  add_backbone(b, weights, rng);
  return b.build();
}

}  // namespace dsketch
