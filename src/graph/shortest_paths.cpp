#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace dsketch {
namespace {

struct QItem {
  Dist dist;
  NodeId node;
  bool operator>(const QItem& o) const {
    return dist != o.dist ? dist > o.dist : node > o.node;
  }
};

}  // namespace

std::vector<Dist> dijkstra(const Graph& g, NodeId source) {
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      if (nd < dist[he.to]) {
        dist[he.to] = nd;
        pq.push({nd, he.to});
      }
    }
  }
  return dist;
}

MultiSourceResult multi_source_dijkstra(const Graph& g,
                                        const std::vector<NodeId>& sources) {
  MultiSourceResult r;
  r.dist.assign(g.num_nodes(), kInfDist);
  r.owner.assign(g.num_nodes(), kInvalidNode);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (NodeId s : sources) {
    // Ties between sources at equal distance resolve to the smaller id,
    // matching the library-wide (dist, id) key order.
    if (r.dist[s] == 0 && r.owner[s] <= s) continue;
    r.dist[s] = 0;
    r.owner[s] = std::min(r.owner[s], s);
    pq.push({0, s});
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != r.dist[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      if (nd < r.dist[he.to] ||
          (nd == r.dist[he.to] && r.owner[u] < r.owner[he.to])) {
        r.dist[he.to] = nd;
        r.owner[he.to] = r.owner[u];
        pq.push({nd, he.to});
      }
    }
  }
  return r;
}

std::vector<std::uint32_t> hop_bfs(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> hops(g.num_nodes(),
                                  static_cast<std::uint32_t>(-1));
  std::queue<NodeId> q;
  hops[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const HalfEdge& he : g.neighbors(u)) {
      if (hops[he.to] == static_cast<std::uint32_t>(-1)) {
        hops[he.to] = hops[u] + 1;
        q.push(he.to);
      }
    }
  }
  return hops;
}

DistHops dijkstra_min_hops(const Graph& g, NodeId source) {
  DistHops r;
  r.dist.assign(g.num_nodes(), kInfDist);
  r.hops.assign(g.num_nodes(), static_cast<std::uint32_t>(-1));
  struct Item {
    Dist dist;
    std::uint32_t hops;
    NodeId node;
    bool operator>(const Item& o) const {
      if (dist != o.dist) return dist > o.dist;
      if (hops != o.hops) return hops > o.hops;
      return node > o.node;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[source] = 0;
  r.hops[source] = 0;
  pq.push({0, 0, source});
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (d != r.dist[u] || h != r.hops[u]) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      const std::uint32_t nh = h + 1;
      if (nd < r.dist[he.to] ||
          (nd == r.dist[he.to] && nh < r.hops[he.to])) {
        r.dist[he.to] = nd;
        r.hops[he.to] = nh;
        pq.push({nd, nh, he.to});
      }
    }
  }
  return r;
}

std::uint32_t hop_diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (std::uint32_t h : hop_bfs(g, u)) {
      DS_CHECK(h != static_cast<std::uint32_t>(-1));  // connected input
      best = std::max(best, h);
    }
  }
  return best;
}

std::uint32_t shortest_path_diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const DistHops dh = dijkstra_min_hops(g, u);
    for (std::uint32_t h : dh.hops) {
      DS_CHECK(h != static_cast<std::uint32_t>(-1));
      best = std::max(best, h);
    }
  }
  return best;
}

std::uint32_t hop_diameter_estimate(const Graph& g, int samples,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::uint32_t best = 0;
  for (int i = 0; i < samples; ++i) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    for (std::uint32_t h : hop_bfs(g, s)) best = std::max(best, h);
  }
  return best;
}

std::uint32_t shortest_path_diameter_estimate(const Graph& g, int samples,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::uint32_t best = 0;
  for (int i = 0; i < samples; ++i) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const DistHops dh = dijkstra_min_hops(g, s);
    for (std::uint32_t h : dh.hops) best = std::max(best, h);
  }
  return best;
}

SampledGroundTruth::SampledGroundTruth(const Graph& g, std::size_t rows,
                                       std::uint64_t seed) {
  Rng rng(seed);
  rows = std::min<std::size_t>(rows, g.num_nodes());
  // Sample distinct sources via partial Fisher-Yates.
  std::vector<NodeId> perm(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) perm[i] = i;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t j = i + rng.below(perm.size() - i);
    std::swap(perm[i], perm[j]);
    sources_.push_back(perm[i]);
  }
  table_.reserve(rows);
  for (NodeId s : sources_) table_.push_back(dijkstra(g, s));
}

}  // namespace dsketch
