#include "graph/shortest_paths.hpp"

#include <algorithm>

#include "graph/sp_kernel.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

std::vector<Dist> dijkstra(const Graph& g, NodeId source) {
  SpWorkspace& ws = thread_workspace();
  sp_dijkstra(g, source, ws);
  return ws.export_dist();
}

MultiSourceResult multi_source_dijkstra(const Graph& g,
                                        const std::vector<NodeId>& sources) {
  SpWorkspace& ws = thread_workspace();
  sp_multi_source(g, sources, ws);
  MultiSourceResult r;
  r.dist = ws.export_dist();
  r.owner = ws.export_owner();
  return r;
}

std::vector<std::uint32_t> hop_bfs(const Graph& g, NodeId source) {
  SpWorkspace& ws = thread_workspace();
  sp_hop_bfs(g, source, ws);
  return ws.export_hops();
}

DistHops dijkstra_min_hops(const Graph& g, NodeId source) {
  SpWorkspace& ws = thread_workspace();
  sp_dijkstra_min_hops(g, source, ws);
  DistHops r;
  r.dist = ws.export_dist();
  r.hops = ws.export_hops();
  return r;
}

namespace {

/// Max hop count over all-source searches, one search per task pulled
/// dynamically; lane-local maxima merge with max (commutative), so the
/// result is thread-count independent. The exact diameters require a
/// connected graph (as before this was parallelized); the sampled
/// estimators tolerate disconnected inputs by skipping unreached nodes.
template <typename SearchFn>
std::uint32_t max_hops_over_sources(const Graph& g,
                                    const std::vector<NodeId>& sources,
                                    const SearchFn& search,
                                    bool require_connected) {
  ThreadPool& pool = global_pool();
  std::vector<std::uint32_t> lane_best(pool.lanes(), 0);
  pool.for_each_dynamic(sources.size(), [&](std::size_t lane,
                                            std::size_t i) {
    SpWorkspace& ws = thread_workspace();
    search(g, sources[i], ws);
    std::uint32_t best = lane_best[lane];
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const std::uint32_t h = ws.hops(u);
      if (h == kInvalidHops) {
        DS_CHECK(!require_connected);
        continue;
      }
      best = std::max(best, h);
    }
    lane_best[lane] = best;
  });
  return *std::max_element(lane_best.begin(), lane_best.end());
}

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) nodes[u] = u;
  return nodes;
}

std::vector<NodeId> sampled_nodes(const Graph& g, int samples,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.below(g.num_nodes())));
  }
  return nodes;
}

void bfs_search(const Graph& g, NodeId s, SpWorkspace& ws) {
  sp_hop_bfs(g, s, ws);
}

void min_hops_search(const Graph& g, NodeId s, SpWorkspace& ws) {
  sp_dijkstra_min_hops(g, s, ws);
}

}  // namespace

std::uint32_t hop_diameter(const Graph& g) {
  return max_hops_over_sources(g, all_nodes(g), bfs_search,
                               /*require_connected=*/true);
}

std::uint32_t shortest_path_diameter(const Graph& g) {
  return max_hops_over_sources(g, all_nodes(g), min_hops_search,
                               /*require_connected=*/true);
}

std::uint32_t hop_diameter_estimate(const Graph& g, int samples,
                                    std::uint64_t seed) {
  return max_hops_over_sources(g, sampled_nodes(g, samples, seed),
                               bfs_search, /*require_connected=*/false);
}

std::uint32_t shortest_path_diameter_estimate(const Graph& g, int samples,
                                              std::uint64_t seed) {
  return max_hops_over_sources(g, sampled_nodes(g, samples, seed),
                               min_hops_search, /*require_connected=*/false);
}

SampledGroundTruth::SampledGroundTruth(const Graph& g, std::size_t rows,
                                       std::uint64_t seed) {
  Rng rng(seed);
  rows = std::min<std::size_t>(rows, g.num_nodes());
  // Sample distinct sources via partial Fisher-Yates.
  std::vector<NodeId> perm(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) perm[i] = i;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t j = i + rng.below(perm.size() - i);
    std::swap(perm[i], perm[j]);
    sources_.push_back(perm[i]);
  }
  table_.resize(rows);
  global_pool().for_each_dynamic(rows, [&](std::size_t, std::size_t row) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, sources_[row], ws);
    table_[row] = ws.export_dist();
  });
}

}  // namespace dsketch
