#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace dsketch {

Graph Graph::from_edges(NodeId n, const std::vector<Edge>& edges) {
  Graph g;
  g.n_ = n;
  g.edges_ = edges;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    DS_CHECK(e.u < n && e.v < n && e.u != e.v);
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
    g.max_weight_ = std::max(g.max_weight_, e.weight);
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adj_[cursor[e.u]++] = HalfEdge{e.v, e.weight};
    g.adj_[cursor[e.v]++] = HalfEdge{e.u, e.weight};
  }
  // Sort each adjacency by (neighbor, weight) so iteration order — and thus
  // simulator message delivery order — is canonical for a given edge set.
  for (NodeId u = 0; u < n; ++u) {
    std::sort(g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]),
              g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]),
              [](const HalfEdge& a, const HalfEdge& b) {
                return a.to != b.to ? a.to < b.to : a.weight < b.weight;
              });
  }
  return g;
}

Graph Graph::from_adjacency(NodeId n, std::vector<std::size_t> offsets,
                            std::vector<HalfEdge> adj) {
  DS_CHECK(offsets.size() == static_cast<std::size_t>(n) + 1);
  DS_CHECK(offsets.empty() || offsets.front() == 0);
  Graph g;
  g.n_ = n;
  // Compact in place: sort each row by (neighbor, weight), keep the first
  // occurrence of every neighbor (= its smallest weight), drop self
  // half-edges. write trails the row scan so no second buffer is needed.
  std::size_t write = 0;
  std::size_t row_begin = 0;
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t row_end = offsets[u + 1];
    DS_CHECK(row_begin <= row_end && row_end <= adj.size());
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(row_begin),
              adj.begin() + static_cast<std::ptrdiff_t>(row_end),
              [](const HalfEdge& a, const HalfEdge& b) {
                return a.to != b.to ? a.to < b.to : a.weight < b.weight;
              });
    const std::size_t compact_begin = write;
    NodeId last = kInvalidNode;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const HalfEdge he = adj[i];
      DS_CHECK(he.to < n);
      if (he.to == u || he.to == last) continue;
      last = he.to;
      adj[write++] = he;
    }
    row_begin = row_end;
    offsets[u] = compact_begin;
  }
  offsets[n] = write;
  adj.resize(write);
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.edges_.reserve(write / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = g.offsets_[u]; i < g.offsets_[u + 1]; ++i) {
      const HalfEdge he = g.adj_[i];
      g.max_weight_ = std::max(g.max_weight_, he.weight);
      if (u < he.to) g.edges_.push_back(Edge{u, he.to, he.weight});
    }
  }
  return g;
}

Dist Graph::total_weight() const {
  Dist total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

bool Graph::connected() const {
  if (n_ == 0) return true;
  std::vector<char> seen(n_, 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const HalfEdge& he : neighbors(u)) {
      if (!seen[he.to]) {
        seen[he.to] = 1;
        ++reached;
        frontier.push(he.to);
      }
    }
  }
  return reached == n_;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u == v) return;
  DS_CHECK(u < n_ && v < n_);
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, w});
  if (indexed_) index_.insert(key(u, v));
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  if (!indexed_) {
    index_.reserve(edges_.size() * 2);
    for (const Edge& e : edges_) index_.insert(key(e.u, e.v));
    indexed_ = true;
  }
  return index_.count(key(u, v)) != 0;
}

Graph GraphBuilder::build() const {
  std::vector<Edge> unique = edges_;
  // Sort by (u, v, weight): the first of each pair run carries the
  // smallest weight, exactly what the old per-add dedup kept.
  std::sort(unique.begin(), unique.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.weight < b.weight;
  });
  unique.erase(std::unique(unique.begin(), unique.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.u == b.u && a.v == b.v;
                           }),
               unique.end());
  return Graph::from_edges(n_, unique);
}

}  // namespace dsketch
