#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace dsketch {

Graph Graph::from_edges(NodeId n, const std::vector<Edge>& edges) {
  Graph g;
  g.n_ = n;
  g.edges_ = edges;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    DS_CHECK(e.u < n && e.v < n && e.u != e.v);
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adj_[cursor[e.u]++] = HalfEdge{e.v, e.weight};
    g.adj_[cursor[e.v]++] = HalfEdge{e.u, e.weight};
  }
  // Sort each adjacency by (neighbor, weight) so iteration order — and thus
  // simulator message delivery order — is canonical for a given edge set.
  for (NodeId u = 0; u < n; ++u) {
    std::sort(g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]),
              g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]),
              [](const HalfEdge& a, const HalfEdge& b) {
                return a.to != b.to ? a.to < b.to : a.weight < b.weight;
              });
  }
  return g;
}

Dist Graph::total_weight() const {
  Dist total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

bool Graph::connected() const {
  if (n_ == 0) return true;
  std::vector<char> seen(n_, 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const HalfEdge& he : neighbors(u)) {
      if (!seen[he.to]) {
        seen[he.to] = 1;
        ++reached;
        frontier.push(he.to);
      }
    }
  }
  return reached == n_;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u == v) return;
  DS_CHECK(u < n_ && v < n_);
  const std::uint64_t k = key(u, v);
  auto [it, inserted] = index_.try_emplace(k, edges_.size());
  if (inserted) {
    if (u > v) std::swap(u, v);
    edges_.push_back(Edge{u, v, w});
  } else if (w < edges_[it->second].weight) {
    edges_[it->second].weight = w;
  }
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  return index_.count(key(u, v)) != 0;
}

}  // namespace dsketch
