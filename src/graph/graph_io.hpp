// Plain-text edge list serialization.
//
// Format:
//   line 1: "n m"
//   next m lines: "u v w"
// Comments start with '#'. This covers interchange with external tools and
// lets the examples ship reproducible topologies.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dsketch {

void write_graph(std::ostream& out, const Graph& g);
Graph read_graph(std::istream& in);

void write_graph_file(const std::string& path, const Graph& g);
Graph read_graph_file(const std::string& path);

}  // namespace dsketch
