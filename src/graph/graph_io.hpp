// Plain-text edge list serialization.
//
// Format:
//   line 1: "n m"
//   next m lines: "u v w"
// Comments start with '#'. This covers interchange with external tools and
// lets the examples ship reproducible topologies.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dsketch {

void write_graph(std::ostream& out, const Graph& g);
Graph read_graph(std::istream& in);

void write_graph_file(const std::string& path, const Graph& g);
Graph read_graph_file(const std::string& path);

/// External edge-list dialects the streaming ingester understands.
///   kSnap:   "u v [w]" lines, '#' comments, arbitrary (possibly sparse)
///            node ids remapped to [0, n) in first-seen order; missing
///            weights default to 1. Both-direction listings collapse to
///            one undirected edge.
///   kDimacs: 9th DIMACS challenge shortest-path format — 'c' comments,
///            one "p sp n m" problem line, "a u v w" arcs, 1-indexed ids.
///   kAuto:   sniffs kDimacs from a leading 'c'/'p' line, else kSnap.
enum class IngestFormat { kAuto, kSnap, kDimacs };

/// Counters the ingester reports alongside the graph.
struct IngestStats {
  std::size_t edge_lines = 0;  ///< edge lines parsed (before dedup)
  std::size_t self_loops = 0;  ///< dropped "u u" lines
};

/// Streaming SNAP/DIMACS ingestion. Two passes over the stream: the
/// first counts per-node degrees (and builds the id remap), the second
/// fills the CSR adjacency in place — no intermediate Edge vector is
/// ever materialized, so peak memory is the finished Graph plus the id
/// remap. The stream must be rewindable (a file or stringstream).
/// Throws std::runtime_error on malformed input.
Graph ingest_edge_list(std::istream& in, IngestFormat format = IngestFormat::kAuto,
                       IngestStats* stats = nullptr);
Graph ingest_edge_list_file(const std::string& path,
                            IngestFormat format = IngestFormat::kAuto,
                            IngestStats* stats = nullptr);

/// Parses "snap" / "dimacs" / "auto" (the --format flag and the corpus
/// `format` key); throws on anything else.
IngestFormat parse_ingest_format(const std::string& name);

}  // namespace dsketch
