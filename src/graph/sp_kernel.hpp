// Reusable shortest-path kernel: per-thread workspaces with O(1) reset and
// interchangeable frontier engines.
//
// Every search in the library (plain/multi-source Dijkstra, hop BFS, the
// lexicographic (dist, hops) Dijkstra, pruned TZ cluster growth) is one
// instantiation of sp_detail::drain over
//   - a workspace (SpWorkspace): epoch-stamped dist/owner/hops/parent
//     arrays — resetting between searches is a version bump, not an O(n)
//     fill, so one worker can run millions of small pruned searches
//     without touching memory it never visits;
//   - a frontier engine: a monotone bucket queue (Dial) when the graph's
//     max edge weight is small (weights are poly(n) integers per the
//     paper's model, §2.2), or a 4-ary indexed heap with decrease-key as
//     the general fallback. select_engine() picks from Graph::max_weight().
//
// Determinism contract: dist, owner, and hops are each the unique least
// fixed point of their relaxation rule (improvements strictly decrease a
// lexicographic key and every improvement re-enters the frontier), so
// those results are identical across engines, pop-order tie-breaks, and
// thread counts. Parent edges (TrackParent searches) are one valid
// shortest-path tree: deterministic for a fixed engine, but tie cases may
// pick different parents under different engines. The property tests in
// tests/sp_kernel_test.cpp pin the contract against a legacy reference.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

inline constexpr std::uint32_t kInvalidHops = static_cast<std::uint32_t>(-1);

enum class SpEngine : std::uint8_t {
  kAuto,    ///< select_engine() decides from the graph's max edge weight
  kBucket,  ///< Dial bucket queue; O(1) push/pop, needs small max weight
  kHeap,    ///< 4-ary indexed heap with decrease-key; always applicable
};

/// Largest max-edge-weight for which kAuto picks the bucket queue. The
/// bucket ring holds max_weight+1 slots and the cursor walks one slot per
/// distance unit, so huge weights would trade O(log n) pops for an O(W)
/// scan; 4096 keeps the ring cache-resident while covering every corpus
/// graph the manifests generate.
inline constexpr Weight kBucketWeightLimit = 4096;

inline SpEngine select_engine(const Graph& g,
                              SpEngine requested = SpEngine::kAuto) {
  if (requested != SpEngine::kAuto) return requested;
  return g.max_weight() <= kBucketWeightLimit ? SpEngine::kBucket
                                              : SpEngine::kHeap;
}

/// Per-thread scratch state for shortest-path searches. All arrays are
/// epoch-stamped: prepare() bumps the epoch, invalidating the previous
/// search's entries in O(1). Results of the last search stay readable
/// until the next prepare() on the same workspace. Only the fields a
/// search tracks are meaningful afterwards (e.g. owner() is defined only
/// after sp_multi_source).
class SpWorkspace {
 public:
  /// Readies the workspace for a new search over n nodes. O(1) unless the
  /// node count grew or the 32-bit epoch wrapped (once per ~4G searches).
  void prepare(NodeId n) {
    n_ = n;
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      dist_.resize(n);
    }
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      std::fill(heap_pos_stamp_.begin(), heap_pos_stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  // Optional result arrays, sized on demand (call after prepare()).
  void ensure_owner() {
    if (owner_.size() < stamp_.size()) owner_.resize(stamp_.size());
  }
  void ensure_hops() {
    if (hops_.size() < stamp_.size()) hops_.resize(stamp_.size());
  }
  void ensure_parent() {
    if (parent_.size() < stamp_.size()) {
      parent_.resize(stamp_.size());
      parent_weight_.resize(stamp_.size());
    }
  }

  // --- results of the last search ---
  NodeId size() const { return n_; }
  bool reached(NodeId u) const { return stamp_[u] == epoch_; }
  Dist dist(NodeId u) const { return reached(u) ? dist_[u] : kInfDist; }
  NodeId owner(NodeId u) const {
    return reached(u) ? owner_[u] : kInvalidNode;
  }
  std::uint32_t hops(NodeId u) const {
    return reached(u) ? hops_[u] : kInvalidHops;
  }
  NodeId parent(NodeId u) const {
    return reached(u) ? parent_[u] : kInvalidNode;
  }
  Weight parent_weight(NodeId u) const { return parent_weight_[u]; }

  /// Dense copies (kInfDist / kInvalidNode / kInvalidHops where unreached).
  std::vector<Dist> export_dist() const {
    std::vector<Dist> out(n_);
    for (NodeId u = 0; u < n_; ++u) out[u] = dist(u);
    return out;
  }
  std::vector<NodeId> export_owner() const {
    std::vector<NodeId> out(n_);
    for (NodeId u = 0; u < n_; ++u) out[u] = owner(u);
    return out;
  }
  std::vector<std::uint32_t> export_hops() const {
    std::vector<std::uint32_t> out(n_);
    for (NodeId u = 0; u < n_; ++u) out[u] = hops(u);
    return out;
  }

  // --- hot-path primitives for relaxation policies ---
  bool fresh(NodeId u) const { return stamp_[u] == epoch_; }
  void touch(NodeId u) { stamp_[u] = epoch_; }
  Dist& dist_ref(NodeId u) { return dist_[u]; }
  NodeId& owner_ref(NodeId u) { return owner_[u]; }
  std::uint32_t& hops_ref(NodeId u) { return hops_[u]; }
  NodeId& parent_ref(NodeId u) { return parent_[u]; }
  Weight& parent_weight_ref(NodeId u) { return parent_weight_[u]; }

 private:
  friend class BucketFrontier;
  friend class HeapFrontier;
  friend void sp_hop_bfs(const Graph& g, NodeId source, SpWorkspace& ws);

  NodeId n_ = 0;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;
  std::vector<Dist> dist_;
  std::vector<NodeId> owner_;
  std::vector<std::uint32_t> hops_;
  std::vector<NodeId> parent_;
  std::vector<Weight> parent_weight_;

  // Frontier scratch, reused across searches (kept allocated).
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<Dist> heap_key_;
  std::vector<NodeId> heap_node_;
  std::vector<std::uint32_t> heap_pos_;
  std::vector<std::uint32_t> heap_pos_stamp_;
  std::vector<NodeId> bfs_queue_;
};

/// Shared per-OS-thread workspace; what the convenience wrappers and the
/// parallel outer loops use so repeated searches on one thread never
/// reallocate.
SpWorkspace& thread_workspace();

/// Monotone bucket queue (Dial). Entries carry only the node; the cursor
/// is the distance. Lazy deletion: superseded entries are popped and
/// skipped by the drain loop's stale check. Because the drain always runs
/// the frontier dry, buckets are empty again at the end of every search —
/// no cross-search cleanup on the happy path; the destructor sweeps the
/// slots only when an exception (a throwing visit gate, bad_alloc)
/// escapes mid-drain, so leftover entries can never leak into a later
/// search on the same workspace.
class BucketFrontier {
 public:
  BucketFrontier(SpWorkspace& ws, Weight max_weight)
      : buckets_(ws.buckets_),
        width_(static_cast<std::size_t>(max_weight) + 1) {
    if (buckets_.size() < width_) buckets_.resize(width_);
  }

  ~BucketFrontier() {
    if (live_ != 0) {
      for (std::vector<NodeId>& slot : buckets_) slot.clear();
    }
  }

  bool empty() const { return live_ == 0; }

  void push(NodeId u, Dist d) {
    // Monotonicity bounds d within [cursor, cursor + width), so the slot
    // d % width holds entries of distance exactly d until the cursor
    // passes it.
    buckets_[d % width_].push_back(u);
    ++live_;
  }

  std::pair<NodeId, Dist> pop() {
    while (buckets_[cur_ % width_].empty()) ++cur_;
    std::vector<NodeId>& slot = buckets_[cur_ % width_];
    const NodeId u = slot.back();
    slot.pop_back();
    --live_;
    return {u, cur_};
  }

 private:
  std::vector<std::vector<NodeId>>& buckets_;
  std::size_t width_;
  Dist cur_ = 0;
  std::size_t live_ = 0;
};

/// 4-ary indexed min-heap keyed by distance, with decrease-key (no stale
/// entries). 4-ary beats binary here: shallower tree, and the 4-child
/// min-scan stays in one cache line of the key array.
class HeapFrontier {
 public:
  explicit HeapFrontier(SpWorkspace& ws)
      : key_(ws.heap_key_),
        node_(ws.heap_node_),
        pos_(ws.heap_pos_),
        pos_stamp_(ws.heap_pos_stamp_),
        epoch_(ws.epoch_) {
    key_.clear();
    node_.clear();
    if (pos_.size() < ws.stamp_.size()) {
      pos_.resize(ws.stamp_.size());
      pos_stamp_.resize(ws.stamp_.size(), 0);
    }
  }

  bool empty() const { return key_.empty(); }

  /// Insert, or decrease-key when u is already queued (a push with the
  /// current key — an equal-distance owner/hops refinement — is a no-op:
  /// the queued entry will be popped and relaxed with the refined value).
  void push(NodeId u, Dist d) {
    if (pos_stamp_[u] == epoch_ && pos_[u] != kPopped) {
      const std::size_t i = pos_[u];
      if (key_[i] <= d) return;
      key_[i] = d;
      sift_up(i);
      return;
    }
    pos_stamp_[u] = epoch_;
    key_.push_back(d);
    node_.push_back(u);
    pos_[u] = static_cast<std::uint32_t>(key_.size() - 1);
    sift_up(key_.size() - 1);
  }

  std::pair<NodeId, Dist> pop() {
    const NodeId u = node_[0];
    const Dist d = key_[0];
    pos_[u] = kPopped;
    const std::size_t last = key_.size() - 1;
    if (last > 0) {
      key_[0] = key_[last];
      node_[0] = node_[last];
      pos_[node_[0]] = 0;
    }
    key_.pop_back();
    node_.pop_back();
    if (!key_.empty()) sift_down(0);
    return {u, d};
  }

 private:
  static constexpr std::uint32_t kPopped = static_cast<std::uint32_t>(-1);

  void sift_up(std::size_t i) {
    const Dist d = key_[i];
    const NodeId u = node_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (key_[parent] <= d) break;
      key_[i] = key_[parent];
      node_[i] = node_[parent];
      pos_[node_[i]] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    key_[i] = d;
    node_[i] = u;
    pos_[u] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Dist d = key_[i];
    const NodeId u = node_[i];
    const std::size_t size = key_.size();
    for (;;) {
      std::size_t best = i;
      Dist best_key = d;
      const std::size_t first = 4 * i + 1;
      const std::size_t end = first + 4 < size ? first + 4 : size;
      for (std::size_t c = first; c < end; ++c) {
        if (key_[c] < best_key) {
          best = c;
          best_key = key_[c];
        }
      }
      if (best == i) break;
      key_[i] = key_[best];
      node_[i] = node_[best];
      pos_[node_[i]] = static_cast<std::uint32_t>(i);
      i = best;
    }
    key_[i] = d;
    node_[i] = u;
    pos_[u] = static_cast<std::uint32_t>(i);
  }

  std::vector<Dist>& key_;
  std::vector<NodeId>& node_;
  std::vector<std::uint32_t>& pos_;
  std::vector<std::uint32_t>& pos_stamp_;
  std::uint32_t epoch_;
};

namespace sp_detail {

// Policy requirements:
//   bool seed(NodeId s)               — stamp s as a source; false to skip
//   bool visit(NodeId u, Dist d)      — gate called once per settled node,
//                                       in pop order; false prunes u
//   bool relax(NodeId u, NodeId v, Dist nd, Weight w)
//                                     — try to improve v via u; true when
//                                       v's key changed (v is then pushed)

template <class Frontier, class Policy>
inline void drain(const Graph& g, SpWorkspace& ws, Frontier& f, Policy& p) {
  while (!f.empty()) {
    const auto [u, d] = f.pop();
    if (d != ws.dist_ref(u)) continue;  // stale lazily-deleted entry
    if (!p.visit(u, d)) continue;
    for (const HalfEdge& he : g.neighbors(u)) {
      const Dist nd = d + he.weight;
      if (p.relax(u, he.to, nd, he.weight)) f.push(he.to, nd);
    }
  }
}

template <class Policy>
inline void search(const Graph& g, SpWorkspace& ws,
                   std::span<const NodeId> sources, Policy& p,
                   SpEngine engine) {
  if (select_engine(g, engine) == SpEngine::kBucket) {
    BucketFrontier f(ws, g.max_weight());
    for (const NodeId s : sources) {
      if (p.seed(s)) f.push(s, 0);
    }
    drain(g, ws, f, p);
  } else {
    HeapFrontier f(ws);
    for (const NodeId s : sources) {
      if (p.seed(s)) f.push(s, 0);
    }
    drain(g, ws, f, p);
  }
}

}  // namespace sp_detail

/// Exact weighted SSSP into the workspace: ws.dist(u) afterwards.
void sp_dijkstra(const Graph& g, NodeId source, SpWorkspace& ws,
                 SpEngine engine = SpEngine::kAuto);

/// Super-source Dijkstra: ws.dist(u) / ws.owner(u) afterwards, with
/// owners resolved by (dist, source id) keys — the library-wide tie rule.
void sp_multi_source(const Graph& g, std::span<const NodeId> sources,
                     SpWorkspace& ws, SpEngine engine = SpEngine::kAuto);

/// Unweighted BFS: ws.hops(u) afterwards (ws.dist(u) mirrors the hop
/// count so the shared stamp stays consistent).
void sp_hop_bfs(const Graph& g, NodeId source, SpWorkspace& ws);

/// Lexicographic (dist, hops) Dijkstra: ws.dist(u) / ws.hops(u) hold the
/// weighted distance and the minimum hop count among weighted shortest
/// paths — the S-diameter ingredient (§2.2).
void sp_dijkstra_min_hops(const Graph& g, NodeId source, SpWorkspace& ws,
                          SpEngine engine = SpEngine::kAuto);

/// Pruned single-source Dijkstra — the TZ cluster-growth primitive.
/// `visit(x, d)` is called once per settled node in pop order; returning
/// false prunes the expansion at x (the gate predicate of §3.1 cluster
/// growth). With TrackParent, ws.parent(x)/ws.parent_weight(x) give the
/// tree edge through which x was reached (kInvalidNode at the source).
template <bool TrackParent = false, class Visit>
void sp_pruned_dijkstra(const Graph& g, NodeId source, SpWorkspace& ws,
                        Visit&& visit, SpEngine engine = SpEngine::kAuto) {
  ws.prepare(g.num_nodes());
  if constexpr (TrackParent) ws.ensure_parent();
  struct Policy {
    SpWorkspace& ws;
    Visit& gate;
    bool seed(NodeId s) {
      ws.touch(s);
      ws.dist_ref(s) = 0;
      if constexpr (TrackParent) ws.parent_ref(s) = kInvalidNode;
      return true;
    }
    bool visit(NodeId u, Dist d) { return gate(u, d); }
    bool relax(NodeId u, NodeId v, Dist nd, Weight w) {
      if (ws.fresh(v) && ws.dist_ref(v) <= nd) return false;
      ws.touch(v);
      ws.dist_ref(v) = nd;
      if constexpr (TrackParent) {
        ws.parent_ref(v) = u;
        ws.parent_weight_ref(v) = w;
      }
      return true;
    }
  } policy{ws, visit};
  const NodeId src[1] = {source};
  sp_detail::search(g, ws, src, policy, engine);
}

}  // namespace dsketch
