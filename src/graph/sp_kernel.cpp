#include "graph/sp_kernel.hpp"

#include "obs/trace.hpp"

namespace dsketch {
namespace {

/// Plain distance relaxation: dist is the unique shortest-path fixed point.
struct DistPolicy {
  SpWorkspace& ws;
  bool seed(NodeId s) {
    if (ws.fresh(s)) return false;  // duplicate source
    ws.touch(s);
    ws.dist_ref(s) = 0;
    return true;
  }
  bool visit(NodeId, Dist) const { return true; }
  bool relax(NodeId, NodeId v, Dist nd, Weight) {
    if (ws.fresh(v) && ws.dist_ref(v) <= nd) return false;
    ws.touch(v);
    ws.dist_ref(v) = nd;
    return true;
  }
};

/// (dist, owner) lexicographic relaxation. Equal-distance owner
/// refinements re-enter the frontier, so the result is the least fixed
/// point — owner[u] is the smallest-keyed nearest source regardless of
/// pop-order ties.
struct OwnerPolicy {
  SpWorkspace& ws;
  bool seed(NodeId s) {
    if (!ws.fresh(s)) {
      ws.touch(s);
      ws.dist_ref(s) = 0;
      ws.owner_ref(s) = s;
      return true;
    }
    if (s < ws.owner_ref(s)) {  // duplicate source list entry
      ws.owner_ref(s) = s;
      return true;
    }
    return false;
  }
  bool visit(NodeId, Dist) const { return true; }
  bool relax(NodeId u, NodeId v, Dist nd, Weight) {
    if (!ws.fresh(v)) {
      ws.touch(v);
      ws.dist_ref(v) = nd;
      ws.owner_ref(v) = ws.owner_ref(u);
      return true;
    }
    if (nd < ws.dist_ref(v) ||
        (nd == ws.dist_ref(v) && ws.owner_ref(u) < ws.owner_ref(v))) {
      ws.dist_ref(v) = nd;
      ws.owner_ref(v) = ws.owner_ref(u);
      return true;
    }
    return false;
  }
};

/// (dist, hops) lexicographic relaxation for the S-diameter searches.
struct MinHopsPolicy {
  SpWorkspace& ws;
  bool seed(NodeId s) {
    if (ws.fresh(s)) return false;
    ws.touch(s);
    ws.dist_ref(s) = 0;
    ws.hops_ref(s) = 0;
    return true;
  }
  bool visit(NodeId, Dist) const { return true; }
  bool relax(NodeId u, NodeId v, Dist nd, Weight) {
    const std::uint32_t nh = ws.hops_ref(u) + 1;
    if (!ws.fresh(v)) {
      ws.touch(v);
      ws.dist_ref(v) = nd;
      ws.hops_ref(v) = nh;
      return true;
    }
    if (nd < ws.dist_ref(v) ||
        (nd == ws.dist_ref(v) && nh < ws.hops_ref(v))) {
      ws.dist_ref(v) = nd;
      ws.hops_ref(v) = nh;
      return true;
    }
    return false;
  }
};

}  // namespace

SpWorkspace& thread_workspace() {
  thread_local SpWorkspace ws;
  return ws;
}

void sp_dijkstra(const Graph& g, NodeId source, SpWorkspace& ws,
                 SpEngine engine) {
  const obs::Span span("sp_dijkstra");
  ws.prepare(g.num_nodes());
  DistPolicy policy{ws};
  const NodeId src[1] = {source};
  sp_detail::search(g, ws, src, policy, engine);
}

void sp_multi_source(const Graph& g, std::span<const NodeId> sources,
                     SpWorkspace& ws, SpEngine engine) {
  const obs::Span span("sp_multi_source",
                       static_cast<std::uint64_t>(sources.size()));
  ws.prepare(g.num_nodes());
  ws.ensure_owner();
  OwnerPolicy policy{ws};
  sp_detail::search(g, ws, sources, policy, engine);
}

void sp_hop_bfs(const Graph& g, NodeId source, SpWorkspace& ws) {
  ws.prepare(g.num_nodes());
  ws.ensure_hops();
  std::vector<NodeId>& queue = ws.bfs_queue_;
  queue.clear();
  ws.touch(source);
  ws.dist_ref(source) = 0;
  ws.hops_ref(source) = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::uint32_t nh = ws.hops_ref(u) + 1;
    for (const HalfEdge& he : g.neighbors(u)) {
      if (ws.fresh(he.to)) continue;
      ws.touch(he.to);
      ws.dist_ref(he.to) = nh;  // hop count doubles as the distance
      ws.hops_ref(he.to) = nh;
      queue.push_back(he.to);
    }
  }
}

void sp_dijkstra_min_hops(const Graph& g, NodeId source, SpWorkspace& ws,
                          SpEngine engine) {
  ws.prepare(g.num_nodes());
  ws.ensure_hops();
  MinHopsPolicy policy{ws};
  const NodeId src[1] = {source};
  sp_detail::search(g, ws, src, policy, engine);
}

}  // namespace dsketch
