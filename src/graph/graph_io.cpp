#include "graph/graph_io.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace dsketch {

void write_graph(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

Graph read_graph(std::istream& in) {
  std::string line;
  NodeId n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      if (!(ls >> n >> m)) throw std::runtime_error("bad graph header");
      have_header = true;
      edges.reserve(m);
      continue;
    }
    Edge e{};
    if (!(ls >> e.u >> e.v >> e.weight)) {
      throw std::runtime_error("bad edge line: " + line);
    }
    if (e.u >= n || e.v >= n || e.u == e.v) {
      throw std::runtime_error("edge endpoints out of range: " + line);
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    edges.push_back(e);
  }
  if (!have_header) throw std::runtime_error("empty graph file");
  if (edges.size() != m) throw std::runtime_error("edge count mismatch");
  return Graph::from_edges(n, edges);
}

void write_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_graph(out, g);
}

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(in);
}

namespace {

/// One parsed edge line: endpoints in the source file's id space.
struct RawEdge {
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  Weight w = 1;
};

/// Pulls up to three unsigned integers off a line; returns how many were
/// present. Rejects trailing garbage so a malformed file fails loudly
/// instead of ingesting nonsense.
int parse_uints(const char* p, std::uint64_t out[3]) {
  int count = 0;
  while (count < 3) {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    if (*p == '\0') return count;
    char* end = nullptr;
    const unsigned long long x = std::strtoull(p, &end, 10);
    if (end == p) return -1;
    out[count++] = x;
    p = end;
  }
  while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  return *p == '\0' ? count : -1;
}

Weight checked_weight(std::uint64_t w, const std::string& line) {
  if (w > std::numeric_limits<Weight>::max()) {
    throw std::runtime_error("edge weight overflows 32 bits: " + line);
  }
  return static_cast<Weight>(w);
}

/// True when `line` carries an edge for the given dialect; fills `e` with
/// file-space ids. Non-edge lines (comments, the DIMACS problem line,
/// blanks) return false. Throws on malformed edge lines.
bool parse_edge_line(const std::string& line, IngestFormat format,
                     RawEdge& e) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return false;
  const char c = line[first];
  if (format == IngestFormat::kDimacs) {
    if (c == 'c' || c == 'p') return false;
    if (c != 'a' && c != 'e') {
      throw std::runtime_error("bad DIMACS line: " + line);
    }
    std::uint64_t f[3];
    const int got = parse_uints(line.c_str() + first + 1, f);
    if (got < 2) throw std::runtime_error("bad DIMACS edge line: " + line);
    if (f[0] == 0 || f[1] == 0) {
      throw std::runtime_error("DIMACS ids are 1-indexed: " + line);
    }
    e = {f[0] - 1, f[1] - 1, got == 3 ? checked_weight(f[2], line) : 1};
    return true;
  }
  if (c == '#') return false;
  std::uint64_t f[3];
  const int got = parse_uints(line.c_str() + first, f);
  if (got < 2) throw std::runtime_error("bad edge line: " + line);
  e = {f[0], f[1], got == 3 ? checked_weight(f[2], line) : 1};
  return true;
}

IngestFormat sniff_format(std::istream& in) {
  std::string line;
  IngestFormat format = IngestFormat::kSnap;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const char c = line[first];
    // A DIMACS file leads with 'c' comments and the 'p' problem line;
    // anything starting with a digit (or '#') is the SNAP dialect.
    if (c == 'c' || c == 'p' || c == 'a') format = IngestFormat::kDimacs;
    break;
  }
  in.clear();
  in.seekg(0);
  return format;
}

}  // namespace

Graph ingest_edge_list(std::istream& in, IngestFormat format,
                       IngestStats* stats) {
  if (format == IngestFormat::kAuto) format = sniff_format(in);

  // Pass 1: remap ids to dense [0, n) in first-seen order and count each
  // endpoint's degree. The remap is the only side memory the ingester
  // holds — SNAP files routinely use sparse 7-digit ids.
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<std::size_t> degree;
  IngestStats local;
  const auto id_of = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    if (inserted) {
      if (remap.size() > static_cast<std::size_t>(kInvalidNode)) {
        throw std::runtime_error("edge list has too many distinct nodes");
      }
      degree.push_back(0);
    }
    return it->second;
  };
  std::string line;
  RawEdge e;
  while (std::getline(in, line)) {
    if (!parse_edge_line(line, format, e)) continue;
    if (e.u == e.v) {
      ++local.self_loops;
      continue;
    }
    ++local.edge_lines;
    ++degree[id_of(e.u)];
    ++degree[id_of(e.v)];
  }
  if (local.edge_lines == 0 && remap.empty()) {
    throw std::runtime_error("edge list holds no edges");
  }

  // Pass 2: fill the CSR adjacency in place. from_adjacency sorts each
  // row and collapses duplicates (a SNAP file listing both directions of
  // an edge lands here as two identical half-edge pairs).
  const auto n = static_cast<NodeId>(remap.size());
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + degree[u];
  std::vector<HalfEdge> adj(offsets[n]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  in.clear();
  in.seekg(0);
  if (!in) throw std::runtime_error("edge-list stream is not rewindable");
  while (std::getline(in, line)) {
    if (!parse_edge_line(line, format, e) || e.u == e.v) continue;
    const NodeId u = remap.at(e.u);
    const NodeId v = remap.at(e.v);
    adj[cursor[u]++] = HalfEdge{v, e.w};
    adj[cursor[v]++] = HalfEdge{u, e.w};
  }
  if (stats != nullptr) *stats = local;
  return Graph::from_adjacency(n, std::move(offsets), std::move(adj));
}

Graph ingest_edge_list_file(const std::string& path, IngestFormat format,
                            IngestStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ingest_edge_list(in, format, stats);
}

IngestFormat parse_ingest_format(const std::string& name) {
  if (name == "auto") return IngestFormat::kAuto;
  if (name == "snap") return IngestFormat::kSnap;
  if (name == "dimacs") return IngestFormat::kDimacs;
  throw std::runtime_error("unknown ingest format: " + name +
                           " (expected auto|snap|dimacs)");
}

}  // namespace dsketch
