#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dsketch {

void write_graph(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

Graph read_graph(std::istream& in) {
  std::string line;
  NodeId n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      if (!(ls >> n >> m)) throw std::runtime_error("bad graph header");
      have_header = true;
      edges.reserve(m);
      continue;
    }
    Edge e{};
    if (!(ls >> e.u >> e.v >> e.weight)) {
      throw std::runtime_error("bad edge line: " + line);
    }
    if (e.u >= n || e.v >= n || e.u == e.v) {
      throw std::runtime_error("edge endpoints out of range: " + line);
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    edges.push_back(e);
  }
  if (!have_header) throw std::runtime_error("empty graph file");
  if (edges.size() != m) throw std::runtime_error("edge count mismatch");
  return Graph::from_edges(n, edges);
}

void write_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_graph(out, g);
}

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(in);
}

}  // namespace dsketch
