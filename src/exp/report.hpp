/// \file
/// Report generation: JSON-lines artifacts -> docs/RESULTS.md.
///
/// The repro runner leaves one `cells/<cell-id>.jsonl` file per completed
/// manifest cell. This module re-reads those artifacts and renders one
/// Markdown table per (experiment, table) group, so the perf trajectory in
/// docs/RESULTS.md is always regenerated from data, never hand-edited.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dsketch::exp {

/// One parsed flat JSON object: keys with their values in line order.
/// String values are unescaped; numbers and booleans keep their literal
/// text (which is how the report renders them).
using JsonObject = std::vector<std::pair<std::string, std::string>>;

/// Parses one flat JSON line emitted by util/json_lines.hpp. Returns
/// false on malformed input (nested objects/arrays are out of scope).
bool parse_json_line(const std::string& line, JsonObject& out);

/// First value for `key`, or empty string when absent.
std::string json_value(const JsonObject& object, const std::string& key);

/// Renders the Markdown report from every `cells/*.jsonl` under
/// `out_dir`. `title` names the run (usually the manifest name).
std::string generate_report(const std::string& out_dir,
                            const std::string& title);

/// Writes generate_report() to `path`, creating parent directories.
void write_report(const std::string& out_dir, const std::string& title,
                  const std::string& path);

}  // namespace dsketch::exp
