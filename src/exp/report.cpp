#include "exp/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "experiments.hpp"

namespace dsketch::exp {

namespace {

namespace fs = std::filesystem;

bool skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
  return i < s.size();
}

bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      if (i + 1 >= s.size()) return false;
      out += s[i + 1];
      i += 2;
    } else {
      out += s[i++];
    }
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_literal(const std::string& s, std::size_t& i, std::string& out) {
  const std::size_t begin = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ') ++i;
  out = s.substr(begin, i - begin);
  return !out.empty();
}

}  // namespace

bool parse_json_line(const std::string& line, JsonObject& out) {
  out.clear();
  std::size_t i = 0;
  if (!skip_ws(line, i) || line[i] != '{') return false;
  ++i;
  if (!skip_ws(line, i)) return false;
  if (line[i] == '}') return true;  // empty object
  for (;;) {
    std::string key, value;
    if (!skip_ws(line, i) || !parse_string(line, i, key)) return false;
    if (!skip_ws(line, i) || line[i] != ':') return false;
    ++i;
    if (!skip_ws(line, i)) return false;
    if (line[i] == '"') {
      if (!parse_string(line, i, value)) return false;
    } else {
      if (!parse_literal(line, i, value)) return false;
    }
    out.emplace_back(key, value);
    if (!skip_ws(line, i)) return false;
    if (line[i] == '}') return true;
    if (line[i] != ',') return false;
    ++i;
  }
}

std::string json_value(const JsonObject& object, const std::string& key) {
  for (const auto& [k, v] : object) {
    if (k == key) return v;
  }
  return {};
}

namespace {

std::string escape_md(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

/// Rows of one rendered table, with columns in first-seen order.
struct Table {
  std::vector<std::string> columns;
  std::vector<JsonObject> rows;

  void add(const JsonObject& object) {
    for (const auto& [k, _] : object) {
      if (k == "experiment" || k == "table") continue;
      if (std::find(columns.begin(), columns.end(), k) == columns.end()) {
        columns.push_back(k);
      }
    }
    rows.push_back(object);
  }

  void render(std::ostream& out) const {
    out << "|";
    for (const auto& c : columns) out << " " << escape_md(c) << " |";
    out << "\n|";
    for (std::size_t i = 0; i < columns.size(); ++i) out << "---|";
    out << "\n";
    for (const JsonObject& r : rows) {
      out << "|";
      for (const auto& c : columns) out << " " << escape_md(json_value(r, c))
                                        << " |";
      out << "\n";
    }
  }
};

/// Everything collected for one experiment id.
struct ExperimentReport {
  std::vector<std::string> table_order;
  std::map<std::string, Table> tables;
  std::vector<std::string> notes;        // unique, in order seen
  std::vector<std::string> cells;        // "id (params)" listing
  double wall_seconds = 0;
};

}  // namespace

std::string generate_report(const std::string& out_dir,
                            const std::string& title) {
  std::map<std::string, ExperimentReport> experiments;
  std::size_t files = 0, bad_lines = 0;

  std::vector<fs::path> paths;
  const fs::path cells_dir = fs::path(out_dir) / "cells";
  if (fs::exists(cells_dir)) {
    for (const auto& entry : fs::directory_iterator(cells_dir)) {
      if (entry.path().extension() == ".jsonl") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& path : paths) {
    ++files;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      JsonObject object;
      if (!parse_json_line(line, object)) {
        ++bad_lines;
        continue;
      }
      const std::string exp_id = json_value(object, "experiment");
      if (exp_id.empty()) continue;
      ExperimentReport& report = experiments[exp_id];
      const std::string table = json_value(object, "table");
      const std::string note = json_value(object, "note");
      const std::string status = json_value(object, "status");
      if (!table.empty()) {
        if (report.tables.find(table) == report.tables.end()) {
          report.table_order.push_back(table);
        }
        report.tables[table].add(object);
      } else if (!note.empty()) {
        if (std::find(report.notes.begin(), report.notes.end(), note) ==
            report.notes.end()) {
          report.notes.push_back(note);
        }
      } else if (status == "start") {
        std::string cell = json_value(object, "cell");
        const std::string params = json_value(object, "params");
        if (!params.empty()) cell += " (" + params + ")";
        report.cells.push_back(cell);
      } else if (status == "ok") {
        const std::string seconds = json_value(object, "wall_seconds");
        if (!seconds.empty()) report.wall_seconds += std::stod(seconds);
      }
    }
  }

  std::ostringstream out;
  out << "# Experiment results — " << title << "\n\n";
  out << "Generated by `dsketch repro` from the JSON-lines artifacts under "
      << "`" << out_dir << "`.\n"
      << "Do not edit by hand — rerun the manifest to regenerate "
      << "(see docs/BENCHMARKS.md).\n\n";
  if (files == 0) {
    out << "_No cell artifacts found._\n";
    return out.str();
  }
  if (bad_lines > 0) {
    out << "_Warning: " << bad_lines
        << " malformed JSON line(s) were skipped._\n\n";
  }

  // Registry order first, then any unknown experiment ids alphabetically
  // (robustness against artifacts from a newer binary).
  std::vector<std::string> order;
  for (const auto& exp : bench::experiment_registry()) {
    if (experiments.count(exp.id)) order.push_back(exp.id);
  }
  for (const auto& [id, _] : experiments) {
    if (std::find(order.begin(), order.end(), id) == order.end()) {
      order.push_back(id);
    }
  }

  for (const std::string& id : order) {
    const ExperimentReport& report = experiments.at(id);
    const bench::Experiment* exp = bench::find_experiment(id);
    std::string heading = id;
    std::transform(heading.begin(), heading.end(), heading.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    out << "## " << heading;
    if (exp != nullptr) out << " — " << exp->title;
    out << "\n\n";
    for (const std::string& table : report.table_order) {
      out << "### " << table << "\n\n";
      report.tables.at(table).render(out);
      out << "\n";
    }
    for (const std::string& note : report.notes) {
      out << "> " << note << "\n\n";
    }
    if (!report.cells.empty()) {
      out << "<sub>cells: ";
      for (std::size_t i = 0; i < report.cells.size(); ++i) {
        if (i) out << "; ";
        out << escape_md(report.cells[i]);
      }
      if (report.wall_seconds > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", report.wall_seconds);
        out << " — " << buf << " s";
      }
      out << "</sub>\n\n";
    }
  }
  return out.str();
}

void write_report(const std::string& out_dir, const std::string& title,
                  const std::string& path) {
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw std::runtime_error("cannot write report: " + path);
  out << generate_report(out_dir, title);
}

}  // namespace dsketch::exp
