/// \file
/// Declarative experiment manifests for `dsketch repro`.
///
/// A manifest is a TOML-subset file describing a reproduction run: a named
/// graph corpus plus a list of experiment cells whose parameters may be
/// sweep axes (arrays expand as a cross product). Example:
///
///   name = "quick"
///   seed = 7
///
///   [corpus.er1k]            # one named graph, generator flags as keys
///   topology = "er"
///   n = 1024
///   p = 0.008
///
///   [[cell]]                 # one experiment cell (template)
///   experiment = "e7"
///   graph = "er1k"           # reference into the corpus
///   queries = [20000, 80000] # sweep axis: expands to two cells
///
/// Supported TOML subset: `key = value` pairs (strings, integers, floats,
/// booleans, flat arrays), `[corpus.NAME]` tables, `[[cell]]` array
/// entries, and `#` comments. Unknown keys are rejected with a line number
/// so typos fail loudly instead of silently running a default grid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// The repro harness: manifests, corpus cache, runner, report.
namespace dsketch::exp {

/// FNV-1a 64-bit hash; the content-addressing primitive shared by cell
/// ids and the corpus cache.
std::uint64_t fnv1a64(std::string_view data);

/// Hex rendering of a hash (16 lowercase digits, or fewer when truncated).
std::string hash_hex(std::uint64_t hash, std::size_t digits = 16);

/// One named graph in the corpus: generator parameters as key/value
/// strings (`topology` is required; the rest are generator flags,
/// validated against the generator allowlist).
struct GraphSpec {
  std::string name;  ///< the [corpus.NAME] key cells reference
  std::vector<std::pair<std::string, std::string>> params;  ///< file order

  /// Canonical "k=v k=v" form, keys sorted — the content-address input.
  std::string canonical() const;
};

/// One experiment cell template. Each param maps to one or more values;
/// multi-valued params are sweep axes expanded by expand_cells().
struct CellSpec {
  std::string experiment;  ///< registry id, e.g. "e7"
  std::vector<std::pair<std::string, std::vector<std::string>>>
      params;  ///< key -> sweep values, file order
};

/// A parsed manifest.
struct Manifest {
  std::string name;             ///< run name (output subdirectory)
  std::uint64_t base_seed = 7;  ///< mixed into derived per-cell seeds
  std::vector<GraphSpec> corpus;  ///< named graphs, file order
  std::vector<CellSpec> cells;    ///< cell templates, file order

  /// Corpus entry by name; nullptr when absent.
  const GraphSpec* find_graph(const std::string& graph_name) const;
};

/// Parses manifest text; throws std::runtime_error with a line number on
/// syntax errors, unknown keys, or missing required fields.
Manifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file.
Manifest load_manifest_file(const std::string& path);

/// Serializes back to manifest TOML. Round-trips: parse(to_toml(m))
/// yields an equivalent manifest (same corpus, cells, and expansion).
std::string to_toml(const Manifest& m);

/// A fully resolved cell: one experiment invocation with scalar params.
struct Cell {
  std::string experiment;  ///< registry id, e.g. "e7"
  std::vector<std::pair<std::string, std::string>> params;  ///< sorted

  /// Content-addressed id, "e7-a1b2c3d4e5f6": stable across runs for the
  /// same (experiment, params) — the resume key.
  std::string id() const;
};

/// Expands every cell template's sweep axes into concrete cells (cross
/// product, last axis fastest), preserving manifest order.
std::vector<Cell> expand_cells(const Manifest& m);

/// The built-in quick manifest used by `dsketch repro --quick`; kept in
/// sync with bench/manifests/quick.toml (manifest_test checks the copy
/// parses and expands).
const std::string& default_quick_manifest();

}  // namespace dsketch::exp
