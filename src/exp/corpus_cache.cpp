#include "exp/corpus_cache.hpp"

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace dsketch::exp {

Graph generate_graph(const FlagSet& flags) {
  const std::string topo = flags.get("topology", std::string("er"));
  const auto n = static_cast<NodeId>(flags.get("n", std::int64_t{1024}));
  const auto seed =
      static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
  WeightSpec w{static_cast<Weight>(flags.get("wmin", std::int64_t{1})),
               static_cast<Weight>(flags.get("wmax", std::int64_t{1}))};
  if (topo == "er") {
    return erdos_renyi(n, flags.get("p", 8.0 / n), w, seed);
  }
  if (topo == "grid") {
    const auto rows = static_cast<NodeId>(
        flags.get("rows", static_cast<std::int64_t>(std::max<NodeId>(
                              2, static_cast<NodeId>(std::sqrt(n))))));
    return grid2d(rows, (n + rows - 1) / rows, w, seed);
  }
  if (topo == "ring") return ring(n, w, seed);
  if (topo == "path") return path(n, w, seed);
  if (topo == "ba") {
    return barabasi_albert(
        n, static_cast<NodeId>(flags.get("m", std::int64_t{2})), w, seed);
  }
  if (topo == "ws") {
    return watts_strogatz(n,
                          static_cast<NodeId>(flags.get("m", std::int64_t{3})),
                          flags.get("beta", 0.1), w, seed);
  }
  if (topo == "geometric") {
    return random_geometric(n, flags.get("radius", 0.08), seed, true);
  }
  if (topo == "tree") return random_tree(n, w, seed);
  if (topo == "isp") {
    return isp_two_level(
        n, static_cast<NodeId>(flags.get("pops", std::int64_t{16})), {1, 4},
        w, seed);
  }
  if (topo == "file") {
    // Real graphs: stream a SNAP/DIMACS edge list straight into CSR form
    // (graph/graph_io.hpp). A manifest names one with
    //   [corpus.NAME] topology="file" path="..." [format="snap|dimacs"].
    return ingest_edge_list_file(
        flags.require("path"),
        parse_ingest_format(flags.get("format", std::string("auto"))));
  }
  if (topo == "ring_chords") {
    return ring_with_chords(
        n, static_cast<std::size_t>(flags.get("chords", std::int64_t{n})),
        static_cast<Weight>(flags.get("ring-weight", std::int64_t{1})),
        static_cast<Weight>(flags.get("chord-weight", std::int64_t{1000})),
        seed);
  }
  throw std::runtime_error("unknown topology: " + topo);
}

std::string ensure_graph(const GraphSpec& spec,
                         const std::string& cache_dir) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  const std::string path =
      (fs::path(cache_dir) /
       (spec.name + "-" + hash_hex(fnv1a64(spec.canonical())) + ".graph"))
          .string();
  if (fs::exists(path)) {
    try {
      read_graph_file(path);
      return path;  // valid cached instance
    } catch (const std::exception&) {
      // Truncated or corrupted (e.g. an interrupted earlier run):
      // regenerate below.
    }
  }
  const Graph g = generate_graph(FlagSet(spec.params));
  // Write to a temp name then rename so a concurrent or interrupted run
  // never observes a half-written file under the content-addressed name.
  const std::string tmp = path + ".tmp";
  write_graph_file(tmp, g);
  fs::rename(tmp, path);
  return path;
}

}  // namespace dsketch::exp
