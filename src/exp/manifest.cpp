#include "exp/manifest.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dsketch::exp {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("manifest line " + std::to_string(line_no) + ": " +
                           what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing comment ('#' outside of quotes).
std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (c == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

bool is_bare_key(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool is_bool(const std::string& s) { return s == "true" || s == "false"; }

/// Parses one scalar token: a quoted string (unescaped) or a bare
/// number/boolean literal (kept verbatim).
std::string parse_scalar(const std::string& token, std::size_t line_no) {
  if (token.size() >= 2 && token.front() == '"') {
    if (token.back() != '"' || token.size() < 2) {
      fail(line_no, "unterminated string: " + token);
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < token.size(); ++i) {
      if (token[i] == '\\') {
        if (i + 2 >= token.size() ||
            (token[i + 1] != '"' && token[i + 1] != '\\')) {
          fail(line_no, "unsupported escape in string: " + token);
        }
        out += token[++i];
      } else if (token[i] == '"') {
        fail(line_no, "stray quote inside string: " + token);
      } else {
        out += token[i];
      }
    }
    return out;
  }
  if (is_number(token) || is_bool(token)) return token;
  fail(line_no, "bad value (want a number, true/false, or a quoted "
                "string): " + token);
}

/// Splits an array body on top-level commas, respecting quoted strings.
std::vector<std::string> split_array(const std::string& body,
                                     std::size_t line_no) {
  std::vector<std::string> items;
  std::string current;
  bool in_string = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '"' && (i == 0 || body[i - 1] != '\\')) in_string = !in_string;
    if (c == ',' && !in_string) {
      items.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_string) fail(line_no, "unterminated string in array");
  current = trim(current);
  if (!current.empty()) items.push_back(current);  // trailing comma is ok
  if (items.empty()) fail(line_no, "empty array");
  return items;
}

/// Parses a value into its scalar element(s): arrays become sweep axes.
std::vector<std::string> parse_value(const std::string& raw,
                                     std::size_t line_no) {
  if (!raw.empty() && raw.front() == '[') {
    if (raw.back() != ']') fail(line_no, "unterminated array: " + raw);
    std::vector<std::string> out;
    for (const std::string& item :
         split_array(raw.substr(1, raw.size() - 2), line_no)) {
      out.push_back(parse_scalar(item, line_no));
    }
    return out;
  }
  return {parse_scalar(raw, line_no)};
}

const std::set<std::string>& corpus_keys() {
  // The generator flags exp::generate_graph understands (corpus_cache.cpp).
  static const std::set<std::string> keys = {
      "topology", "n",      "p",           "m",    "beta",
      "radius",   "rows",   "pops",        "chords", "ring-weight",
      "chord-weight", "wmin", "wmax",      "seed"};
  return keys;
}

const std::set<std::string>& cell_keys() {
  // The scale/override flags the experiments read (see bench_e*.cpp and
  // docs/BENCHMARKS.md); `graph` references the corpus by name.
  static const std::set<std::string> keys = {
      "graph", "n",      "nmax",   "p",     "k",     "kmax", "sources",
      "pops",  "queries", "threads", "batch", "shards", "cache", "seed",
      // E14 (dynamic refresh) knobs — see bench_e14_dynamic.cpp.
      "rounds", "updates", "policies", "budget", "unrepaired-budget",
      "rate-threshold", "probe-every", "probe-sources", "round-ms",
      "wmin", "wmax",
      // E15 (congest pipeline): simulator worker lanes — see
      // bench_e15_congest.cpp.
      "sim-threads"};
  return keys;
}

/// Quotes a value for to_toml unless it is a bare number/bool literal.
std::string render_value(const std::string& v) {
  if (is_number(v) || is_bool(v)) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash, std::size_t digits) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < digits && i < 16; ++i) {
    out += kHex[(hash >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

std::string GraphSpec::canonical() const {
  auto sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    out += k;
    out += '\x1f';
    out += v;
    out += '\x1e';
  }
  return out;
}

const GraphSpec* Manifest::find_graph(const std::string& graph_name) const {
  for (const GraphSpec& spec : corpus) {
    if (spec.name == graph_name) return &spec;
  }
  return nullptr;
}

Manifest parse_manifest(const std::string& text) {
  Manifest m;
  enum class Section { kTop, kCorpus, kCell };
  Section section = Section::kTop;
  bool seen_name = false;

  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line == "[[cell]]") {
        section = Section::kCell;
        m.cells.emplace_back();
        continue;
      }
      if (line.rfind("[corpus.", 0) == 0 && line.back() == ']') {
        const std::string name = line.substr(8, line.size() - 9);
        if (!is_bare_key(name)) fail(line_no, "bad corpus name: " + name);
        if (m.find_graph(name) != nullptr) {
          fail(line_no, "duplicate corpus entry: " + name);
        }
        section = Section::kCorpus;
        m.corpus.push_back(GraphSpec{name, {}});
        continue;
      }
      fail(line_no, "unknown section " + line +
                        " (want [corpus.NAME] or [[cell]])");
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected `key = value`: " + line);
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string raw_value = trim(line.substr(eq + 1));
    if (!is_bare_key(key)) fail(line_no, "bad key: " + key);
    if (raw_value.empty()) fail(line_no, "missing value for key: " + key);
    const std::vector<std::string> values = parse_value(raw_value, line_no);

    switch (section) {
      case Section::kTop: {
        if (values.size() != 1) {
          fail(line_no, "top-level key " + key + " must be a scalar");
        }
        if (key == "name") {
          m.name = values[0];
          seen_name = true;
        } else if (key == "seed") {
          if (!is_number(values[0])) fail(line_no, "seed must be a number");
          m.base_seed = std::stoull(values[0]);
        } else {
          fail(line_no, "unknown top-level key: " + key +
                            " (want name or seed)");
        }
        break;
      }
      case Section::kCorpus: {
        if (values.size() != 1) {
          fail(line_no, "corpus key " + key + " must be a scalar");
        }
        if (corpus_keys().count(key) == 0) {
          fail(line_no, "unknown corpus key: " + key);
        }
        GraphSpec& spec = m.corpus.back();
        for (const auto& [k, _] : spec.params) {
          if (k == key) fail(line_no, "duplicate corpus key: " + key);
        }
        spec.params.emplace_back(key, values[0]);
        break;
      }
      case Section::kCell: {
        CellSpec& cell = m.cells.back();
        if (key == "experiment") {
          if (values.size() != 1) {
            fail(line_no, "experiment must be a single id");
          }
          if (!cell.experiment.empty()) {
            fail(line_no, "duplicate experiment key");
          }
          cell.experiment = values[0];
          break;
        }
        if (cell_keys().count(key) == 0) {
          fail(line_no, "unknown cell key: " + key);
        }
        for (const auto& [k, _] : cell.params) {
          if (k == key) fail(line_no, "duplicate cell key: " + key);
        }
        cell.params.emplace_back(key, values);
        break;
      }
    }
  }

  if (!seen_name || m.name.empty()) {
    throw std::runtime_error("manifest: missing required top-level `name`");
  }
  for (const GraphSpec& spec : m.corpus) {
    bool has_topology = false;
    for (const auto& [k, _] : spec.params) has_topology |= k == "topology";
    if (!has_topology) {
      throw std::runtime_error("manifest: corpus entry " + spec.name +
                               " is missing required key `topology`");
    }
  }
  if (m.cells.empty()) {
    throw std::runtime_error("manifest: no [[cell]] entries");
  }
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    if (m.cells[i].experiment.empty()) {
      throw std::runtime_error("manifest: cell " + std::to_string(i + 1) +
                               " is missing required key `experiment`");
    }
    for (const auto& [key, values] : m.cells[i].params) {
      if (key != "graph") continue;
      for (const std::string& ref : values) {
        if (m.find_graph(ref) == nullptr) {
          throw std::runtime_error("manifest: cell " + std::to_string(i + 1) +
                                   " references unknown graph `" + ref + "`");
        }
      }
    }
  }
  return m;
}

Manifest load_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str());
}

std::string to_toml(const Manifest& m) {
  std::ostringstream out;
  out << "name = " << render_value(m.name) << "\n";
  out << "seed = " << m.base_seed << "\n";
  for (const GraphSpec& spec : m.corpus) {
    out << "\n[corpus." << spec.name << "]\n";
    for (const auto& [k, v] : spec.params) {
      out << k << " = " << render_value(v) << "\n";
    }
  }
  for (const CellSpec& cell : m.cells) {
    out << "\n[[cell]]\n";
    out << "experiment = " << render_value(cell.experiment) << "\n";
    for (const auto& [k, values] : cell.params) {
      out << k << " = ";
      if (values.size() == 1) {
        out << render_value(values[0]);
      } else {
        out << "[";
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (i) out << ", ";
          out << render_value(values[i]);
        }
        out << "]";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string Cell::id() const {
  std::string canonical = experiment;
  canonical += '\x1e';
  for (const auto& [k, v] : params) {
    canonical += k;
    canonical += '\x1f';
    canonical += v;
    canonical += '\x1e';
  }
  return experiment + "-" + hash_hex(fnv1a64(canonical), 12);
}

std::vector<Cell> expand_cells(const Manifest& m) {
  std::vector<Cell> out;
  std::set<std::string> seen;
  for (const CellSpec& spec : m.cells) {
    // Cross product over sweep axes, last axis fastest.
    std::vector<std::vector<std::pair<std::string, std::string>>> combos = {
        {}};
    for (const auto& [key, values] : spec.params) {
      std::vector<std::vector<std::pair<std::string, std::string>>> next;
      next.reserve(combos.size() * values.size());
      for (const auto& combo : combos) {
        for (const std::string& v : values) {
          auto extended = combo;
          extended.emplace_back(key, v);
          next.push_back(std::move(extended));
        }
      }
      combos = std::move(next);
    }
    for (auto& combo : combos) {
      Cell cell;
      cell.experiment = spec.experiment;
      std::sort(combo.begin(), combo.end());
      cell.params = std::move(combo);
      // Identical cells would write the same file with the same seed;
      // running them twice is pure waste, so duplicates collapse.
      if (seen.insert(cell.id()).second) out.push_back(std::move(cell));
    }
  }
  return out;
}

const std::string& default_quick_manifest() {
  static const std::string manifest = R"(# Quick reproduction grid: >= 4 distinct experiments in under a minute.
# Mirrors bench/manifests/quick.toml (manifest_test keeps them in sync).
name = "quick"
seed = 7

[corpus.er512]
topology = "er"
n = 512
p = 0.015
wmin = 1
wmax = 12
seed = 42

[[cell]]
experiment = "e2"
nmax = 512
kmax = 3

[[cell]]
experiment = "e4"
graph = "er512"
sources = 8

[[cell]]
experiment = "e7"
graph = "er512"
queries = 20000

[[cell]]
experiment = "e11"
graph = "er512"
sources = 8

[[cell]]
experiment = "e12"
graph = "er512"
queries = 30000
threads = "1,2"
batch = "1024,4096"

[[cell]]
experiment = "e13"
graph = "er512"
sources = 8
threads = "1,0"

[[cell]]
experiment = "e14"
graph = "er512"
rounds = 3
updates = 6
budget = 12
unrepaired-budget = 4
sources = 4

[[cell]]
experiment = "e15"
graph = "er512"
k = 3
sim-threads = 0
queries = 2000
)";
  return manifest;
}

}  // namespace dsketch::exp
