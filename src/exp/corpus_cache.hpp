/// \file
/// Content-addressed graph corpus for the repro harness.
///
/// A manifest names its graphs once ([corpus.NAME] tables); every cell
/// that references NAME shares one on-disk instance. Files are addressed
/// by the hash of the generator parameters, so re-running a manifest (or
/// two manifests sharing a spec) generates each graph exactly once, and
/// editing a spec automatically produces a fresh file instead of silently
/// reusing a stale one.
#pragma once

#include <string>

#include "exp/manifest.hpp"
#include "graph/graph.hpp"
#include "util/flags.hpp"

namespace dsketch::exp {

/// Builds a graph from generator flags (--topology er|grid|ring|path|ba|
/// ws|geometric|tree|isp|ring_chords plus per-topology parameters).
/// Shared by `dsketch gen` and the corpus cache so a manifest spec and
/// the CLI agree on semantics. Throws on an unknown topology.
Graph generate_graph(const FlagSet& flags);

/// Ensures the graph described by `spec` exists under `cache_dir` and
/// returns its path (`<cache_dir>/<name>-<hash16>.graph`). The file is
/// regenerated when missing or unreadable; a valid cached file is reused
/// without regeneration. Creates `cache_dir` if needed.
std::string ensure_graph(const GraphSpec& spec, const std::string& cache_dir);

}  // namespace dsketch::exp
