/// \file
/// The repro runner: manifest -> parallel, resumable experiment cells.
///
/// Expands a manifest into concrete cells (exp/manifest.hpp), materializes
/// the graph corpus once (exp/corpus_cache.hpp), then executes each cell's
/// experiment in-process, writing one JSON-lines artifact per cell under
/// `<out_dir>/cells/`. Independent cells run in parallel on a dynamic
/// worker queue; determinism comes from the experiments themselves (all
/// randomness is seeded) plus per-cell derived seeds, so thread count and
/// scheduling never change results.
///
/// Resume semantics: a cell's artifact is written to a temp file and
/// renamed only after the experiment succeeds, with a final
/// `status = "ok"` footer line. A later run skips any cell whose artifact
/// exists and validates (same cell id, ok footer); `force` reruns
/// everything. Failed cells leave a `.failed` file for debugging and are
/// retried on the next run.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/manifest.hpp"

namespace dsketch::exp {

/// Runner configuration.
struct RunOptions {
  std::string out_dir;           ///< artifact root (required)
  std::string corpus_dir;        ///< graph cache; default out_dir + "/corpus"
  std::size_t threads = 0;       ///< parallel cells; 0 = hardware concurrency
  bool resume = true;            ///< skip cells with valid artifacts
  bool force = false;            ///< rerun everything (overrides resume)
  std::ostream* progress = nullptr;  ///< per-cell progress lines (may be null)
};

/// Outcome of one cell.
struct CellResult {
  /// How the cell ended.
  enum class Status {
    kRan,      ///< executed this run and succeeded
    kSkipped,  ///< valid artifact already existed (resume)
    kFailed    ///< executed and failed; artifact kept as `.failed`
  };
  std::string id;          ///< content-addressed cell id
  std::string experiment;  ///< registry id, e.g. "e7"
  std::string out_path;    ///< artifact path (cells/<id>.jsonl)
  Status status = Status::kRan;  ///< how the cell ended
  double seconds = 0;            ///< cell wall time (0 when skipped)
  std::string error;             ///< set when status == kFailed
};

/// Outcome of a whole manifest run.
struct RunSummary {
  std::vector<CellResult> cells;  ///< one entry per expanded cell
  std::size_t ran = 0;            ///< cells executed this run
  std::size_t skipped = 0;        ///< cells satisfied by resume
  std::size_t failed = 0;         ///< cells that errored
  double wall_seconds = 0;        ///< whole-run wall time

  /// True when no cell failed.
  bool ok() const { return failed == 0; }
};

/// Runs every cell of the manifest. Throws on setup errors (unknown
/// experiment id, unwritable out_dir); per-cell experiment failures are
/// reported in the summary instead of thrown, so one broken cell never
/// discards a grid's worth of completed work.
RunSummary run_manifest(const Manifest& manifest, const RunOptions& options);

/// True when `path` holds a complete artifact for `cell_id`: parseable
/// final line with status "ok" and a matching cell id (the resume check).
bool cell_output_valid(const std::string& path, const std::string& cell_id);

/// The artifact path for a cell id under an output root.
std::string cell_output_path(const std::string& out_dir,
                             const std::string& cell_id);

}  // namespace dsketch::exp
