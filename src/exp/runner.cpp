#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/corpus_cache.hpp"
#include "exp/report.hpp"
#include "experiments.hpp"
#include "util/json_lines.hpp"
#include "util/timer.hpp"

namespace dsketch::exp {

namespace {

namespace fs = std::filesystem;

/// One fully prepared unit of work.
struct Job {
  Cell cell;
  const bench::Experiment* experiment = nullptr;
  std::vector<std::pair<std::string, std::string>> flags;  ///< resolved
  std::string out_path;
  std::string tmp_dir;
  std::uint64_t seed = 0;  ///< the seed actually passed (explicit or derived)
};

std::string last_nonempty_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line, last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  return last;
}

std::string render_params(
    const std::vector<std::pair<std::string, std::string>>& params) {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += " ";
    out += k + "=" + v;
  }
  return out;
}

/// Derived per-cell seed: stable under reordering and thread count, mixed
/// from the manifest's base seed and the cell's content address.
std::uint64_t derive_seed(std::uint64_t base_seed, const std::string& id) {
  return (base_seed + 1) * 0x9e3779b97f4a7c15ULL ^ fnv1a64(id);
}

void run_job(const Job& job, CellResult& result) {
  Timer timer;
  fs::create_directories(job.tmp_dir);

  std::ostringstream body;
  {
    bench::JsonLine header;
    header.add("cell", job.cell.id())
        .add("experiment", job.cell.experiment)
        .add("params", render_params(job.cell.params))
        .add("status", "start");
    header.emit(body);
  }
  int exit_code = 0;
  std::string error;
  try {
    exit_code = job.experiment->run(FlagSet(job.flags), body);
    if (exit_code != 0) {
      error = "experiment returned exit code " + std::to_string(exit_code);
    }
  } catch (const std::exception& e) {
    exit_code = 1;
    error = e.what();
  }
  result.seconds = timer.seconds();

  bench::JsonLine footer;
  footer.add("cell", job.cell.id())
      .add("experiment", job.cell.experiment)
      .add("status", exit_code == 0 ? "ok" : "failed")
      .add("exit_code", exit_code)
      .add("seed", job.seed)
      .add("wall_seconds", result.seconds);
  if (!error.empty()) footer.add("error", error);
  footer.emit(body);

  // Write whole-file-at-once to a temp name; only a successful cell gets
  // renamed to the resumable artifact name.
  const std::string tmp_path = job.out_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    if (!out) throw std::runtime_error("cannot write " + tmp_path);
    out << body.str();
  }
  std::error_code ec;
  fs::remove_all(job.tmp_dir, ec);
  if (exit_code == 0) {
    fs::rename(tmp_path, job.out_path);
    result.status = CellResult::Status::kRan;
  } else {
    fs::rename(tmp_path, job.out_path + ".failed");
    // A stale success artifact from an earlier run must not survive a
    // failing rerun: it would feed outdated rows into the report and
    // make the next resume skip the now-broken cell.
    fs::remove(job.out_path, ec);
    result.status = CellResult::Status::kFailed;
    result.error = error;
  }
}

}  // namespace

std::string cell_output_path(const std::string& out_dir,
                             const std::string& cell_id) {
  return (fs::path(out_dir) / "cells" / (cell_id + ".jsonl")).string();
}

bool cell_output_valid(const std::string& path, const std::string& cell_id) {
  const std::string last = last_nonempty_line(path);
  if (last.empty()) return false;
  JsonObject object;
  if (!parse_json_line(last, object)) return false;
  return json_value(object, "status") == "ok" &&
         json_value(object, "cell") == cell_id;
}

RunSummary run_manifest(const Manifest& manifest, const RunOptions& options) {
  if (options.out_dir.empty()) {
    throw std::runtime_error("run_manifest: out_dir is required");
  }
  Timer total;
  const std::string corpus_dir = options.corpus_dir.empty()
                                     ? (fs::path(options.out_dir) / "corpus")
                                           .string()
                                     : options.corpus_dir;
  fs::create_directories(fs::path(options.out_dir) / "cells");

  const std::vector<Cell> cells = expand_cells(manifest);

  // Materialize every referenced corpus graph once, up front (cells then
  // share the files read-only).
  std::map<std::string, std::string> graph_paths;
  for (const Cell& cell : cells) {
    for (const auto& [key, value] : cell.params) {
      if (key != "graph" || graph_paths.count(value)) continue;
      const GraphSpec* spec = manifest.find_graph(value);
      if (spec == nullptr) {
        throw std::runtime_error("cell " + cell.id() +
                                 " references unknown graph `" + value + "`");
      }
      graph_paths[value] = ensure_graph(*spec, corpus_dir);
    }
  }

  // Prepare jobs; resolve graph names to paths and inject the runner-
  // provided flags (--tmpdir for scratch files, --seed for experiments
  // that accept one).
  std::vector<Job> jobs;
  RunSummary summary;
  summary.cells.resize(cells.size());
  std::mutex io_mutex;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    CellResult& result = summary.cells[i];
    result.id = cell.id();
    result.experiment = cell.experiment;
    result.out_path = cell_output_path(options.out_dir, cell.id());

    const bench::Experiment* exp = bench::find_experiment(cell.experiment);
    if (exp == nullptr) {
      throw std::runtime_error("manifest cell " + cell.id() +
                               ": unknown experiment `" + cell.experiment +
                               "` (known: e1..e14)");
    }
    if (!options.force && options.resume &&
        cell_output_valid(result.out_path, cell.id())) {
      result.status = CellResult::Status::kSkipped;
      continue;
    }

    Job job;
    job.cell = cell;
    job.experiment = exp;
    job.out_path = result.out_path;
    job.tmp_dir =
        (fs::path(options.out_dir) / "tmp" / cell.id()).string();
    bool has_seed = false;
    for (const auto& [key, value] : cell.params) {
      if (key == "graph") {
        job.flags.emplace_back(key, graph_paths.at(value));
      } else {
        job.flags.emplace_back(key, value);
      }
      if (key == "seed") {
        has_seed = true;
        // Throws on a non-numeric seed here, on the main thread, before
        // any cell has run.
        job.seed = std::stoull(value);
      }
    }
    job.flags.emplace_back("tmpdir", job.tmp_dir);
    if (!has_seed) {
      job.seed = derive_seed(manifest.base_seed, cell.id());
      job.flags.emplace_back("seed", std::to_string(job.seed));
    }
    jobs.push_back(std::move(job));
  }

  // Dynamic work queue: heterogeneous cell runtimes make static chunking
  // (ThreadPool::parallel_for) a poor fit, so workers pull the next
  // pending job until the queue drains.
  std::map<std::string, CellResult*> result_by_id;
  for (CellResult& r : summary.cells) result_by_id[r.id] = &r;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  const std::size_t workers = std::max<std::size_t>(
      1, std::min<std::size_t>(
             jobs.size(),
             options.threads != 0 ? options.threads
                                  : std::thread::hardware_concurrency()));
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      const Job& job = jobs[i];
      CellResult& result = *result_by_id.at(job.cell.id());
      try {
        run_job(job, result);
      } catch (const std::exception& e) {
        // run_job already contains the experiment's own try/catch; what
        // lands here is artifact I/O (disk full, out_dir removed). An
        // exception escaping a worker thread would std::terminate the
        // whole grid, so degrade to a failed cell instead.
        result.status = CellResult::Status::kFailed;
        result.error = e.what();
      }
      const std::size_t finished = done.fetch_add(1) + 1;
      if (options.progress != nullptr) {
        const std::string status =
            result.status == CellResult::Status::kFailed
                ? "FAILED (" + result.error + ")"
                : "ok";
        std::lock_guard<std::mutex> lock(io_mutex);
        *options.progress << "[" << finished << "/" << jobs.size() << "] "
                          << job.cell.id() << " " << status << " ("
                          << static_cast<int>(result.seconds * 1000)
                          << " ms)\n";
      }
    }
  };
  if (jobs.size() <= 1 || workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
    worker();
    for (auto& t : pool) t.join();
  }

  for (const CellResult& r : summary.cells) {
    switch (r.status) {
      case CellResult::Status::kRan: ++summary.ran; break;
      case CellResult::Status::kSkipped: ++summary.skipped; break;
      case CellResult::Status::kFailed: ++summary.failed; break;
    }
  }
  std::error_code ec;
  fs::remove_all(fs::path(options.out_dir) / "tmp", ec);
  summary.wall_seconds = total.seconds();
  return summary;
}

}  // namespace dsketch::exp
