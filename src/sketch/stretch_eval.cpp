#include "sketch/stretch_eval.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

std::vector<bool> far_flags(const std::vector<Dist>& row, NodeId source,
                            double epsilon) {
  const std::size_t n = row.size();
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return a < b;
  });
  // rank[v] = number of nodes strictly closer to the source than v
  // (ties broken by id are counted as closer only if their distance is
  // strictly smaller — matching the paper's |{w : d(u,w) < d(u,v)}|).
  std::vector<std::size_t> strictly_closer(n, 0);
  std::size_t below = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && row[order[i]] != row[order[i - 1]]) below = i;
    strictly_closer[order[i]] = below;
  }
  const double threshold = epsilon * static_cast<double>(n);
  std::vector<bool> far(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (v == source) continue;
    far[v] = static_cast<double>(strictly_closer[v]) >= threshold;
  }
  return far;
}

StretchReport evaluate_stretch(const Graph& g, const SampledGroundTruth& gt,
                               const Estimator& est, const EvalOptions& opts) {
  const NodeId n = g.num_nodes();
  const std::size_t rows = gt.num_rows();

  // Draw every row's target sample up front from the single rng stream
  // (bit-identical to the old serial loop), then evaluate rows in
  // parallel — the estimators are pure reads of built sketches — and
  // merge per-row reports in row order so sample insertion order, and
  // thus every percentile and accumulator, matches a serial run exactly.
  Rng rng(opts.seed);
  std::vector<std::vector<NodeId>> targets(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    const NodeId s = gt.sources()[row];
    if (opts.max_pairs_per_source == 0 || opts.max_pairs_per_source >= n - 1) {
      targets[row].reserve(n - 1);
      for (NodeId v = 0; v < n; ++v) {
        if (v != s) targets[row].push_back(v);
      }
    } else {
      for (std::size_t i = 0; i < opts.max_pairs_per_source; ++i) {
        NodeId v = static_cast<NodeId>(rng.below(n));
        if (v == s) v = (v + 1) % n;
        targets[row].push_back(v);
      }
    }
  }

  std::vector<StretchReport> per_row(rows);
  global_pool().for_each_dynamic(rows, [&](std::size_t, std::size_t row) {
    StretchReport& report = per_row[row];
    const NodeId s = gt.sources()[row];
    std::vector<Dist> dist_row(n);
    for (NodeId v = 0; v < n; ++v) dist_row[v] = gt.dist(row, v);
    std::vector<bool> far;
    if (opts.epsilon > 0.0) far = far_flags(dist_row, s, opts.epsilon);

    for (const NodeId v : targets[row]) {
      const Dist d = dist_row[v];
      // No finite stretch exists for unreachable (or zero-distance)
      // pairs; skip them consistently for every estimator rather than
      // letting oracles without path support score est/∞ as stretch.
      if (d == kInfDist || d == 0) {
        ++report.skipped_no_ground_truth;
        continue;
      }
      const Dist e = est(s, v);
      if (e == kInfDist) {
        ++report.unreachable;
        continue;
      }
      const double stretch =
          static_cast<double>(e) / static_cast<double>(d);
      if (e < d) ++report.underestimates;
      report.all.add(stretch);
      if (opts.epsilon > 0.0) {
        if (far[v]) {
          report.far_only.add(stretch);
        } else {
          report.near_only.add(stretch);
        }
      }
    }
  });

  StretchReport report;
  for (const StretchReport& r : per_row) {
    report.all.merge(r.all);
    report.far_only.merge(r.far_only);
    report.near_only.merge(r.near_only);
    report.underestimates += r.underestimates;
    report.unreachable += r.unreachable;
    report.skipped_no_ground_truth += r.skipped_no_ground_truth;
  }
  return report;
}

StretchReport evaluate_stretch(const Graph& g, const SampledGroundTruth& gt,
                               const DistanceOracle& oracle,
                               const EvalOptions& opts) {
  return evaluate_stretch(
      g, gt, [&oracle](NodeId u, NodeId v) { return oracle.query(u, v); },
      opts);
}

}  // namespace dsketch
