#include "sketch/density_net.hpp"

#include <algorithm>
#include <cmath>

#include "graph/shortest_paths.hpp"
#include "graph/sp_kernel.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

double density_net_probability(NodeId n, double epsilon) {
  DS_CHECK(n >= 2 && epsilon > 0.0);
  const double p =
      5.0 * std::log(static_cast<double>(n)) / (epsilon * static_cast<double>(n));
  return std::min(1.0, p);
}

std::vector<NodeId> sample_density_net(NodeId n, double epsilon,
                                       std::uint64_t seed) {
  const double p = density_net_probability(n, epsilon);
  Rng rng(seed);
  std::vector<NodeId> net;
  for (NodeId u = 0; u < n; ++u) {
    if (rng.bernoulli(p)) net.push_back(u);
  }
  // An empty net breaks every downstream construction and happens with
  // probability < 1/n^5; resample deterministically if it does.
  std::uint64_t bump = 1;
  while (net.empty()) {
    Rng retry(seed + bump++);
    for (NodeId u = 0; u < n; ++u) {
      if (retry.bernoulli(p)) net.push_back(u);
    }
  }
  return net;
}

std::vector<Dist> density_radii(const Graph& g, double epsilon) {
  const NodeId n = g.num_nodes();
  const std::size_t need = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(epsilon * static_cast<double>(n))));
  std::vector<Dist> radii(n);
  // One SSSP per node, source-parallel over the kernel; radii[u] writes
  // are index-disjoint, so the result is thread-count independent.
  global_pool().for_each_dynamic(n, [&](std::size_t, std::size_t u) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, static_cast<NodeId>(u), ws);
    std::vector<Dist> d = ws.export_dist();
    std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(need, d.size()) - 1),
                     d.end());
    radii[u] = d[std::min(need, d.size()) - 1];
  });
  return radii;
}

NodeId count_density_net_violations(const Graph& g,
                                    const std::vector<NodeId>& net,
                                    double epsilon) {
  const std::vector<Dist> radii = density_radii(g, epsilon);
  const MultiSourceResult ms = multi_source_dijkstra(g, net);
  NodeId violations = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (ms.dist[u] > radii[u]) ++violations;
  }
  return violations;
}

}  // namespace dsketch
