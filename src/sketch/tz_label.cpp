#include "sketch/tz_label.hpp"

#include <algorithm>
#include <cstddef>

#include "util/assert.hpp"

namespace dsketch {

void TzLabel::sort_bunch() {
  std::sort(bunch_.begin(), bunch_.end(),
            [](const BunchEntry& a, const BunchEntry& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.node < b.node;
            });
  index_.clear();
  for (std::size_t i = 0; i < bunch_.size(); ++i) {
    index_.emplace(bunch_[i].node, i);
  }
}

bool operator==(const TzLabel& a, const TzLabel& b) {
  if (a.owner_ != b.owner_ || a.pivots_.size() != b.pivots_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pivots_.size(); ++i) {
    if (!(a.pivots_[i] == b.pivots_[i])) return false;
  }
  return a.bunch_ == b.bunch_;
}

Dist tz_query(const TzLabel& lu, const TzLabel& lv) {
  return tz_query_trace(lu, lv).estimate;
}

Dist tz_query_exhaustive(const TzLabel& lu, const TzLabel& lv) {
  if (lu.owner() == lv.owner()) return 0;
  const TzLabel& small = lu.bunch().size() <= lv.bunch().size() ? lu : lv;
  const TzLabel& large = lu.bunch().size() <= lv.bunch().size() ? lv : lu;
  Dist best = kInfDist;
  for (const BunchEntry& e : small.bunch()) {
    const Dist other = large.bunch_dist(e.node);
    if (other == kInfDist) continue;
    best = std::min(best, e.dist + other);
  }
  return best;
}

TzQueryTrace tz_query_trace(const TzLabel& lu, const TzLabel& lv) {
  TzQueryTrace t;
  if (lu.owner() == lv.owner()) {
    t.estimate = 0;
    return t;
  }
  const std::uint32_t k = std::min(lu.levels(), lv.levels());
  for (std::uint32_t i = 0; i < k; ++i) {
    // p_i(u) in B(v)?
    const DistKey& pu = lu.pivot(i);
    if (pu.id != kInvalidNode) {
      const Dist dv = lv.bunch_dist(pu.id);
      if (dv != kInfDist) {
        t.estimate = pu.dist + dv;
        t.level = i;
        t.used_u_pivot = true;
        return t;
      }
    }
    // p_i(v) in B(u)?
    const DistKey& pv = lv.pivot(i);
    if (pv.id != kInvalidNode) {
      const Dist du = lu.bunch_dist(pv.id);
      if (du != kInfDist) {
        t.estimate = pv.dist + du;
        t.level = i;
        t.used_u_pivot = false;
        return t;
      }
    }
  }
  return t;  // malformed / disconnected: kInfDist
}

}  // namespace dsketch
