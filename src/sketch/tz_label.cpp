#include "sketch/tz_label.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "util/assert.hpp"

namespace dsketch {

namespace {

bool bunch_order(const BunchEntry& a, const BunchEntry& b) {
  if (a.node != b.node) return a.node < b.node;
  return a.level < b.level;
}

}  // namespace

bool operator==(const LabelView& a, const LabelView& b) {
  if (a.owner != b.owner || a.levels != b.levels || a.count != b.count) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.levels; ++i) {
    if (!(a.pivots[i] == b.pivots[i])) return false;
  }
  for (std::uint32_t i = 0; i < a.count; ++i) {
    if (!(a.bunch[i] == b.bunch[i])) return false;
  }
  return true;
}

TzLabelBuilder TzLabelBuilder::from_view(const LabelView& v) {
  TzLabelBuilder b(v.owner, v.levels);
  for (std::uint32_t i = 0; i < v.levels; ++i) {
    b.pivots_[i] = v.pivots[i];
  }
  b.bunch_.assign(v.bunch, v.bunch + v.count);
  b.sorted_ = std::is_sorted(b.bunch_.begin(), b.bunch_.end(), bunch_order);
  return b;
}

void TzLabelBuilder::sort_bunch() {
  if (!sorted_) {
    std::sort(bunch_.begin(), bunch_.end(), bunch_order);
    sorted_ = true;
  }
}

LabelView TzLabelBuilder::view() const {
  DS_CHECK(sorted_);
  LabelView v;
  v.owner = owner_;
  v.levels = static_cast<std::uint32_t>(pivots_.size());
  v.count = static_cast<std::uint32_t>(bunch_.size());
  v.pivots = pivots_.data();
  v.bunch = bunch_.data();
  return v;
}

LabelArena LabelArena::from_builders(std::vector<TzLabelBuilder> builders) {
  LabelArena arena;
  if (builders.empty()) return arena;
  arena.k_ = builders.front().levels();
  arena.slots_.resize(builders.size());
  std::size_t total = 0;
  for (const TzLabelBuilder& b : builders) {
    DS_CHECK(b.levels() == arena.k_);
    total += b.bunch().size();
  }
  arena.pivots_.reserve(builders.size() * static_cast<std::size_t>(arena.k_));
  arena.entries_.reserve(total);
  for (NodeId u = 0; u < builders.size(); ++u) {
    TzLabelBuilder& b = builders[u];
    DS_CHECK(b.owner() == u);
    b.sort_bunch();
    for (std::uint32_t i = 0; i < arena.k_; ++i) {
      arena.pivots_.push_back(b.pivot(i));
    }
    Slot& s = arena.slots_[u];
    s.begin = arena.entries_.size();
    s.count = static_cast<std::uint32_t>(b.bunch().size());
    arena.entries_.insert(arena.entries_.end(), b.bunch().begin(),
                          b.bunch().end());
  }
  return arena;
}

double LabelArena::mean_size_words() const {
  if (slots_.empty()) return 0.0;
  std::size_t total = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    total += size_words(u);
  }
  return static_cast<double>(total) / static_cast<double>(slots_.size());
}

std::size_t LabelArena::total_entries() const {
  std::size_t total = 0;
  for (const Slot& s : slots_) {
    total += s.count;
  }
  return total;
}

void LabelArena::replace(NodeId u, const TzLabelBuilder& b) {
  DS_CHECK(b.owner() == u);
  DS_CHECK(b.levels() == k_);
  DS_CHECK(b.sorted());
  for (std::uint32_t i = 0; i < k_; ++i) {
    pivots_[static_cast<std::size_t>(u) * k_ + i] = b.pivot(i);
  }
  Slot& s = slots_[u];
  const std::uint32_t count = static_cast<std::uint32_t>(b.bunch().size());
  if (count <= s.count) {
    std::copy(b.bunch().begin(), b.bunch().end(),
              entries_.begin() + static_cast<std::ptrdiff_t>(s.begin));
  } else {
    s.begin = entries_.size();
    entries_.insert(entries_.end(), b.bunch().begin(), b.bunch().end());
  }
  s.count = count;
  ++generation_;
}

bool operator==(const LabelArena& a, const LabelArena& b) {
  if (a.num_nodes() != b.num_nodes() || a.k_ != b.k_) return false;
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    if (!(a.view(u) == b.view(u))) return false;
  }
  return true;
}

Dist tz_query(const LabelView& lu, const LabelView& lv) {
  return tz_query_trace(lu, lv).estimate;
}

Dist tz_query_exhaustive(const LabelView& lu, const LabelView& lv) {
  if (lu.owner == lv.owner) return 0;
  Dist best = kInfDist;
  const BunchEntry* a = lu.bunch;
  const BunchEntry* const ae = a + lu.count;
  const BunchEntry* b = lv.bunch;
  const BunchEntry* const be = b + lv.count;
  while (a != ae && b != be) {
    if (a->node < b->node) {
      ++a;
    } else if (b->node < a->node) {
      ++b;
    } else {
      // Common member. Duplicate runs (one node at several levels) carry
      // one distance per side; take the run minimum of each.
      const NodeId w = a->node;
      Dist du = a->dist;
      for (++a; a != ae && a->node == w; ++a) {
        du = a->dist < du ? a->dist : du;
      }
      Dist dv = b->dist;
      for (++b; b != be && b->node == w; ++b) {
        dv = b->dist < dv ? b->dist : dv;
      }
      const Dist sum = du + dv;
      best = sum < best ? sum : best;
    }
  }
  return best;
}

TzQueryTrace tz_query_trace(const LabelView& lu, const LabelView& lv) {
  TzQueryTrace t;
  if (lu.owner == lv.owner) {
    t.estimate = 0;
    return t;
  }
  const std::uint32_t k = lu.levels < lv.levels ? lu.levels : lv.levels;
  for (std::uint32_t i = 0; i < k; ++i) {
    // p_i(u) in B(v)?
    const DistKey& pu = lu.pivot(i);
    if (pu.id != kInvalidNode) {
      const Dist dv = lv.bunch_dist(pu.id);
      if (dv != kInfDist) {
        t.estimate = pu.dist + dv;
        t.level = i;
        t.used_u_pivot = true;
        return t;
      }
    }
    // p_i(v) in B(u)?
    const DistKey& pv = lv.pivot(i);
    if (pv.id != kInvalidNode) {
      const Dist du = lu.bunch_dist(pv.id);
      if (du != kInfDist) {
        t.estimate = pv.dist + du;
        t.level = i;
        t.used_u_pivot = false;
        return t;
      }
    }
  }
  return t;  // malformed / disconnected: kInfDist
}

}  // namespace dsketch
