// (2k-1)-spanner extraction from the Thorup-Zwick construction [TZ05 §4].
//
// The union over all sources w of the shortest-path trees spanning the
// clusters C(w) is a spanner: a subgraph H with O(k n^{1+1/k}) edges in
// expectation in which d_H(u,v) <= (2k-1) d_G(u,v) for every pair. This is
// the structural counterpart of the sketches — the paper's related-work
// section places spanners next to distance labelings — and it falls out of
// the same cluster growth we already run, with parent edges recorded.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sketch/hierarchy.hpp"

namespace dsketch {

/// Edges of the spanner subgraph (subset of g's edges, canonical u < v).
std::vector<Edge> extract_spanner(const Graph& g, const Hierarchy& hierarchy);

/// Convenience: the spanner as a Graph over the same node set.
Graph spanner_graph(const Graph& g, const Hierarchy& hierarchy);

}  // namespace dsketch
