// Distributed Thorup–Zwick sketch construction (§3.2, Algorithm 2).
//
// Phases run top-down i = k-1 … 0. In phase i the sources are A_i \ A_{i+1};
// every node u runs a gated multi-source Bellman–Ford:
//   - an incoming <source v, dist a> on an edge of weight w is accepted iff
//     key(a + w, v) < (d(u, A_{i+1}), p_{i+1}(u))   [the phase gate]
//     and it improves the current estimate d'(v);
//   - accepted sources go into a pending queue; each round the node
//     broadcasts the head of the queue to all neighbors (the paper's
//     round-robin multiplexing — FIFO gives the same one-slot-per-pending-
//     source fairness bound).
// At the end of phase i the surviving estimates are exactly the bunch slice
// B_i(u) with exact distances (gate monotonicity — see tz_centralized.cpp),
// and p_i(u) = min-key of {(0,u) if u in A_i} ∪ B_i(u) ∪ {p_{i+1}(u)}.
//
// Phase synchronization comes in two flavours:
//   kOracle — a global observer detects quiescence and starts the next phase
//             (models the paper's "every node knows S" variant without
//             burning the padding rounds; the analytic known-S round budget
//             is reported separately by the benches);
//   kEcho   — the paper's §3.3 distributed termination detection: a BFS tree
//             is built first (leader election), every data message is ECHOed,
//             sources detect when their cascade dies, COMPLETE convergecasts
//             up the tree and the root STARTs the next phase. Fully
//             distributed; costs the paper's predicted constant-factor
//             overhead, measured in experiment E3.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_label.hpp"

namespace dsketch {

/// Phase-synchronization strategy.
///  kOracle — a global observer starts the next phase at quiescence
///            (measures true convergence time);
///  kEcho   — §3.3 distributed termination detection (implementable);
///  kKnownS — the paper's baseline assumption: every node knows the
///            shortest-path diameter S and advances phases at the fixed
///            analytic deadlines Θ(n^{1/k}·S·ln n). Pays the full padded
///            round bound, needs zero control messages.
enum class TerminationMode { kOracle, kEcho, kKnownS };

/// Node-local forwarding state produced as a free by-product of Algorithm 2:
/// for every w in B(u) ∪ {pivots}, the local edge of u on an exact shortest
/// path toward w. Never shipped over the network (labels are what travel);
/// enables source routing toward any bunch member and, via the common query
/// witness, end-to-end approximate path extraction (sketch/path_extraction).
struct RoutingTable {
  /// next_hop[u] maps target node -> local edge index at u.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> next_hop;
};

/// Fault-tolerant construction switch. When enabled, every protocol message
/// rides the reliable link layer (congest/reliable.hpp): one extra header
/// word per frame buys exactly-once in-order delivery under a FaultPlan's
/// drops/duplicates/reorders/crashes via timeout retransmission and
/// post-restart go-back-N, so the build converges to the same labels as a
/// fault-free run. Requires max_message_words >= 5 (raised automatically).
/// Supported with kOracle and kEcho termination; kKnownS deadlines assume
/// loss-free links and are not fault-padded.
struct TzFaultTolerance {
  bool enabled = false;
  std::uint64_t rto = 16;        ///< initial retransmit timeout (rounds)
  std::uint64_t max_rto = 1024;  ///< exponential backoff ceiling
};

struct TzDistributedResult {
  LabelArena labels;  ///< labels.view(u) is node u's sketch; empty on failure
  RoutingTable routing;
  SimStats stats;                ///< main construction run
  SimStats tree_stats;           ///< leader election + BFS tree (kEcho only)
  std::vector<std::uint64_t> phase_end_rounds;  ///< round at each phase end
  bool completed = true;         ///< false: faulty run hit the round limit
  std::uint64_t retransmits = 0;          ///< reliable-layer resends
  std::uint64_t duplicate_discards = 0;   ///< redundant frames dropped

  std::uint64_t total_rounds() const { return stats.rounds + tree_stats.rounds; }
  std::uint64_t total_messages() const {
    return stats.messages + tree_stats.messages;
  }
};

/// Runs the distributed construction on `g` for the given hierarchy.
/// The hierarchy may be net-restricted (CDG sketches, §4): nodes with
/// level 0 never source announcements but still relay and collect bunches.
///
/// `eager_send` replaces the paper's one-broadcast-per-round round-robin
/// with sending every pending source each round. Under the CONGEST edge
/// capacity the congestion just moves from the node queue to the edge
/// queues (same rounds); with capacity disabled it collapses to ~S rounds
/// per phase — the E3 ablation showing the bound is made of bandwidth.
/// `known_S`: the shortest-path diameter handed to every node in kKnownS
/// mode (0 = compute it exactly first, as centralized preprocessing).
/// `fault_tolerance`: see TzFaultTolerance. A SimConfig with a FaultPlan
/// attached and fault tolerance disabled is allowed but will generally not
/// converge; such runs return completed = false (with empty labels) once
/// max_rounds is exhausted instead of asserting. The kEcho BFS-tree
/// pre-pass always runs fault-free: leader election under faults is out of
/// scope, and the tree is static data the main run then uses.
TzDistributedResult build_tz_distributed(const Graph& g,
                                         const Hierarchy& hierarchy,
                                         TerminationMode mode,
                                         SimConfig cfg = {},
                                         bool eager_send = false,
                                         std::uint32_t known_S = 0,
                                         TzFaultTolerance fault_tolerance = {});

}  // namespace dsketch
