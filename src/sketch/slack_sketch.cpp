#include "sketch/slack_sketch.hpp"

#include "congest/bellman_ford.hpp"
#include "sketch/density_net.hpp"
#include "util/assert.hpp"

namespace dsketch {

Dist SlackSketchSet::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  Dist best = kInfDist;
  const auto& du = dist_[u];
  const auto& dv = dist_[v];
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (du[i] == kInfDist || dv[i] == kInfDist) continue;
    best = std::min(best, du[i] + dv[i]);
  }
  return best;
}

SlackSketchResult build_slack_sketches(const Graph& g, double epsilon,
                                       std::uint64_t seed, SimConfig cfg) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> net = sample_density_net(n, epsilon, seed);
  if (cfg.phase.empty()) cfg.phase = "slack_net_bf";
  MultiSourceBfResult bf = run_multi_source_bf(g, net, cfg);

  std::vector<std::vector<Dist>> dist(n, std::vector<Dist>(net.size(), kInfDist));
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < net.size(); ++i) {
      const auto it = bf.dist[u].find(net[i]);
      DS_CHECK_MSG(it != bf.dist[u].end(),
                   "connected graph: every net distance must be learned");
      dist[u][i] = it->second;
    }
  }
  SlackSketchResult result;
  result.sketches = SlackSketchSet(std::move(net), std::move(dist));
  result.stats = bf.stats;
  return result;
}

}  // namespace dsketch
