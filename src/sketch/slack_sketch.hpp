// Stretch-3 ε-slack sketches (Theorem 4.3).
//
// Build an ε-density net N, then run the multi-source distributed
// Bellman–Ford with N as sources so every node learns d(u, w) for all
// w ∈ N. The sketch of u is the full vector of net distances
// (O((1/ε) log n) words); the estimate for (u, v) is
//   min_{w in N} d(u,w) + d(w,v),
// which is ≥ d(u,v) always and ≤ 3·d(u,v) whenever v is ε-far from u.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class SlackSketchSet {
 public:
  SlackSketchSet() = default;
  SlackSketchSet(std::vector<NodeId> net, std::vector<std::vector<Dist>> dist)
      : net_(std::move(net)), dist_(std::move(dist)) {}

  const std::vector<NodeId>& net() const { return net_; }

  /// Nodes covered (rows of the distance table).
  std::size_t num_nodes() const { return dist_.size(); }

  /// Estimate d(u,v) from the two stored sketches only.
  Dist query(NodeId u, NodeId v) const;

  /// Words stored at node u: one (id, distance) pair per net node.
  std::size_t size_words(NodeId u) const {
    (void)u;
    return 2 * net_.size();
  }

  /// Distance from u to the i-th net node (test hook).
  Dist net_dist(NodeId u, std::size_t i) const { return dist_[u][i]; }

 private:
  std::vector<NodeId> net_;
  std::vector<std::vector<Dist>> dist_;  ///< [node][net index]
};

struct SlackSketchResult {
  SlackSketchSet sketches;
  SimStats stats;
};

/// Distributed construction per Theorem 4.3.
SlackSketchResult build_slack_sketches(const Graph& g, double epsilon,
                                       std::uint64_t seed, SimConfig cfg = {});

}  // namespace dsketch
