#include "sketch/tz_centralized.hpp"

#include <utility>

#include "graph/sp_kernel.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace dsketch {

LevelGates compute_level_gates(const Graph& g, const Hierarchy& hierarchy,
                               ThreadPool* pool) {
  const obs::Span span("tz_level_gates");
  ThreadPool& tp = pool != nullptr ? *pool : global_pool();
  const std::uint32_t k = hierarchy.k();
  LevelGates out;
  out.gate.resize(k);
  std::vector<std::vector<NodeId>> members(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    members[i] = hierarchy.level_members(i);
  }
  tp.for_each_dynamic(k, [&](std::size_t, std::size_t i) {
    out.gate[i].assign(g.num_nodes(), DistKey{});
    if (members[i].empty()) return;
    SpWorkspace& ws = thread_workspace();
    sp_multi_source(g, members[i], ws);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out.gate[i][u] = DistKey{ws.dist(u), ws.owner(u)};
    }
  });
  return out;
}

LabelArena build_tz_centralized(const Graph& g, const Hierarchy& hierarchy,
                                ThreadPool* pool) {
  const obs::Span build_span("tz_centralized_build");
  ThreadPool& tp = pool != nullptr ? *pool : global_pool();
  const std::uint32_t k = hierarchy.k();
  const NodeId n = g.num_nodes();
  DS_CHECK(hierarchy.n() == n);

  const LevelGates gates = compute_level_gates(g, hierarchy, &tp);

  std::vector<TzLabelBuilder> labels;
  labels.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    labels.emplace_back(u, k);
    for (std::uint32_t i = 0; i < k; ++i) {
      labels[u].set_pivot(i, gates.gate[i][u]);
    }
  }

  // Cluster growth: pruned Dijkstra from every source w in A_i \ A_{i+1}.
  // Node x joins C(w) iff key(d(x,w), w) < gate_{i+1}(x); expansion stops
  // at nodes that fail the gate (cluster is closed under shortest paths —
  // the same consistency argument that makes the distributed gate sound).
  // Sources are independent: grow them in parallel, one kernel workspace
  // per worker, then append the per-source member lists in phase order so
  // the labels match a serial build exactly.
  struct GrowJob {
    std::uint32_t level;
    NodeId source;
  };
  std::vector<GrowJob> jobs;
  for (std::uint32_t i = 0; i < k; ++i) {
    for (const NodeId w : hierarchy.phase_sources(i)) {
      jobs.push_back(GrowJob{i, w});
    }
  }
  std::vector<std::vector<std::pair<NodeId, Dist>>> grown(jobs.size());
  {
    const obs::Span grow_span("tz_cluster_growth",
                              static_cast<std::uint64_t>(jobs.size()));
    tp.for_each_dynamic(jobs.size(), [&](std::size_t, std::size_t j) {
      const auto [level, w] = jobs[j];
      const std::vector<DistKey>* next_gate =
          level + 1 < k ? &gates.gate[level + 1] : nullptr;
      std::vector<std::pair<NodeId, Dist>>& members = grown[j];
      sp_pruned_dijkstra(g, w, thread_workspace(), [&](NodeId x, Dist d) {
        if (next_gate != nullptr && !(DistKey{d, w} < (*next_gate)[x])) {
          return false;
        }
        members.emplace_back(x, d);
        return true;
      });
    });
  }
  const obs::Span merge_span("tz_bunch_merge");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const auto& [x, d] : grown[j]) {
      labels[x].add_bunch_entry(BunchEntry{jobs[j].source, jobs[j].level, d});
    }
  }
  tp.for_each_dynamic(n, [&](std::size_t, std::size_t u) {
    labels[u].sort_bunch();
  });
  return LabelArena::from_builders(std::move(labels));
}

}  // namespace dsketch
