#include "sketch/tz_centralized.hpp"

#include <queue>

#include "graph/shortest_paths.hpp"
#include "util/assert.hpp"

namespace dsketch {

LevelGates compute_level_gates(const Graph& g, const Hierarchy& hierarchy) {
  const std::uint32_t k = hierarchy.k();
  LevelGates out;
  out.gate.resize(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::vector<NodeId> members = hierarchy.level_members(i);
    out.gate[i].assign(g.num_nodes(), DistKey{});
    if (members.empty()) continue;
    const MultiSourceResult r = multi_source_dijkstra(g, members);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out.gate[i][u] = DistKey{r.dist[u], r.owner[u]};
    }
  }
  return out;
}

std::vector<TzLabel> build_tz_centralized(const Graph& g,
                                          const Hierarchy& hierarchy) {
  const std::uint32_t k = hierarchy.k();
  const NodeId n = g.num_nodes();
  DS_CHECK(hierarchy.n() == n);

  const LevelGates gates = compute_level_gates(g, hierarchy);

  std::vector<TzLabel> labels;
  labels.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    labels.emplace_back(u, k);
    for (std::uint32_t i = 0; i < k; ++i) {
      labels[u].set_pivot(i, gates.gate[i][u]);
    }
  }

  // Cluster growth: pruned Dijkstra from every source w in A_i \ A_{i+1}.
  // Node x joins C(w) iff key(d(x,w), w) < gate_{i+1}(x); expansion stops at
  // nodes that fail the gate (cluster is closed under shortest paths — the
  // same consistency argument that makes the distributed gate sound).
  struct QItem {
    Dist dist;
    NodeId node;
    bool operator>(const QItem& o) const {
      return dist != o.dist ? dist > o.dist : node > o.node;
    }
  };
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> touched;
  for (std::uint32_t i = 0; i < k; ++i) {
    const bool top = i + 1 >= k;
    for (const NodeId w : hierarchy.phase_sources(i)) {
      std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
      dist[w] = 0;
      touched.push_back(w);
      pq.push({0, w});
      while (!pq.empty()) {
        const auto [d, x] = pq.top();
        pq.pop();
        if (d != dist[x]) continue;
        const DistKey key{d, w};
        const bool in_cluster =
            top || key < gates.gate[i + 1][x];
        if (!in_cluster) continue;
        labels[x].add_bunch_entry(BunchEntry{w, i, d});
        for (const HalfEdge& he : g.neighbors(x)) {
          const Dist nd = d + he.weight;
          if (nd < dist[he.to]) {
            if (dist[he.to] == kInfDist) touched.push_back(he.to);
            dist[he.to] = nd;
            pq.push({nd, he.to});
          }
        }
      }
      for (const NodeId t : touched) dist[t] = kInfDist;
      touched.clear();
    }
  }
  for (auto& l : labels) l.sort_bunch();
  return labels;
}

}  // namespace dsketch
