// Approximate shortest-path extraction from sketches + local forwarding
// state — the routing application that motivates the paper's §1 ("finding
// shortest paths between pairs of nodes, or at least finding the lengths").
//
// The distance query (Lemma 3.2) identifies a *witness* w = p_{i*} with
// w in B(u) and w in B(v) (or symmetrically). During Algorithm 2 every
// node records, per bunch member, the incident edge of its exact shortest
// path toward it; by cluster shortest-path closure (§3.2), every node on
// that path also has w in its bunch, so greedy next-hop forwarding from u
// reaches w along an exact shortest path — likewise from v. Concatenating
// the two halves yields a real path of weight d(u,w) + d(w,v), i.e.
// exactly the query estimate: stretch <= 2k-1 end to end.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sketch/tz_distributed.hpp"
#include "sketch/tz_label.hpp"

namespace dsketch {

/// Follows next-hop state from `from` to `target`; requires target to be in
/// from's bunch (and, transitively, in each intermediate bunch — guaranteed
/// by cluster closure). Returns the node sequence from `from` to `target`.
std::vector<NodeId> route_to_target(const Graph& g, const RoutingTable& table,
                                    NodeId from, NodeId target);

struct ApproxPath {
  std::vector<NodeId> nodes;  ///< u ... w ... v
  Dist weight = 0;            ///< == tz_query(L(u), L(v))
  NodeId witness = kInvalidNode;
};

/// End-to-end approximate path between u and v through the query witness.
ApproxPath extract_approximate_path(const Graph& g, const LabelArena& labels,
                                    const RoutingTable& table, NodeId u,
                                    NodeId v);

/// Total weight of a node path (checks every consecutive pair is an edge).
Dist path_weight(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace dsketch
