// Centralized Thorup–Zwick construction (§3.1) — the paper's baseline and
// our correctness oracle for the distributed algorithm.
//
// Given a Hierarchy, computes for every node the exact label:
//   - pivots p_i(u) with d(u, A_i), via one multi-source Dijkstra per level;
//   - bunches via cluster growth: for each w in A_i \ A_{i+1}, a pruned
//     Dijkstra from w that expands x only while key(d(x,w), w) beats x's
//     level-(i+1) gate. This is the inverse view C(w) = {u : w in B(u)}
//     the paper's §3.2 works from.
// Complexity is the centralized O(k m n^{1/k}) expectation of [TZ05]; we use
// it both to validate the distributed output (labels must match exactly for
// the same hierarchy) and as the "offline computation" baseline in benches.
// The construction is source-parallel over the shortest-path kernel
// (graph/sp_kernel.hpp): level gates run one multi-source search per
// level, cluster growth runs one pruned search per phase source, and the
// per-source results merge back in phase order — so the output is
// bit-identical whatever the thread count (tested). Pass a 1-thread pool
// to force a serial build.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_label.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

/// All labels for one hierarchy, finalized into one contiguous arena;
/// arena.view(u) is the sketch stored at node u. `pool == nullptr` uses
/// the global pool.
LabelArena build_tz_centralized(const Graph& g, const Hierarchy& hierarchy,
                                ThreadPool* pool = nullptr);

/// Gates (d(u, A_i), p_i(u)) for every node and level; exposed for tests.
struct LevelGates {
  /// gate[i][u] = key of the nearest A_i node to u (kInfDist key if empty).
  std::vector<std::vector<DistKey>> gate;
};
LevelGates compute_level_gates(const Graph& g, const Hierarchy& hierarchy,
                               ThreadPool* pool = nullptr);

}  // namespace dsketch
