#include "sketch/spanner.hpp"

#include <queue>
#include <unordered_set>

#include "sketch/tz_centralized.hpp"
#include "util/assert.hpp"

namespace dsketch {

std::vector<Edge> extract_spanner(const Graph& g, const Hierarchy& hierarchy) {
  const std::uint32_t k = hierarchy.k();
  const NodeId n = g.num_nodes();
  DS_CHECK(hierarchy.n() == n);
  const LevelGates gates = compute_level_gates(g, hierarchy);

  std::unordered_set<std::uint64_t> picked;
  std::vector<Edge> spanner;
  auto add_edge = [&](NodeId a, NodeId b, Weight w) {
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (picked.insert(key).second) spanner.push_back(Edge{a, b, w});
  };

  // Same pruned cluster growth as the label construction, but recording the
  // tree edge through which each cluster member was reached.
  struct QItem {
    Dist dist;
    NodeId node;
    bool operator>(const QItem& o) const {
      return dist != o.dist ? dist > o.dist : node > o.node;
    }
  };
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<Weight> parent_weight(n, 0);
  std::vector<NodeId> touched;
  for (std::uint32_t i = 0; i < k; ++i) {
    const bool top = i + 1 >= k;
    for (const NodeId w : hierarchy.phase_sources(i)) {
      std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
      dist[w] = 0;
      parent[w] = kInvalidNode;
      touched.push_back(w);
      pq.push({0, w});
      while (!pq.empty()) {
        const auto [d, x] = pq.top();
        pq.pop();
        if (d != dist[x]) continue;
        const DistKey key{d, w};
        if (!top && !(key < gates.gate[i + 1][x])) continue;
        if (parent[x] != kInvalidNode) {
          add_edge(x, parent[x], parent_weight[x]);
        }
        for (const HalfEdge& he : g.neighbors(x)) {
          const Dist nd = d + he.weight;
          if (nd < dist[he.to]) {
            if (dist[he.to] == kInfDist) touched.push_back(he.to);
            dist[he.to] = nd;
            parent[he.to] = x;
            parent_weight[he.to] = he.weight;
            pq.push({nd, he.to});
          }
        }
      }
      for (const NodeId t : touched) {
        dist[t] = kInfDist;
        parent[t] = kInvalidNode;
      }
      touched.clear();
    }
  }
  return spanner;
}

Graph spanner_graph(const Graph& g, const Hierarchy& hierarchy) {
  return Graph::from_edges(g.num_nodes(), extract_spanner(g, hierarchy));
}

}  // namespace dsketch
