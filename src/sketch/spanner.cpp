#include "sketch/spanner.hpp"

#include <unordered_set>
#include <utility>

#include "graph/sp_kernel.hpp"
#include "sketch/tz_centralized.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

std::vector<Edge> extract_spanner(const Graph& g, const Hierarchy& hierarchy) {
  const std::uint32_t k = hierarchy.k();
  const NodeId n = g.num_nodes();
  DS_CHECK(hierarchy.n() == n);
  ThreadPool& tp = global_pool();
  const LevelGates gates = compute_level_gates(g, hierarchy, &tp);

  // Same pruned cluster growth as the label construction, but recording
  // the tree edge through which each cluster member was reached. Sources
  // grow in parallel; per-source tree edges merge in phase order, so the
  // first-wins dedup below is thread-count independent.
  struct GrowJob {
    std::uint32_t level;
    NodeId source;
  };
  std::vector<GrowJob> jobs;
  for (std::uint32_t i = 0; i < k; ++i) {
    for (const NodeId w : hierarchy.phase_sources(i)) {
      jobs.push_back(GrowJob{i, w});
    }
  }
  std::vector<std::vector<Edge>> tree_edges(jobs.size());
  tp.for_each_dynamic(jobs.size(), [&](std::size_t, std::size_t j) {
    const auto [level, w] = jobs[j];
    const std::vector<DistKey>* next_gate =
        level + 1 < k ? &gates.gate[level + 1] : nullptr;
    SpWorkspace& ws = thread_workspace();
    std::vector<Edge>& out = tree_edges[j];
    sp_pruned_dijkstra<true>(g, w, ws, [&](NodeId x, Dist d) {
      if (next_gate != nullptr && !(DistKey{d, w} < (*next_gate)[x])) {
        return false;
      }
      if (ws.parent(x) != kInvalidNode) {
        out.push_back(Edge{x, ws.parent(x), ws.parent_weight(x)});
      }
      return true;
    });
  });

  std::unordered_set<std::uint64_t> picked;
  std::vector<Edge> spanner;
  for (const std::vector<Edge>& edges : tree_edges) {
    for (Edge e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      if (picked.insert(key).second) spanner.push_back(e);
    }
  }
  return spanner;
}

Graph spanner_graph(const Graph& g, const Hierarchy& hierarchy) {
  return Graph::from_edges(g.num_nodes(), extract_spanner(g, hierarchy));
}

}  // namespace dsketch
