// Thorup–Zwick label (sketch) representation and the O(k) query procedure —
// the "label plane".
//
// A label L(u) stores, for each level i in [0, k):
//   - the pivot p_i(u): the node of A_i nearest to u, with its distance;
//   - the bunch slice B_i(u) = { w in A_i : key(u,w) < key(u, A_{i+1}) },
//     with exact distances.
// "Nearest" everywhere means minimal *key* (distance, node id) — the paper's
// "breaking ties consistently through processor IDs" made concrete. Using
// keys makes the label set a deterministic function of the hierarchy, so the
// distributed and centralized constructions must agree exactly (tested).
//
// Representation is split by mutability:
//   - TzLabelBuilder: the only mutable form. Constructions accumulate pivots
//     and bunch entries here (plain vectors, no per-label hash map), then
//     finalize into an arena. sort_bunch() canonicalizes entries by
//     (node id, level), the order every immutable consumer assumes.
//   - LabelView: an immutable (pivots ptr, bunch ptr, count) triple over
//     contiguous storage. Queries, packing, and serialization all walk
//     views; membership tests are branch-light binary searches and the
//     exhaustive query is a sorted-merge intersection. A view never owns —
//     it is invalidated by any mutation of the storage behind it.
//   - LabelArena: owns every label of one build as three flat vectors
//     (pivots, entries, per-node slots). This is what crosses layer
//     boundaries (build -> oracle -> store -> serve): handing an arena
//     around moves three buffers instead of deep-copying n heap objects.
//     Repair mutates in place (distances only tighten) or replaces one
//     node's slice; every mutation bumps the arena generation so serving
//     snapshots can detect staleness.
//
// The query (Lemma 3.2) walks levels i = 0, 1, ... and returns
//   d(u, p_i(u)) + d(v, p_i(u))   for the first i with p_i(u) in B(v)
// (checking both orientations each level), guaranteeing stretch 2k-1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

/// (distance, id) lexicographic key; the library-wide tie-break rule.
struct DistKey {
  Dist dist = kInfDist;
  NodeId id = kInvalidNode;

  friend bool operator<(const DistKey& a, const DistKey& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const DistKey& a, const DistKey& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// One bunch entry: node w (member of A_level) at exact distance dist.
struct BunchEntry {
  NodeId node;
  std::uint32_t level;
  Dist dist;

  friend bool operator==(const BunchEntry& a, const BunchEntry& b) {
    return a.node == b.node && a.level == b.level && a.dist == b.dist;
  }
};

/// Immutable view of one label: a (pivots ptr, bunch ptr, count) triple
/// over contiguous storage (a LabelArena slice, a builder's vectors, or a
/// decoded store record). Bunch entries are sorted by (node id, level);
/// the view is only valid while the backing storage is alive and
/// unmutated.
struct LabelView {
  NodeId owner = kInvalidNode;
  std::uint32_t levels = 0;
  std::uint32_t count = 0;
  const DistKey* pivots = nullptr;
  const BunchEntry* bunch = nullptr;

  const DistKey& pivot(std::uint32_t level) const { return pivots[level]; }

  /// Distance to w if w is in the bunch, kInfDist otherwise. Binary search
  /// over the node-sorted entries; duplicates (one node at several levels)
  /// resolve to the lowest level, which carries the same distance.
  Dist bunch_dist(NodeId w) const {
    std::uint32_t lo = 0, hi = count;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (bunch[mid].node < w) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < count && bunch[lo].node == w ? bunch[lo].dist : kInfDist;
  }
  bool bunch_contains(NodeId w) const { return bunch_dist(w) != kInfDist; }

  /// Size in words as stored at a node: per level one (pivot id, distance)
  /// pair, per bunch entry one (id, distance) pair. Level indices are
  /// derivable and not charged, matching the paper's accounting.
  std::size_t size_words() const {
    return 2 * static_cast<std::size_t>(levels) +
           2 * static_cast<std::size_t>(count);
  }

  /// Deep (content) equality — owner, pivots, and entries.
  friend bool operator==(const LabelView& a, const LabelView& b);
};

/// Mutable label under construction or repair. Plain vectors, no index;
/// finalize with sort_bunch() before taking a view() or moving into a
/// LabelArena.
class TzLabelBuilder {
 public:
  TzLabelBuilder() = default;
  TzLabelBuilder(NodeId owner, std::uint32_t k) : owner_(owner), pivots_(k) {}

  /// Deep copy of an existing label back into mutable form (store
  /// unpacking, dissemination reassembly).
  static TzLabelBuilder from_view(const LabelView& v);

  NodeId owner() const { return owner_; }
  std::uint32_t levels() const {
    return static_cast<std::uint32_t>(pivots_.size());
  }

  void set_pivot(std::uint32_t level, DistKey pivot) {
    pivots_[level] = pivot;
  }
  const DistKey& pivot(std::uint32_t level) const { return pivots_[level]; }

  void add_bunch_entry(BunchEntry e) {
    if (!bunch_.empty()) {
      const BunchEntry& last = bunch_.back();
      if (e.node < last.node ||
          (e.node == last.node && e.level < last.level)) {
        sorted_ = false;
      }
    }
    bunch_.push_back(e);
  }
  const std::vector<BunchEntry>& bunch() const { return bunch_; }

  /// Dynamics hook: tightens the stored distance of bunch entry `i` in
  /// place. Ids and levels never change — incremental repair only
  /// improves distances — so the sort order stays valid.
  void set_bunch_dist(std::size_t i, Dist d) { bunch_[i].dist = d; }

  /// Canonicalize entry order: sorted by (node id, level). Required
  /// before view() / arena finalization; idempotent.
  void sort_bunch();
  bool sorted() const { return sorted_; }

  /// Immutable view over this builder's storage (must be sorted; the view
  /// dies with the builder and with any further mutation).
  LabelView view() const;

  std::size_t size_words() const {
    return 2 * pivots_.size() + 2 * bunch_.size();
  }

  friend bool operator==(const TzLabelBuilder& a, const TzLabelBuilder& b) {
    return a.view() == b.view();
  }

 private:
  NodeId owner_ = kInvalidNode;
  std::vector<DistKey> pivots_;
  std::vector<BunchEntry> bunch_;
  bool sorted_ = true;
};

/// Contiguous storage for all labels of one build: three flat buffers
/// instead of n heap objects. Label u's pivots live at [u*k, (u+1)*k) of
/// the pivot buffer; its bunch entries at the slot recorded for u (slices
/// are contiguous per node but, after replace(), not necessarily in node
/// order). Mutations bump generation(); views are invalidated by any
/// mutation (replace may reallocate). The serving tier therefore snapshots
/// by copying the arena — three buffer copies — never by sharing a live
/// mutable one.
class LabelArena {
 public:
  LabelArena() = default;

  /// Consumes per-node builders (builders[u].owner() must be u, all with
  /// the same level count). Unsorted builders are finalized here.
  static LabelArena from_builders(std::vector<TzLabelBuilder> builders);

  NodeId num_nodes() const { return static_cast<NodeId>(slots_.size()); }
  bool empty() const { return slots_.empty(); }
  std::uint32_t k() const { return k_; }

  LabelView view(NodeId u) const {
    const Slot& s = slots_[u];
    LabelView v;
    v.owner = u;
    v.levels = k_;
    v.count = s.count;
    v.pivots = pivots_.data() + static_cast<std::size_t>(u) * k_;
    v.bunch = entries_.data() + s.begin;
    return v;
  }

  std::size_t size_words(NodeId u) const { return view(u).size_words(); }
  double mean_size_words() const;
  /// Bunch entries across all labels (diagnostics / size accounting).
  std::size_t total_entries() const;

  /// Monotone counter bumped by every mutation; lets consumers holding a
  /// derived artifact (snapshot, packed store) detect staleness.
  std::uint64_t generation() const { return generation_; }

  // ---- repair hooks (dynamics/incremental) ---------------------------------
  /// Tightens pivot `level` of node u to distance d (id unchanged).
  void tighten_pivot(NodeId u, std::uint32_t level, Dist d) {
    pivots_[static_cast<std::size_t>(u) * k_ + level].dist = d;
    ++generation_;
  }
  /// Tightens bunch entry `i` (slice-local index) of node u to distance d.
  void tighten_bunch_dist(NodeId u, std::uint32_t i, Dist d) {
    entries_[slots_[u].begin + i].dist = d;
    ++generation_;
  }
  /// Rebuilds node u's slice from a fresh builder. Equal-size slices are
  /// overwritten in place; growing slices append at the arena tail and
  /// repoint the slot (the hole is reclaimed by the next from_builders).
  void replace(NodeId u, const TzLabelBuilder& b);

  /// Label-wise content equality (slot layout may differ).
  friend bool operator==(const LabelArena& a, const LabelArena& b);

 private:
  struct Slot {
    std::uint64_t begin = 0;
    std::uint32_t count = 0;
  };

  std::uint32_t k_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<DistKey> pivots_;     // n * k
  std::vector<BunchEntry> entries_; // per-node contiguous slices
  std::vector<Slot> slots_;         // n
};

/// Lemma 3.2: estimate d(u, v) from the two labels alone. Never
/// underestimates; overestimates by at most (2k-1) when both labels come
/// from the same hierarchy over the full vertex set. Returns kInfDist only
/// if the labels are malformed (disconnected input).
Dist tz_query(const LabelView& lu, const LabelView& lv);

/// Exhaustive query variant: minimum of d(u,w) + d(w,v) over every node w
/// present in both bunches, computed as one sorted-merge intersection of
/// the two node-ordered entry arrays. Same one-sided guarantee (each term
/// is a real distance), never worse than tz_query — the witness pivot of
/// the standard query is itself a common bunch member — at cost
/// O(|B(u)| + |B(v)|). The E1 bench reports the practical stretch gain.
Dist tz_query_exhaustive(const LabelView& lu, const LabelView& lv);

/// Level at which tz_query settles (for diagnostics / E1 analysis).
struct TzQueryTrace {
  Dist estimate = kInfDist;
  std::uint32_t level = 0;
  bool used_u_pivot = false;  ///< true if p_i(u) in B(v) fired, false if
                              ///< the symmetric check fired
};
TzQueryTrace tz_query_trace(const LabelView& lu, const LabelView& lv);

}  // namespace dsketch
