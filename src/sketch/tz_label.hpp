// Thorup–Zwick label (sketch) representation and the O(k) query procedure.
//
// A label L(u) stores, for each level i in [0, k):
//   - the pivot p_i(u): the node of A_i nearest to u, with its distance;
//   - the bunch slice B_i(u) = { w in A_i : key(u,w) < key(u, A_{i+1}) },
//     with exact distances.
// "Nearest" everywhere means minimal *key* (distance, node id) — the paper's
// "breaking ties consistently through processor IDs" made concrete. Using
// keys makes the label set a deterministic function of the hierarchy, so the
// distributed and centralized constructions must agree exactly (tested).
//
// The query (Lemma 3.2) walks levels i = 0, 1, ... and returns
//   d(u, p_i(u)) + d(v, p_i(u))   for the first i with p_i(u) in B(v)
// (checking both orientations each level), guaranteeing stretch 2k-1.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

/// (distance, id) lexicographic key; the library-wide tie-break rule.
struct DistKey {
  Dist dist = kInfDist;
  NodeId id = kInvalidNode;

  friend bool operator<(const DistKey& a, const DistKey& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const DistKey& a, const DistKey& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// One bunch entry: node w (member of A_level) at exact distance dist.
struct BunchEntry {
  NodeId node;
  std::uint32_t level;
  Dist dist;

  friend bool operator==(const BunchEntry& a, const BunchEntry& b) {
    return a.node == b.node && a.level == b.level && a.dist == b.dist;
  }
};

class TzLabel {
 public:
  TzLabel() = default;
  TzLabel(NodeId owner, std::uint32_t k) : owner_(owner), pivots_(k) {}

  NodeId owner() const { return owner_; }
  std::uint32_t levels() const {
    return static_cast<std::uint32_t>(pivots_.size());
  }

  void set_pivot(std::uint32_t level, DistKey pivot) {
    pivots_[level] = pivot;
  }
  const DistKey& pivot(std::uint32_t level) const { return pivots_[level]; }

  void add_bunch_entry(BunchEntry e) {
    bunch_.push_back(e);
    index_.emplace(e.node, bunch_.size() - 1);
  }
  const std::vector<BunchEntry>& bunch() const { return bunch_; }

  /// Dynamics hook: tightens the stored distance of bunch entry `i` in
  /// place. Ids and levels never change — incremental repair only
  /// improves distances — so the node index stays valid.
  void set_bunch_dist(std::size_t i, Dist d) { bunch_[i].dist = d; }

  /// Distance to w if w is in the bunch, kInfDist otherwise.
  Dist bunch_dist(NodeId w) const {
    const auto it = index_.find(w);
    return it == index_.end() ? kInfDist : bunch_[it->second].dist;
  }
  bool bunch_contains(NodeId w) const { return index_.count(w) != 0; }

  /// Size in words as stored at a node: per level one (pivot id, distance)
  /// pair, per bunch entry one (id, distance) pair. Level indices are
  /// derivable and not charged, matching the paper's accounting.
  std::size_t size_words() const {
    return 2 * pivots_.size() + 2 * bunch_.size();
  }

  /// Canonicalize entry order for equality comparisons across constructions.
  void sort_bunch();

  friend bool operator==(const TzLabel& a, const TzLabel& b);

 private:
  NodeId owner_ = kInvalidNode;
  std::vector<DistKey> pivots_;
  std::vector<BunchEntry> bunch_;
  std::unordered_map<NodeId, std::size_t> index_;
};

/// Lemma 3.2: estimate d(u, v) from the two labels alone. Never
/// underestimates; overestimates by at most (2k-1) when both labels come
/// from the same hierarchy over the full vertex set. Returns kInfDist only
/// if the labels are malformed (disconnected input).
Dist tz_query(const TzLabel& lu, const TzLabel& lv);

/// Exhaustive query variant: minimum of d(u,w) + d(w,v) over every node w
/// present in both bunches. Same one-sided guarantee (each term is a real
/// distance), never worse than tz_query — the witness pivot of the standard
/// query is itself a common bunch member — at cost O(min(|B(u)|, |B(v)|))
/// instead of O(k). The E1 bench reports the practical stretch gain.
Dist tz_query_exhaustive(const TzLabel& lu, const TzLabel& lv);

/// Level at which tz_query settles (for diagnostics / E1 analysis).
struct TzQueryTrace {
  Dist estimate = kInfDist;
  std::uint32_t level = 0;
  bool used_u_pivot = false;  ///< true if p_i(u) in B(v) fired, false if
                              ///< the symmetric check fired
};
TzQueryTrace tz_query_trace(const TzLabel& lu, const TzLabel& lv);

}  // namespace dsketch
