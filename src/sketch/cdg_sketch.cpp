#include "sketch/cdg_sketch.hpp"

#include <cmath>
#include <deque>
#include <unordered_map>
#include <utility>

#include "congest/bellman_ford.hpp"
#include "congest/protocol.hpp"
#include "sketch/density_net.hpp"
#include "sketch/hierarchy.hpp"
#include "util/assert.hpp"

namespace dsketch {

std::vector<Word> serialize_label(const LabelView& label) {
  std::vector<Word> out;
  out.reserve(2 + 2 * static_cast<std::size_t>(label.levels) +
              3 * static_cast<std::size_t>(label.count));
  out.push_back(label.levels);
  out.push_back(label.count);
  for (std::uint32_t i = 0; i < label.levels; ++i) {
    out.push_back(label.pivot(i).id);
    out.push_back(label.pivot(i).dist);
  }
  for (std::uint32_t i = 0; i < label.count; ++i) {
    const BunchEntry& e = label.bunch[i];
    out.push_back(e.node);
    out.push_back(e.level);
    out.push_back(e.dist);
  }
  return out;
}

TzLabelBuilder deserialize_label(NodeId owner, const std::vector<Word>& words) {
  DS_CHECK(words.size() >= 2);
  const auto levels = static_cast<std::uint32_t>(words[0]);
  const auto entries = static_cast<std::size_t>(words[1]);
  DS_CHECK(words.size() == 2 + 2 * levels + 3 * entries);
  TzLabelBuilder label(owner, levels);
  std::size_t pos = 2;
  for (std::uint32_t i = 0; i < levels; ++i) {
    label.set_pivot(i, DistKey{words[pos + 1], static_cast<NodeId>(words[pos])});
    pos += 2;
  }
  for (std::size_t e = 0; e < entries; ++e) {
    label.add_bunch_entry(BunchEntry{static_cast<NodeId>(words[pos]),
                                     static_cast<std::uint32_t>(words[pos + 1]),
                                     words[pos + 2]});
    pos += 3;
  }
  label.sort_bunch();
  return label;
}

namespace {

// Dissemination messages, reorder-tolerant (links may be asynchronous and
// non-FIFO): <kChunk, seq, w0, w1> carries words [2*seq, 2*seq+2) of the
// stream, zero-padded; <kEnd, total_words> announces the stream length.
constexpr Word kChunk = 1;
constexpr Word kEnd = 2;
constexpr std::size_t kPayloadWords = 2;  // fits max_message_words = 4

/// Streams each net node's serialized label down its Voronoi tree.
class LabelDisseminationProtocol : public Protocol {
 public:
  LabelDisseminationProtocol(const SuperSourceBfResult& voronoi,
                             const std::vector<std::vector<Word>>& payloads)
      : voronoi_(voronoi), payloads_(payloads) {
    nodes_.resize(voronoi.dist.size());
  }

  void on_start(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    if (voronoi_.owner[u] != u) return;  // only net nodes originate
    nodes_[u].done = true;               // own label, no stream needed
    const std::vector<Word>& words = payloads_[u];
    for (const std::uint32_t e : voronoi_.child_edges[u]) {
      push_stream(ctx, e, words);
    }
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    NodeState& s = nodes_[u];
    for (const Inbound& in : ctx.inbox()) {
      // Everything arrives on the Voronoi parent edge; relay downstream.
      for (const std::uint32_t e : voronoi_.child_edges[u]) {
        ctx.send(e, in.msg);
      }
      if (in.msg.at(0) == kChunk) {
        const auto seq = static_cast<std::size_t>(in.msg.at(1));
        if (s.chunks.emplace(seq, std::pair<Word, Word>{in.msg.at(2),
                                                        in.msg.at(3)})
                .second) {
          // counted once even if a duplicate relay ever appeared
        }
      } else {
        DS_CHECK(in.msg.at(0) == kEnd);
        s.total_words = static_cast<std::size_t>(in.msg.at(1));
        s.have_total = true;
      }
      if (s.have_total &&
          s.chunks.size() == (s.total_words + kPayloadWords - 1) /
                                 kPayloadWords) {
        s.done = true;
      }
    }
  }

  /// Reassembled label words received by node u (empty for net nodes).
  std::vector<Word> received(NodeId u) const {
    const NodeState& s = nodes_[u];
    std::vector<Word> words(s.total_words, 0);
    for (const auto& [seq, pair] : s.chunks) {
      const std::size_t base = seq * kPayloadWords;
      DS_CHECK(base < s.total_words);
      words[base] = pair.first;
      if (base + 1 < s.total_words) words[base + 1] = pair.second;
    }
    return words;
  }
  bool complete() const {
    for (const auto& s : nodes_) {
      if (!s.done) return false;
    }
    return true;
  }

 private:
  struct NodeState {
    std::unordered_map<std::size_t, std::pair<Word, Word>> chunks;
    std::size_t total_words = 0;
    bool have_total = false;
    bool done = false;
  };

  static void push_stream(NodeCtx& ctx, std::uint32_t edge,
                          const std::vector<Word>& words) {
    for (std::size_t i = 0; i < words.size(); i += kPayloadWords) {
      Message m{kChunk, static_cast<Word>(i / kPayloadWords)};
      m.push(words[i]);
      m.push(i + 1 < words.size() ? words[i + 1] : 0);
      ctx.send(edge, std::move(m));
    }
    ctx.send(edge, Message{kEnd, words.size()});
  }

  const SuperSourceBfResult& voronoi_;
  const std::vector<std::vector<Word>>& payloads_;
  std::vector<NodeState> nodes_;
};

}  // namespace

Dist CdgSketchSet::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const NodeSketch& su = sketches_[u];
  const NodeSketch& sv = sketches_[v];
  const Dist mid = tz_query(su.label.view(), sv.label.view());
  if (mid == kInfDist) return kInfDist;
  return su.net_dist + mid + sv.net_dist;
}

CdgBuildResult build_cdg_sketches(const Graph& g, const CdgConfig& config,
                                  SimConfig sim_cfg) {
  const NodeId n = g.num_nodes();
  CdgBuildResult result;
  result.net = sample_density_net(n, config.epsilon, config.seed);

  // Step 2: Voronoi decomposition around the net.
  // Per-step phase labels (kept if the caller supplied one of its own).
  const bool custom_phase = !sim_cfg.phase.empty();
  SimConfig step_cfg = sim_cfg;
  if (!custom_phase) step_cfg.phase = "cdg_voronoi";
  SuperSourceBfResult voronoi = run_super_source_bf(g, result.net, step_cfg);
  result.voronoi_stats = voronoi.stats;

  // Step 3: Thorup-Zwick on the net. The level-sampling probability is
  // (10/eps * ln n)^{-1/k}; if the top level comes out empty (tiny nets,
  // large k), retry with fresh coins, then shrink k as a last resort.
  const double net_bound =
      10.0 / config.epsilon * std::log(static_cast<double>(n));
  std::uint32_t k = std::max<std::uint32_t>(1, config.k);
  Hierarchy hierarchy(1, std::vector<std::uint32_t>(n, 0));
  bool sampled = false;
  while (!sampled) {
    const double p = k == 1 ? 0.0 : std::pow(net_bound, -1.0 / k);
    for (std::uint64_t attempt = 0; attempt < 16; ++attempt) {
      Hierarchy h = Hierarchy::sample_on_subset(
          n, k, result.net, p, config.seed + 0x1000 + attempt);
      if (h.top_level_nonempty()) {
        hierarchy = std::move(h);
        sampled = true;
        break;
      }
    }
    if (!sampled) {
      DS_CHECK(k > 1);
      --k;
    }
  }
  result.k_used = k;
  if (!custom_phase) step_cfg.phase = "cdg_tz";
  TzDistributedResult tz =
      build_tz_distributed(g, hierarchy, config.termination, step_cfg);
  result.tz_stats = tz.stats;
  result.tz_stats += tz.tree_stats;

  // Step 4: stream each net node's label down its Voronoi tree.
  std::vector<std::vector<Word>> payloads(n);
  for (const NodeId w : result.net) {
    payloads[w] = serialize_label(tz.labels.view(w));
  }
  LabelDisseminationProtocol dissemination(voronoi, payloads);
  if (!custom_phase) step_cfg.phase = "cdg_dissemination";
  Simulator sim(g, dissemination, step_cfg);
  result.dissemination_stats = sim.run();
  DS_CHECK(!result.dissemination_stats.hit_round_limit);
  DS_CHECK_MSG(dissemination.complete(),
               "every node must receive its owner's full label");

  std::vector<CdgSketchSet::NodeSketch> sketches(n);
  for (NodeId u = 0; u < n; ++u) {
    CdgSketchSet::NodeSketch& s = sketches[u];
    s.net_node = voronoi.owner[u];
    s.net_dist = voronoi.dist[u];
    if (voronoi.owner[u] == u) {
      s.label = TzLabelBuilder::from_view(tz.labels.view(u));
    } else {
      s.label = deserialize_label(voronoi.owner[u], dissemination.received(u));
    }
  }
  result.sketches = CdgSketchSet(std::move(sketches));
  return result;
}

}  // namespace dsketch
