#include "sketch/path_extraction.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dsketch {

std::vector<NodeId> route_to_target(const Graph& g, const RoutingTable& table,
                                    NodeId from, NodeId target) {
  std::vector<NodeId> path{from};
  NodeId x = from;
  std::size_t guard = 0;
  while (x != target) {
    const auto& hops = table.next_hop[x];
    const auto it = hops.find(target);
    DS_CHECK_MSG(it != hops.end(),
                 "forwarding hole: target not in this node's bunch");
    x = g.neighbors(x)[it->second].to;
    path.push_back(x);
    DS_CHECK_MSG(++guard <= g.num_nodes(), "forwarding loop");
  }
  return path;
}

Dist path_weight(const Graph& g, const std::vector<NodeId>& nodes) {
  Dist total = 0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    bool found = false;
    for (const HalfEdge& he : g.neighbors(nodes[i])) {
      if (he.to == nodes[i + 1]) {
        // parallel edges deduplicated at build; first match is the edge
        total += he.weight;
        found = true;
        break;
      }
    }
    DS_CHECK_MSG(found, "path uses a non-edge");
  }
  return total;
}

ApproxPath extract_approximate_path(const Graph& g, const LabelArena& labels,
                                    const RoutingTable& table, NodeId u,
                                    NodeId v) {
  ApproxPath out;
  if (u == v) {
    out.nodes = {u};
    out.witness = u;
    return out;
  }
  const LabelView lu = labels.view(u);
  const LabelView lv = labels.view(v);
  const TzQueryTrace trace = tz_query_trace(lu, lv);
  DS_CHECK_MSG(trace.estimate != kInfDist, "query failed: malformed labels");
  // The witness pivot lies in both bunches; route each endpoint to it.
  const NodeId w = trace.used_u_pivot ? lu.pivot(trace.level).id
                                      : lv.pivot(trace.level).id;
  std::vector<NodeId> from_u = route_to_target(g, table, u, w);
  std::vector<NodeId> from_v = route_to_target(g, table, v, w);
  out.nodes = std::move(from_u);
  for (auto it = from_v.rbegin() + 1; it != from_v.rend(); ++it) {
    out.nodes.push_back(*it);
  }
  out.weight = path_weight(g, out.nodes);
  out.witness = w;
  return out;
}

}  // namespace dsketch
