// Gracefully degrading sketches (§4.1, Theorem 4.8; Corollary 4.9 = Thm 1.3).
//
// One (ε_i, k_i)-CDG sketch per level i = 1..log2(n), with ε_i = 2^{-i} and
// k_i = Θ(log 1/ε_i) = i; a node's sketch is the union and a query takes the
// minimum of the per-level estimates. Every estimate is a sum of true
// distances bridged by a TZ estimate, so the minimum never underestimates;
// for a pair where v is ε-far from u the level with ε_i ≤ ε < 2ε_i certifies
// stretch O(log 1/ε). Lemma 4.7 then gives O(log n) worst-case and O(1)
// average stretch, at size O(log^4 n).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"
#include "sketch/cdg_sketch.hpp"

namespace dsketch {

struct GracefulConfig {
  std::uint64_t seed = 1;
  TerminationMode termination = TerminationMode::kOracle;
  /// Cap on the number of ε-levels (0 = the full log2(n) ladder). The E6
  /// ablation sweeps this to show how average stretch degrades with fewer
  /// levels.
  std::uint32_t max_levels = 0;
};

class GracefulSketchSet {
 public:
  GracefulSketchSet() = default;
  explicit GracefulSketchSet(std::vector<CdgSketchSet> levels)
      : levels_(std::move(levels)) {}

  /// Minimum estimate across all ε-levels; never below d(u,v).
  Dist query(NodeId u, NodeId v) const;

  std::size_t size_words(NodeId u) const;
  std::size_t num_levels() const { return levels_.size(); }
  const CdgSketchSet& level(std::size_t i) const { return levels_[i]; }

 private:
  std::vector<CdgSketchSet> levels_;
};

struct GracefulBuildResult {
  GracefulSketchSet sketches;
  std::vector<CdgBuildResult> level_builds;  ///< per-level cost breakdown
  SimStats total;
};

GracefulBuildResult build_graceful_sketches(const Graph& g,
                                            const GracefulConfig& config,
                                            SimConfig sim_cfg = {});

}  // namespace dsketch
