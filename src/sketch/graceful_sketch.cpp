#include "sketch/graceful_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dsketch {

Dist GracefulSketchSet::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  Dist best = kInfDist;
  for (const CdgSketchSet& level : levels_) {
    best = std::min(best, level.query(u, v));
  }
  return best;
}

std::size_t GracefulSketchSet::size_words(NodeId u) const {
  std::size_t total = 0;
  for (const CdgSketchSet& level : levels_) total += level.size_words(u);
  return total;
}

GracefulBuildResult build_graceful_sketches(const Graph& g,
                                            const GracefulConfig& config,
                                            SimConfig sim_cfg) {
  const NodeId n = g.num_nodes();
  DS_CHECK(n >= 2);
  auto num_levels = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(n))));
  if (config.max_levels != 0) {
    num_levels = std::min(num_levels, config.max_levels);
  }
  GracefulBuildResult result;
  std::vector<CdgSketchSet> levels;
  for (std::uint32_t i = 1; i <= num_levels; ++i) {
    CdgConfig cdg;
    cdg.epsilon = std::pow(0.5, static_cast<double>(i));
    cdg.k = i;  // k = Theta(log 1/eps_i)
    cdg.seed = config.seed + 0x9e37 * i;
    cdg.termination = config.termination;
    CdgBuildResult build = build_cdg_sketches(g, cdg, sim_cfg);
    result.total += build.total();
    levels.push_back(build.sketches);
    result.level_builds.push_back(std::move(build));
  }
  result.sketches = GracefulSketchSet(std::move(levels));
  return result;
}

}  // namespace dsketch
