// ε-density nets (Definition 4.1, Lemma 4.2).
//
// N ⊆ V is an ε-density net if (1) every node u has a net node within
// R(u, ε) — the radius of the smallest ball around u holding ≥ εn nodes —
// and (2) |N| ≤ 10·ln(n)/ε. Lemma 4.2 shows independent sampling with
// probability 5·ln(n)/(εn) gives both properties whp, in zero communication
// rounds (each node flips its own coin). We implement exactly that, plus
// centralized verifiers used by the property tests and experiment E10.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

/// Per-node coin flips with probability min(1, 5 ln n / (ε n)).
std::vector<NodeId> sample_density_net(NodeId n, double epsilon,
                                       std::uint64_t seed);

/// The sampling probability used above (exposed for tests).
double density_net_probability(NodeId n, double epsilon);

/// Centralized check of property (1): for every u, min_{v in N} d(u,v) <=
/// R(u, ε). Runs n Dijkstras — small graphs only. Returns the number of
/// violating nodes (0 = the net is valid).
NodeId count_density_net_violations(const Graph& g,
                                    const std::vector<NodeId>& net,
                                    double epsilon);

/// R(u, ε) for every node: distance to the ceil(εn)-th nearest node
/// (inclusive of u itself, matching |B(u,r)| >= εn).
std::vector<Dist> density_radii(const Graph& g, double epsilon);

}  // namespace dsketch
