// Stretch evaluation against exact ground truth.
//
// Stretch of an estimator on pair (u,v) is est(u,v)/d(u,v); all paper
// schemes guarantee est >= d (checked here and surfaced as a violation
// count, which must be zero for the sketch schemes — baselines like Vivaldi
// may violate it, which is part of what E9 demonstrates).
//
// ε-far classification (§4): v is ε-far from u iff at least εn nodes are
// strictly closer to u than v is. Computed exactly from the ground-truth
// row of u.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/oracle.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "util/stats.hpp"

namespace dsketch {

/// Must be safe to call concurrently: evaluate_stretch fans rows out over
/// the thread pool. Every in-library estimator is a pure read of built
/// sketches, which qualifies.
using Estimator = std::function<Dist(NodeId, NodeId)>;

struct StretchReport {
  SampleSet all;        ///< stretch over every sampled pair
  SampleSet far_only;   ///< pairs where v is ε-far from u (ε > 0 runs only)
  SampleSet near_only;  ///< the complement (no guarantee applies)
  std::size_t underestimates = 0;  ///< pairs with est < d (must be 0 for
                                   ///< the paper's schemes)
  std::size_t unreachable = 0;     ///< estimator returned kInfDist on a
                                   ///< reachable pair
  /// Sampled pairs skipped because the ground truth itself is unreachable
  /// (or zero-distance): no finite stretch exists there, so they must not
  /// be scored — estimators without path support (Vivaldi) would
  /// otherwise contribute bogus finite "stretch" over d = ∞, and path
  /// estimators an infinite one.
  std::size_t skipped_no_ground_truth = 0;

  double average_stretch() const { return all.mean(); }
  double max_stretch() const { return all.max(); }
};

struct EvalOptions {
  double epsilon = 0.0;       ///< ε-far threshold; 0 disables the split
  std::size_t max_pairs_per_source = 0;  ///< 0 = all targets per source
  std::uint64_t seed = 7;     ///< target sampling seed
};

/// Evaluates `est` on pairs (s, v) for every ground-truth source s and a
/// (possibly sampled) set of targets v != s.
StretchReport evaluate_stretch(const Graph& g, const SampledGroundTruth& gt,
                               const Estimator& est, const EvalOptions& opts);

/// Same evaluation over any registered oracle (sketches, baselines, a
/// packed store) — the scheme-agnostic path the benches and the CLI use.
StretchReport evaluate_stretch(const Graph& g, const SampledGroundTruth& gt,
                               const DistanceOracle& oracle,
                               const EvalOptions& opts);

/// Ranks targets by (dist, id) from the row source and returns, for each
/// target, whether it is ε-far from the source.
std::vector<bool> far_flags(const std::vector<Dist>& row, NodeId source,
                            double epsilon);

}  // namespace dsketch
