#include "sketch/hierarchy.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace dsketch {

Hierarchy::Hierarchy(std::uint32_t k, std::vector<std::uint32_t> levels)
    : k_(k), levels_(std::move(levels)) {
  DS_CHECK(k_ >= 1);
  for (const std::uint32_t l : levels_) DS_CHECK(l <= k_);
}

Hierarchy Hierarchy::sample(NodeId n, std::uint32_t k, std::uint64_t seed) {
  DS_CHECK(n >= 1 && k >= 1);
  Rng rng(seed);
  const double p =
      k == 1 ? 0.0 : std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));
  std::vector<std::uint32_t> levels(n, 1);
  for (NodeId u = 0; u < n; ++u) {
    while (levels[u] < k && rng.bernoulli(p)) ++levels[u];
  }
  return Hierarchy(k, std::move(levels));
}

Hierarchy Hierarchy::sample_on_subset(NodeId n, std::uint32_t k,
                                      const std::vector<NodeId>& ground,
                                      double p, std::uint64_t seed) {
  DS_CHECK(n >= 1 && k >= 1);
  Rng rng(seed);
  std::vector<std::uint32_t> levels(n, 0);
  for (const NodeId u : ground) {
    DS_CHECK(u < n);
    levels[u] = 1;
    while (levels[u] < k && rng.bernoulli(p)) ++levels[u];
  }
  return Hierarchy(k, std::move(levels));
}

std::vector<NodeId> Hierarchy::level_members(std::uint32_t i) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < n(); ++u) {
    if (in_level(u, i)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> Hierarchy::phase_sources(std::uint32_t i) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < n(); ++u) {
    if (levels_[u] == i + 1) out.push_back(u);
  }
  return out;
}

bool Hierarchy::top_level_nonempty() const {
  for (const std::uint32_t l : levels_) {
    if (l == k_) return true;
  }
  return false;
}

}  // namespace dsketch
