#include "sketch/tz_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "graph/shortest_paths.hpp"

#include "congest/bfs_tree.hpp"
#include "congest/echo_termination.hpp"
#include "congest/fault_plan.hpp"
#include "congest/protocol.hpp"
#include "congest/reliable.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

// Message layouts (word 0 is the tag):
//   DATA:     <kData, phase, source, dist>
//   ECHO:     <kEcho, phase, source, value-as-received>
//   START:    <kStart, phase>            (tree edges, parent -> children)
//   COMPLETE: <kComplete, phase>         (tree edges, child -> parent)
constexpr Word kData = 1;
constexpr Word kEchoTag = 2;
constexpr Word kStart = 3;
constexpr Word kComplete = 4;

constexpr int kPreStart = -2;  // sentinel: node not yet in any phase

class TzProtocol : public Protocol {
 public:
  TzProtocol(const Graph& g, const Hierarchy& h, TerminationMode mode,
             const BfsTree* tree, bool eager_send, std::uint64_t phase_len,
             const TzFaultTolerance& ft = {})
      : graph_(g), hier_(h), mode_(mode), tree_(tree),
        eager_send_(eager_send), phase_len_(phase_len),
        reliable_(ft.enabled) {
    const NodeId n = g.num_nodes();
    const std::uint32_t k = h.k();
    nodes_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      nodes_[u].pivot.assign(k + 1, DistKey{});
      nodes_[u].phase = static_cast<int>(k);  // "above" the top phase
    }
    global_phase_ = static_cast<int>(k) - 1;
    if (reliable_) {
      const ReliableConfig rc{ft.rto, ft.max_rto};
      rel_.reserve(n);
      for (NodeId u = 0; u < n; ++u) {
        rel_.emplace_back(static_cast<std::uint32_t>(g.degree(u)), rc);
      }
    }
  }

  void on_start(NodeCtx& ctx) override {
    start_impl(ctx);
    if (reliable_) rel_[ctx.node()].maintain(ctx);
  }

  void start_impl(NodeCtx& ctx) {
    const NodeId u = ctx.node();
    if (mode_ == TerminationMode::kOracle) {
      // Oracle mode re-activates everyone per phase; advance to the current
      // global phase and (re)announce if this node sources it.
      advance_to(ctx, global_phase_);
      pump(ctx);
      return;
    }
    if (mode_ == TerminationMode::kKnownS) {
      // Every node starts phase k-1 together at round 0 and will advance at
      // the shared analytic deadlines (scheduled by init_phase).
      advance_to(ctx, static_cast<int>(hier_.k()) - 1);
      pump(ctx);
      return;
    }
    // Echo mode: only roots act spontaneously; everyone else waits for
    // START or early data. On a disconnected graph each component root
    // drives its own phase cascade independently.
    if (tree_->is_root(u)) {
      advance_to(ctx, static_cast<int>(hier_.k()) - 1);
      forward_start(ctx, static_cast<int>(hier_.k()) - 1);
      pump(ctx);
    }
  }

  void on_round(NodeCtx& ctx) override {
    if (mode_ == TerminationMode::kKnownS) {
      // Advance past any phase whose deadline has arrived, before looking
      // at new messages (which then belong to the fresh phase).
      NodeState& s = nodes_[ctx.node()];
      while (s.phase != kPreStart && s.phase >= 0 &&
             s.phase < static_cast<int>(hier_.k()) &&
             ctx.round() >= deadline(s.phase)) {
        advance_to(ctx, s.phase - 1);
      }
    }
    if (reliable_) {
      // Raw frames pass through the reliable channel first; dispatch sees
      // the same exactly-once in-order stream a fault-free run would.
      const auto& delivered = rel_[ctx.node()].receive(ctx, ctx.inbox());
      for (const Inbound& in : delivered) dispatch(ctx, in);
    } else {
      for (const Inbound& in : ctx.inbox()) dispatch(ctx, in);
    }
    pump(ctx);
    if (reliable_) rel_[ctx.node()].maintain(ctx);
  }

  void on_restart(NodeCtx& ctx) override {
    // The crash discarded our queued outboxes; resend everything unacked,
    // then resume as a normal round (the retry timers were deferred to
    // this round by the simulator).
    if (reliable_) rel_[ctx.node()].restart(ctx);
    on_round(ctx);
  }

  /// Round by which phase p must have converged (kKnownS). Phases run
  /// k-1, k-2, ..., 0 back to back, phase_len_ rounds each.
  std::uint64_t deadline(int p) const {
    return (static_cast<std::uint64_t>(hier_.k()) -
            static_cast<std::uint64_t>(p)) *
           phase_len_;
  }

  bool on_quiescent(Simulator& sim) override {
    // Echo: the root drives phases; KnownS: deadlines drive them.
    if (mode_ != TerminationMode::kOracle) return false;
    // Oracle: the silent network means the current phase converged.
    phase_end_rounds_.push_back(sim.round());
    if (global_phase_ == 0) {
      finalize_all();
      return false;
    }
    --global_phase_;
    sim.activate_all();
    return true;
  }

  /// True once every node has run through all k phases. A faulty run can
  /// stall short of this without hitting the round limit (a lost message
  /// leaves the network permanently quiescent), so the driver checks this
  /// before extracting labels.
  bool all_finished() const {
    for (const NodeState& s : nodes_) {
      if (s.phase != kPreStart) return false;
    }
    return true;
  }

  RoutingTable take_routing() {
    RoutingTable table;
    table.next_hop.reserve(nodes_.size());
    for (auto& s : nodes_) table.next_hop.push_back(std::move(s.next_hop));
    return table;
  }

  LabelArena take_labels() {
    const std::uint32_t k = hier_.k();
    std::vector<TzLabelBuilder> builders;
    builders.reserve(nodes_.size());
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      NodeState& s = nodes_[u];
      DS_CHECK_MSG(s.phase == kPreStart, "node did not finish all phases");
      TzLabelBuilder label(u, k);
      for (std::uint32_t i = 0; i < k; ++i) label.set_pivot(i, s.pivot[i]);
      for (const BunchEntry& e : s.bunch) label.add_bunch_entry(e);
      label.sort_bunch();
      builders.push_back(std::move(label));
    }
    return LabelArena::from_builders(std::move(builders));
  }

  /// Network-wide end round of each phase, in execution order (k-1 first).
  /// Echo mode records ends per component root; the network-wide end of a
  /// phase is the max across components.
  std::vector<std::uint64_t> phase_end_rounds() const {
    if (mode_ != TerminationMode::kEcho) return phase_end_rounds_;
    std::vector<std::uint64_t> out;
    for (const NodeState& s : nodes_) {
      if (s.root_phase_ends.empty()) continue;
      if (out.size() < s.root_phase_ends.size()) {
        out.resize(s.root_phase_ends.size(), 0);
      }
      for (std::size_t i = 0; i < s.root_phase_ends.size(); ++i) {
        out[i] = std::max(out[i], s.root_phase_ends[i]);
      }
    }
    return out;
  }

 private:
  struct NodeState {
    int phase;  // current phase index; k = above top; kPreStart = finished
    std::vector<DistKey> pivot;  // pivot[i] valid once phase i finalized;
                                 // pivot[k] = infinite key
    std::vector<BunchEntry> bunch;

    // Phase-local Bellman-Ford state.
    std::unordered_map<NodeId, Dist> dist;
    std::unordered_map<NodeId, std::uint32_t> hop;  // edge of last accept
    std::unordered_map<NodeId, char> queued;
    std::deque<NodeId> pending;
    std::unordered_map<NodeId, std::uint32_t> next_hop;  // final, all phases

    // Echo-mode machinery.
    EchoTracker echo;
    CompletionTracker completion;
    std::uint32_t early_child_completes = 0;  // banked for the next phase
    int last_forwarded_start = 1 << 30;
    // At a component root: round each phase completed, in execution order
    // (k-1 first). Node-owned so roots of different components can fire in
    // the same (parallel) step without sharing a vector.
    std::vector<std::uint64_t> root_phase_ends;
  };

  bool is_source(NodeId u, int phase) const {
    return hier_.level_of(u) == static_cast<std::uint32_t>(phase) + 1;
  }

  void dispatch(NodeCtx& ctx, const Inbound& in) {
    const Word tag = in.msg.at(0);
    switch (tag) {
      case kData:
        handle_data(ctx, in);
        break;
      case kEchoTag:
        handle_echo(ctx, in);
        break;
      case kStart: {
        const int p = static_cast<int>(static_cast<std::int64_t>(in.msg.at(1)));
        forward_start(ctx, p);
        advance_to(ctx, p);
        break;
      }
      case kComplete:
        handle_complete(ctx, in);
        break;
      default:
        DS_CHECK_MSG(false, "unknown message tag");
    }
  }

  void handle_data(NodeCtx& ctx, const Inbound& in) {
    const NodeId u = ctx.node();
    const int p = static_cast<int>(in.msg.at(1));
    const NodeId src = static_cast<NodeId>(in.msg.at(2));
    const Dist a = in.msg.at(3);
    NodeState& s = nodes_[u];
    if (s.phase > p) {
      // Data can race at most one phase ahead of our START (see header).
      DS_CHECK_MSG(s.phase - p <= 1, "data skipped a phase");
      advance_to(ctx, p);
    }
    DS_CHECK_MSG(s.phase == p, "stale data message");
    const Dist cand = a + ctx.edge_weight(in.local_edge);
    const DistKey key{cand, src};
    const DistKey& gate = s.pivot[static_cast<std::size_t>(p) + 1];
    const auto it = s.dist.find(src);
    const bool improves = it == s.dist.end() || cand < it->second;
    if (key < gate && improves) {
      s.dist[src] = cand;
      s.hop[src] = in.local_edge;
      if (mode_ == TerminationMode::kEcho) {
        if (auto old = s.echo.accept_trigger(src, in.local_edge, a)) {
          send_echo(ctx, p, src, *old);
        }
      }
      char& q = s.queued[src];
      if (!q) {
        q = 1;
        s.pending.push_back(src);
      }
    } else if (mode_ == TerminationMode::kEcho) {
      send_echo(ctx, p, src, EchoObligation{in.local_edge, a});
    }
  }

  void handle_echo(NodeCtx& ctx, const Inbound& in) {
    const NodeId u = ctx.node();
    const int p = static_cast<int>(in.msg.at(1));
    const NodeId src = static_cast<NodeId>(in.msg.at(2));
    const Dist value = in.msg.at(3);
    NodeState& s = nodes_[u];
    DS_CHECK_MSG(s.phase == p, "echo for a non-current phase");
    if (auto upstream = s.echo.on_echo(src, value)) {
      send_echo(ctx, p, src, *upstream);
    } else if (s.echo.self_announce_complete() && is_source(u, p)) {
      if (s.completion.on_self_complete()) fire_complete(ctx, p);
    }
  }

  void handle_complete(NodeCtx& ctx, const Inbound& in) {
    const int p = static_cast<int>(in.msg.at(1));
    NodeState& s = nodes_[ctx.node()];
    if (s.phase != p) {
      // A child that advanced lazily through an early data message can
      // COMPLETE phase p before our own START(p) arrives. The gap is at
      // most one phase (data for p only exists once phase p+1 finished
      // globally, which required our COMPLETE(p+1)); bank it for init.
      DS_CHECK_MSG(s.phase - p == 1, "COMPLETE skipped a phase");
      ++s.early_child_completes;
      return;
    }
    if (s.completion.on_child_complete()) fire_complete(ctx, p);
  }

  // All protocol traffic funnels through these two so the reliable layer
  // (when enabled) can wrap every frame.
  void send_on(NodeCtx& ctx, std::uint32_t edge, const Message& m) {
    if (reliable_) {
      rel_[ctx.node()].send(ctx, edge, m);
    } else {
      ctx.send(edge, m);
    }
  }
  void broadcast_msg(NodeCtx& ctx, const Message& m) {
    if (!reliable_) {
      ctx.broadcast(m);
      return;
    }
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t e = 0; e < deg; ++e) rel_[ctx.node()].send(ctx, e, m);
  }

  void send_echo(NodeCtx& ctx, int phase, NodeId src,
                 const EchoObligation& ob) {
    send_on(ctx, ob.edge, Message{kEchoTag, static_cast<Word>(phase), src,
                                  static_cast<Word>(ob.value)});
  }

  void forward_start(NodeCtx& ctx, int p) {
    NodeState& s = nodes_[ctx.node()];
    if (s.last_forwarded_start <= p) return;
    s.last_forwarded_start = p;
    for (const std::uint32_t e : tree_->child_edges[ctx.node()]) {
      send_on(ctx, e, Message{kStart, static_cast<Word>(p)});
    }
  }

  /// The node (and, at a root, its whole component) finished phase p.
  void fire_complete(NodeCtx& ctx, int p) {
    const NodeId u = ctx.node();
    NodeState& s = nodes_[u];
    s.completion.mark_fired();
    if (!tree_->is_root(u)) {
      send_on(ctx, tree_->parent_edge[u],
              Message{kComplete, static_cast<Word>(p)});
      return;
    }
    s.root_phase_ends.push_back(ctx.round());
    const int next = p - 1;
    advance_to(ctx, next);  // next == -1 finalizes the root entirely
    forward_start(ctx, next);
  }

  /// Finalizes phases above `target` and initializes phase `target`.
  /// target == -1 finalizes everything (protocol finished at this node).
  void advance_to(NodeCtx& ctx, int target) {
    NodeState& s = nodes_[ctx.node()];
    if (s.phase == kPreStart) return;
    while (s.phase > target) {
      if (s.phase < static_cast<int>(hier_.k())) finalize_phase(ctx.node());
      --s.phase;
      if (s.phase >= 0 && s.phase == target) init_phase(ctx, s.phase);
    }
    if (target < 0) s.phase = kPreStart;
  }

  void finalize_phase(NodeId u) {
    NodeState& s = nodes_[u];
    const std::uint32_t p = static_cast<std::uint32_t>(s.phase);
    DistKey best = s.pivot[p + 1];
    for (const auto& [v, d] : s.dist) {
      s.bunch.push_back(BunchEntry{v, p, d});
      const DistKey key{d, v};
      if (key < best) best = key;
    }
    if (hier_.level_of(u) > p) {
      const DistKey own{0, u};
      if (own < best) best = own;
    }
    s.pivot[p] = best;
    for (const auto& [v, e] : s.hop) s.next_hop.emplace(v, e);
    s.dist.clear();
    s.hop.clear();
    s.queued.clear();
    s.pending.clear();
    DS_CHECK(!s.echo.has_outstanding());
    s.echo = EchoTracker{};
  }

  void init_phase(NodeCtx& ctx, int p) {
    const NodeId u = ctx.node();
    NodeState& s = nodes_[u];
    const bool source = is_source(u, p);
    if (source) {
      // The source's own announcement passes through the same gate.
      const DistKey own{0, u};
      if (own < s.pivot[static_cast<std::size_t>(p) + 1]) {
        s.dist[u] = 0;
        s.queued[u] = 1;
        s.pending.push_back(u);
      }
    }
    if (mode_ == TerminationMode::kEcho) {
      const auto children =
          static_cast<std::uint32_t>(tree_->child_edges[u].size());
      // A source with a live announcement is incomplete until it echoes out;
      // a source whose announcement failed its own gate never broadcasts and
      // is complete immediately, like any non-source.
      const bool self_complete = !source || s.pending.empty();
      s.completion.reset(children, self_complete);
      // Apply COMPLETEs that raced ahead of our START for this phase.
      bool ready = self_complete && children == 0;
      const std::uint32_t banked = s.early_child_completes;
      s.early_child_completes = 0;
      for (std::uint32_t i = 0; i < banked; ++i) {
        ready = s.completion.on_child_complete() || ready;
      }
      if (ready) fire_complete(ctx, p);
    }
    if (mode_ == TerminationMode::kKnownS) ctx.wake_at(deadline(p));
    ctx.wake();
  }

  /// Round-robin send: broadcast the head of the pending queue (Algorithm
  /// 2's one-message-per-round multiplexing), or the whole queue when the
  /// eager-send ablation is on.
  void pump(NodeCtx& ctx) {
    const NodeId u = ctx.node();
    NodeState& s = nodes_[u];
    if (s.phase < 0 || s.phase >= static_cast<int>(hier_.k())) return;
    while (!s.pending.empty()) {
      const NodeId src = s.pending.front();
      s.pending.pop_front();
      s.queued[src] = 0;
      const Dist d = s.dist.at(src);
      broadcast_msg(ctx, Message{kData, static_cast<Word>(s.phase), src,
                                 static_cast<Word>(d)});
      if (mode_ == TerminationMode::kEcho) {
        s.echo.commit_send(src, d, ctx.degree(), /*self_announce=*/src == u);
        // A degree-zero source has no cascade: its record completes inside
        // commit_send and no echo will ever arrive to observe it, so the
        // completion check must happen here. (Idempotent for everyone
        // else — on_self_complete only reports ready once, pre-fire.)
        if (s.echo.self_announce_complete() &&
            s.completion.on_self_complete()) {
          fire_complete(ctx, s.phase);
        }
      }
      if (!eager_send_) break;
    }
    if (!s.pending.empty()) ctx.wake();
  }

  void finalize_all() {
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      NodeState& s = nodes_[u];
      while (s.phase >= 0) {
        if (s.phase < static_cast<int>(hier_.k())) finalize_phase(u);
        --s.phase;
      }
      s.phase = kPreStart;
    }
  }

 public:
  std::uint64_t total_retransmits() const {
    std::uint64_t sum = 0;
    for (const ReliableChannel& c : rel_) sum += c.retransmits();
    return sum;
  }
  std::uint64_t total_redundant_discards() const {
    std::uint64_t sum = 0;
    for (const ReliableChannel& c : rel_) sum += c.redundant_discards();
    return sum;
  }

 private:
  const Graph& graph_;
  const Hierarchy& hier_;
  TerminationMode mode_;
  const BfsTree* tree_;
  bool eager_send_;
  std::uint64_t phase_len_;  // kKnownS deadline spacing
  bool reliable_;
  std::vector<ReliableChannel> rel_;  // per node, when reliable_
  std::vector<NodeState> nodes_;
  int global_phase_;  // oracle mode
  std::vector<std::uint64_t> phase_end_rounds_;
};

}  // namespace

TzDistributedResult build_tz_distributed(const Graph& g,
                                         const Hierarchy& hierarchy,
                                         TerminationMode mode, SimConfig cfg,
                                         bool eager_send,
                                         std::uint32_t known_S,
                                         TzFaultTolerance fault_tolerance) {
  TzDistributedResult result;
  BfsTree tree;
  if (mode == TerminationMode::kEcho) {
    // Leader election / tree building always runs fault-free: the tree is
    // static data the (possibly faulty) main run navigates by.
    SimConfig tree_cfg = cfg;
    tree_cfg.faults = nullptr;
    BfsTreeRun run = build_bfs_tree(g, tree_cfg);
    tree = std::move(run.tree);
    result.tree_stats = run.stats;
  }
  if (fault_tolerance.enabled) {
    // Reliable frames carry one extra header word on top of the widest
    // protocol message (DATA/ECHO = 4 words).
    cfg.max_message_words = std::max<std::size_t>(cfg.max_message_words, 5);
  }
  std::uint64_t phase_len = 0;
  if (mode == TerminationMode::kKnownS) {
    const std::uint64_t S =
        known_S != 0 ? known_S : shortest_path_diameter(g);
    // Lemma 3.7 budget: whp at most 3 n^{1/k} ln n sources multiplex each
    // node's queue, over <= S hops; pad with a safety margin.
    const double n = static_cast<double>(g.num_nodes());
    const double per_hop =
        3.0 * std::pow(n, 1.0 / hierarchy.k()) * std::log(n);
    phase_len = static_cast<std::uint64_t>(per_hop * static_cast<double>(S)) +
                2 * S + 16;
  }
  TzProtocol protocol(g, hierarchy, mode,
                      mode == TerminationMode::kEcho ? &tree : nullptr,
                      eager_send, phase_len, fault_tolerance);
  if (cfg.phase.empty()) cfg.phase = "tz_construction";
  Simulator sim(g, protocol, cfg);
  result.stats = sim.run();
  result.retransmits = protocol.total_retransmits();
  result.duplicate_discards = protocol.total_redundant_discards();
  if (cfg.faults != nullptr &&
      (result.stats.hit_round_limit || !protocol.all_finished())) {
    // A faulty run either exhausted its round budget or went permanently
    // quiescent mid-build (e.g. faults injected without fault tolerance:
    // a lost ECHO stalls termination with no messages left in flight).
    // Report the failure rather than asserting so benches can measure
    // completion rates.
    result.completed = false;
    return result;
  }
  DS_CHECK_MSG(!result.stats.hit_round_limit,
               "TZ construction exceeded the round budget");
  result.labels = protocol.take_labels();
  result.routing = protocol.take_routing();
  result.phase_end_rounds = protocol.phase_end_rounds();
  if (mode == TerminationMode::kKnownS) {
    result.phase_end_rounds.clear();
    for (std::uint32_t p = 0; p < hierarchy.k(); ++p) {
      result.phase_end_rounds.push_back((p + 1) * phase_len);
    }
  }
  return result;
}

}  // namespace dsketch
