// (ε,k)-CDG sketches (§4, Lemma 4.4/4.5, Theorem 4.6).
//
// Construction pipeline, all distributed:
//   1. sample an ε-density net N (zero rounds, Lemma 4.2);
//   2. super-source Bellman–Ford from N: every node u learns its nearest net
//      node u' (the Voronoi owner), d(u,u'), and the Voronoi-forest parent
//      edge (O(S) rounds);
//   3. Thorup–Zwick on the net through G: hierarchy A_0 = N ⊇ … ⊇ A_{k-1}
//      sampled with probability (10/ε · ln n)^{-1/k}; Algorithm 2 runs with
//      those level sets, giving every net node its TZ label over the net
//      metric (Lemma 4.5);
//   4. label dissemination: each net node streams its serialized label down
//      its Voronoi tree, 3 payload words per message, pipelined — the step
//      the paper leaves implicit; we build and charge it (E5 reports its
//      share of the cost).
//
// The sketch of u is (u', d(u,u'), L(u')); the estimate for (u,v) is
//   d(u,u') + tz_query(L(u'), L(v')) + d(v',v)
// with stretch ≤ 8k-1 for ε-far pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"
#include "sketch/tz_distributed.hpp"
#include "sketch/tz_label.hpp"

namespace dsketch {

struct CdgConfig {
  double epsilon = 0.1;
  std::uint32_t k = 2;
  std::uint64_t seed = 1;
  TerminationMode termination = TerminationMode::kOracle;
};

class CdgSketchSet {
 public:
  struct NodeSketch {
    NodeId net_node = kInvalidNode;  ///< u' — nearest net node
    Dist net_dist = kInfDist;        ///< d(u, u')
    TzLabelBuilder label;            ///< L(u'), as disseminated (finalized)
  };

  CdgSketchSet() = default;
  explicit CdgSketchSet(std::vector<NodeSketch> sketches)
      : sketches_(std::move(sketches)) {}

  Dist query(NodeId u, NodeId v) const;
  /// Nodes covered (one sketch per node).
  std::size_t num_nodes() const { return sketches_.size(); }
  std::size_t size_words(NodeId u) const {
    return 2 + sketches_[u].label.size_words();
  }
  const NodeSketch& sketch(NodeId u) const { return sketches_[u]; }

 private:
  std::vector<NodeSketch> sketches_;
};

struct CdgBuildResult {
  CdgSketchSet sketches;
  std::vector<NodeId> net;
  SimStats voronoi_stats;        ///< super-source BF (+ child claims)
  SimStats tz_stats;             ///< Algorithm 2 on the net (+ tree, if echo)
  SimStats dissemination_stats;  ///< label streaming down Voronoi trees
  std::uint32_t k_used = 0;      ///< k after empty-top-level fallback

  SimStats total() const {
    SimStats s = voronoi_stats;
    s += tz_stats;
    s += dissemination_stats;
    return s;
  }
};

CdgBuildResult build_cdg_sketches(const Graph& g, const CdgConfig& config,
                                  SimConfig sim_cfg = {});

/// Label wire format used by the dissemination step (exposed for tests):
/// [levels, bunch_count, (pivot id, pivot dist) x levels,
///  (node, level, dist) x bunch_count].
std::vector<Word> serialize_label(const LabelView& label);
TzLabelBuilder deserialize_label(NodeId owner, const std::vector<Word>& words);

}  // namespace dsketch
