// Sampling hierarchy A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1} (A_k = ∅) of §3.1.
//
// For the plain Thorup–Zwick construction the ground set is V and the
// per-level survival probability is n^{-1/k}. For the (ε,k)-CDG sketches the
// ground set is a density net N and the probability is (10/ε · ln n)^{-1/k}
// (§4, Lemma 4.5). Both distributed and centralized constructions consume
// the *same* Hierarchy object, which is what lets the equivalence tests
// compare their outputs exactly. In a deployment each node flips its own
// coins; sharing the coin flips here is only a refactoring of where the
// randomness lives, not extra knowledge — no node ever reads another node's
// level.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dsketch {

class Hierarchy {
 public:
  /// levels[u] = number of sets containing u; 0 means u is not even in A_0
  /// (possible only for net-restricted hierarchies).
  Hierarchy(std::uint32_t k, std::vector<std::uint32_t> levels);

  /// Standard TZ hierarchy over all of V with probability n^{-1/k}.
  static Hierarchy sample(NodeId n, std::uint32_t k, std::uint64_t seed);

  /// Hierarchy over a ground subset (the density net): members of `ground`
  /// are in A_0; survival probability `p` per level.
  static Hierarchy sample_on_subset(NodeId n, std::uint32_t k,
                                    const std::vector<NodeId>& ground,
                                    double p, std::uint64_t seed);

  std::uint32_t k() const { return k_; }
  NodeId n() const { return static_cast<NodeId>(levels_.size()); }

  /// u in A_i ?
  bool in_level(NodeId u, std::uint32_t i) const { return levels_[u] > i; }
  std::uint32_t level_of(NodeId u) const { return levels_[u]; }

  /// Members of A_i (ascending ids).
  std::vector<NodeId> level_members(std::uint32_t i) const;

  /// Nodes with A_i membership but not A_{i+1} — the phase-i sources.
  std::vector<NodeId> phase_sources(std::uint32_t i) const;

  /// True when the top nonempty level A_{k-1} is nonempty (required for the
  /// stretch guarantee; resample with a new seed otherwise).
  bool top_level_nonempty() const;

 private:
  std::uint32_t k_;
  std::vector<std::uint32_t> levels_;
};

}  // namespace dsketch
