// The four paper sketch families (tz / slack / cdg / graceful) as one
// DistanceOracle implementation.
//
// This is where the enum-switch that used to live inside SketchEngine
// went: SketchOracle owns exactly one of the four payloads per
// config().scheme and implements the polymorphic query/size/save surface
// over it. The payloads themselves stay private — the packed serving
// store (serve/sketch_store) is a friend so it can re-encode them without
// the old leaky per-scheme payload accessors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "congest/accounting.hpp"
#include "core/config.hpp"
#include "core/oracle.hpp"
#include "core/oracle_registry.hpp"
#include "graph/graph.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_label.hpp"

namespace dsketch {

class SketchStore;

/// Maps the CLI/bench flag surface (--k, --epsilon, --seed, --echo,
/// --known-s, --async) onto a BuildConfig for the given scheme; used by
/// every registered sketch factory so all consumers parse flags once,
/// identically.
BuildConfig sketch_build_config(Scheme scheme, const FlagSet& flags);

/// Worst-case guarantee string for a sketch family with parameters
/// filled in — shared by the in-memory oracle and the packed store so
/// the two representations of one scheme can never disagree.
std::string sketch_guarantee(Scheme scheme, std::uint32_t k, double epsilon);

/// Capabilities of a sketch family with the stretch bound resolved from
/// k; shared by SketchOracle and SketchStore.
Capabilities sketch_capabilities(Scheme scheme, std::uint32_t k);

/// One built sketch set of any of the four families.
class SketchOracle final : public DistanceOracle {
 public:
  /// Runs the distributed construction for config.scheme on g.
  SketchOracle(const Graph& g, const BuildConfig& config);

  // DistanceOracle interface.
  Dist query(NodeId u, NodeId v) const override;
  NodeId num_nodes() const override { return n_; }
  std::size_t size_words(NodeId u) const override;
  std::string scheme() const override { return scheme_name(config_.scheme); }
  std::string guarantee() const override;
  Capabilities capabilities() const override;
  /// Construction cost; nullptr for loaded sketches — the cost was paid
  /// by whoever built and is not persisted in the envelope.
  const SimStats* build_cost() const override {
    return cost_available_ ? &cost_ : nullptr;
  }

  /// The parameters this sketch was built (or loaded) with.
  const BuildConfig& config() const { return config_; }
  /// Total CONGEST cost of construction; zero for loaded sketches (see
  /// build_cost() for the availability-aware accessor).
  const SimStats& cost() const { return cost_; }

  /// Reconstructs from an envelope payload (the registered loader).
  static std::unique_ptr<SketchOracle> load_payload(
      std::istream& in, const OracleEnvelope& envelope);

 protected:
  void save_payload(std::ostream& out) const override;
  std::uint32_t envelope_k() const override { return config_.k; }
  double envelope_epsilon() const override { return config_.epsilon; }

 private:
  /// Packs the payloads into the binary serving arena; keeping the
  /// serialization hook private to the oracle replaces the four public
  /// *_payload() accessors the engine used to leak.
  friend class SketchStore;

  SketchOracle() = default;  // used by load_payload()

  BuildConfig config_;
  /// False only for sketches loaded from pre-epsilon envelopes, whose
  /// config().epsilon is a default rather than the recorded build value;
  /// the store's to_text preserves that provenance.
  bool epsilon_recorded_ = true;
  NodeId n_ = 0;
  SimStats cost_;
  bool cost_available_ = true;  ///< false for envelope-loaded sketches

  // Exactly one of these is populated, per config_.scheme.
  LabelArena tz_labels_;
  SlackSketchSet slack_;
  CdgSketchSet cdg_;
  GracefulSketchSet graceful_;
};

/// Registers the four sketch families ("tz", "slack", "cdg", "graceful").
void register_sketch_oracles(OracleRegistry& reg);

}  // namespace dsketch
