#include "core/serialization.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace dsketch {
namespace {

constexpr const char* kTzMagic = "dsketch-tz-v1";
constexpr const char* kSlackMagic = "dsketch-slack-v1";
constexpr const char* kCdgMagic = "dsketch-cdg-v1";
constexpr const char* kGracefulMagic = "dsketch-graceful-v1";

void expect_magic(std::istream& in, const char* magic) {
  std::string seen;
  if (!(in >> seen) || seen != magic) {
    throw std::runtime_error(std::string("bad sketch file: expected ") +
                             magic);
  }
}

void write_label_line(std::ostream& out, const LabelView& label) {
  const std::vector<Word> words = serialize_label(label);
  out << label.owner << ' ' << words.size();
  for (const Word w : words) out << ' ' << w;
  out << '\n';
}

TzLabelBuilder read_label_line(std::istream& in) {
  NodeId owner = 0;
  std::size_t count = 0;
  if (!(in >> owner >> count)) {
    throw std::runtime_error("truncated label record");
  }
  std::vector<Word> words(count);
  for (Word& w : words) {
    if (!(in >> w)) throw std::runtime_error("truncated label words");
  }
  return deserialize_label(owner, words);
}

}  // namespace

void write_tz_labels(std::ostream& out, const LabelArena& labels) {
  out << kTzMagic << ' ' << labels.num_nodes() << '\n';
  for (NodeId u = 0; u < labels.num_nodes(); ++u) {
    write_label_line(out, labels.view(u));
  }
}

LabelArena read_tz_labels(std::istream& in) {
  expect_magic(in, kTzMagic);
  std::size_t n = 0;
  if (!(in >> n)) throw std::runtime_error("bad tz sketch header");
  std::vector<TzLabelBuilder> builders;
  builders.reserve(n);
  for (std::size_t i = 0; i < n; ++i) builders.push_back(read_label_line(in));
  return LabelArena::from_builders(std::move(builders));
}

void write_slack_sketches(std::ostream& out, const SlackSketchSet& set,
                          NodeId n) {
  const auto& net = set.net();
  out << kSlackMagic << ' ' << n << ' ' << net.size() << '\n';
  for (const NodeId w : net) out << w << ' ';
  out << '\n';
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < net.size(); ++i) {
      out << set.net_dist(u, i) << (i + 1 == net.size() ? '\n' : ' ');
    }
    if (net.empty()) out << '\n';
  }
}

SlackSketchSet read_slack_sketches(std::istream& in) {
  expect_magic(in, kSlackMagic);
  NodeId n = 0;
  std::size_t net_size = 0;
  if (!(in >> n >> net_size)) throw std::runtime_error("bad slack header");
  std::vector<NodeId> net(net_size);
  for (NodeId& w : net) {
    if (!(in >> w)) throw std::runtime_error("truncated slack net");
  }
  std::vector<std::vector<Dist>> dist(n, std::vector<Dist>(net_size));
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < net_size; ++i) {
      if (!(in >> dist[u][i])) {
        throw std::runtime_error("truncated slack distances");
      }
    }
  }
  return SlackSketchSet(std::move(net), std::move(dist));
}

void write_cdg_sketches(std::ostream& out, const CdgSketchSet& set,
                        NodeId n) {
  out << kCdgMagic << ' ' << n << '\n';
  for (NodeId u = 0; u < n; ++u) {
    const auto& s = set.sketch(u);
    out << s.net_node << ' ' << s.net_dist << ' ';
    write_label_line(out, s.label.view());
  }
}

CdgSketchSet read_cdg_sketches(std::istream& in) {
  expect_magic(in, kCdgMagic);
  NodeId n = 0;
  if (!(in >> n)) throw std::runtime_error("bad cdg header");
  std::vector<CdgSketchSet::NodeSketch> sketches(n);
  for (NodeId u = 0; u < n; ++u) {
    auto& s = sketches[u];
    if (!(in >> s.net_node >> s.net_dist)) {
      throw std::runtime_error("truncated cdg record");
    }
    s.label = read_label_line(in);
  }
  return CdgSketchSet(std::move(sketches));
}

void write_graceful_sketches(std::ostream& out, const GracefulSketchSet& set,
                             NodeId n) {
  out << kGracefulMagic << ' ' << set.num_levels() << '\n';
  for (std::size_t i = 0; i < set.num_levels(); ++i) {
    write_cdg_sketches(out, set.level(i), n);
  }
}

GracefulSketchSet read_graceful_sketches(std::istream& in) {
  expect_magic(in, kGracefulMagic);
  std::size_t levels = 0;
  if (!(in >> levels)) throw std::runtime_error("bad graceful header");
  std::vector<CdgSketchSet> sets;
  sets.reserve(levels);
  for (std::size_t i = 0; i < levels; ++i) {
    sets.push_back(read_cdg_sketches(in));
  }
  return GracefulSketchSet(std::move(sets));
}

}  // namespace dsketch
