// Name -> oracle scheme resolution, and the versioned save/load envelope.
//
// Every distance estimator in the library registers itself here under its
// stable external name (the one the CLI flags, text headers, and bench
// JSON use). Consumers resolve schemes by name instead of switching on an
// enum, so adding a scheme is: implement DistanceOracle, write a
// register_*_oracle() function, add it to the builtin bootstrap list —
// and every experiment, the CLI, and the serving tier pick it up.
//
//   const OracleRegistry& reg = OracleRegistry::instance();
//   auto oracle = reg.build("landmark", g, flags);
//   for (const OracleScheme* s : reg.schemes()) { ... }   // --list-schemes
//
// Envelope format (text, one header line + scheme payload):
//
//   scheme <name> <n> <k> <epsilon>\n<payload...>
//
// The header always carries epsilon (files written before that field
// have the payload magic as the fifth token; both vintages load, and
// `epsilon_recorded` reports which one this was). Loading resolves
// <name> through the registry, so any registered scheme round-trips
// through the same two functions.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "graph/graph.hpp"
#include "util/flags.hpp"

namespace dsketch {

/// Parsed envelope header: what was recorded at save time. Loaders and
/// the CLI's --load validation consume this instead of re-parsing text.
struct OracleEnvelope {
  std::string scheme;
  NodeId n = 0;
  std::uint32_t k = 0;       ///< scheme-defined; 0 when not meaningful
  double epsilon = 0.0;      ///< valid only when epsilon_recorded
  /// False for legacy pre-epsilon headers: epsilon was never written, so
  /// flag validation must not trust a default against it.
  bool epsilon_recorded = true;
};

/// Reads and consumes the envelope header line, throwing on malformed
/// input. The stream is left at the first payload byte.
OracleEnvelope read_envelope_header(std::istream& in);

/// Writes the envelope header line (always including epsilon).
void write_envelope_header(std::ostream& out, const std::string& scheme,
                           NodeId n, std::uint32_t k, double epsilon);

/// Writes one space-separated payload row + newline — the shared line
/// format of the text payload loaders/savers (exact/landmark/vivaldi),
/// kept in one place so the envelopes cannot silently diverge.
template <typename T>
void write_payload_row(std::ostream& out, const std::vector<T>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    out << (i == 0 ? "" : " ") << row[i];
  }
  out << "\n";
}

/// One registered scheme: identity, static capability summary, and the
/// two factories every consumer resolves by name.
struct OracleScheme {
  using BuildFn = std::function<std::unique_ptr<DistanceOracle>(
      const Graph&, const FlagSet&)>;
  using LoadFn = std::function<std::unique_ptr<DistanceOracle>(
      std::istream&, const OracleEnvelope&)>;

  std::string name;       ///< stable external name ("tz", "landmark", ...)
  std::string guarantee;  ///< scheme-level bound with parameters symbolic
                          ///< ("stretch 2k-1 (all pairs)")
  std::string summary;    ///< one-line description for --list-schemes
  /// Scheme-level capabilities; parameter-dependent stretch bounds are 0
  /// here (instance capabilities() has them resolved).
  Capabilities caps;
  /// Name of the build flag whose value the envelope's k field records
  /// ("k" for tz/slack/cdg/graceful, "landmarks" for landmark, "dim" for
  /// vivaldi; empty when the scheme has no such parameter). Lets --load
  /// validation compare the user's flag against the envelope without a
  /// hand-maintained per-scheme table.
  std::string k_flag;
  /// Whether --epsilon is a build parameter of this scheme; when false,
  /// --load validation ignores the envelope's (meaningless) epsilon
  /// instead of rejecting a harmless flag.
  bool uses_epsilon = false;
  /// Builds the oracle from a graph plus scheme flags (--k, --epsilon,
  /// --landmarks, ...); each factory reads its own flags with defaults.
  BuildFn build;
  /// Reconstructs from an envelope payload; null iff !caps.supports_save.
  LoadFn load;
};

/// A loaded oracle plus the envelope it came from (for --load validation).
struct LoadedOracle {
  std::unique_ptr<DistanceOracle> oracle;
  OracleEnvelope envelope;
};

/// The process-wide scheme table. The built-in schemes (4 sketch
/// families + 3 baselines) are registered on first access; user schemes
/// can be added at any time.
class OracleRegistry {
 public:
  /// The singleton, with builtin schemes registered.
  static OracleRegistry& instance();

  /// Registers a scheme; throws std::runtime_error on a duplicate name.
  void add(OracleScheme scheme);

  /// nullptr when unknown.
  const OracleScheme* find(const std::string& name) const;

  /// Throws std::runtime_error listing the known names when unknown.
  const OracleScheme& at(const std::string& name) const;

  /// All registered schemes, sorted by name (the --list-schemes source).
  std::vector<const OracleScheme*> schemes() const;

  /// Sorted registered names, comma-joined (for error messages / usage).
  std::string names_csv() const;

  /// Builds by name: at(name).build(g, flags).
  std::unique_ptr<DistanceOracle> build(const std::string& name,
                                        const Graph& g,
                                        const FlagSet& flags) const;

  /// Reads the envelope header and dispatches to the named scheme's
  /// loader. Throws for unknown schemes and schemes without save support.
  LoadedOracle load(std::istream& in) const;

 private:
  OracleRegistry() = default;
  std::map<std::string, OracleScheme> schemes_;
};

}  // namespace dsketch
