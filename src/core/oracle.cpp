#include "core/oracle.hpp"

#include <ostream>
#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "util/assert.hpp"

namespace dsketch {

void DistanceOracle::query_batch(std::span<const QueryPair> pairs,
                                 std::span<Dist> out) const {
  DS_CHECK(pairs.size() == out.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out[i] = query(pairs[i].first, pairs[i].second);
  }
}

double DistanceOracle::mean_size_words() const {
  const NodeId n = num_nodes();
  if (n == 0) return 0.0;
  double total = 0;
  for (NodeId u = 0; u < n; ++u) {
    total += static_cast<double>(size_words(u));
  }
  return total / static_cast<double>(n);
}

void DistanceOracle::save(std::ostream& out) const {
  // Refuse before touching the stream: writing the header first would
  // leave a corrupt one-line file behind when save is unsupported.
  if (!capabilities().supports_save) {
    throw std::runtime_error("oracle scheme '" + scheme() +
                             "' does not support save");
  }
  write_envelope_header(out, scheme(), num_nodes(), envelope_k(),
                        envelope_epsilon());
  save_payload(out);
}

void DistanceOracle::save_payload(std::ostream&) const {
  throw std::runtime_error("oracle scheme '" + scheme() +
                           "' does not support save");
}

}  // namespace dsketch
