#include "core/engine.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/serialization.hpp"

#include "sketch/cdg_sketch.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_label.hpp"
#include "util/assert.hpp"

namespace dsketch {

struct SketchEngine::Impl {
  NodeId n = 0;
  SimStats cost;

  // Exactly one of these is populated, per config.scheme.
  std::vector<TzLabel> tz_labels;
  SlackSketchSet slack;
  CdgSketchSet cdg;
  GracefulSketchSet graceful;
};

SketchEngine::SketchEngine(const Graph& g, const BuildConfig& config)
    : config_(config), impl_(std::make_unique<Impl>()) {
  impl_->n = g.num_nodes();
  switch (config.scheme) {
    case Scheme::kThorupZwick: {
      // Resample until the top level is populated (whp on the first try).
      Hierarchy h = Hierarchy::sample(g.num_nodes(), config.k, config.seed);
      for (std::uint64_t bump = 1; !h.top_level_nonempty(); ++bump) {
        h = Hierarchy::sample(g.num_nodes(), config.k, config.seed + bump);
      }
      TzDistributedResult r =
          build_tz_distributed(g, h, config.termination, config.sim);
      impl_->cost = r.stats;
      impl_->cost += r.tree_stats;
      impl_->tz_labels = std::move(r.labels);
      break;
    }
    case Scheme::kSlack: {
      SlackSketchResult r =
          build_slack_sketches(g, config.epsilon, config.seed, config.sim);
      impl_->cost = r.stats;
      impl_->slack = std::move(r.sketches);
      break;
    }
    case Scheme::kCdg: {
      CdgConfig cdg;
      cdg.epsilon = config.epsilon;
      cdg.k = config.k;
      cdg.seed = config.seed;
      cdg.termination = config.termination;
      CdgBuildResult r = build_cdg_sketches(g, cdg, config.sim);
      impl_->cost = r.total();
      impl_->cdg = std::move(r.sketches);
      break;
    }
    case Scheme::kGraceful: {
      GracefulConfig gc;
      gc.seed = config.seed;
      gc.termination = config.termination;
      GracefulBuildResult r = build_graceful_sketches(g, gc, config.sim);
      impl_->cost = r.total;
      impl_->graceful = std::move(r.sketches);
      break;
    }
  }
}

SketchEngine::~SketchEngine() = default;
SketchEngine::SketchEngine(SketchEngine&&) noexcept = default;
SketchEngine& SketchEngine::operator=(SketchEngine&&) noexcept = default;

NodeId SketchEngine::num_nodes() const { return impl_->n; }

Dist SketchEngine::query(NodeId u, NodeId v) const {
  DS_CHECK(u < impl_->n && v < impl_->n);
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      return tz_query(impl_->tz_labels[u], impl_->tz_labels[v]);
    case Scheme::kSlack:
      return impl_->slack.query(u, v);
    case Scheme::kCdg:
      return impl_->cdg.query(u, v);
    case Scheme::kGraceful:
      return impl_->graceful.query(u, v);
  }
  return kInfDist;
}

std::size_t SketchEngine::size_words(NodeId u) const {
  DS_CHECK(u < impl_->n);
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      return impl_->tz_labels[u].size_words();
    case Scheme::kSlack:
      return impl_->slack.size_words(u);
    case Scheme::kCdg:
      return impl_->cdg.size_words(u);
    case Scheme::kGraceful:
      return impl_->graceful.size_words(u);
  }
  return 0;
}

double SketchEngine::mean_size_words() const {
  double total = 0;
  for (NodeId u = 0; u < impl_->n; ++u) {
    total += static_cast<double>(size_words(u));
  }
  return total / static_cast<double>(impl_->n);
}

const SimStats& SketchEngine::cost() const { return impl_->cost; }

void SketchEngine::save(std::ostream& out) const {
  // Header carries the build parameters so a loader can reject queries
  // against mismatched flags (see dsketch query --load).
  char eps[40];
  std::snprintf(eps, sizeof(eps), "%.17g", config_.epsilon);
  out << "scheme " << scheme_name(config_.scheme) << " " << impl_->n << " "
      << config_.k << " " << eps << "\n";
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      write_tz_labels(out, impl_->tz_labels);
      return;
    case Scheme::kSlack:
      write_slack_sketches(out, impl_->slack, impl_->n);
      return;
    case Scheme::kCdg:
      write_cdg_sketches(out, impl_->cdg, impl_->n);
      return;
    case Scheme::kGraceful:
      write_graceful_sketches(out, impl_->graceful, impl_->n);
      return;
  }
}

SketchEngine SketchEngine::load(std::istream& in) {
  std::string tag, scheme;
  NodeId n = 0;
  std::uint32_t k = 0;
  if (!(in >> tag >> scheme >> n >> k) || tag != "scheme") {
    throw std::runtime_error("bad sketch engine file header");
  }
  SketchEngine engine;
  engine.impl_ = std::make_unique<Impl>();
  engine.impl_->n = n;
  engine.config_.k = k;
  // The epsilon field was added to the header later; files written before
  // it have the payload magic as the next token. Peek via getline so both
  // vintages load.
  std::string rest;
  std::getline(in, rest);
  if (const auto pos = rest.find_first_not_of(" \t\r");
      pos != std::string::npos) {
    try {
      engine.config_.epsilon = std::stod(rest.substr(pos));
    } catch (const std::exception&) {
      throw std::runtime_error("bad epsilon in sketch engine header: " + rest);
    }
  } else {
    engine.epsilon_known_ = false;
  }
  if (scheme == "tz") {
    engine.config_.scheme = Scheme::kThorupZwick;
    engine.impl_->tz_labels = read_tz_labels(in);
  } else if (scheme == "slack") {
    engine.config_.scheme = Scheme::kSlack;
    engine.impl_->slack = read_slack_sketches(in);
  } else if (scheme == "cdg") {
    engine.config_.scheme = Scheme::kCdg;
    engine.impl_->cdg = read_cdg_sketches(in);
  } else if (scheme == "graceful") {
    engine.config_.scheme = Scheme::kGraceful;
    engine.impl_->graceful = read_graceful_sketches(in);
  } else {
    throw std::runtime_error("unknown scheme in sketch file: " + scheme);
  }
  return engine;
}

const std::vector<TzLabel>* SketchEngine::tz_payload() const {
  return config_.scheme == Scheme::kThorupZwick ? &impl_->tz_labels : nullptr;
}
const SlackSketchSet* SketchEngine::slack_payload() const {
  return config_.scheme == Scheme::kSlack ? &impl_->slack : nullptr;
}
const CdgSketchSet* SketchEngine::cdg_payload() const {
  return config_.scheme == Scheme::kCdg ? &impl_->cdg : nullptr;
}
const GracefulSketchSet* SketchEngine::graceful_payload() const {
  return config_.scheme == Scheme::kGraceful ? &impl_->graceful : nullptr;
}

std::string SketchEngine::guarantee() const {
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      return "stretch " + std::to_string(2 * config_.k - 1) + " (all pairs)";
    case Scheme::kSlack:
      return "stretch 3 (eps=" + std::to_string(config_.epsilon) + "-slack)";
    case Scheme::kCdg:
      return "stretch " + std::to_string(8 * config_.k - 1) + " (eps=" +
             std::to_string(config_.epsilon) + "-slack)";
    case Scheme::kGraceful:
      return "stretch O(log n), average O(1)";
  }
  return "";
}

}  // namespace dsketch
