#include "core/engine.hpp"

#include <istream>
#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "core/sketch_oracle.hpp"

namespace dsketch {

SketchEngine::SketchEngine(const Graph& g, const BuildConfig& config)
    : oracle_(std::make_unique<SketchOracle>(g, config)) {}

SketchEngine::SketchEngine(std::unique_ptr<SketchOracle> oracle)
    : oracle_(std::move(oracle)) {}

SketchEngine::~SketchEngine() = default;
SketchEngine::SketchEngine(SketchEngine&&) noexcept = default;
SketchEngine& SketchEngine::operator=(SketchEngine&&) noexcept = default;

Dist SketchEngine::query(NodeId u, NodeId v) const {
  return oracle_->query(u, v);
}

NodeId SketchEngine::num_nodes() const { return oracle_->num_nodes(); }

std::size_t SketchEngine::size_words(NodeId u) const {
  return oracle_->size_words(u);
}

double SketchEngine::mean_size_words() const {
  return oracle_->mean_size_words();
}

const SimStats& SketchEngine::cost() const { return oracle_->cost(); }

std::string SketchEngine::guarantee() const { return oracle_->guarantee(); }

const BuildConfig& SketchEngine::config() const { return oracle_->config(); }

void SketchEngine::save(std::ostream& out) const { oracle_->save(out); }

SketchEngine SketchEngine::load(std::istream& in) {
  const OracleEnvelope envelope = read_envelope_header(in);
  // Dispatch through the same payload loader the registry uses; only the
  // four sketch families have an engine representation.
  return SketchEngine(SketchOracle::load_payload(in, envelope));
}

}  // namespace dsketch
