// Sketch persistence: text serialization of every sketch family.
//
// §1's motivation is that preprocessing is paid once and queried many
// times; a deployment therefore wants to persist sketches between runs
// (and ship them to query frontends). The format is line-oriented text,
// versioned, with one record per node.
#pragma once

#include <iosfwd>
#include <vector>

#include "sketch/cdg_sketch.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_label.hpp"

namespace dsketch {

void write_tz_labels(std::ostream& out, const LabelArena& labels);
LabelArena read_tz_labels(std::istream& in);

void write_slack_sketches(std::ostream& out, const SlackSketchSet& set,
                          NodeId n);
SlackSketchSet read_slack_sketches(std::istream& in);

void write_cdg_sketches(std::ostream& out, const CdgSketchSet& set, NodeId n);
CdgSketchSet read_cdg_sketches(std::istream& in);

void write_graceful_sketches(std::ostream& out, const GracefulSketchSet& set,
                             NodeId n);
GracefulSketchSet read_graceful_sketches(std::istream& in);

}  // namespace dsketch
