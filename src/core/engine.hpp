// Compat façade: build distance sketches for a network, then answer
// pairwise distance queries from sketches alone.
//
//   Graph g = erdos_renyi(1024, 0.01, {1, 16}, /*seed=*/42);
//   SketchEngine engine(g, BuildConfig{.scheme = Scheme::kThorupZwick,
//                                      .k = 3});
//   Dist estimate = engine.query(3, 997);
//   engine.cost().rounds;     // simulated CONGEST rounds spent building
//   engine.size_words(3);     // sketch words stored at node 3
//
// SketchEngine is now a thin shim over core/oracle.hpp: the actual
// polymorphic implementation is SketchOracle, resolved alongside the
// baselines through the OracleRegistry ("tz", "slack", "cdg",
// "graceful"). New code should program against DistanceOracle / the
// registry; this class remains for callers that want the concrete
// enum-typed build surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "congest/accounting.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class SketchOracle;

class SketchEngine {
 public:
  SketchEngine(const Graph& g, const BuildConfig& config);
  ~SketchEngine();
  SketchEngine(SketchEngine&&) noexcept;
  SketchEngine& operator=(SketchEngine&&) noexcept;

  /// Distance estimate from the two nodes' sketches only.
  Dist query(NodeId u, NodeId v) const;

  /// Number of nodes the sketches cover (valid query ids are [0, n)).
  NodeId num_nodes() const;

  /// Sketch size stored at node u, in words.
  std::size_t size_words(NodeId u) const;

  /// Mean sketch size across nodes, in words.
  double mean_size_words() const;

  /// Total CONGEST cost of construction (rounds/messages/words), including
  /// all phases: tree building, Bellman-Ford passes, dissemination.
  const SimStats& cost() const;

  /// Worst-case stretch guarantee of the built sketch ("2k-1", "3 (ε-slack)",
  /// …) for reporting.
  std::string guarantee() const;

  /// Persists the built sketches (the registry's scheme-tagged envelope).
  /// A loaded engine answers queries identically; construction cost is not
  /// persisted (it was paid by whoever built).
  void save(std::ostream& out) const;
  static SketchEngine load(std::istream& in);

  const BuildConfig& config() const;

  /// The polymorphic oracle backing this engine — pass it anywhere a
  /// DistanceOracle is expected (the query service, evaluate_stretch,
  /// SketchStore::from_oracle).
  const SketchOracle& oracle() const { return *oracle_; }

 private:
  explicit SketchEngine(std::unique_ptr<SketchOracle> oracle);
  std::unique_ptr<SketchOracle> oracle_;
};

}  // namespace dsketch
