// Public entry point: build distance sketches for a network, then answer
// pairwise distance queries from sketches alone.
//
//   Graph g = erdos_renyi(1024, 0.01, {1, 16}, /*seed=*/42);
//   SketchEngine engine(g, BuildConfig{.scheme = Scheme::kThorupZwick,
//                                      .k = 3});
//   Dist estimate = engine.query(3, 997);
//   engine.cost().rounds;     // simulated CONGEST rounds spent building
//   engine.size_words(3);     // sketch words stored at node 3
//
// The engine hides which concrete sketch family backs it; all families
// share the guarantee estimate >= true distance. See core/config.hpp for
// the per-scheme stretch guarantees.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "congest/accounting.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class TzLabel;
class SlackSketchSet;
class CdgSketchSet;
class GracefulSketchSet;

class SketchEngine {
 public:
  SketchEngine(const Graph& g, const BuildConfig& config);
  ~SketchEngine();
  SketchEngine(SketchEngine&&) noexcept;
  SketchEngine& operator=(SketchEngine&&) noexcept;

  /// Distance estimate from the two nodes' sketches only.
  Dist query(NodeId u, NodeId v) const;

  /// Number of nodes the sketches cover (valid query ids are [0, n)).
  NodeId num_nodes() const;

  /// Sketch size stored at node u, in words.
  std::size_t size_words(NodeId u) const;

  /// Mean sketch size across nodes, in words.
  double mean_size_words() const;

  /// Total CONGEST cost of construction (rounds/messages/words), including
  /// all phases: tree building, Bellman-Ford passes, dissemination.
  const SimStats& cost() const;

  /// Worst-case stretch guarantee of the built sketch ("2k-1", "3 (ε-slack)",
  /// …) for reporting.
  std::string guarantee() const;

  /// Persists the built sketches (scheme-tagged text format). A loaded
  /// engine answers queries identically; construction cost is not
  /// persisted (it was paid by whoever built).
  void save(std::ostream& out) const;
  static SketchEngine load(std::istream& in);

  const BuildConfig& config() const { return config_; }

  /// False only for engines loaded from pre-epsilon text files, whose
  /// config().epsilon is a default rather than the build value; flag
  /// validation must not trust it then.
  bool epsilon_known() const { return epsilon_known_; }

  /// Binary-store hooks (serve/sketch_store): read-only access to the built
  /// payload. Exactly the accessor matching config().scheme returns non-null;
  /// the other three return nullptr.
  const std::vector<TzLabel>* tz_payload() const;
  const SlackSketchSet* slack_payload() const;
  const CdgSketchSet* cdg_payload() const;
  const GracefulSketchSet* graceful_payload() const;

 private:
  struct Impl;
  SketchEngine() = default;  // used by load()
  BuildConfig config_;
  bool epsilon_known_ = true;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dsketch
