#include "core/oracle_registry.hpp"

#include <cstdio>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>

namespace dsketch {

// Builtin registration hooks; each lives in the translation unit that
// implements the scheme, so the scheme's code and its registry entry
// stay together. (Function calls, not static initializers: static-library
// linking would silently drop unreferenced registrar objects.)
void register_sketch_oracles(OracleRegistry& reg);    // core/sketch_oracle.cpp
void register_exact_oracle(OracleRegistry& reg);      // baselines/exact_oracle.cpp
void register_landmark_oracle(OracleRegistry& reg);   // baselines/landmark.cpp
void register_vivaldi_oracle(OracleRegistry& reg);    // baselines/vivaldi.cpp

OracleEnvelope read_envelope_header(std::istream& in) {
  std::string tag;
  OracleEnvelope env;
  if (!(in >> tag >> env.scheme >> env.n >> env.k) || tag != "scheme") {
    throw std::runtime_error("bad oracle envelope header (want: scheme "
                             "<name> <n> <k> [<epsilon>])");
  }
  // The epsilon field was added to the header later; files written before
  // it have the payload magic as the next token. Peek via getline so both
  // vintages load.
  std::string rest;
  std::getline(in, rest);
  if (const auto pos = rest.find_first_not_of(" \t\r");
      pos != std::string::npos) {
    try {
      env.epsilon = std::stod(rest.substr(pos));
    } catch (const std::exception&) {
      throw std::runtime_error("bad epsilon in oracle envelope header: " +
                               rest);
    }
  } else {
    env.epsilon_recorded = false;
  }
  return env;
}

void write_envelope_header(std::ostream& out, const std::string& scheme,
                           NodeId n, std::uint32_t k, double epsilon) {
  char eps[40];
  std::snprintf(eps, sizeof(eps), "%.17g", epsilon);
  out << "scheme " << scheme << " " << n << " " << k << " " << eps << "\n";
}

OracleRegistry& OracleRegistry::instance() {
  static OracleRegistry registry;
  static std::once_flag builtins_once;
  std::call_once(builtins_once, [] {
    register_sketch_oracles(registry);
    register_exact_oracle(registry);
    register_landmark_oracle(registry);
    register_vivaldi_oracle(registry);
  });
  return registry;
}

void OracleRegistry::add(OracleScheme scheme) {
  if (scheme.name.empty() || !scheme.build) {
    throw std::runtime_error("oracle scheme needs a name and a build factory");
  }
  if (scheme.caps.supports_save != static_cast<bool>(scheme.load)) {
    throw std::runtime_error("oracle scheme '" + scheme.name +
                             "': supports_save and a load factory must come "
                             "together");
  }
  std::string name = scheme.name;  // keep valid across the move
  const auto [it, inserted] =
      schemes_.emplace(std::move(name), std::move(scheme));
  if (!inserted) {
    throw std::runtime_error("oracle scheme registered twice: " + it->first);
  }
}

const OracleScheme* OracleRegistry::find(const std::string& name) const {
  const auto it = schemes_.find(name);
  return it == schemes_.end() ? nullptr : &it->second;
}

const OracleScheme& OracleRegistry::at(const std::string& name) const {
  if (const OracleScheme* scheme = find(name)) return *scheme;
  throw std::runtime_error("unknown oracle scheme '" + name +
                           "' (registered: " + names_csv() + ")");
}

std::vector<const OracleScheme*> OracleRegistry::schemes() const {
  std::vector<const OracleScheme*> out;
  out.reserve(schemes_.size());
  for (const auto& [name, scheme] : schemes_) out.push_back(&scheme);
  return out;  // std::map iteration is already name-sorted
}

std::string OracleRegistry::names_csv() const {
  std::string csv;
  for (const auto& [name, scheme] : schemes_) {
    if (!csv.empty()) csv += ", ";
    csv += name;
  }
  return csv;
}

std::unique_ptr<DistanceOracle> OracleRegistry::build(
    const std::string& name, const Graph& g, const FlagSet& flags) const {
  return at(name).build(g, flags);
}

LoadedOracle OracleRegistry::load(std::istream& in) const {
  LoadedOracle loaded;
  loaded.envelope = read_envelope_header(in);
  const OracleScheme& scheme = at(loaded.envelope.scheme);
  if (!scheme.load) {
    throw std::runtime_error("oracle scheme '" + scheme.name +
                             "' has no load support");
  }
  loaded.oracle = scheme.load(in, loaded.envelope);
  if (!loaded.oracle) {
    throw std::runtime_error("oracle scheme '" + scheme.name +
                             "' loader returned nothing");
  }
  return loaded;
}

}  // namespace dsketch
