// The one polymorphic query API every distance estimator implements.
//
// The paper's central object is a per-node sketch queried pairwise; the
// repo grew three disjoint query surfaces around it (the sketch engine,
// the baselines, the packed serving store). DistanceOracle unifies them:
// anything that can answer "how far is u from v" — a Thorup–Zwick sketch,
// a landmark table, the exact APSP matrix, Vivaldi coordinates, or a
// packed binary store — exposes the same interface, so experiments, the
// CLI, and the query service are scheme-agnostic.
//
//   const OracleScheme& s = OracleRegistry::instance().at("tz");
//   std::unique_ptr<DistanceOracle> oracle = s.build(g, flags);
//   Dist estimate = oracle->query(3, 997);
//   oracle->query_batch(pairs, answers);   // the serving hot path
//   oracle->guarantee();                   // "stretch 5 (all pairs)"
//
// See core/oracle_registry.hpp for name-based resolution and the
// versioned save/load envelope.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>

#include "graph/graph.hpp"

namespace dsketch {

struct SimStats;

/// A pairwise distance query: ordered (source, target). Order matters —
/// some estimators (TZ's pivot walk) are orientation-dependent, and both
/// answers are valid under the same guarantee.
using QueryPair = std::pair<NodeId, NodeId>;

/// What a concrete oracle can promise and do; drives scheme-agnostic
/// consumers (the CLI listing, eval's unreachable handling, the store
/// converter) without switching on concrete types.
struct Capabilities {
  /// Answers are true distances (stretch exactly 1).
  bool exact = false;
  /// Worst-case multiplicative stretch bound; 0 when none exists (the
  /// landmark and coordinate baselines) or when it is not a constant
  /// (graceful's O(log n)) — guarantee() always has the precise story.
  double stretch_bound = 0.0;
  /// The stretch bound only covers ε-far pairs (the §4 slack schemes).
  bool slack_only = false;
  /// Estimates are witnessed by real paths: never below the true
  /// distance, and kInfDist reliably means "no path found". False for
  /// embeddings (Vivaldi) which can under- or over-estimate arbitrarily.
  bool supports_paths = false;
  /// query(u, v) == query(v, u) bit-for-bit, always. True for schemes
  /// whose estimate is an orientation-free formula (the exact matrix,
  /// landmark triangulation, coordinate embeddings, slack net minima);
  /// false for the TZ-style pivot walk, which probes the two
  /// orientations in a fixed order and may settle on different (both
  /// valid) estimates. The query service keys its cache canonically
  /// only when this is set.
  bool symmetric = false;
  /// save() round-trips through the registry's envelope loader.
  bool supports_save = false;
  /// build_cost() reports the CONGEST construction cost (the distributed
  /// sketch schemes; centralized baselines have no simulated cost).
  bool build_cost_available = false;
};

/// Abstract pairwise distance estimator. Implementations must make
/// query()/query_batch() safe for concurrent callers (pure reads of the
/// built structure) — the query service and the parallel evaluator rely
/// on it.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Distance estimate for (u, v) from the stored structure only.
  virtual Dist query(NodeId u, NodeId v) const = 0;

  /// Batched queries: out[i] = query(pairs[i]). out.size() must equal
  /// pairs.size(). The default implementation is a plain loop over
  /// query() — already the right thing for packed, allocation-free
  /// representations; oracles with per-query setup can override to hoist
  /// it out of the loop.
  virtual void query_batch(std::span<const QueryPair> pairs,
                           std::span<Dist> out) const;

  /// Number of nodes covered (valid query ids are [0, n)).
  virtual NodeId num_nodes() const = 0;

  /// Storage at node u, in words (the paper's per-node size measure).
  virtual std::size_t size_words(NodeId u) const = 0;

  /// Mean per-node storage in words.
  virtual double mean_size_words() const;

  /// Registry name of the scheme that built this oracle ("tz",
  /// "landmark", ...). Matches the envelope tag written by save().
  virtual std::string scheme() const = 0;

  /// Human-readable worst-case guarantee with parameters filled in
  /// ("stretch 5 (all pairs)", "exact (stretch 1)", ...).
  virtual std::string guarantee() const = 0;

  /// What this instance promises; parameter-dependent fields (TZ's 2k-1)
  /// are resolved with the build values.
  virtual Capabilities capabilities() const = 0;

  /// CONGEST construction cost, or nullptr when
  /// !capabilities().build_cost_available.
  virtual const SimStats* build_cost() const { return nullptr; }

  /// Persists the oracle as a scheme-tagged envelope (header + payload)
  /// that OracleRegistry::load reconstructs; reloaded oracles answer
  /// byte-identical queries. Throws when !capabilities().supports_save.
  virtual void save(std::ostream& out) const;

 protected:
  /// Serialization hook: writes the scheme payload that the registered
  /// loader reads back. Default throws "save unsupported".
  virtual void save_payload(std::ostream& out) const;

  /// Envelope header fields; schemes without the parameter write 0.
  virtual std::uint32_t envelope_k() const { return 0; }
  virtual double envelope_epsilon() const { return 0.0; }
};

}  // namespace dsketch
