// Build configuration for the public engine façade.
#pragma once

#include <cstdint>

#include "congest/sim.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {

/// Which sketch family to construct.
enum class Scheme {
  kThorupZwick,  ///< Theorem 1.1: stretch 2k-1, all pairs
  kSlack,        ///< Theorem 4.3: stretch 3 on ε-far pairs
  kCdg,          ///< Theorem 4.6: stretch 8k-1 on ε-far pairs
  kGraceful,     ///< Theorem 1.3: O(log n) worst / O(1) average stretch
};

/// Stable external name, as used by the CLI flags, the text format
/// header, and machine-readable bench output.
inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kThorupZwick: return "tz";
    case Scheme::kSlack: return "slack";
    case Scheme::kCdg: return "cdg";
    case Scheme::kGraceful: return "graceful";
  }
  return "?";
}

struct BuildConfig {
  Scheme scheme = Scheme::kThorupZwick;
  std::uint32_t k = 3;        ///< TZ / CDG level count
  double epsilon = 0.1;       ///< slack parameter (kSlack / kCdg)
  std::uint64_t seed = 1;
  TerminationMode termination = TerminationMode::kOracle;
  SimConfig sim;              ///< CONGEST model knobs
};

}  // namespace dsketch
