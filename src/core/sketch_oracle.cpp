#include "core/sketch_oracle.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/serialization.hpp"
#include "obs/trace.hpp"
#include "sketch/hierarchy.hpp"
#include "util/assert.hpp"

namespace dsketch {

BuildConfig sketch_build_config(Scheme scheme, const FlagSet& flags) {
  BuildConfig cfg;
  cfg.scheme = scheme;
  cfg.k = static_cast<std::uint32_t>(flags.get("k", std::int64_t{3}));
  cfg.epsilon = flags.get("epsilon", 0.1);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
  if (flags.get_bool("echo")) cfg.termination = TerminationMode::kEcho;
  if (flags.get_bool("known-s")) cfg.termination = TerminationMode::kKnownS;
  cfg.sim.async_max_delay =
      static_cast<std::uint32_t>(flags.get("async", std::int64_t{1}));
  // Worker lanes for the event-driven simulator: 1 = serial (default),
  // 0 = all hardware threads, N = a dedicated pool of N lanes. Results
  // are byte-identical across settings; this is purely a wall-clock knob.
  cfg.sim.threads =
      static_cast<unsigned>(flags.get("sim-threads", std::int64_t{1}));
  return cfg;
}

SketchOracle::SketchOracle(const Graph& g, const BuildConfig& config)
    : config_(config), n_(g.num_nodes()) {
  const obs::Span build_span("sketch_oracle_build",
                             static_cast<std::uint64_t>(n_));
  switch (config.scheme) {
    case Scheme::kThorupZwick: {
      const obs::Span span("build_tz_distributed");
      // Resample until the top level is populated (whp on the first try).
      Hierarchy h = Hierarchy::sample(g.num_nodes(), config.k, config.seed);
      for (std::uint64_t bump = 1; !h.top_level_nonempty(); ++bump) {
        h = Hierarchy::sample(g.num_nodes(), config.k, config.seed + bump);
      }
      TzDistributedResult r =
          build_tz_distributed(g, h, config.termination, config.sim);
      cost_ = r.stats;
      cost_ += r.tree_stats;
      tz_labels_ = std::move(r.labels);
      break;
    }
    case Scheme::kSlack: {
      const obs::Span span("build_slack_sketches");
      SlackSketchResult r =
          build_slack_sketches(g, config.epsilon, config.seed, config.sim);
      cost_ = r.stats;
      slack_ = std::move(r.sketches);
      break;
    }
    case Scheme::kCdg: {
      const obs::Span span("build_cdg_sketches");
      CdgConfig cdg;
      cdg.epsilon = config.epsilon;
      cdg.k = config.k;
      cdg.seed = config.seed;
      cdg.termination = config.termination;
      CdgBuildResult r = build_cdg_sketches(g, cdg, config.sim);
      cost_ = r.total();
      cdg_ = std::move(r.sketches);
      break;
    }
    case Scheme::kGraceful: {
      const obs::Span span("build_graceful_sketches");
      GracefulConfig gc;
      gc.seed = config.seed;
      gc.termination = config.termination;
      GracefulBuildResult r = build_graceful_sketches(g, gc, config.sim);
      cost_ = r.total;
      graceful_ = std::move(r.sketches);
      break;
    }
  }
}

Dist SketchOracle::query(NodeId u, NodeId v) const {
  DS_CHECK(u < n_ && v < n_);
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      return tz_query(tz_labels_.view(u), tz_labels_.view(v));
    case Scheme::kSlack:
      return slack_.query(u, v);
    case Scheme::kCdg:
      return cdg_.query(u, v);
    case Scheme::kGraceful:
      return graceful_.query(u, v);
  }
  return kInfDist;
}

std::size_t SketchOracle::size_words(NodeId u) const {
  DS_CHECK(u < n_);
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      return tz_labels_.size_words(u);
    case Scheme::kSlack:
      return slack_.size_words(u);
    case Scheme::kCdg:
      return cdg_.size_words(u);
    case Scheme::kGraceful:
      return graceful_.size_words(u);
  }
  return 0;
}

std::string sketch_guarantee(Scheme scheme, std::uint32_t k,
                             double epsilon) {
  switch (scheme) {
    case Scheme::kThorupZwick:
      return "stretch " + std::to_string(2 * k - 1) + " (all pairs)";
    case Scheme::kSlack:
      return "stretch 3 (eps=" + std::to_string(epsilon) + "-slack)";
    case Scheme::kCdg:
      return "stretch " + std::to_string(8 * k - 1) + " (eps=" +
             std::to_string(epsilon) + "-slack)";
    case Scheme::kGraceful:
      return "stretch O(log n), average O(1)";
  }
  return "";
}

Capabilities sketch_capabilities(Scheme scheme, std::uint32_t k) {
  Capabilities caps;
  caps.supports_paths = true;
  caps.supports_save = true;
  caps.build_cost_available = true;
  switch (scheme) {
    case Scheme::kThorupZwick:
      caps.stretch_bound = k > 0 ? static_cast<double>(2 * k - 1) : 0.0;
      break;
    case Scheme::kSlack:
      caps.stretch_bound = 3.0;
      caps.slack_only = true;
      // min over net nodes of d(u,w) + d(w,v): orientation-free.
      caps.symmetric = true;
      break;
    case Scheme::kCdg:
      caps.stretch_bound = k > 0 ? static_cast<double>(8 * k - 1) : 0.0;
      caps.slack_only = true;
      break;
    case Scheme::kGraceful:
      // O(log n): no constant bound; guarantee() carries the story.
      break;
  }
  return caps;
}

std::string SketchOracle::guarantee() const {
  return sketch_guarantee(config_.scheme, config_.k, config_.epsilon);
}

Capabilities SketchOracle::capabilities() const {
  Capabilities caps = sketch_capabilities(config_.scheme, config_.k);
  caps.build_cost_available = cost_available_;
  return caps;
}

void SketchOracle::save_payload(std::ostream& out) const {
  switch (config_.scheme) {
    case Scheme::kThorupZwick:
      write_tz_labels(out, tz_labels_);
      return;
    case Scheme::kSlack:
      write_slack_sketches(out, slack_, n_);
      return;
    case Scheme::kCdg:
      write_cdg_sketches(out, cdg_, n_);
      return;
    case Scheme::kGraceful:
      write_graceful_sketches(out, graceful_, n_);
      return;
  }
}

std::unique_ptr<SketchOracle> SketchOracle::load_payload(
    std::istream& in, const OracleEnvelope& envelope) {
  auto oracle = std::unique_ptr<SketchOracle>(new SketchOracle());
  oracle->n_ = envelope.n;
  oracle->cost_available_ = false;  // paid by whoever built, not persisted
  oracle->config_.k = envelope.k;
  oracle->epsilon_recorded_ = envelope.epsilon_recorded;
  if (envelope.epsilon_recorded) oracle->config_.epsilon = envelope.epsilon;
  if (envelope.scheme == "tz") {
    oracle->config_.scheme = Scheme::kThorupZwick;
    oracle->tz_labels_ = read_tz_labels(in);
  } else if (envelope.scheme == "slack") {
    oracle->config_.scheme = Scheme::kSlack;
    oracle->slack_ = read_slack_sketches(in);
  } else if (envelope.scheme == "cdg") {
    oracle->config_.scheme = Scheme::kCdg;
    oracle->cdg_ = read_cdg_sketches(in);
  } else if (envelope.scheme == "graceful") {
    oracle->config_.scheme = Scheme::kGraceful;
    oracle->graceful_ = read_graceful_sketches(in);
  } else {
    throw std::runtime_error("unknown sketch scheme in envelope: " +
                             envelope.scheme);
  }
  // The payload carries its own record counts; the envelope's n must
  // agree or queries would index past the loaded vectors (the CLI
  // bounds-checks against num_nodes(), which is envelope-derived).
  const auto check_count = [&](std::size_t payload_nodes) {
    if (payload_nodes != envelope.n) {
      throw std::runtime_error(
          "sketch payload covers " + std::to_string(payload_nodes) +
          " nodes but the envelope header claims " +
          std::to_string(envelope.n));
    }
  };
  switch (oracle->config_.scheme) {
    case Scheme::kThorupZwick:
      check_count(oracle->tz_labels_.num_nodes());
      break;
    case Scheme::kSlack:
      check_count(oracle->slack_.num_nodes());
      break;
    case Scheme::kCdg:
      check_count(oracle->cdg_.num_nodes());
      break;
    case Scheme::kGraceful:
      for (std::size_t i = 0; i < oracle->graceful_.num_levels(); ++i) {
        check_count(oracle->graceful_.level(i).num_nodes());
      }
      break;
  }
  return oracle;
}

void register_sketch_oracles(OracleRegistry& reg) {
  // k_flag / uses_epsilon reflect which flags the scheme actually
  // consumes: validating a flag the build ignores would reject harmless
  // invocations against meaningless recorded defaults.
  const auto add = [&reg](const char* name, Scheme scheme,
                          const char* guarantee, const char* summary,
                          const char* k_flag, bool uses_epsilon) {
    OracleScheme s;
    s.name = name;
    s.guarantee = guarantee;
    s.summary = summary;
    // Scheme-level capabilities (k = 0: parameter-dependent bounds stay
    // unresolved); instances resolve them with the build values.
    s.caps = sketch_capabilities(scheme, 0);
    s.k_flag = k_flag;
    s.uses_epsilon = uses_epsilon;
    s.build = [scheme](const Graph& g, const FlagSet& flags) {
      return std::unique_ptr<DistanceOracle>(
          new SketchOracle(g, sketch_build_config(scheme, flags)));
    };
    s.load = [](std::istream& in, const OracleEnvelope& envelope) {
      return std::unique_ptr<DistanceOracle>(
          SketchOracle::load_payload(in, envelope));
    };
    reg.add(std::move(s));
  };
  add("tz", Scheme::kThorupZwick, "stretch 2k-1 (all pairs)",
      "Thorup-Zwick distributed sketches (Theorem 1.1); flags: --k --seed "
      "--echo --known-s --async",
      "k", false);
  add("slack", Scheme::kSlack, "stretch 3 (eps-slack)",
      "epsilon-density-net slack sketches (Theorem 4.3); flags: --epsilon "
      "--seed",
      "", true);
  add("cdg", Scheme::kCdg, "stretch 8k-1 (eps-slack)",
      "coarse distance-graph sketches (Theorem 4.6); flags: --k --epsilon "
      "--seed",
      "k", true);
  add("graceful", Scheme::kGraceful, "stretch O(log n), average O(1)",
      "graceful-degradation multi-level sketches (Theorem 1.3); flags: "
      "--seed",
      "", false);
}

}  // namespace dsketch
