// Deterministic, seed-replayable fault injection for the CONGEST simulator.
//
// The paper's model (§2.2) assumes perfectly reliable synchronous links;
// real deployments drop, duplicate, and reorder messages, links flap, and
// nodes crash and come back. A FaultPlan is a pure function of its seed and
// config: every fault decision is either precomputed at construction (crash
// and link-down schedules) or derived by hashing stable identifiers (the
// half-edge index and that edge's per-message transmission sequence number),
// never by consuming a shared RNG stream. That makes a faulty run exactly
// replayable from its seed AND byte-identical across SimConfig::threads —
// the delivery phase may pull receivers in parallel, but each half-edge is
// drained by exactly one receiver, so (edge, seq) pairs are stable no
// matter which lane does the pull.
//
// Fault model:
//   - message drop        iid per transmission with probability drop_rate;
//   - message duplication iid per transmission with probability
//                         duplicate_rate — the extra copy arrives one round
//                         late (so the one-message-per-edge-per-round
//                         capacity of the fault-free schedule still holds);
//   - inbox reorder       per (node, round) with probability reorder_rate,
//                         a seeded shuffle of that round's inbox (per-link
//                         FIFO is preserved in synchronous mode because a
//                         link contributes at most one message per round);
//   - link down/up        sampled undirected edges are dead for a round
//                         interval; transmissions in either direction are
//                         lost;
//   - node crash/restart  sampled nodes go down at a sampled round and come
//                         back crash_downtime rounds later. While down a
//                         node is not stepped, its queued outbound messages
//                         are discarded, and anything delivered to it is
//                         lost. Protocol state survives the crash (the
//                         fail-recover model with stable storage): recovery
//                         of the *messages* lost in flight is the
//                         protocol's job — see congest/reliable.hpp.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

struct FaultConfig {
  double drop_rate = 0.0;       ///< iid loss probability per transmission
  double duplicate_rate = 0.0;  ///< iid duplication probability
  double reorder_rate = 0.0;    ///< per (node, round) inbox shuffle chance

  std::uint32_t link_faults = 0;         ///< undirected edges to take down
  std::uint64_t link_down_rounds = 64;   ///< length of each down interval
  std::uint64_t link_fault_horizon = 2048;  ///< down intervals start in [1, horizon)

  std::uint32_t node_crashes = 0;     ///< nodes that crash (once each)
  std::uint64_t crash_downtime = 64;  ///< rounds a crashed node stays down
  std::uint64_t crash_horizon = 2048;  ///< crashes happen in [1, horizon)

  std::uint64_t seed = 0x0fa1cedULL;

  bool any() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           link_faults > 0 || node_crashes > 0;
  }
};

/// One crash/restart event pair (restart = at + downtime).
struct CrashEvent {
  NodeId node;
  std::uint64_t at;
  std::uint64_t restart;
};

/// See the file comment for the model. Construction samples the crash and
/// link-down schedules; per-message decisions are stateless hashes.
class FaultPlan {
 public:
  FaultPlan(const Graph& g, FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }

  /// The sampled crash schedule, sorted by crash round.
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  /// Whether the seq-th transmission on half-edge h is lost in flight
  /// (iid drop or a down link interval covering `round`).
  bool drop_transmission(std::size_t half_edge, std::uint64_t seq,
                         std::uint64_t round) const {
    if (cfg_.drop_rate > 0 &&
        hash_uniform(kDropSalt, half_edge, seq) < cfg_.drop_rate) {
      return true;
    }
    return link_down(half_edge, round);
  }

  /// Whether the seq-th transmission on half-edge h is duplicated (the
  /// copy arrives one round after the original).
  bool duplicate_transmission(std::size_t half_edge, std::uint64_t seq) const {
    return cfg_.duplicate_rate > 0 &&
           hash_uniform(kDupSalt, half_edge, seq) < cfg_.duplicate_rate;
  }

  /// Whether node u's inbox is shuffled this round (and with what seed).
  bool reorder_inbox(NodeId u, std::uint64_t round) const {
    return cfg_.reorder_rate > 0 &&
           hash_uniform(kReorderSalt, u, round) < cfg_.reorder_rate;
  }
  std::uint64_t reorder_seed(NodeId u, std::uint64_t round) const {
    return mix(kReorderSalt ^ cfg_.seed, u, round);
  }

  /// Whether the undirected link carrying half-edge h is down at `round`.
  bool link_down(std::size_t half_edge, std::uint64_t round) const {
    if (link_down_.empty()) return false;
    const auto it = link_down_.find(half_edge);
    if (it == link_down_.end()) return false;
    return round >= it->second.from && round < it->second.until;
  }

  /// Rounds at which the simulator must act even if the network is idle
  /// (crash and restart rounds), sorted ascending.
  const std::vector<std::uint64_t>& event_rounds() const {
    return event_rounds_;
  }

 private:
  static constexpr std::uint64_t kDropSalt = 0xd509;
  static constexpr std::uint64_t kDupSalt = 0xd0b1e;
  static constexpr std::uint64_t kReorderSalt = 0x5087;

  std::uint64_t mix(std::uint64_t salt, std::uint64_t a,
                    std::uint64_t b) const {
    std::uint64_t z = cfg_.seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    z ^= a * 0xbf58476d1ce4e5b9ULL;
    z ^= b * 0x94d049bb133111ebULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double hash_uniform(std::uint64_t salt, std::uint64_t a,
                      std::uint64_t b) const {
    return static_cast<double>(mix(salt, a, b) >> 11) * 0x1.0p-53;
  }

  struct DownInterval {
    std::uint64_t from;
    std::uint64_t until;
  };

  FaultConfig cfg_;
  std::vector<CrashEvent> crashes_;
  // Down interval per affected half-edge (both directions of a sampled
  // undirected link map to the same interval).
  std::unordered_map<std::size_t, DownInterval> link_down_;
  std::vector<std::uint64_t> event_rounds_;
};

}  // namespace dsketch
