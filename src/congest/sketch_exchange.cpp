#include "congest/sketch_exchange.hpp"

#include <unordered_map>
#include <utility>

#include "congest/protocol.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

// Messages:
//   REQUEST: <kRequest, responder, hops>
//   CHUNK:   <kChunk, seq, w0, w1>   (unicast along parent pointers)
//   END:     <kEnd, total_words>
constexpr Word kRequest = 1;
constexpr Word kChunk = 2;
constexpr Word kEnd = 3;

constexpr std::uint32_t kNoEdge = static_cast<std::uint32_t>(-1);

class ExchangeProtocol : public Protocol {
 public:
  ExchangeProtocol(NodeId n, NodeId requester, NodeId responder,
                   const std::vector<Word>& payload)
      : requester_(requester), responder_(responder), payload_(payload) {
    parent_edge_.assign(n, kNoEdge);
    seen_.assign(n, 0);
  }

  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == requester_) {
      seen_[requester_] = 1;
      ctx.broadcast(Message{kRequest, responder_, 0});
      if (requester_ == responder_) {
        // Degenerate self-query: nothing to fetch.
        received_ = payload_;
        complete_ = true;
      }
    }
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    for (const Inbound& in : ctx.inbox()) {
      switch (in.msg.at(0)) {
        case kRequest: {
          if (seen_[u]) break;
          seen_[u] = 1;
          parent_edge_[u] = in.local_edge;  // first arrival: toward requester
          const auto hops = static_cast<std::uint32_t>(in.msg.at(2));
          if (u == responder_) {
            send_reply(ctx, in.local_edge);
          } else {
            ctx.broadcast(Message{kRequest, responder_, hops + 1});
          }
          break;
        }
        case kChunk:
        case kEnd: {
          if (u == requester_) {
            absorb(in.msg);
          } else {
            DS_CHECK(parent_edge_[u] != kNoEdge);
            ctx.send(parent_edge_[u], in.msg);
          }
          break;
        }
        default:
          DS_CHECK_MSG(false, "unknown exchange message");
      }
    }
  }

  bool complete() const { return complete_; }
  std::vector<Word> take_words() { return std::move(received_); }

 private:
  void send_reply(NodeCtx& ctx, std::uint32_t edge) {
    for (std::size_t i = 0; i < payload_.size(); i += 2) {
      Message m{kChunk, static_cast<Word>(i / 2)};
      m.push(payload_[i]);
      m.push(i + 1 < payload_.size() ? payload_[i + 1] : 0);
      ctx.send(edge, std::move(m));
    }
    ctx.send(edge, Message{kEnd, payload_.size()});
  }

  void absorb(const Message& m) {
    if (m.at(0) == kEnd) {
      total_ = static_cast<std::size_t>(m.at(1));
      have_total_ = true;
    } else {
      chunks_.emplace(static_cast<std::size_t>(m.at(1)),
                      std::pair<Word, Word>{m.at(2), m.at(3)});
    }
    if (have_total_ && chunks_.size() == (total_ + 1) / 2) {
      received_.assign(total_, 0);
      for (const auto& [seq, pair] : chunks_) {
        DS_CHECK(2 * seq < total_);
        received_[2 * seq] = pair.first;
        if (2 * seq + 1 < total_) received_[2 * seq + 1] = pair.second;
      }
      complete_ = true;
    }
  }

  NodeId requester_;
  NodeId responder_;
  const std::vector<Word>& payload_;
  std::vector<std::uint32_t> parent_edge_;
  std::vector<char> seen_;
  std::unordered_map<std::size_t, std::pair<Word, Word>> chunks_;
  std::size_t total_ = 0;
  bool have_total_ = false;
  bool complete_ = false;
  std::vector<Word> received_;
};

}  // namespace

SketchExchangeResult exchange_sketch(const Graph& g, NodeId requester,
                                     NodeId responder,
                                     const std::vector<Word>& payload,
                                     SimConfig cfg) {
  DS_CHECK(requester < g.num_nodes() && responder < g.num_nodes());
  if (cfg.phase.empty()) cfg.phase = "sketch_exchange";
  ExchangeProtocol protocol(g.num_nodes(), requester, responder, payload);
  Simulator sim(g, protocol, cfg);
  SketchExchangeResult result;
  result.stats = sim.run();
  DS_CHECK(!result.stats.hit_round_limit);
  result.complete = protocol.complete();
  result.words = protocol.take_words();
  return result;
}

}  // namespace dsketch
