#include "congest/sim.hpp"

#include <algorithm>

#include "congest/fault_plan.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

std::uint64_t NodeCtx::round() const { return sim_.round(); }
std::uint32_t NodeCtx::degree() const { return sim_.degree_of(node_); }
NodeId NodeCtx::neighbor(std::uint32_t local_edge) const {
  return sim_.neighbor_of(node_, local_edge);
}
Weight NodeCtx::edge_weight(std::uint32_t local_edge) const {
  return sim_.weight_of(node_, local_edge);
}
std::span<const Inbound> NodeCtx::inbox() const {
  return sim_.inbox_of(node_);
}
void NodeCtx::send(std::uint32_t local_edge, Message m) {
  sim_.enqueue(node_, local_edge, m);
}
void NodeCtx::broadcast(const Message& m) {
  const std::uint32_t deg = degree();
  for (std::uint32_t e = 0; e < deg; ++e) send(e, m);
}
void NodeCtx::wake() { sim_.wake(node_); }
void NodeCtx::wake_at(std::uint64_t round) { sim_.schedule_wake(node_, round); }
std::size_t NodeCtx::outbox_depth(std::uint32_t local_edge) const {
  return sim_.outbox_depth(node_, local_edge);
}

Simulator::Simulator(const Graph& graph, Protocol& protocol, SimConfig cfg)
    : graph_(graph), protocol_(protocol), cfg_(cfg),
      delay_rng_(cfg.async_seed) {
  DS_CHECK(cfg_.max_message_words <= kMaxMessageCapacity);
  const NodeId n = graph_.num_nodes();
  const std::size_t half_edges = 2 * graph_.num_edges();
  outbox_.resize(half_edges);
  head_.resize(half_edges);
  head_local_.resize(half_edges);
  inbox_.resize(n);
  wake_flag_.assign(n, 0);
  wake_at_scratch_.resize(n);
  dirty_local_.resize(n);
  start_pending_.assign(n, 0);
  in_active_list_.assign(n, 0);
  edge_busy_flag_.assign(half_edges, 0);
  ready_flag_.assign(n, 0);
  pull_count_.assign(n, 0);
  stats_.label = cfg_.phase;
  if (cfg_.round_log != nullptr) cfg_.round_log->begin_phase(cfg_.phase);
  faults_ = cfg_.faults;
  if (faults_ != nullptr) {
    down_.assign(n, 0);
    restart_pending_.assign(n, 0);
    restart_round_.assign(n, 0);
    send_seq_.assign(half_edges, 0);
    for (const CrashEvent& c : faults_->crashes()) {
      fault_events_.push_back(FaultEvent{c.at, c.node, false, c.restart});
      fault_events_.push_back(FaultEvent{c.restart, c.node, true, 0});
    }
    std::sort(fault_events_.begin(), fault_events_.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                if (a.round != b.round) return a.round < b.round;
                if (a.restart != b.restart) return a.restart;  // restarts first
                return a.node < b.node;
              });
  }
  resolve_twins();
  activate_all();
}

Simulator::~Simulator() = default;

ThreadPool* Simulator::pool() {
  if (cfg_.threads == 0) return &global_pool();
  if (own_pool_ == nullptr) {
    own_pool_ = std::make_unique<ThreadPool>(cfg_.threads - 1);
  }
  return own_pool_.get();
}

void Simulator::resolve_twins() {
  // Twin resolution: half-edge (u, s) with neighbor v maps to the matching
  // slot of u in v's adjacency. Adjacencies are sorted by (to, weight), so
  // parallel (u,v) edges form contiguous runs on both sides and the i-th
  // slot of u's run pairs with the i-th slot of v's run — no hashing needed.
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    const auto adj = graph_.neighbors(u);
    std::uint32_t s = 0;
    while (s < adj.size()) {
      const NodeId v = adj[s].to;
      const std::uint32_t run_start = s;
      while (s < adj.size() && adj[s].to == v) ++s;
      const auto vadj = graph_.neighbors(v);
      const auto it = std::lower_bound(
          vadj.begin(), vadj.end(), u,
          [](const HalfEdge& he, NodeId target) { return he.to < target; });
      const std::uint32_t base =
          static_cast<std::uint32_t>(it - vadj.begin());
      for (std::uint32_t i = run_start; i < s; ++i) {
        const std::uint32_t slot = base + (i - run_start);
        DS_CHECK(slot < vadj.size() && vadj[slot].to == u);
        const std::size_t h = graph_.half_edge_index(u, i);
        head_[h] = v;
        head_local_[h] = slot;
      }
    }
  }
}

void Simulator::activate_all() {
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    start_pending_[u] = 1;
    if (!in_active_list_[u]) {
      in_active_list_[u] = 1;
      active_.push_back(u);
    }
  }
  std::sort(active_.begin(), active_.end());
}

void Simulator::activate(const std::vector<NodeId>& nodes) {
  for (NodeId u : nodes) {
    DS_CHECK(u < graph_.num_nodes());
    start_pending_[u] = 1;
    if (!in_active_list_[u]) {
      in_active_list_[u] = 1;
      active_.push_back(u);
    }
  }
  std::sort(active_.begin(), active_.end());
}

void Simulator::enqueue(NodeId u, std::uint32_t local, const Message& m) {
  DS_CHECK(m.size_words() <= cfg_.max_message_words);
  auto& box = outbox_[graph_.half_edge_index(u, local)];
  // A box can go empty→nonempty at most once per step (pops happen only at
  // delivery), so this records each newly busy half-edge exactly once. The
  // dirty list is node-owned: only u's own step enqueues on u's half-edges.
  if (box.empty()) dirty_local_[u].push_back(local);
  box.push(m);
}

SimStats Simulator::run() {
  for (;;) {
    if (faults_ != nullptr) apply_fault_events();
    flush_future();
    if (active_.empty() && busy_edges_.empty()) {
      const bool pending_faults =
          faults_ != nullptr && next_fault_event_ < fault_events_.size();
      if (!future_.empty() || !wake_schedule_.empty() || pending_faults) {
        // Nothing happens until the next scheduled arrival, timer, or
        // fault event; fast-forward the round counter to it.
        std::uint64_t next = static_cast<std::uint64_t>(-1);
        if (!future_.empty()) next = future_.begin()->first;
        if (!wake_schedule_.empty()) {
          next = std::min(next, wake_schedule_.begin()->first);
        }
        if (pending_faults) {
          next = std::min(next, fault_events_[next_fault_event_].round);
        }
        round_ = next;
        stats_.rounds = round_;
        continue;
      }
      if (!protocol_.on_quiescent(*this)) break;
      if (active_.empty() && busy_edges_.empty() && future_.empty() &&
          wake_schedule_.empty()) {
        break;
      }
      continue;  // the oracle check itself consumes no rounds
    }
    if (round_ >= cfg_.max_rounds) {
      stats_.hit_round_limit = true;
      break;
    }
    const std::uint64_t active_nodes = active_.size();
    const std::uint64_t prev_messages = stats_.messages;
    const std::uint64_t prev_words = stats_.words;
    const std::uint64_t prev_dropped = stats_.dropped;
    step_active_nodes();
    splice_new_work();
    deliver();
    if (cfg_.round_log != nullptr) {
      cfg_.round_log->record(obs::RoundSample{
          round_, stats_.messages - prev_messages, stats_.words - prev_words,
          active_nodes, stats_.max_outbox, stats_.dropped - prev_dropped});
    }
    ++round_;
    stats_.rounds = round_;
  }
  if (cfg_.round_log != nullptr) cfg_.round_log->flush();
  return stats_;
}

void Simulator::apply_fault_events() {
  bool touched = false;
  while (next_fault_event_ < fault_events_.size() &&
         fault_events_[next_fault_event_].round <= round_) {
    const FaultEvent ev = fault_events_[next_fault_event_++];
    const NodeId u = ev.node;
    if (ev.restart) {
      if (!down_[u]) continue;
      down_[u] = 0;
      restart_pending_[u] = 1;
      if (!in_active_list_[u]) {
        in_active_list_[u] = 1;
        active_.push_back(u);
        touched = true;
      }
    } else {
      restart_round_[u] = ev.restart_at;
      crash_node(u);
    }
  }
  if (touched) std::sort(active_.begin(), active_.end());
}

void Simulator::crash_node(NodeId u) {
  down_[u] = 1;
  protocol_.on_crash(u);
  // Messages delivered but not yet processed are lost with the node.
  stats_.dropped += inbox_[u].size();
  inbox_[u].clear();
  // Queued-but-untransmitted outbound messages vanish too. They were
  // never counted as transmissions, so they don't count as drops either.
  bool emptied = false;
  const auto deg = static_cast<std::uint32_t>(graph_.degree(u));
  for (std::uint32_t local = 0; local < deg; ++local) {
    const std::size_t h = graph_.half_edge_index(u, local);
    if (!outbox_[h].empty()) {
      outbox_[h] = Outbox{};
      emptied = true;
    }
  }
  if (emptied) {
    // Keep the nonempty invariant of busy_edges_ intact.
    std::vector<std::size_t> still_busy;
    still_busy.reserve(busy_edges_.size());
    for (const std::size_t h : busy_edges_) {
      if (!outbox_[h].empty()) {
        still_busy.push_back(h);
      } else {
        edge_busy_flag_[h] = 0;
      }
    }
    busy_edges_.swap(still_busy);
  }
}

void Simulator::flush_future() {
  bool touched = false;
  const auto wit = wake_schedule_.find(round_);
  if (wit != wake_schedule_.end()) {
    // Move out first: deferring a wake for a down node inserts into the
    // map we are erasing from.
    const std::vector<NodeId> woken = std::move(wit->second);
    wake_schedule_.erase(wit);
    for (const NodeId u : woken) {
      if (faults_ != nullptr && down_[u]) {
        // The node sleeps through its timer; fire it at restart instead.
        wake_schedule_[restart_round_[u]].push_back(u);
        continue;
      }
      if (!in_active_list_[u]) {
        in_active_list_[u] = 1;
        active_.push_back(u);
        touched = true;
      }
    }
  }
  const auto it = future_.find(round_);
  if (it != future_.end()) {
    for (PendingDelivery& d : it->second) {
      if (faults_ != nullptr && down_[d.to]) {
        ++stats_.dropped;  // delivered into a crashed node
        continue;
      }
      if (!in_active_list_[d.to]) {
        in_active_list_[d.to] = 1;
        active_.push_back(d.to);
      }
      inbox_[d.to].push_back(Inbound{d.to_local, d.msg});
      touched = true;
    }
    future_.erase(it);
  }
  if (touched) std::sort(active_.begin(), active_.end());
  if (cfg_.async_max_delay > 1) {
    // Canonical per-round inbox order: by arrival edge (stable so queued
    // order on an edge is preserved). Asynchronous delivery appends in
    // transmission order; synchronous receiver-pull delivery builds
    // inboxes already canonical, so this pass is skipped then.
    for (const NodeId u : active_) {
      std::stable_sort(inbox_[u].begin(), inbox_[u].end(),
                       [](const Inbound& a, const Inbound& b) {
                         return a.local_edge < b.local_edge;
                       });
    }
  }
}

void Simulator::step_active_nodes() {
  std::uint64_t stepped = active_.size();
  if (faults_ != nullptr) {
    // Serial prepass: crashed nodes sleep through this round and lose
    // anything that reached their inbox in the meantime.
    for (const NodeId u : active_) {
      if (down_[u]) {
        --stepped;
        stats_.dropped += inbox_[u].size();
        inbox_[u].clear();
      }
    }
  }
  stats_.node_steps += stepped;
  auto step_one = [this](std::size_t idx) {
    const NodeId u = active_[idx];
    if (faults_ != nullptr) {
      if (down_[u]) return;
      auto& in = inbox_[u];
      if (in.size() > 1 && faults_->reorder_inbox(u, round_)) {
        Rng shuffle_rng(faults_->reorder_seed(u, round_));
        for (std::size_t i = in.size() - 1; i > 0; --i) {
          std::swap(in[i], in[shuffle_rng.below(i + 1)]);
        }
      }
    }
    NodeCtx ctx(*this, u);
    if (start_pending_[u]) {
      start_pending_[u] = 0;
      if (faults_ != nullptr) restart_pending_[u] = 0;
      protocol_.on_start(ctx);
    } else if (faults_ != nullptr && restart_pending_[u]) {
      restart_pending_[u] = 0;
      protocol_.on_restart(ctx);
    } else {
      protocol_.on_round(ctx);
    }
    inbox_[u].clear();
  };
  if (cfg_.threads == 1 || active_.size() < 64) {
    for (std::size_t i = 0; i < active_.size(); ++i) step_one(i);
  } else {
    pool()->for_each_dynamic(
        active_.size(),
        [&step_one](std::size_t /*lane*/, std::size_t i) { step_one(i); });
  }
}

void Simulator::splice_new_work() {
  // Fold node-owned scratch produced by the (possibly parallel) step into
  // the shared schedules, in sorted active-node order so busy_edges_ and
  // wake_schedule_ contents are independent of thread count.
  for (const NodeId u : active_) {
    for (const std::uint32_t local : dirty_local_[u]) {
      const std::size_t h = graph_.half_edge_index(u, local);
      if (!edge_busy_flag_[h]) {
        edge_busy_flag_[h] = 1;
        busy_edges_.push_back(h);
      }
    }
    dirty_local_[u].clear();
    if (!wake_at_scratch_[u].empty()) {
      for (const std::uint64_t at : wake_at_scratch_[u]) {
        wake_schedule_[at].push_back(u);
      }
      wake_at_scratch_[u].clear();
    }
  }
}

void Simulator::deliver() {
  std::vector<NodeId> next_active;
  // Wakes requested by nodes stepped this round.
  for (const NodeId u : active_) {
    if (wake_flag_[u]) {
      wake_flag_[u] = 0;
      next_active.push_back(u);
    }
  }
  if (cfg_.async_max_delay > 1) {
    deliver_serial(next_active);
  } else {
    deliver_parallel(next_active);
  }

  // De-duplicate and order the next active set.
  std::sort(next_active.begin(), next_active.end());
  next_active.erase(std::unique(next_active.begin(), next_active.end()),
                    next_active.end());
  for (const NodeId u : active_) in_active_list_[u] = 0;
  for (const NodeId u : next_active) in_active_list_[u] = 1;
  active_.swap(next_active);
}

void Simulator::deliver_serial(std::vector<NodeId>& next_active) {
  // Asynchronous-mode delivery: one message per busy half-edge (or the
  // whole queue when the capacity ablation is on), each with an arrival
  // round drawn uniformly from [round+1, round+async_max_delay]. Serial so
  // the delay RNG consumes draws in transmission order; inboxes are
  // canonicalized by the sort in flush_future.
  std::vector<std::size_t> still_busy;
  still_busy.reserve(busy_edges_.size());
  for (const std::size_t h : busy_edges_) {
    auto& box = outbox_[h];
    DS_CHECK(!box.empty());
    if (box.size() > stats_.max_outbox) stats_.max_outbox = box.size();
    const NodeId to = head_[h];
    const std::uint32_t to_local = head_local_[h];
    std::size_t ship = cfg_.enforce_capacity ? 1 : box.size();
    while (ship-- > 0) {
      const Message m = box.front();
      box.pop();
      stats_.messages += 1;
      stats_.words += m.size_words();
      // Draw the delay before any fault decision so the RNG stream stays
      // aligned with transmission order regardless of the fault plan.
      const std::uint64_t arrival =
          round_ + 1 + delay_rng_.below(cfg_.async_max_delay);
      if (faults_ != nullptr) {
        const std::uint64_t seq = send_seq_[h]++;
        if (faults_->drop_transmission(h, seq, round_)) {
          ++stats_.dropped;
          continue;
        }
        if (faults_->duplicate_transmission(h, seq)) {
          ++stats_.duplicated;
          future_[arrival + 1].push_back(PendingDelivery{to, to_local, m});
        }
      }
      if (arrival == round_ + 1) {
        if (inbox_[to].empty()) next_active.push_back(to);
        inbox_[to].push_back(Inbound{to_local, m});
      } else {
        future_[arrival].push_back(PendingDelivery{to, to_local, m});
      }
    }
    if (!box.empty()) {
      still_busy.push_back(h);
    } else {
      edge_busy_flag_[h] = 0;
    }
  }
  busy_edges_.swap(still_busy);
}

void Simulator::deliver_parallel(std::vector<NodeId>& next_active) {
  // Synchronous receiver-pull delivery. Group busy half-edges by their
  // receiving node; each receiver then drains its busy inbound edges in
  // local-edge order. Every half-edge has exactly one receiver, so the
  // pulls are data-race-free and parallelize over receivers, and each
  // inbox comes out already in canonical (local_edge, FIFO) order.
  ready_.clear();
  for (const std::size_t h : busy_edges_) {
    const NodeId to = head_[h];
    if (!ready_flag_[to]) {
      ready_flag_[to] = 1;
      pull_count_[to] = 0;
      ready_.push_back(to);
    }
    ++pull_count_[to];
  }
  std::sort(ready_.begin(), ready_.end());
  pull_offset_.resize(ready_.size());
  std::uint32_t start = 0;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const NodeId to = ready_[i];
    pull_offset_[i] = start;
    const std::uint32_t count = pull_count_[to];
    pull_count_[to] = start;  // becomes the scatter cursor
    start += count;
  }
  pull_edges_.resize(start);
  for (const std::size_t h : busy_edges_) {
    pull_edges_[pull_count_[head_[h]]++] = h;
  }

  deltas_.assign(ready_.size(), ReceiverDelta{});
  auto pull_one = [this](std::size_t i) {
    const NodeId to = ready_[i];
    const std::uint32_t begin = pull_offset_[i];
    const std::uint32_t end = i + 1 < ready_.size()
                                  ? pull_offset_[i + 1]
                                  : static_cast<std::uint32_t>(
                                        pull_edges_.size());
    std::sort(pull_edges_.begin() + begin, pull_edges_.begin() + end,
              [this](std::size_t a, std::size_t b) {
                return head_local_[a] < head_local_[b];
              });
    ReceiverDelta& delta = deltas_[i];
    auto& in = inbox_[to];
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::size_t h = pull_edges_[e];
      auto& box = outbox_[h];
      if (box.size() > delta.max_depth) delta.max_depth = box.size();
      std::size_t ship = cfg_.enforce_capacity ? 1 : box.size();
      delta.messages += ship;
      const std::uint32_t to_local = head_local_[h];
      while (ship-- > 0) {
        const Message m = box.front();
        box.pop();
        delta.words += m.size_words();
        if (faults_ != nullptr) {
          // (edge, seq) keys every fault decision: each half-edge is
          // pulled by exactly one lane, so the counters are race-free
          // and the outcome is independent of lane scheduling.
          const std::uint64_t seq = send_seq_[h]++;
          if (faults_->drop_transmission(h, seq, round_)) {
            ++delta.dropped;
            continue;
          }
          if (faults_->duplicate_transmission(h, seq)) {
            ++delta.duplicated;
            delta.dups.push_back(PendingDelivery{to, to_local, m});
          }
        }
        ++delta.delivered;
        in.push_back(Inbound{to_local, m});
      }
    }
  };
  if (cfg_.threads == 1 || ready_.size() < 64) {
    for (std::size_t i = 0; i < ready_.size(); ++i) pull_one(i);
  } else {
    pool()->for_each_dynamic(
        ready_.size(),
        [&pull_one](std::size_t /*lane*/, std::size_t i) { pull_one(i); });
  }

  // Serial reduction in receiver order. Without faults every receiver got
  // >= 1 message; with faults a receiver whose entire pull was dropped is
  // not woken (a lost message never arrives). Duplicate copies are folded
  // into the future wheel here, in receiver order, so their arrival order
  // is thread-count independent.
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    ReceiverDelta& delta = deltas_[i];
    stats_.messages += delta.messages;
    stats_.words += delta.words;
    stats_.dropped += delta.dropped;
    stats_.duplicated += delta.duplicated;
    if (delta.max_depth > stats_.max_outbox) {
      stats_.max_outbox = delta.max_depth;
    }
    if (!delta.dups.empty()) {
      auto& slot = future_[round_ + 2];
      for (PendingDelivery& d : delta.dups) slot.push_back(std::move(d));
    }
    if (delta.delivered > 0 || faults_ == nullptr) {
      next_active.push_back(ready_[i]);
    }
    ready_flag_[ready_[i]] = 0;
  }

  // Rebuild the busy list in its previous order so edge retirement is
  // independent of the receiver grouping above.
  std::vector<std::size_t> still_busy;
  still_busy.reserve(busy_edges_.size());
  for (const std::size_t h : busy_edges_) {
    if (!outbox_[h].empty()) {
      still_busy.push_back(h);
    } else {
      edge_busy_flag_[h] = 0;
    }
  }
  busy_edges_.swap(still_busy);
}

}  // namespace dsketch
