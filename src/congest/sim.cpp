#include "congest/sim.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

std::uint64_t NodeCtx::round() const { return sim_.round(); }
std::uint32_t NodeCtx::degree() const { return sim_.degree_of(node_); }
NodeId NodeCtx::neighbor(std::uint32_t local_edge) const {
  return sim_.neighbor_of(node_, local_edge);
}
Weight NodeCtx::edge_weight(std::uint32_t local_edge) const {
  return sim_.weight_of(node_, local_edge);
}
std::span<const Inbound> NodeCtx::inbox() const {
  return sim_.inbox_of(node_);
}
void NodeCtx::send(std::uint32_t local_edge, Message m) {
  sim_.enqueue(node_, local_edge, std::move(m));
}
void NodeCtx::broadcast(const Message& m) {
  const std::uint32_t deg = degree();
  for (std::uint32_t e = 0; e < deg; ++e) send(e, m);
}
void NodeCtx::wake() { sim_.wake(node_); }
void NodeCtx::wake_at(std::uint64_t round) { sim_.schedule_wake(node_, round); }
std::size_t NodeCtx::outbox_depth(std::uint32_t local_edge) const {
  return sim_.outbox_depth(node_, local_edge);
}

Simulator::Simulator(const Graph& graph, Protocol& protocol, SimConfig cfg)
    : graph_(graph), protocol_(protocol), cfg_(cfg),
      delay_rng_(cfg.async_seed) {
  const NodeId n = graph_.num_nodes();
  const std::size_t half_edges = 2 * graph_.num_edges();
  outbox_.resize(half_edges);
  head_.resize(half_edges);
  head_local_.resize(half_edges);
  inbox_.resize(n);
  wake_flag_.assign(n, 0);
  start_pending_.assign(n, 0);
  in_active_list_.assign(n, 0);
  edge_busy_flag_.assign(half_edges, 0);
  stats_.label = cfg_.phase;
  if (cfg_.round_log != nullptr) cfg_.round_log->begin_phase(cfg_.phase);

  // Twin resolution: half-edge (u, s) with neighbor v maps to the matching
  // slot of u in v's adjacency. Adjacencies are sorted by (to, weight), so
  // the i-th parallel (u,v) slot on u's side pairs with the i-th (v,u) slot
  // on v's side.
  std::unordered_map<std::uint64_t, std::uint32_t> occurrence;
  occurrence.reserve(half_edges);
  for (NodeId u = 0; u < n; ++u) {
    const auto adj = graph_.neighbors(u);
    for (std::uint32_t s = 0; s < adj.size(); ++s) {
      const NodeId v = adj[s].to;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | v;
      const std::uint32_t occ = occurrence[key]++;
      // Find occ-th slot of v's adjacency pointing back at u.
      const auto vadj = graph_.neighbors(v);
      const auto it = std::lower_bound(
          vadj.begin(), vadj.end(), u,
          [](const HalfEdge& he, NodeId target) { return he.to < target; });
      const std::uint32_t base =
          static_cast<std::uint32_t>(it - vadj.begin());
      const std::uint32_t slot = base + occ;
      DS_CHECK(slot < vadj.size() && vadj[slot].to == u);
      const std::size_t h = graph_.half_edge_index(u, s);
      head_[h] = v;
      head_local_[h] = slot;
    }
  }
  activate_all();
}

void Simulator::activate_all() {
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    start_pending_[u] = 1;
    if (!in_active_list_[u]) {
      in_active_list_[u] = 1;
      active_.push_back(u);
    }
  }
  std::sort(active_.begin(), active_.end());
}

void Simulator::activate(const std::vector<NodeId>& nodes) {
  for (NodeId u : nodes) {
    DS_CHECK(u < graph_.num_nodes());
    start_pending_[u] = 1;
    if (!in_active_list_[u]) {
      in_active_list_[u] = 1;
      active_.push_back(u);
    }
  }
  std::sort(active_.begin(), active_.end());
}

void Simulator::enqueue(NodeId u, std::uint32_t local, Message m) {
  DS_CHECK(m.size_words() <= cfg_.max_message_words);
  auto& box = outbox_[graph_.half_edge_index(u, local)];
  box.push_back(std::move(m));
  if (box.size() > stats_.max_outbox) stats_.max_outbox = box.size();
}

SimStats Simulator::run() {
  for (;;) {
    flush_future();
    if (active_.empty() && busy_edges_.empty()) {
      if (!future_.empty() || !wake_schedule_.empty()) {
        // Nothing happens until the next scheduled arrival or timer;
        // fast-forward the round counter to it.
        std::uint64_t next = static_cast<std::uint64_t>(-1);
        if (!future_.empty()) next = future_.begin()->first;
        if (!wake_schedule_.empty()) {
          next = std::min(next, wake_schedule_.begin()->first);
        }
        round_ = next;
        stats_.rounds = round_;
        continue;
      }
      if (!protocol_.on_quiescent(*this)) break;
      if (active_.empty() && busy_edges_.empty() && future_.empty() &&
          wake_schedule_.empty()) {
        break;
      }
      continue;  // the oracle check itself consumes no rounds
    }
    if (round_ >= cfg_.max_rounds) {
      stats_.hit_round_limit = true;
      break;
    }
    const std::uint64_t active_nodes = active_.size();
    const std::uint64_t prev_messages = stats_.messages;
    const std::uint64_t prev_words = stats_.words;
    step_active_nodes();
    deliver();
    if (cfg_.round_log != nullptr) {
      cfg_.round_log->record(obs::RoundSample{
          round_, stats_.messages - prev_messages, stats_.words - prev_words,
          active_nodes, stats_.max_outbox});
    }
    ++round_;
    stats_.rounds = round_;
  }
  if (cfg_.round_log != nullptr) cfg_.round_log->flush();
  return stats_;
}

void Simulator::flush_future() {
  bool touched = false;
  const auto wit = wake_schedule_.find(round_);
  if (wit != wake_schedule_.end()) {
    for (const NodeId u : wit->second) {
      if (!in_active_list_[u]) {
        in_active_list_[u] = 1;
        active_.push_back(u);
        touched = true;
      }
    }
    wake_schedule_.erase(wit);
  }
  const auto it = future_.find(round_);
  if (it != future_.end()) {
    for (PendingDelivery& d : it->second) {
      if (!in_active_list_[d.to]) {
        in_active_list_[d.to] = 1;
        active_.push_back(d.to);
      }
      inbox_[d.to].push_back(Inbound{d.to_local, std::move(d.msg)});
      touched = true;
    }
    future_.erase(it);
  }
  if (touched) std::sort(active_.begin(), active_.end());
  // Canonical per-round inbox order: by arrival edge (stable so queued
  // order on an edge is preserved in the synchronous case).
  for (const NodeId u : active_) {
    std::stable_sort(inbox_[u].begin(), inbox_[u].end(),
                     [](const Inbound& a, const Inbound& b) {
                       return a.local_edge < b.local_edge;
                     });
  }
}

void Simulator::step_active_nodes() {
  stats_.node_steps += active_.size();
  auto step_one = [this](std::size_t idx) {
    const NodeId u = active_[idx];
    NodeCtx ctx(*this, u);
    if (start_pending_[u]) {
      start_pending_[u] = 0;
      protocol_.on_start(ctx);
    } else {
      protocol_.on_round(ctx);
    }
    inbox_[u].clear();
  };
  if (cfg_.threads == 1 || active_.size() < 64) {
    for (std::size_t i = 0; i < active_.size(); ++i) step_one(i);
  } else {
    global_pool().parallel_for(active_.size(), step_one);
  }
  // Collect newly busy half-edges in deterministic (node, local) order.
  for (const NodeId u : active_) {
    const std::uint32_t deg = degree_of(u);
    for (std::uint32_t s = 0; s < deg; ++s) {
      const std::size_t h = graph_.half_edge_index(u, s);
      if (!outbox_[h].empty() && !edge_busy_flag_[h]) {
        edge_busy_flag_[h] = 1;
        busy_edges_.push_back(h);
      }
    }
  }
}

void Simulator::deliver() {
  std::vector<NodeId> next_active;
  // Wakes requested by nodes stepped this round.
  for (const NodeId u : active_) {
    if (wake_flag_[u]) {
      wake_flag_[u] = 0;
      next_active.push_back(u);
    }
  }
  // Transmit one message per busy half-edge (or the whole queue when the
  // capacity ablation is on). In async mode the arrival round is drawn
  // uniformly from [round+1, round+async_max_delay].
  std::vector<std::size_t> still_busy;
  still_busy.reserve(busy_edges_.size());
  for (const std::size_t h : busy_edges_) {
    auto& box = outbox_[h];
    DS_CHECK(!box.empty());
    const NodeId to = head_[h];
    const std::uint32_t to_local = head_local_[h];
    std::size_t ship = cfg_.enforce_capacity ? 1 : box.size();
    while (ship-- > 0) {
      Message m = std::move(box.front());
      box.pop_front();
      stats_.messages += 1;
      stats_.words += m.size_words();
      const std::uint64_t arrival =
          round_ + 1 +
          (cfg_.async_max_delay > 1 ? delay_rng_.below(cfg_.async_max_delay)
                                    : 0);
      if (arrival == round_ + 1) {
        if (inbox_[to].empty()) next_active.push_back(to);
        inbox_[to].push_back(Inbound{to_local, std::move(m)});
      } else {
        future_[arrival].push_back(PendingDelivery{to, to_local, std::move(m)});
      }
    }
    if (!box.empty()) {
      still_busy.push_back(h);
    } else {
      edge_busy_flag_[h] = 0;
    }
  }
  busy_edges_.swap(still_busy);

  // De-duplicate and order the next active set; inbox ordering is
  // canonicalized in flush_future at the top of the next round.
  std::sort(next_active.begin(), next_active.end());
  next_active.erase(std::unique(next_active.begin(), next_active.end()),
                    next_active.end());
  for (const NodeId u : active_) in_active_list_[u] = 0;
  for (const NodeId u : next_active) in_active_list_[u] = 1;
  active_.swap(next_active);
}

}  // namespace dsketch
