#include "congest/bellman_ford.hpp"

#include <deque>

#include "congest/protocol.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

// MultiSource messages: <source, dist>. No tag word needed — the protocol
// has a single message type.
class MultiSourceBfProtocol : public Protocol {
 public:
  MultiSourceBfProtocol(NodeId n, const std::vector<NodeId>& sources)
      : nodes_(n), is_source_(n, 0) {
    for (const NodeId s : sources) {
      DS_CHECK(s < n);
      is_source_[s] = 1;
    }
  }

  void on_start(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    if (is_source_[u]) {
      nodes_[u].dist[u] = 0;
      enqueue(nodes_[u], u);
      ctx.wake();
    }
  }

  void on_round(NodeCtx& ctx) override {
    NodeState& s = nodes_[ctx.node()];
    for (const Inbound& in : ctx.inbox()) {
      const NodeId src = static_cast<NodeId>(in.msg.at(0));
      const Dist cand = in.msg.at(1) + ctx.edge_weight(in.local_edge);
      const auto it = s.dist.find(src);
      if (it == s.dist.end() || cand < it->second) {
        s.dist[src] = cand;
        enqueue(s, src);
      }
    }
    if (!s.pending.empty()) {
      const NodeId src = s.pending.front();
      s.pending.pop_front();
      s.queued[src] = 0;
      ctx.broadcast(Message{src, static_cast<Word>(s.dist.at(src))});
      if (!s.pending.empty()) ctx.wake();
    }
  }

  std::vector<std::unordered_map<NodeId, Dist>> take_dist() {
    std::vector<std::unordered_map<NodeId, Dist>> out;
    out.reserve(nodes_.size());
    for (auto& s : nodes_) out.push_back(std::move(s.dist));
    return out;
  }

 private:
  struct NodeState {
    std::unordered_map<NodeId, Dist> dist;
    std::unordered_map<NodeId, char> queued;
    std::deque<NodeId> pending;
  };
  void enqueue(NodeState& s, NodeId src) {
    char& q = s.queued[src];
    if (!q) {
      q = 1;
      s.pending.push_back(src);
    }
  }
  std::vector<NodeState> nodes_;
  std::vector<char> is_source_;
};

// SuperSource messages:
//   DATA:  <0, dist, owner>
//   CLAIM: <1>   (sent on the parent edge after the field stabilizes)
class SuperSourceBfProtocol : public Protocol {
 public:
  SuperSourceBfProtocol(NodeId n, const std::vector<NodeId>& sources)
      : dist_(n, kInfDist),
        owner_(n, kInvalidNode),
        parent_edge_(n, SuperSourceBfResult::kNoParent),
        child_edges_(n),
        is_source_(n, 0) {
    for (const NodeId s : sources) {
      DS_CHECK(s < n);
      is_source_[s] = 1;
    }
  }

  void on_start(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    if (phase_ == Phase::kSpread) {
      if (is_source_[u]) {
        dist_[u] = 0;
        owner_[u] = u;
        ctx.broadcast(Message{0, 0, u});
      }
    } else if (phase_ == Phase::kClaim) {
      if (parent_edge_[u] != SuperSourceBfResult::kNoParent) {
        ctx.send(parent_edge_[u], Message{1});
      }
    }
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    bool improved = false;
    for (const Inbound& in : ctx.inbox()) {
      if (in.msg.at(0) == 1) {  // CLAIM
        child_edges_[u].push_back(in.local_edge);
        continue;
      }
      const Dist cand = in.msg.at(1) + ctx.edge_weight(in.local_edge);
      const NodeId owner = static_cast<NodeId>(in.msg.at(2));
      if (cand < dist_[u] || (cand == dist_[u] && owner < owner_[u])) {
        dist_[u] = cand;
        owner_[u] = owner;
        parent_edge_[u] = in.local_edge;
        improved = true;
      }
    }
    if (improved) {
      ctx.broadcast(Message{0, static_cast<Word>(dist_[u]), owner_[u]});
    }
  }

  bool on_quiescent(Simulator& sim) override {
    if (phase_ == Phase::kSpread) {
      phase_ = Phase::kClaim;
      sim.activate_all();
      return true;
    }
    return false;
  }

  SuperSourceBfResult take_result(SimStats stats) {
    SuperSourceBfResult r;
    r.dist = std::move(dist_);
    r.owner = std::move(owner_);
    r.parent_edge = std::move(parent_edge_);
    r.child_edges = std::move(child_edges_);
    r.stats = stats;
    return r;
  }

 private:
  enum class Phase { kSpread, kClaim };
  Phase phase_ = Phase::kSpread;
  std::vector<Dist> dist_;
  std::vector<NodeId> owner_;
  std::vector<std::uint32_t> parent_edge_;
  std::vector<std::vector<std::uint32_t>> child_edges_;
  std::vector<char> is_source_;
};

}  // namespace

MultiSourceBfResult run_multi_source_bf(const Graph& g,
                                        const std::vector<NodeId>& sources,
                                        SimConfig cfg) {
  if (cfg.phase.empty()) cfg.phase = "bf_multi_source";
  MultiSourceBfProtocol protocol(g.num_nodes(), sources);
  Simulator sim(g, protocol, cfg);
  MultiSourceBfResult result;
  result.stats = sim.run();
  DS_CHECK(!result.stats.hit_round_limit);
  result.dist = protocol.take_dist();
  return result;
}

SuperSourceBfResult run_super_source_bf(const Graph& g,
                                        const std::vector<NodeId>& sources,
                                        SimConfig cfg) {
  if (cfg.phase.empty()) cfg.phase = "bellman_ford";
  SuperSourceBfProtocol protocol(g.num_nodes(), sources);
  Simulator sim(g, protocol, cfg);
  const SimStats stats = sim.run();
  DS_CHECK(!stats.hit_round_limit);
  return protocol.take_result(stats);
}

SimStats online_distance_rounds(const Graph& g, NodeId source, SimConfig cfg) {
  return run_super_source_bf(g, {source}, cfg).stats;
}

}  // namespace dsketch
