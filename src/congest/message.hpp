// CONGEST messages: word-counted payloads with inline storage.
//
// The model (§2.2) allows one message of O(log n) bits per edge per direction
// per round. A *word* is a block of O(log n) bits holding one node ID or one
// distance. Protocols in this library use messages of at most a small
// constant number of words (data = <source, dist> = 2 words, ECHO = 3,
// control = <=2); the simulator enforces a configurable cap so no protocol
// can smuggle super-constant payloads through an edge in one round.
//
// Messages are trivially copyable: the payload lives in a fixed inline
// array (capacity kMaxMessageCapacity, a compile-time ceiling above every
// runtime cap the simulator accepts). Queuing a message is a plain copy
// into a flat buffer — no per-message heap allocation — which is what lets
// the event-driven simulator move hundreds of millions of messages at
// 100k+-node scale.
#pragma once

#include <cstdint>
#include <initializer_list>

#include "util/assert.hpp"

namespace dsketch {

using Word = std::uint64_t;

/// Compile-time ceiling on words per message. SimConfig::max_message_words
/// (the model's O(log n) budget, default 4) must stay at or below this.
inline constexpr std::size_t kMaxMessageCapacity = 8;

struct Message {
  Message() = default;
  Message(std::initializer_list<Word> ws) {
    for (const Word w : ws) push(w);
  }

  std::size_t size_words() const { return size_; }

  Message& push(Word w) {
    DS_CHECK(size_ < kMaxMessageCapacity);
    words_[size_++] = w;
    return *this;
  }
  Word at(std::size_t i) const {
    DS_CHECK(i < size_);
    return words_[i];
  }

 private:
  Word words_[kMaxMessageCapacity];
  std::uint32_t size_ = 0;
};

/// A message delivered to a node this round, tagged with the local index of
/// the edge it arrived on.
struct Inbound {
  std::uint32_t local_edge;
  Message msg;
};

}  // namespace dsketch
