// CONGEST messages: word-counted payloads.
//
// The model (§2.2) allows one message of O(log n) bits per edge per direction
// per round. A *word* is a block of O(log n) bits holding one node ID or one
// distance. Protocols in this library use messages of at most a small
// constant number of words (data = <source, dist> = 2 words, ECHO = 3,
// control = <=2); the simulator enforces a configurable cap so no protocol
// can smuggle super-constant payloads through an edge in one round.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace dsketch {

using Word = std::uint64_t;

struct Message {
  std::vector<Word> words;

  Message() = default;
  explicit Message(std::initializer_list<Word> ws) : words(ws) {}

  std::size_t size_words() const { return words.size(); }

  Message& push(Word w) {
    words.push_back(w);
    return *this;
  }
  Word at(std::size_t i) const {
    DS_CHECK(i < words.size());
    return words[i];
  }
};

/// A message delivered to a node this round, tagged with the local index of
/// the edge it arrived on.
struct Inbound {
  std::uint32_t local_edge;
  Message msg;
};

}  // namespace dsketch
