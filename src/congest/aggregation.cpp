#include "congest/aggregation.hpp"

#include <algorithm>
#include <limits>

#include "congest/protocol.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

// Messages: UP <kUp, partial>, DOWN <kDown, result>.
constexpr Word kUp = 1;
constexpr Word kDown = 2;

Word combine(AggregateOp op, Word a, Word b) {
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kCount:
      return a + b;
    case AggregateOp::kMin:
      return std::min(a, b);
    case AggregateOp::kMax:
      return std::max(a, b);
  }
  return 0;
}

class AggregateProtocol : public Protocol {
 public:
  AggregateProtocol(const BfsTree& tree, const std::vector<Word>& values,
                    AggregateOp op)
      : tree_(tree), op_(op) {
    const auto n = tree.parent.size();
    partial_.resize(n);
    pending_children_.resize(n);
    result_.assign(n, 0);
    done_.assign(n, 0);
    sent_up_.assign(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      partial_[u] = op == AggregateOp::kCount ? 1 : values[u];
      pending_children_[u] =
          static_cast<std::uint32_t>(tree.child_edges[u].size());
    }
  }

  void on_start(NodeCtx& ctx) override {
    maybe_send_up(ctx);
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    for (const Inbound& in : ctx.inbox()) {
      if (in.msg.at(0) == kUp) {
        partial_[u] = combine(op_, partial_[u], in.msg.at(1));
        DS_CHECK(pending_children_[u] > 0);
        --pending_children_[u];
      } else {
        DS_CHECK(in.msg.at(0) == kDown);
        deliver_result(ctx, in.msg.at(1));
      }
    }
    maybe_send_up(ctx);
  }

  Word result_at(NodeId u) const { return result_[u]; }
  bool all_done() const {
    return std::all_of(done_.begin(), done_.end(),
                       [](char d) { return d != 0; });
  }

 private:
  void maybe_send_up(NodeCtx& ctx) {
    const NodeId u = ctx.node();
    if (sent_up_[u] || pending_children_[u] != 0) return;
    sent_up_[u] = 1;
    if (u == tree_.root) {
      deliver_result(ctx, partial_[u]);
    } else {
      ctx.send(tree_.parent_edge[u], Message{kUp, partial_[u]});
    }
  }

  void deliver_result(NodeCtx& ctx, Word value) {
    const NodeId u = ctx.node();
    result_[u] = value;
    done_[u] = 1;
    for (const std::uint32_t e : tree_.child_edges[u]) {
      ctx.send(e, Message{kDown, value});
    }
  }

  const BfsTree& tree_;
  AggregateOp op_;
  std::vector<Word> partial_;
  std::vector<std::uint32_t> pending_children_;
  std::vector<Word> result_;
  std::vector<char> done_;
  std::vector<char> sent_up_;
};

}  // namespace

AggregateResult tree_aggregate(const Graph& g, const BfsTree& tree,
                               const std::vector<Word>& values,
                               AggregateOp op, SimConfig cfg) {
  DS_CHECK(op == AggregateOp::kCount || values.size() == g.num_nodes());
  if (cfg.phase.empty()) cfg.phase = "aggregation";
  std::vector<Word> padded = values;
  if (op == AggregateOp::kCount) padded.assign(g.num_nodes(), 1);
  AggregateProtocol protocol(tree, padded, op);
  Simulator sim(g, protocol, cfg);
  AggregateResult result;
  result.stats = sim.run();
  DS_CHECK(!result.stats.hit_round_limit);
  DS_CHECK_MSG(protocol.all_done(), "aggregate did not reach every node");
  result.value = protocol.result_at(tree.root);
  // Every node agrees (checked here once, centrally, as a sanity net).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    DS_CHECK(protocol.result_at(u) == result.value);
  }
  return result;
}

AggregateResult aggregate(const Graph& g, const std::vector<Word>& values,
                          AggregateOp op, SimConfig cfg) {
  BfsTreeRun run = build_bfs_tree(g, cfg);
  AggregateResult result = tree_aggregate(g, run.tree, values, op, cfg);
  result.stats += run.stats;
  return result;
}

}  // namespace dsketch
