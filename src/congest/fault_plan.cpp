#include "congest/fault_plan.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

/// Half-edge index of (v, slot such that adj[slot].to == u), matching the
/// simulator's twin resolution: adjacencies are sorted by (to, weight), so
/// the i-th slot of u's run of parallel (u,v) edges pairs with the i-th
/// slot of v's run.
std::size_t twin_half_edge(const Graph& g, NodeId u, std::uint32_t local) {
  const auto adj = g.neighbors(u);
  const NodeId v = adj[local].to;
  std::uint32_t run_start = local;
  while (run_start > 0 && adj[run_start - 1].to == v) --run_start;
  const auto vadj = g.neighbors(v);
  const auto it = std::lower_bound(
      vadj.begin(), vadj.end(), u,
      [](const HalfEdge& he, NodeId target) { return he.to < target; });
  const auto base = static_cast<std::uint32_t>(it - vadj.begin());
  const std::uint32_t slot = base + (local - run_start);
  DS_CHECK(slot < vadj.size() && vadj[slot].to == u);
  return g.half_edge_index(v, slot);
}

}  // namespace

FaultPlan::FaultPlan(const Graph& g, FaultConfig cfg) : cfg_(cfg) {
  Rng rng(cfg_.seed * 0x9e3779b97f4a7c15ULL + 0xfa17);
  const NodeId n = g.num_nodes();

  // Crash schedule: distinct nodes, one crash each, sampled rounds.
  if (cfg_.node_crashes > 0 && n > 0) {
    Rng crash_rng = rng.split(1);
    std::vector<NodeId> victims;
    const std::uint32_t want = std::min<std::uint32_t>(cfg_.node_crashes, n);
    while (victims.size() < want) {
      const NodeId u = static_cast<NodeId>(crash_rng.below(n));
      if (std::find(victims.begin(), victims.end(), u) == victims.end()) {
        victims.push_back(u);
      }
    }
    const std::uint64_t horizon = std::max<std::uint64_t>(cfg_.crash_horizon, 2);
    for (const NodeId u : victims) {
      const std::uint64_t at = 1 + crash_rng.below(horizon - 1);
      crashes_.push_back(CrashEvent{u, at, at + cfg_.crash_downtime});
    }
    std::sort(crashes_.begin(), crashes_.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.node < b.node;
              });
  }

  // Link-down schedule: sample undirected links by (node, local edge) and
  // register the interval under both half-edge directions.
  if (cfg_.link_faults > 0 && g.num_edges() > 0) {
    Rng link_rng = rng.split(2);
    const std::uint64_t horizon =
        std::max<std::uint64_t>(cfg_.link_fault_horizon, 2);
    for (std::uint32_t i = 0; i < cfg_.link_faults; ++i) {
      NodeId u;
      do {
        u = static_cast<NodeId>(link_rng.below(n));
      } while (g.degree(u) == 0);
      const auto local = static_cast<std::uint32_t>(link_rng.below(
          static_cast<std::uint64_t>(g.degree(u))));
      const std::uint64_t from = 1 + link_rng.below(horizon - 1);
      const DownInterval window{from, from + cfg_.link_down_rounds};
      link_down_[g.half_edge_index(u, local)] = window;
      link_down_[twin_half_edge(g, u, local)] = window;
    }
  }

  for (const CrashEvent& c : crashes_) {
    event_rounds_.push_back(c.at);
    event_rounds_.push_back(c.restart);
  }
  std::sort(event_rounds_.begin(), event_rounds_.end());
  event_rounds_.erase(
      std::unique(event_rounds_.begin(), event_rounds_.end()),
      event_rounds_.end());
}

}  // namespace dsketch
