// Query-time sketch exchange (§2.1).
//
// After preprocessing, answering d(u,v) online means u must obtain v's
// sketch (or vice versa). The paper charges this at O(D · sketch-size)
// rounds; in structured overlays where u can contact v directly it drops
// to O(sketch-size). We implement the general-network version faithfully
// so experiment E8 can *measure* it instead of modeling it:
//
//   1. u floods a REQUEST carrying v's id (BFS, <= D rounds; every node
//      remembers the edge the request first arrived on — a parent pointer
//      toward u);
//   2. v answers by streaming its serialized sketch words back along the
//      parent-pointer chain, 2 words per message, pipelined and
//      sequence-numbered (tolerates asynchronous, non-FIFO links);
//   3. u reassembles the sketch. Total: ~2·hop(u,v) + words/2 rounds.
//
// The flood costs O(|E|) messages — that is the price of not having
// routing tables in a bare CONGEST network, and it is still exponentially
// cheaper in *rounds* than the Ω(S) no-preprocessing computation on
// high-S topologies.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"

namespace dsketch {

struct SketchExchangeResult {
  std::vector<Word> words;  ///< v's sketch as received by u
  SimStats stats;
  bool complete = false;
};

/// u requests and receives `payload` (v's serialized sketch) from v.
SketchExchangeResult exchange_sketch(const Graph& g, NodeId requester,
                                     NodeId responder,
                                     const std::vector<Word>& payload,
                                     SimConfig cfg = {});

}  // namespace dsketch
