// §3.3 termination-detection building blocks.
//
// The paper removes the "every node knows S" assumption with two mechanisms:
//
//  1. Per-message ECHO tracking: every data message m a node receives is
//     eventually ECHOed back to its sender — immediately if m caused no new
//     broadcast (gate failed / no improvement / superseded before sending),
//     or once the broadcast it triggered has itself been ECHOed by all
//     neighbors. A source's own announcement therefore completes exactly
//     when its whole (finite) causal cascade has died out.
//
//  2. COMPLETE convergecast on a BFS tree: a node reports COMPLETE to its
//     parent once it is itself complete (non-sources trivially; sources when
//     their announcement has fully echoed) and all its children reported.
//     The root then knows the phase is globally over and broadcasts START
//     for the next phase.
//
// EchoTracker implements (1) for one node and one phase; CompletionTracker
// implements (2) for one node and one phase. Both are pure bookkeeping
// (no I/O) so they are unit-testable in isolation; the TZ protocol wires
// their outputs to actual sends.
//
// Deviation from the paper, documented in DESIGN.md: we wait for echoes from
// *all* neighbors of a broadcast (the paper excludes the trigger's sender,
// which echoes immediately anyway); this costs at most one extra round per
// record and simplifies matching.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

/// Identifies the message a node must eventually ECHO: the edge it came in
/// on and the value it carried (the "copy of the message" of §3.3).
struct EchoObligation {
  std::uint32_t edge;
  Dist value;
};

class EchoTracker {
 public:
  /// A received data message (source, value) on `edge` was accepted as the
  /// new best for `source` and queued. Returns the obligation of a
  /// previously queued-but-unsent trigger that is now superseded and must be
  /// echoed immediately, if any.
  std::optional<EchoObligation> accept_trigger(NodeId source,
                                               std::uint32_t edge,
                                               Dist value);

  /// The node broadcast (source, sent_value) to `fanout` neighbors; consumes
  /// the pending trigger for `source` (if any — a source's own announcement
  /// has none).
  void commit_send(NodeId source, Dist sent_value, std::uint32_t fanout,
                   bool self_announce);

  /// An ECHO for (source, value) arrived. When this completes a record,
  /// returns either the trigger obligation to forward the echo upstream, or
  /// marks self-announce completion (check `self_announce_complete`).
  std::optional<EchoObligation> on_echo(NodeId source, Dist value);

  bool self_announce_complete() const { return self_done_; }
  bool has_outstanding() const {
    return record_count_ != 0 || !trigger_.empty();
  }
  std::size_t outstanding_records() const { return record_count_; }

 private:
  struct Record {
    Dist value;
    std::uint32_t remaining;
    bool has_trigger;
    bool self_announce;
    EchoObligation trigger;
  };
  // Outstanding records per source; values within a source are strictly
  // decreasing over time so the per-source list stays tiny.
  std::unordered_map<NodeId, std::vector<Record>> records_;
  std::unordered_map<NodeId, EchoObligation> trigger_;
  std::size_t record_count_ = 0;
  bool self_done_ = false;
};

/// COMPLETE convergecast state for one node and one phase.
class CompletionTracker {
 public:
  void reset(std::uint32_t num_children, bool self_complete) {
    expected_children_ = num_children;
    got_children_ = 0;
    self_complete_ = self_complete;
    fired_ = false;
  }

  /// Child reported COMPLETE. Returns true if this node should now emit its
  /// own COMPLETE (or, at the root, declare the phase finished).
  bool on_child_complete() {
    ++got_children_;
    return ready();
  }
  /// This node became complete (source finished echoing, or non-source at
  /// phase start). Returns true as above.
  bool on_self_complete() {
    self_complete_ = true;
    return ready();
  }

  bool fired() const { return fired_; }
  void mark_fired() { fired_ = true; }

 private:
  bool ready() const {
    return !fired_ && self_complete_ && got_children_ >= expected_children_;
  }
  std::uint32_t expected_children_ = 0;
  std::uint32_t got_children_ = 0;
  bool self_complete_ = false;
  bool fired_ = false;
};

}  // namespace dsketch
