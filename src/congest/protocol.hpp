// Protocol and per-node execution context interfaces for the simulator.
//
// A Protocol owns all per-node state (indexed by NodeId) and is invoked by
// the simulator through three hooks:
//   on_start(ctx)    — once per node at round 0 (or after activate_all);
//   on_round(ctx)    — every round the node is active (received messages,
//                      requested a wake, or was just activated);
//   on_quiescent(sim)— when no message is in flight, no outbox is nonempty
//                      and no node requested a wake. Returning true resumes
//                      the run (the hook typically re-activates nodes to
//                      start the next phase); false ends it.
//
// on_quiescent models *oracle* termination detection — a global observer
// noticing silence. The paper's §3.3 distributed termination detection is
// implemented as protocol logic (echo_termination.hpp) and benchmarked
// against the oracle in experiment E3.
#pragma once

#include <cstdint>
#include <span>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class Simulator;

/// Node-scoped view handed to protocol hooks. Cheap to construct; all calls
/// touch only state owned by this node, so hooks may run concurrently for
/// different nodes.
class NodeCtx {
 public:
  NodeCtx(Simulator& sim, NodeId node) : sim_(sim), node_(node) {}

  NodeId node() const { return node_; }
  std::uint64_t round() const;
  std::uint32_t degree() const;
  NodeId neighbor(std::uint32_t local_edge) const;
  Weight edge_weight(std::uint32_t local_edge) const;

  /// Messages that arrived this round, sorted by local edge index.
  std::span<const Inbound> inbox() const;

  /// Enqueues `m` on the outbox of `local_edge`; the simulator transmits one
  /// queued message per edge per direction per round.
  void send(std::uint32_t local_edge, Message m);

  /// Convenience: send a copy of `m` on every incident edge.
  void broadcast(const Message& m);

  /// Request on_round next round even without inbound messages.
  void wake();

  /// Request on_round at an absolute future round (a local timer — used by
  /// the known-S variant where nodes advance phases at fixed deadlines).
  /// Idle rounds in between are fast-forwarded by the simulator but still
  /// counted.
  void wake_at(std::uint64_t round);

  /// Number of messages queued but not yet transmitted on `local_edge`.
  std::size_t outbox_depth(std::uint32_t local_edge) const;

 private:
  Simulator& sim_;
  NodeId node_;
};

class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void on_start(NodeCtx& ctx) = 0;
  virtual void on_round(NodeCtx& ctx) = 0;
  virtual bool on_quiescent(Simulator& sim) {
    (void)sim;
    return false;
  }

  // Fault-injection hooks (congest/fault_plan.hpp). A crashed node is not
  // stepped and loses all in-flight messages, but its protocol state
  // survives (fail-recover with stable storage); on_restart runs at its
  // first step back up. The default resumes as a normal round.
  virtual void on_crash(NodeId node) { (void)node; }
  virtual void on_restart(NodeCtx& ctx) { on_round(ctx); }
};

}  // namespace dsketch
