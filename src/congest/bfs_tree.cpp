#include "congest/bfs_tree.hpp"

#include "util/assert.hpp"

namespace dsketch {
namespace {

// Message layouts.
//   FLOOD: <kFlood, leader, hops>
//   CLAIM: <kClaim>            (sent only on the chosen parent edge)
constexpr Word kFlood = 1;
constexpr Word kClaim = 2;

}  // namespace

BfsTreeProtocol::BfsTreeProtocol(NodeId n) : nodes_(n) {}

bool BfsTreeProtocol::better(NodeId leader, std::uint32_t hops, NodeId parent,
                             const NodeState& s) {
  // Order: larger leader id wins; then fewer hops; then smaller parent id.
  // kInvalidNode (= max u32) as "no leader yet" would compare as largest, so
  // treat unset state explicitly.
  if (s.best_leader == kInvalidNode) return true;
  if (leader != s.best_leader) return leader > s.best_leader;
  if (hops != s.best_hops) return hops < s.best_hops;
  return parent < s.parent_id;
}

void BfsTreeProtocol::on_start(NodeCtx& ctx) {
  if (phase_ == Phase::kFlood) {
    NodeState& s = nodes_[ctx.node()];
    s.best_leader = ctx.node();
    s.best_hops = 0;
    s.parent_edge = kNoEdge;
    s.parent_id = kInvalidNode;
    ctx.broadcast(Message{kFlood, ctx.node(), 0});
  } else if (phase_ == Phase::kClaim) {
    NodeState& s = nodes_[ctx.node()];
    if (s.parent_edge != kNoEdge) ctx.send(s.parent_edge, Message{kClaim});
  }
}

void BfsTreeProtocol::on_round(NodeCtx& ctx) {
  NodeState& s = nodes_[ctx.node()];
  bool improved = false;
  for (const Inbound& in : ctx.inbox()) {
    if (in.msg.at(0) == kFlood) {
      const NodeId leader = static_cast<NodeId>(in.msg.at(1));
      const std::uint32_t hops = static_cast<std::uint32_t>(in.msg.at(2)) + 1;
      const NodeId from = ctx.neighbor(in.local_edge);
      if (better(leader, hops, from, s) && leader != ctx.node()) {
        s.best_leader = leader;
        s.best_hops = hops;
        s.parent_edge = in.local_edge;
        s.parent_id = from;
        improved = true;
      }
    } else if (in.msg.at(0) == kClaim) {
      s.child_edges.push_back(in.local_edge);
    }
  }
  if (improved) {
    ctx.broadcast(Message{kFlood, s.best_leader, s.best_hops});
  }
}

bool BfsTreeProtocol::on_quiescent(Simulator& sim) {
  if (phase_ == Phase::kFlood) {
    phase_ = Phase::kClaim;
    sim.activate_all();
    return true;
  }
  phase_ = Phase::kDone;
  return false;
}

BfsTree BfsTreeProtocol::take_result() {
  BfsTree t;
  const NodeId n = static_cast<NodeId>(nodes_.size());
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, static_cast<std::uint32_t>(-1));
  t.child_edges.resize(n);
  t.hops.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const NodeState& s = nodes_[u];
    DS_CHECK(s.best_leader != kInvalidNode);
    // One leader per connected component (the max id in it); on connected
    // input this fires exactly once.
    if (s.best_leader == u) t.roots.push_back(u);
    t.parent[u] = s.parent_id;
    t.parent_edge[u] = s.parent_edge;
    t.child_edges[u] = s.child_edges;
    t.hops[u] = s.best_hops;
  }
  DS_CHECK(!t.roots.empty() || n == 0);
  if (!t.roots.empty()) t.root = t.roots.front();
  return t;
}

BfsTreeRun build_bfs_tree(const Graph& g, SimConfig cfg) {
  if (cfg.phase.empty()) cfg.phase = "bfs_tree";
  BfsTreeProtocol protocol(g.num_nodes());
  Simulator sim(g, protocol, cfg);
  BfsTreeRun run;
  run.stats = sim.run();
  run.tree = protocol.take_result();
  return run;
}

}  // namespace dsketch
