// Distributed leader election + BFS spanning tree (paper §3.3 preamble).
//
// The termination-detection machinery needs an arbitrary leader r and a BFS
// tree T rooted at r in which every node knows its parent and children. We
// implement flood-max election fused with BFS layering:
//   - every node floods <candidate_id, hops>;
//   - a node adopts the lexicographically best (max candidate, min hops,
//     min parent id) offer and re-floods;
//   - once the flood stabilizes (detected by quiescence), each node claims
//     its parent with a PARENT message so parents learn their children.
// Cost: O(D) rounds and O(D * |E|) messages for the flood — within the
// "negligible compared to Theorem 3.8" budget the paper allots.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/protocol.hpp"
#include "congest/sim.hpp"

namespace dsketch {

/// Result of tree construction, indexed by node. On a disconnected graph
/// the flood elects one leader per connected component, yielding a BFS
/// *forest*: `roots` lists every component root (ascending node id) and
/// `root` is the first of them — the unique tree root on connected input.
struct BfsTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> roots;                 ///< one per component
  std::vector<NodeId> parent;                ///< kInvalidNode at a root
  std::vector<std::uint32_t> parent_edge;    ///< local edge to parent
  std::vector<std::vector<std::uint32_t>> child_edges;  ///< local edges
  std::vector<std::uint32_t> hops;           ///< BFS depth within component

  bool is_root(NodeId u) const { return parent[u] == kInvalidNode; }

  std::uint32_t depth() const {
    std::uint32_t d = 0;
    for (std::uint32_t h : hops) d = std::max(d, h);
    return d;
  }
};

class BfsTreeProtocol : public Protocol {
 public:
  explicit BfsTreeProtocol(NodeId n);

  void on_start(NodeCtx& ctx) override;
  void on_round(NodeCtx& ctx) override;
  bool on_quiescent(Simulator& sim) override;

  /// Valid after the simulator run completes.
  BfsTree take_result();

 private:
  struct NodeState {
    NodeId best_leader = kInvalidNode;
    std::uint32_t best_hops = 0;
    std::uint32_t parent_edge = kNoEdge;
    NodeId parent_id = kInvalidNode;
    std::vector<std::uint32_t> child_edges;
  };
  static constexpr std::uint32_t kNoEdge = static_cast<std::uint32_t>(-1);

  /// Returns true if the (leader, hops, parent) offer improves on state.
  static bool better(NodeId leader, std::uint32_t hops, NodeId parent,
                     const NodeState& s);

  enum class Phase { kFlood, kClaim, kDone };
  Phase phase_ = Phase::kFlood;
  std::vector<NodeState> nodes_;
};

/// Convenience wrapper: runs the protocol on `g`, returns tree + stats.
struct BfsTreeRun {
  BfsTree tree;
  SimStats stats;
};
BfsTreeRun build_bfs_tree(const Graph& g, SimConfig cfg = {});

}  // namespace dsketch
