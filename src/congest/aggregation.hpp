// Tree aggregation primitives: convergecast + broadcast over a BFS tree.
//
// The model (§2.2) assumes every node knows n; [KKM+08]-style tree
// aggregation is how a real deployment obtains such global scalars in O(D)
// rounds and O(n) messages. Provided operations: SUM, MIN, MAX, COUNT.
// After the run every node holds the global value (convergecast up to the
// root, result broadcast back down).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/bfs_tree.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"

namespace dsketch {

enum class AggregateOp { kSum, kMin, kMax, kCount };

struct AggregateResult {
  Word value = 0;   ///< the global aggregate (known to every node)
  SimStats stats;
};

/// Aggregates `values[u]` over all nodes using the given tree.
/// For kCount the values are ignored (every node contributes 1).
AggregateResult tree_aggregate(const Graph& g, const BfsTree& tree,
                               const std::vector<Word>& values,
                               AggregateOp op, SimConfig cfg = {});

/// Convenience: elect a leader, build the tree, aggregate. Returns the
/// combined cost of both runs.
AggregateResult aggregate(const Graph& g, const std::vector<Word>& values,
                          AggregateOp op, SimConfig cfg = {});

}  // namespace dsketch
