// Round/message/word accounting for simulator runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsketch {

/// One labeled constituent of a merged SimStats. Kept when stats are
/// summed so composite builds (BFS tree + main run, Voronoi + TZ +
/// dissemination, ...) can still report which phase cost what — and,
/// critically, which phase hit the round limit.
struct SimPhase {
  std::string label;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t node_steps = 0;
  std::uint64_t max_outbox = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  bool hit_round_limit = false;
};

struct SimStats {
  std::uint64_t rounds = 0;        ///< synchronous rounds elapsed
  std::uint64_t messages = 0;      ///< messages transmitted over edges
  std::uint64_t words = 0;         ///< total words across those messages
  std::uint64_t node_steps = 0;    ///< on_round invocations (work measure)
  std::uint64_t max_outbox = 0;    ///< peak per-edge queue depth observed
  std::uint64_t dropped = 0;       ///< transmissions lost to fault injection
  std::uint64_t duplicated = 0;    ///< extra copies delivered by faults
  bool hit_round_limit = false;    ///< run stopped by max_rounds, not quiescence

  /// Phase label of a single run (SimConfig::phase); empty when unset.
  std::string label;
  /// Per-phase breakdown accumulated by operator+=. Empty for a single
  /// un-merged run (use breakdown() for a uniform view).
  std::vector<SimPhase> phases;

  /// This stats object's own aggregate counters as one phase entry
  /// (ignores any nested phases).
  SimPhase as_phase() const {
    return SimPhase{label.empty() ? "unlabeled" : label,
                    rounds,
                    messages,
                    words,
                    node_steps,
                    max_outbox,
                    dropped,
                    duplicated,
                    hit_round_limit};
  }

  /// Uniform per-phase view: the recorded breakdown, or this run as a
  /// single phase.
  std::vector<SimPhase> breakdown() const {
    if (!phases.empty()) return phases;
    return {as_phase()};
  }

  /// Comma-joined labels of phases that stopped at the round limit
  /// ("" when none did) — the loud-warning payload for bench output.
  std::string limited_phases() const {
    std::string out;
    for (const SimPhase& p : breakdown()) {
      if (!p.hit_round_limit) continue;
      if (!out.empty()) out += ",";
      out += p.label;
    }
    return out;
  }

  /// True when nothing ran: merging such a stats object must not leave
  /// an all-zero "unlabeled" entry in the phase breakdown.
  bool empty() const {
    return rounds == 0 && messages == 0 && words == 0 && node_steps == 0 &&
           phases.empty();
  }

  SimStats& operator+=(const SimStats& o) {
    // Preserve the labeled breakdown before summing the aggregates.
    // (The copy also makes self-addition safe.)
    const std::vector<SimPhase> add = o.empty() ? std::vector<SimPhase>{}
                                                : o.breakdown();
    if (phases.empty() && !add.empty() && !empty()) {
      phases.push_back(as_phase());
    }
    // Coalesce by label so merging runs with differing phase sets (e.g.
    // per-topology sweeps, repeated builds) keeps one entry per phase
    // instead of accumulating duplicates. First appearance fixes a
    // label's position; later contributions fold into it.
    for (const SimPhase& p : add) {
      SimPhase* existing = nullptr;
      for (SimPhase& mine : phases) {
        if (mine.label == p.label) {
          existing = &mine;
          break;
        }
      }
      if (existing == nullptr) {
        phases.push_back(p);
        continue;
      }
      existing->rounds += p.rounds;
      existing->messages += p.messages;
      existing->words += p.words;
      existing->node_steps += p.node_steps;
      existing->dropped += p.dropped;
      existing->duplicated += p.duplicated;
      if (p.max_outbox > existing->max_outbox) {
        existing->max_outbox = p.max_outbox;
      }
      existing->hit_round_limit = existing->hit_round_limit ||
                                  p.hit_round_limit;
    }
    rounds += o.rounds;
    messages += o.messages;
    words += o.words;
    node_steps += o.node_steps;
    dropped += o.dropped;
    duplicated += o.duplicated;
    if (o.max_outbox > max_outbox) max_outbox = o.max_outbox;
    hit_round_limit = hit_round_limit || o.hit_round_limit;
    return *this;
  }
};

}  // namespace dsketch
