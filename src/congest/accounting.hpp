// Round/message/word accounting for simulator runs.
#pragma once

#include <cstdint>

namespace dsketch {

struct SimStats {
  std::uint64_t rounds = 0;        ///< synchronous rounds elapsed
  std::uint64_t messages = 0;      ///< messages transmitted over edges
  std::uint64_t words = 0;         ///< total words across those messages
  std::uint64_t node_steps = 0;    ///< on_round invocations (work measure)
  std::uint64_t max_outbox = 0;    ///< peak per-edge queue depth observed
  bool hit_round_limit = false;    ///< run stopped by max_rounds, not quiescence

  SimStats& operator+=(const SimStats& o) {
    rounds += o.rounds;
    messages += o.messages;
    words += o.words;
    node_steps += o.node_steps;
    if (o.max_outbox > max_outbox) max_outbox = o.max_outbox;
    hit_round_limit = hit_round_limit || o.hit_round_limit;
    return *this;
  }
};

}  // namespace dsketch
