#include "congest/reliable.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dsketch {

void ReliableChannel::send(NodeCtx& ctx, std::uint32_t edge,
                           const Message& payload) {
  EdgeState& e = edges_[edge];
  const std::uint64_t seq = e.send_next++;
  DS_CHECK_MSG(e.send_next <= kSeqMask, "reliable seq space exhausted");
  e.unacked.push_back(payload);
  ++in_flight_;
  transmit(ctx, edge, payload, seq);
  if (e.rto == 0) e.rto = cfg_.rto;
  if (e.retry_at == 0) e.retry_at = ctx.round() + e.rto;
}

void ReliableChannel::transmit(NodeCtx& ctx, std::uint32_t edge,
                               const Message& payload, std::uint64_t seq) {
  EdgeState& e = edges_[edge];
  Message wire = payload;
  wire.push(pack(kTagData, seq, e.recv_next));
  ctx.send(edge, wire);
  e.ack_owed = false;  // the frame carries our cumulative ack
}

void ReliableChannel::consume_ack(std::uint32_t edge, std::uint64_t ack) {
  EdgeState& e = edges_[edge];
  bool progressed = false;
  while (!e.unacked.empty() && e.send_base < ack) {
    e.unacked.pop_front();
    ++e.send_base;
    --in_flight_;
    progressed = true;
  }
  if (progressed) {
    // Fresh evidence the link works: reset the backoff and let maintain()
    // re-arm the timer for whatever is still outstanding.
    e.rto = cfg_.rto;
    e.retry_at = 0;
  }
}

const std::vector<Inbound>& ReliableChannel::receive(
    NodeCtx& ctx, std::span<const Inbound> raw) {
  (void)ctx;
  delivered_.clear();
  for (const Inbound& in : raw) {
    const std::size_t nw = in.msg.size_words();
    DS_CHECK(nw >= 1);
    const Word header = in.msg.at(nw - 1);
    const Word tag = header >> 56;
    EdgeState& e = edges_[in.local_edge];
    consume_ack(in.local_edge, header & kSeqMask);
    if (tag == kTagAck) continue;
    DS_CHECK_MSG(tag == kTagData, "malformed reliable frame");
    const std::uint64_t seq = (header >> 28) & kSeqMask;
    e.ack_owed = true;  // even duplicates need re-acking
    if (seq < e.recv_next) {
      ++redundant_;  // stale retransmission, already delivered
      continue;
    }
    Message payload;
    for (std::size_t i = 0; i + 1 < nw; ++i) payload.push(in.msg.at(i));
    if (seq == e.recv_next) {
      ++e.recv_next;
      delivered_.push_back(Inbound{in.local_edge, payload});
      // Drain any buffered successors that are now in sequence.
      auto it = e.recv_buffer.find(e.recv_next);
      while (it != e.recv_buffer.end()) {
        delivered_.push_back(Inbound{in.local_edge, it->second});
        e.recv_buffer.erase(it);
        ++e.recv_next;
        it = e.recv_buffer.find(e.recv_next);
      }
    } else if (!e.recv_buffer.emplace(seq, payload).second) {
      ++redundant_;  // duplicate of an already-buffered future frame
    }
  }
  return delivered_;
}

void ReliableChannel::maintain(NodeCtx& ctx) {
  const std::uint64_t now = ctx.round();
  std::uint64_t next_check = 0;
  for (std::uint32_t edge = 0; edge < edges_.size(); ++edge) {
    EdgeState& e = edges_[edge];
    if (e.ack_owed) {
      // No reverse frame piggybacked the ack this round: send a pure one.
      ctx.send(edge, Message{pack(kTagAck, 0, e.recv_next)});
      e.ack_owed = false;
    }
    if (e.unacked.empty()) {
      e.retry_at = 0;
      continue;
    }
    if (e.rto == 0) e.rto = cfg_.rto;
    if (e.retry_at == 0) e.retry_at = now + e.rto;
    if (now >= e.retry_at) {
      if (ctx.outbox_depth(edge) == 0) {
        // The base frame (or its ack) was lost in flight; resend it. If
        // the outbox is still draining, the frame may simply be queued
        // behind CONGEST capacity — just push the deadline out.
        transmit(ctx, edge, e.unacked.front(), e.send_base);
        ++retransmits_;
        e.rto = std::min(e.rto * 2, cfg_.max_rto);
      }
      e.retry_at = now + e.rto;
    }
    if (next_check == 0 || e.retry_at < next_check) next_check = e.retry_at;
  }
  if (next_check != 0) ctx.wake_at(next_check);
}

void ReliableChannel::restart(NodeCtx& ctx) {
  // A crash discarded this node's queued outboxes wholesale, so every
  // unacked frame is suspect: go-back-N retransmit the lot (the receiver
  // discards whatever did get through). The cumulative ack in the first
  // reverse frame re-trims the window.
  for (std::uint32_t edge = 0; edge < edges_.size(); ++edge) {
    EdgeState& e = edges_[edge];
    if (e.unacked.empty()) continue;
    std::uint64_t seq = e.send_base;
    for (const Message& payload : e.unacked) {
      Message wire = payload;
      wire.push(pack(kTagData, seq++, e.recv_next));
      ctx.send(edge, wire);
    }
    retransmits_ += e.unacked.size();
    e.rto = cfg_.rto;
    // Allow for outbox drain at one frame per round before retrying.
    e.retry_at = ctx.round() + e.rto + e.unacked.size();
  }
}

}  // namespace dsketch
