#include "congest/echo_termination.hpp"

#include "util/assert.hpp"

namespace dsketch {

std::optional<EchoObligation> EchoTracker::accept_trigger(NodeId source,
                                                          std::uint32_t edge,
                                                          Dist value) {
  std::optional<EchoObligation> superseded;
  const auto it = trigger_.find(source);
  if (it != trigger_.end()) {
    superseded = it->second;
    it->second = EchoObligation{edge, value};
  } else {
    trigger_.emplace(source, EchoObligation{edge, value});
  }
  return superseded;
}

void EchoTracker::commit_send(NodeId source, Dist sent_value,
                              std::uint32_t fanout, bool self_announce) {
  Record rec;
  rec.value = sent_value;
  rec.remaining = fanout;
  rec.self_announce = self_announce;
  rec.has_trigger = false;
  if (!self_announce) {
    const auto it = trigger_.find(source);
    DS_CHECK_MSG(it != trigger_.end(), "send without a live trigger");
    rec.has_trigger = true;
    rec.trigger = it->second;
    trigger_.erase(it);
  }
  if (fanout == 0) {
    // Degenerate isolated node: the record completes instantly.
    if (rec.self_announce) self_done_ = true;
    return;
  }
  records_[source].push_back(rec);
  ++record_count_;
}

std::optional<EchoObligation> EchoTracker::on_echo(NodeId source, Dist value) {
  const auto it = records_.find(source);
  DS_CHECK_MSG(it != records_.end(), "echo without matching record");
  auto& list = it->second;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].value != value) continue;
    DS_CHECK(list[i].remaining > 0);
    if (--list[i].remaining > 0) return std::nullopt;
    const Record done = list[i];
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
    if (list.empty()) records_.erase(it);
    --record_count_;
    if (done.self_announce) {
      self_done_ = true;
      return std::nullopt;
    }
    return done.trigger;
  }
  DS_CHECK_MSG(false, "echo value does not match any outstanding record");
  return std::nullopt;
}

}  // namespace dsketch
