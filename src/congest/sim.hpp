// Event-driven CONGEST-model simulator.
//
// Faithful to §2.2 of the paper:
//   - rounds are synchronous; messages sent in round r arrive in round r+1;
//   - each edge carries at most one message per direction per round
//     (enforced by per-half-edge FIFO outboxes drained at rate 1/round);
//   - messages are word-counted and capped at `max_message_words`.
//
// Scheduling is event-driven over an *activation set*: a node is stepped
// only in rounds where it received a message, was just activated, or
// requested a wake; edges are touched only while their outbox is nonempty;
// idle stretches (timer-only waits) fast-forward the round counter without
// executing anything. Cost per simulated round is proportional to actual
// traffic, never to n or |E|.
//
// Each round runs three phases:
//   1. step    — every active node runs its protocol hook. Hooks touch only
//                node-owned state (inbox, outboxes of outgoing half-edges,
//                per-node wake scratch), so the step fans out over
//                ThreadPool::for_each_dynamic when cfg.threads != 1.
//   2. splice  — half-edges that became busy are appended to the busy list
//                in (active-node, send) order; node-owned wake-at requests
//                are folded into the shared timer wheel. Serial, O(new work).
//   3. deliver — one message per busy half-edge ships (the CONGEST capacity;
//                all of them under the E3 ablation). Synchronous delivery is
//                receiver-pull: each receiving node drains its busy inbound
//                half-edges in local-edge order, so delivery parallelizes
//                over receivers and inbox order is canonical by construction.
//                Asynchronous runs (async_max_delay > 1) deliver serially so
//                the delay RNG consumes draws in transmission order.
//
// Determinism contract: for a fixed graph, protocol, and SimConfig (minus
// `threads`), execution is byte-identical across thread counts and reruns —
// message order, round counts, stats, and round-log samples all match.
// Upheld by: sorted activation sets, sender-ordered busy-edge splice,
// receiver-local-edge inbox order, and fixed-order stat reduction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/round_log.hpp"
#include "util/rng.hpp"

#include "congest/accounting.hpp"
#include "congest/message.hpp"
#include "congest/protocol.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class FaultPlan;
class ThreadPool;

struct SimConfig {
  std::size_t max_message_words = 4;  ///< CONGEST O(log n)-bit budget
  unsigned threads = 1;               ///< worker lanes for node stepping and
                                      ///< delivery: 1 = serial, 0 = the
                                      ///< process-wide pool (hardware
                                      ///< concurrency), N = a private pool
                                      ///< of N lanes. Results are identical
                                      ///< for every value.
  std::uint64_t max_rounds = 200'000'000;
  bool enforce_capacity = true;       ///< ablation switch (E3): when false,
                                      ///< all queued messages ship each round

  /// Asynchrony extension (the paper's §5 future work): each transmitted
  /// message takes a uniform delay in [1, async_max_delay] rounds instead
  /// of exactly 1. Links may reorder (non-FIFO). 1 = synchronous CONGEST.
  /// Deterministic for a fixed seed and protocol.
  std::uint32_t async_max_delay = 1;
  std::uint64_t async_seed = 0x5eedULL;

  /// Observability: labels this run in SimStats (phase breakdowns,
  /// round-limit warnings) and in per-round telemetry. Builders set a
  /// default when the caller left it empty.
  std::string phase;
  /// When non-null, the simulator reports one RoundSample per executed
  /// round (fast-forwarded idle rounds emit nothing). Not owned; must
  /// outlive run().
  obs::RoundLog* round_log = nullptr;

  /// When non-null, fault injection is active: transmissions may be
  /// dropped or duplicated, inboxes reordered, links taken down, and
  /// nodes crashed/restarted per the plan's seeded schedule (see
  /// congest/fault_plan.hpp). Not owned; must outlive run(). The
  /// determinism contract still holds: for a fixed plan, execution is
  /// byte-identical across `threads` values and reruns.
  const FaultPlan* faults = nullptr;
};

class Simulator {
 public:
  Simulator(const Graph& graph, Protocol& protocol, SimConfig cfg = {});
  ~Simulator();

  /// Runs until quiescence (and until on_quiescent returns false) or until
  /// max_rounds. Returns cumulative stats.
  SimStats run();

  /// Re-activates every node; typically called from on_quiescent to start a
  /// new phase. on_start is invoked again for each node.
  void activate_all();

  /// Activates a subset of nodes (on_start is invoked for them).
  void activate(const std::vector<NodeId>& nodes);

  const Graph& graph() const { return graph_; }
  std::uint64_t round() const { return round_; }
  const SimStats& stats() const { return stats_; }

  // -- NodeCtx backing API (treat as private to NodeCtx) --
  std::uint32_t degree_of(NodeId u) const {
    return static_cast<std::uint32_t>(graph_.degree(u));
  }
  NodeId neighbor_of(NodeId u, std::uint32_t local) const {
    return graph_.neighbors(u)[local].to;
  }
  Weight weight_of(NodeId u, std::uint32_t local) const {
    return graph_.neighbors(u)[local].weight;
  }
  std::span<const Inbound> inbox_of(NodeId u) const {
    return {inbox_[u].data(), inbox_[u].size()};
  }
  void enqueue(NodeId u, std::uint32_t local, const Message& m);
  void wake(NodeId u) { wake_flag_[u] = 1; }
  /// Node-owned: requests are banked per node during the (possibly
  /// parallel) step and folded into the shared timer wheel at splice time.
  void schedule_wake(NodeId u, std::uint64_t at_round) {
    if (at_round <= round_) {
      wake_flag_[u] = 1;
    } else {
      wake_at_scratch_[u].push_back(at_round);
    }
  }
  std::size_t outbox_depth(NodeId u, std::uint32_t local) const {
    return outbox_[graph_.half_edge_index(u, local)].size();
  }

 private:
  /// Flat FIFO replacing std::deque: contiguous storage, O(1) amortized
  /// pop via a head cursor, storage reclaimed when drained.
  struct Outbox {
    std::vector<Message> q;
    std::uint32_t head = 0;

    bool empty() const { return head == q.size(); }
    std::size_t size() const { return q.size() - head; }
    void push(const Message& m) { q.push_back(m); }
    Message& front() { return q[head]; }
    void pop() {
      if (++head == q.size()) {
        q.clear();
        head = 0;
      } else if (head >= 64 && head * 2 >= q.size()) {
        q.erase(q.begin(), q.begin() + head);
        head = 0;
      }
    }
  };

  ThreadPool* pool();
  void resolve_twins();
  void step_active_nodes();
  void splice_new_work();
  void deliver();
  void deliver_serial(std::vector<NodeId>& next_active);
  void deliver_parallel(std::vector<NodeId>& next_active);
  void flush_future();
  void apply_fault_events();
  void crash_node(NodeId u);

  const Graph& graph_;
  Protocol& protocol_;
  SimConfig cfg_;

  std::uint64_t round_ = 0;
  SimStats stats_;

  // Per half-edge h = (u, local): FIFO of queued messages, plus the twin
  // half-edge's (receiver, receiver-local) coordinates.
  std::vector<Outbox> outbox_;
  std::vector<NodeId> head_;                  // receiver node of half-edge
  std::vector<std::uint32_t> head_local_;     // receiver's local edge index

  std::vector<std::vector<Inbound>> inbox_;   // per node, current round
  // Deliveries scheduled for future rounds (async_max_delay > 1).
  struct PendingDelivery {
    NodeId to;
    std::uint32_t to_local;
    Message msg;
  };
  std::map<std::uint64_t, std::vector<PendingDelivery>> future_;
  std::map<std::uint64_t, std::vector<NodeId>> wake_schedule_;
  Rng delay_rng_{0};
  std::vector<char> wake_flag_;               // set via NodeCtx::wake
  // Node-owned scratch filled during the parallel step, folded serially.
  std::vector<std::vector<std::uint64_t>> wake_at_scratch_;
  std::vector<std::vector<std::uint32_t>> dirty_local_;  // newly busy sends
  std::vector<char> start_pending_;           // on_start owed to node
  std::vector<char> in_active_list_;
  std::vector<NodeId> active_;                // nodes to step this round
  std::vector<std::size_t> busy_edges_;       // half-edges with queued msgs
  std::vector<char> edge_busy_flag_;

  // Receiver-pull delivery scratch (reused across rounds).
  std::vector<NodeId> ready_;                 // receivers with busy inbound
  std::vector<char> ready_flag_;
  std::vector<std::uint32_t> pull_count_;     // busy inbound edges per rcvr
  std::vector<std::size_t> pull_edges_;       // grouped by receiver
  std::vector<std::uint32_t> pull_offset_;    // group starts, aligned w/ ready_
  struct ReceiverDelta {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t max_depth = 0;
    std::uint64_t delivered = 0;   // messages that actually reached the inbox
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::vector<PendingDelivery> dups;  // fault copies, folded serially
  };
  std::vector<ReceiverDelta> deltas_;

  // Fault-injection state (only allocated when cfg.faults != nullptr).
  // All mutations happen in serial phases (apply_fault_events, flush,
  // reductions) except send_seq_, which is advanced inside delivery —
  // safe because each half-edge is drained by exactly one lane.
  const FaultPlan* faults_ = nullptr;
  std::vector<char> down_;                    // node currently crashed
  std::vector<char> restart_pending_;         // on_restart owed to node
  std::vector<std::uint64_t> restart_round_;  // valid while down_[u]
  std::vector<std::uint64_t> send_seq_;       // transmissions per half-edge
  struct FaultEvent {
    std::uint64_t round;
    NodeId node;
    bool restart;
    std::uint64_t restart_at = 0;  // for crash events: the paired restart
  };
  std::vector<FaultEvent> fault_events_;      // sorted by round
  std::size_t next_fault_event_ = 0;

  std::unique_ptr<ThreadPool> own_pool_;      // cfg.threads not in {0, 1}
};

}  // namespace dsketch
