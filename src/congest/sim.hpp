// Synchronous CONGEST-model simulator.
//
// Faithful to §2.2 of the paper:
//   - rounds are synchronous; messages sent in round r arrive in round r+1;
//   - each edge carries at most one message per direction per round
//     (enforced by per-half-edge FIFO outboxes drained at rate 1/round);
//   - messages are word-counted and capped at `max_message_words`.
//
// Efficiency: the simulator is event-driven over an *active set*. A node is
// stepped only in rounds where it received a message, was just activated, or
// requested a wake; edges are touched only while their outbox is nonempty.
// Cost per round is therefore proportional to actual traffic, while the
// round counter still advances exactly once per simulated round.
//
// Determinism: node steps may run on a thread pool (cfg.threads != 1) —
// hooks only mutate node-owned state and node-owned outboxes. Delivery is
// performed serially and inboxes are sorted by receiving edge index, so the
// execution is bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/round_log.hpp"
#include "util/rng.hpp"

#include "congest/accounting.hpp"
#include "congest/message.hpp"
#include "congest/protocol.hpp"
#include "graph/graph.hpp"

namespace dsketch {

struct SimConfig {
  std::size_t max_message_words = 4;  ///< CONGEST O(log n)-bit budget
  unsigned threads = 1;               ///< 0 = hardware concurrency
  std::uint64_t max_rounds = 200'000'000;
  bool enforce_capacity = true;       ///< ablation switch (E3): when false,
                                      ///< all queued messages ship each round

  /// Asynchrony extension (the paper's §5 future work): each transmitted
  /// message takes a uniform delay in [1, async_max_delay] rounds instead
  /// of exactly 1. Links may reorder (non-FIFO). 1 = synchronous CONGEST.
  /// Deterministic for a fixed seed and protocol.
  std::uint32_t async_max_delay = 1;
  std::uint64_t async_seed = 0x5eedULL;

  /// Observability: labels this run in SimStats (phase breakdowns,
  /// round-limit warnings) and in per-round telemetry. Builders set a
  /// default when the caller left it empty.
  std::string phase;
  /// When non-null, the simulator reports one RoundSample per executed
  /// round (fast-forwarded idle rounds emit nothing). Not owned; must
  /// outlive run().
  obs::RoundLog* round_log = nullptr;
};

class Simulator {
 public:
  Simulator(const Graph& graph, Protocol& protocol, SimConfig cfg = {});

  /// Runs until quiescence (and until on_quiescent returns false) or until
  /// max_rounds. Returns cumulative stats.
  SimStats run();

  /// Re-activates every node; typically called from on_quiescent to start a
  /// new phase. on_start is invoked again for each node.
  void activate_all();

  /// Activates a subset of nodes (on_start is invoked for them).
  void activate(const std::vector<NodeId>& nodes);

  const Graph& graph() const { return graph_; }
  std::uint64_t round() const { return round_; }
  const SimStats& stats() const { return stats_; }

  // -- NodeCtx backing API (treat as private to NodeCtx) --
  std::uint32_t degree_of(NodeId u) const {
    return static_cast<std::uint32_t>(graph_.degree(u));
  }
  NodeId neighbor_of(NodeId u, std::uint32_t local) const {
    return graph_.neighbors(u)[local].to;
  }
  Weight weight_of(NodeId u, std::uint32_t local) const {
    return graph_.neighbors(u)[local].weight;
  }
  std::span<const Inbound> inbox_of(NodeId u) const {
    return {inbox_[u].data(), inbox_[u].size()};
  }
  void enqueue(NodeId u, std::uint32_t local, Message m);
  void wake(NodeId u) { wake_flag_[u] = 1; }
  void schedule_wake(NodeId u, std::uint64_t at_round) {
    if (at_round <= round_) {
      wake_flag_[u] = 1;
    } else {
      wake_schedule_[at_round].push_back(u);
    }
  }
  std::size_t outbox_depth(NodeId u, std::uint32_t local) const {
    return outbox_[graph_.half_edge_index(u, local)].size();
  }

 private:
  void step_active_nodes();
  void deliver();
  void flush_future();

  const Graph& graph_;
  Protocol& protocol_;
  SimConfig cfg_;

  std::uint64_t round_ = 0;
  SimStats stats_;

  // Per half-edge h = (u, local): FIFO of queued messages, plus the twin
  // half-edge's (receiver, receiver-local) coordinates.
  std::vector<std::deque<Message>> outbox_;
  std::vector<NodeId> head_;                  // receiver node of half-edge
  std::vector<std::uint32_t> head_local_;     // receiver's local edge index

  std::vector<std::vector<Inbound>> inbox_;   // per node, current round
  // Deliveries scheduled for future rounds (async_max_delay > 1).
  struct PendingDelivery {
    NodeId to;
    std::uint32_t to_local;
    Message msg;
  };
  std::map<std::uint64_t, std::vector<PendingDelivery>> future_;
  std::map<std::uint64_t, std::vector<NodeId>> wake_schedule_;
  Rng delay_rng_{0};
  std::vector<char> wake_flag_;               // set via NodeCtx::wake
  std::vector<char> start_pending_;           // on_start owed to node
  std::vector<char> in_active_list_;
  std::vector<NodeId> active_;                // nodes to step this round
  std::vector<std::size_t> busy_edges_;       // half-edges with queued msgs
  std::vector<char> edge_busy_flag_;
};

}  // namespace dsketch
