// Reliable link layer for CONGEST protocols under fault injection.
//
// FaultPlan (fault_plan.hpp) can drop, duplicate, and reorder messages and
// crash nodes. Rather than weaving loss tolerance through every protocol's
// logic, a ReliableChannel restores the fault-free link abstraction
// underneath an unmodified protocol: exactly-once, in-order delivery per
// (directed) edge, repaired by timeout-based retransmission.
//
// Mechanism (one extra header word per frame — the classic seq/ack scheme
// squeezed into the CONGEST word budget):
//   - every payload gets a per-edge sequence number; the sender keeps
//     unacknowledged payloads buffered ("stable storage": the buffer
//     survives node crashes, matching the fail-recover model);
//   - every frame — data or pure ACK — carries the receiver's cumulative
//     ack (the next sequence it has not yet delivered), so acks piggyback
//     on reverse traffic and cost a dedicated message only on silent edges;
//   - the receiver delivers in order, buffering out-of-sequence frames and
//     discarding duplicates/stale retransmissions;
//   - on timeout (exponential backoff, rto ... max_rto) the sender
//     retransmits the base (oldest unacked) frame; the cumulative ack then
//     re-synchronizes the window. Timeouts use NodeCtx::wake_at, so an idle
//     network fast-forwards straight to the retry round.
//
// A node crash loses its queued outboxes and undelivered inbox; because the
// unacked buffer is part of protocol state, the first maintain() after
// restart retransmits and the link heals. Everything here is node-owned
// state touched only from that node's protocol hooks, so it is safe under
// the simulator's parallel stepping, and it consumes no randomness — runs
// stay byte-identical across thread counts and replayable from the fault
// seed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "congest/protocol.hpp"

namespace dsketch {

struct ReliableConfig {
  std::uint64_t rto = 16;       ///< initial retransmit timeout, in rounds
  std::uint64_t max_rto = 1024; ///< exponential backoff ceiling
};

/// Per-node reliable transport over all incident edges. Usage, inside the
/// owning protocol's hooks (all methods touch only this node's state):
///   on_round:  auto& delivered = ch.receive(ctx, ctx.inbox());
///              ... dispatch delivered ...; ... sends via ch.send(...) ...;
///              ch.maintain(ctx);   // acks, retransmits, timer re-arm
class ReliableChannel {
 public:
  ReliableChannel() = default;
  ReliableChannel(std::uint32_t degree, ReliableConfig cfg)
      : cfg_(cfg), edges_(degree) {}

  /// Queues `payload` for exactly-once in-order delivery on `edge`.
  /// Appends the header word: payload must leave one word of the
  /// simulator's max_message_words budget free.
  void send(NodeCtx& ctx, std::uint32_t edge, const Message& payload);

  /// Processes a round's raw inbox: consumes acks, discards duplicates,
  /// reorders to sequence. Returns the in-order payload deliveries (the
  /// reference stays valid until the next receive call on this channel).
  const std::vector<Inbound>& receive(NodeCtx& ctx,
                                      std::span<const Inbound> raw);

  /// Flushes owed acks, retransmits timed-out base frames, and re-arms the
  /// retry timer. Call at the end of every hook that ran receive/send.
  void maintain(NodeCtx& ctx);

  /// Post-crash recovery: the simulator discarded this node's queued
  /// outboxes, so go-back-N retransmit every unacked frame. Call from
  /// Protocol::on_restart before resuming normal rounds.
  void restart(NodeCtx& ctx);

  /// True when every frame ever sent has been acknowledged.
  bool idle() const { return in_flight_ == 0; }

  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t redundant_discards() const { return redundant_; }

 private:
  // Header word layout: | tag : 8 | seq : 28 | ack : 28 |.
  static constexpr Word kSeqMask = (Word{1} << 28) - 1;
  static constexpr Word kTagData = 1;  // payload frame
  static constexpr Word kTagAck = 2;   // header-only cumulative ack
  static Word pack(Word tag, std::uint64_t seq, std::uint64_t ack) {
    return (tag << 56) | ((seq & kSeqMask) << 28) | (ack & kSeqMask);
  }

  struct EdgeState {
    std::deque<Message> unacked;   // payloads; front has sequence send_base
    std::uint64_t send_base = 0;
    std::uint64_t send_next = 0;
    std::uint64_t recv_next = 0;   // next sequence to deliver = cumulative ack
    std::map<std::uint64_t, Message> recv_buffer;  // out-of-order frames
    std::uint64_t rto = 0;         // current backoff (0 = cfg default)
    std::uint64_t retry_at = 0;    // next retransmit round (0 = unarmed)
    bool ack_owed = false;         // data received, ack not yet piggybacked
  };

  void transmit(NodeCtx& ctx, std::uint32_t edge, const Message& payload,
                std::uint64_t seq);
  void consume_ack(std::uint32_t edge, std::uint64_t ack);

  ReliableConfig cfg_;
  std::vector<EdgeState> edges_;
  std::vector<Inbound> delivered_;   // reused scratch returned by receive
  std::uint64_t in_flight_ = 0;      // total unacked frames across edges
  std::uint64_t retransmits_ = 0;
  std::uint64_t redundant_ = 0;
};

}  // namespace dsketch
