// Distributed Bellman–Ford protocols (paper §3.2, Algorithm 1).
//
// Three variants used as substrates by the sketch constructions:
//
//  - MultiSourceBellmanFord ("k-Source Shortest Paths", [PK09]): every node
//    learns its exact distance to every source. Messages are <source, dist>
//    pairs; per-node pending queues are drained round-robin, exactly like
//    Algorithm 2 but with no bunch gate. Used by the ε-slack sketches
//    (Theorem 4.3: distances to all density-net nodes) and by tests.
//
//  - SuperSourceBellmanFord: all sources start at distance 0 as one virtual
//    "super node" (§4, Lemma 4.5); every node learns (d(u,N), owner, parent
//    edge) where owner is the nearest source under (dist, id) keys. The
//    parent edges form the Voronoi forest used to disseminate net-node
//    labels for the CDG sketches.
//
//  - online_distance_rounds: measures the rounds a no-preprocessing online
//    distance query costs (single-source BF until global convergence),
//    the Ω(S) baseline of §2.1 benchmarked in E8.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "congest/accounting.hpp"
#include "congest/sim.hpp"
#include "graph/graph.hpp"

namespace dsketch {

struct MultiSourceBfResult {
  /// dist[u] maps each discovered source to the exact distance from u.
  std::vector<std::unordered_map<NodeId, Dist>> dist;
  SimStats stats;
};

/// Every node learns its distance to every node in `sources`.
MultiSourceBfResult run_multi_source_bf(const Graph& g,
                                        const std::vector<NodeId>& sources,
                                        SimConfig cfg = {});

struct SuperSourceBfResult {
  std::vector<Dist> dist;        ///< d(u, sources)
  std::vector<NodeId> owner;     ///< nearest source under (dist, id) keys
  std::vector<std::uint32_t> parent_edge;  ///< local edge toward owner;
                                           ///< kNoParent at sources
  std::vector<std::vector<std::uint32_t>> child_edges;  ///< Voronoi children
  SimStats stats;

  static constexpr std::uint32_t kNoParent = static_cast<std::uint32_t>(-1);
};

/// Single virtual source spanning `sources`; also performs the child-claim
/// round so every node knows its Voronoi-tree children.
SuperSourceBfResult run_super_source_bf(const Graph& g,
                                        const std::vector<NodeId>& sources,
                                        SimConfig cfg = {});

/// Rounds for one online distance computation from `source` with no
/// preprocessing (distributed Bellman-Ford run to completion). This is the
/// cost any ping/Bellman-Ford/Dijkstra style query pays: at least S rounds
/// in the worst case.
SimStats online_distance_rounds(const Graph& g, NodeId source,
                                SimConfig cfg = {});

}  // namespace dsketch
