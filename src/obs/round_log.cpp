#include "obs/round_log.hpp"

#include <utility>

#include "util/json_lines.hpp"

namespace dsketch::obs {

RoundLog::RoundLog(std::ostream& out) : RoundLog(out, Options{}) {}

RoundLog::RoundLog(std::ostream& out, Options opts)
    : out_(out), opts_(std::move(opts)) {}

void RoundLog::begin_phase(const std::string& phase) {
  flush();
  phase_ = phase.empty() ? "sim" : phase;
  stride_ = 1;
  phase_lines_ = 0;
}

void RoundLog::record(const RoundSample& s) {
  if (win_rounds_ == 0) win_first_round_ = s.round;
  win_last_round_ = s.round;
  ++win_rounds_;
  win_messages_ += s.messages;
  win_words_ += s.words;
  win_dropped_ += s.dropped;
  if (s.active_nodes > win_active_max_) win_active_max_ = s.active_nodes;
  if (s.max_outbox > win_outbox_max_) win_outbox_max_ = s.max_outbox;
  if (win_rounds_ >= stride_) emit_window();
}

void RoundLog::flush() {
  if (win_rounds_ > 0) emit_window();
}

void RoundLog::emit_window() {
  bench::JsonLine line;
  line.add("experiment", opts_.experiment)
      .add("table", opts_.table)
      .add("phase", phase_)
      .add("round", win_first_round_)
      .add("round_end", win_last_round_)
      .add("rounds_in_window", win_rounds_)
      .add("messages", win_messages_)
      .add("words", win_words_)
      .add("active_nodes", win_active_max_)
      .add("max_outbox", win_outbox_max_)
      .add("dropped", win_dropped_);
  line.emit(out_);
  ++phase_lines_;
  ++total_lines_;
  win_rounds_ = 0;
  win_messages_ = 0;
  win_words_ = 0;
  win_dropped_ = 0;
  win_active_max_ = 0;
  win_outbox_max_ = 0;
  // Budget reached: coarsen future windows so a phase of any length
  // fits in O(budget · log rounds) lines.
  if (opts_.max_lines_per_phase != 0 &&
      phase_lines_ >= opts_.max_lines_per_phase) {
    stride_ *= 2;
    phase_lines_ = 0;
  }
}

}  // namespace dsketch::obs
