// Per-round CONGEST telemetry sink (ROADMAP item 4 down payment).
//
// The simulator reports one RoundSample per executed round; RoundLog
// turns the stream into JSON lines in the harness schema (stable
// `experiment`/`table` keys) without letting a long run flood the
// artifact: samples are aggregated into windows whose stride doubles
// each time the per-phase line budget is reached, so the full trajectory
// is preserved (sums of messages/words, maxima of active/outbox) at
// logarithmically coarsening resolution — never truncated.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace dsketch::obs {

/// One executed simulator round, as deltas (messages/words transmitted
/// this round) plus instantaneous gauges.
struct RoundSample {
  std::uint64_t round = 0;         ///< round index just executed
  std::uint64_t messages = 0;      ///< messages shipped this round
  std::uint64_t words = 0;         ///< words shipped this round
  std::uint64_t active_nodes = 0;  ///< nodes stepped this round
  std::uint64_t max_outbox = 0;    ///< peak queue depth so far
  std::uint64_t dropped = 0;       ///< transmissions lost to fault injection
};

class RoundLog {
 public:
  struct Options {
    std::string experiment = "congest";
    std::string table = "congest_rounds";
    /// Line budget per phase before the window stride doubles.
    /// 0 means unlimited (one line per round).
    std::uint64_t max_lines_per_phase = 64;
  };

  explicit RoundLog(std::ostream& out);
  RoundLog(std::ostream& out, Options opts);

  /// Starts (or restarts) a phase: flushes any pending window and
  /// resets the stride. The simulator calls this with SimConfig::phase.
  void begin_phase(const std::string& phase);

  /// Accumulates one round into the current window; emits a line when
  /// the window reaches the current stride.
  void record(const RoundSample& s);

  /// Emits the pending partial window, if any (phase/run end).
  void flush();

  std::uint64_t lines_emitted() const { return total_lines_; }

 private:
  void emit_window();

  std::ostream& out_;
  Options opts_;
  std::string phase_ = "sim";
  std::uint64_t stride_ = 1;       // rounds per emitted line
  std::uint64_t phase_lines_ = 0;  // lines emitted this phase
  std::uint64_t total_lines_ = 0;
  // Current window accumulator.
  std::uint64_t win_rounds_ = 0;
  std::uint64_t win_first_round_ = 0;
  std::uint64_t win_last_round_ = 0;
  std::uint64_t win_messages_ = 0;
  std::uint64_t win_words_ = 0;
  std::uint64_t win_active_max_ = 0;
  std::uint64_t win_outbox_max_ = 0;
  std::uint64_t win_dropped_ = 0;
};

}  // namespace dsketch::obs
