#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <string>

namespace dsketch::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The installed session, behind a plain mutex. A mutex (rather than
// std::atomic<shared_ptr>) because libstdc++'s atomic shared_ptr guards
// its pointer with an embedded spinlock TSan cannot see through, so the
// sanitizer job would flag every start()/active() pair; the lock is only
// taken when tracing is enabled (the disabled fast path never gets
// here), and enabled spans already serialize on the event-buffer mutex.
// Function-local static so instrumented code in other translation units
// is safe during static init/teardown.
struct ActiveSlot {
  std::mutex mu;
  std::shared_ptr<TraceSession> session;
};

ActiveSlot& active_slot() {
  static ActiveSlot slot;
  return slot;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

std::atomic<bool> TraceSession::enabled_flag_{false};

TraceSession::TraceSession(std::size_t max_events)
    : max_events_(max_events), epoch_ns_(steady_ns()) {
  events_.reserve(max_events_ < 4096 ? max_events_ : 4096);
}

std::shared_ptr<TraceSession> TraceSession::start(std::size_t max_events) {
  auto session = std::make_shared<TraceSession>(max_events);
  ActiveSlot& slot = active_slot();
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.session = session;
  }
  enabled_flag_.store(true, std::memory_order_relaxed);
  return session;
}

std::shared_ptr<TraceSession> TraceSession::stop() {
  enabled_flag_.store(false, std::memory_order_relaxed);
  ActiveSlot& slot = active_slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  return std::move(slot.session);
}

std::shared_ptr<TraceSession> TraceSession::active() {
  if (!enabled()) return nullptr;
  ActiveSlot& slot = active_slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.session;
}

std::uint64_t TraceSession::now_ns() const {
  const std::uint64_t now = steady_ns();
  return now > epoch_ns_ ? now - epoch_ns_ : 0;
}

std::uint32_t TraceSession::thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSession::add_event(const Event& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(ev);
}

void TraceSession::add_complete(const char* name, std::uint64_t start_ns,
                                std::uint64_t dur_ns, std::uint64_t value,
                                bool has_value) {
  add_event(Event{name, start_ns, dur_ns, value, thread_id(), 'X',
                  has_value});
}

void TraceSession::add_counter(const char* name, std::uint64_t value) {
  add_event(Event{name, now_ns(), 0, value, thread_id(), 'C', true});
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSession::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const Event& ev : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(ev.name)
        << "\",\"cat\":\"dsketch\",\"ph\":\"" << ev.phase
        << "\",\"pid\":1,\"tid\":" << ev.tid;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ev.start_ns) / 1000.0);
    out << ",\"ts\":" << buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out << ",\"dur\":" << buf;
    }
    if (ev.phase == 'C') {
      out << ",\"args\":{\"value\":" << ev.value << "}";
    } else if (ev.has_value) {
      out << ",\"args\":{\"v\":" << ev.value << "}";
    }
    out << "}";
  }
  out << "]}\n";
}

void Span::open(const char* name, std::uint64_t value, bool has_value) {
  session_ = TraceSession::active();
  if (!session_) return;
  name_ = name;
  value_ = value;
  has_value_ = has_value;
  start_ns_ = session_->now_ns();
}

void Span::close() {
  const std::uint64_t end = session_->now_ns();
  session_->add_complete(name_, start_ns_,
                         end > start_ns_ ? end - start_ns_ : 0, value_,
                         has_value_);
  session_.reset();
}

void trace_counter(const char* name, std::uint64_t value) {
  if (!TraceSession::enabled()) return;
  const std::shared_ptr<TraceSession> s = TraceSession::active();
  if (s) s->add_counter(name, value);
}

}  // namespace dsketch::obs
