// Chrome trace-event tracing: RAII spans + counter events, loadable in
// Perfetto / chrome://tracing.
//
// Enablement model: a single process-wide session installed via
// TraceSession::start(). The disabled fast path is one relaxed atomic
// bool load per probe — no allocation, no shared_ptr traffic — so
// instrumentation can live on hot-ish paths (per-shard slices, per-miss
// oracle queries) without measurable cost when tracing is off; the
// `obs_overhead` bench rows track that claim.
//
// Lifetime: Span holds a shared_ptr to its session, so a session
// stopped (or replaced) while spans are still open on other threads
// stays alive until the last span closes. Events recorded after stop()
// land in the detached session's buffer and still serialize if the
// caller kept the pointer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace dsketch::obs {

class TraceSession {
 public:
  /// One trace event. `name` must be a string with static storage
  /// duration (instrumentation passes literals); events are fixed-size
  /// PODs so the buffer is a flat vector.
  struct Event {
    const char* name;
    std::uint64_t start_ns;  ///< relative to session start
    std::uint64_t dur_ns;    ///< complete events only
    std::uint64_t value;     ///< span arg or counter value
    std::uint32_t tid;       ///< per-session sequential thread id
    char phase;              ///< 'X' complete span, 'C' counter
    bool has_value;
  };

  explicit TraceSession(std::size_t max_events = 1 << 18);

  /// Creates a session and installs it as the process-wide active one
  /// (replacing any previous session, which stays valid for readers).
  static std::shared_ptr<TraceSession> start(std::size_t max_events = 1 << 18);

  /// Uninstalls and returns the active session (nullptr if none).
  static std::shared_ptr<TraceSession> stop();

  /// The active session, or nullptr. One relaxed load when disabled.
  static std::shared_ptr<TraceSession> active();
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since session start (steady clock).
  std::uint64_t now_ns() const;

  void add_complete(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint64_t value,
                    bool has_value);
  void add_counter(const char* name, std::uint64_t value);

  /// {"traceEvents":[...]} — the subset of the Chrome trace-event JSON
  /// format Perfetto ingests. Timestamps are microseconds (fractional).
  void write_chrome_trace(std::ostream& out) const;

  std::size_t event_count() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Stable small id for the calling thread, assigned on first use
  /// process-wide (not per session: ids must not collide when sessions
  /// overlap with long-lived pool threads).
  static std::uint32_t thread_id();

 private:
  void add_event(const Event& ev);

  static std::atomic<bool> enabled_flag_;

  const std::size_t max_events_;
  std::uint64_t epoch_ns_;  // steady_clock origin for this session
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII scope producing one complete ('X') event on destruction.
/// Constructing with tracing disabled costs one relaxed load.
class Span {
 public:
  explicit Span(const char* name) {
    if (TraceSession::enabled()) open(name, 0, false);
  }
  Span(const char* name, std::uint64_t value) {
    if (TraceSession::enabled()) open(name, value, true);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (session_) close();
  }

 private:
  void open(const char* name, std::uint64_t value, bool has_value);
  void close();

  std::shared_ptr<TraceSession> session_{};
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t value_ = 0;
  bool has_value_ = false;
};

/// Emits a 'C' counter sample into the active session (no-op when
/// tracing is disabled).
void trace_counter(const char* name, std::uint64_t value);

}  // namespace dsketch::obs
