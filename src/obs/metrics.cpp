#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <ostream>

#include "util/json_lines.hpp"

namespace dsketch::obs {

namespace {

std::uint64_t d_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_d(std::uint64_t u) { return std::bit_cast<double>(u); }

}  // namespace

void LatencyHistogram::fetch_add_d(std::atomic<std::uint64_t>& bits,
                                   double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(cur, d_bits(bits_d(cur) + v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::fetch_min_d(std::atomic<std::uint64_t>& bits,
                                   double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (bits_d(cur) > v &&
         !bits.compare_exchange_weak(cur, d_bits(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::fetch_max_d(std::atomic<std::uint64_t>& bits,
                                   double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (bits_d(cur) < v &&
         !bits.compare_exchange_weak(cur, d_bits(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::size_t LatencyHistogram::bucket_of(double v) {
  if (!(v >= kMinValue)) return 0;  // also catches NaN and non-positives
  if (v >= kMaxValue) return kBuckets - 1;
  const std::uint64_t bits = d_bits(v);
  const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  const std::uint64_t sub = (bits >> (52 - kSubBits)) & (kSubBuckets - 1);
  return (static_cast<std::size_t>(exp - kMinExp) << kSubBits) |
         static_cast<std::size_t>(sub);
}

double LatencyHistogram::bucket_value(std::size_t b) {
  const int exp = kMinExp + static_cast<int>(b >> kSubBits);
  const double sub = static_cast<double>(b & (kSubBuckets - 1));
  // Arithmetic midpoint of [lo, hi) where the bucket spans one
  // sub-bucket of the octave [2^exp, 2^(exp+1)).
  return std::ldexp(1.0 + (sub + 0.5) / kSubBuckets, exp);
}

void LatencyHistogram::record(double v) {
  if (!(v > 0.0)) v = kMinValue;  // clamp zeros/negatives/NaN, keep the count
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  fetch_add_d(sum_bits_, v);
  fetch_min_d(min_bits_, v);
  fetch_max_d(max_bits_, v);
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  const std::uint64_t oc = o.count();
  if (oc == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = o.buckets_[b].load(std::memory_order_relaxed);
    if (c) buckets_[b].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(oc, std::memory_order_relaxed);
  fetch_add_d(sum_bits_, o.sum());
  fetch_min_d(min_bits_, o.min());
  fetch_max_d(max_bits_, o.max());
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(kPosInfBits, std::memory_order_relaxed);
  max_bits_.store(kNegInfBits, std::memory_order_relaxed);
}

double LatencyHistogram::percentile(double pct) const {
  const std::uint64_t c = count();
  if (c == 0) return 0.0;
  // Same convention as percentile_sorted: fractional rank over count-1,
  // linearly interpolated between the two straddled order statistics
  // (each read off as its bucket's representative). Without the
  // interpolation, small sample counts would disagree with the exact
  // percentile by far more than the bucket error.
  const double target = std::min(std::max(pct, 0.0), 100.0) / 100.0 *
                        static_cast<double>(c - 1);
  const auto lo_rank = static_cast<std::uint64_t>(target);
  const double frac = target - static_cast<double>(lo_rank);
  double lo = 0.0;
  double hi = 0.0;
  bool have_lo = false;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t bc = buckets_[b].load(std::memory_order_relaxed);
    if (bc == 0) continue;
    cum += bc;
    if (!have_lo && cum >= lo_rank + 1) {
      lo = bucket_value(b);
      have_lo = true;
    }
    if (cum >= lo_rank + 2) {
      hi = bucket_value(b);
      const double v = lo + frac * (hi - lo);
      // Exact extremes beat the bucket representatives at the edges.
      return std::min(std::max(v, min()), max());
    }
  }
  // lo_rank is the last sample: nothing above it to interpolate toward.
  return max();
}

Summary LatencyHistogram::summary() const {
  Summary s;
  s.count = static_cast<std::size_t>(count());
  if (s.count == 0) return s;
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.p50 = percentile(50);
  s.p95 = percentile(95);
  s.p99 = percentile(99);
  // Variance from bucket midpoints (the only approximate moment here).
  double m2 = 0.0;
  std::uint64_t n = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t bc = buckets_[b].load(std::memory_order_relaxed);
    if (bc == 0) continue;
    const double d = bucket_value(b) - s.mean;
    m2 += static_cast<double>(bc) * d * d;
    n += bc;
  }
  if (n > 1) s.stddev = std::sqrt(m2 / static_cast<double>(n - 1));
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    bench::JsonLine line;
    line.add("metric", name).add("kind", "counter").add("value", c->value());
    line.emit(out);
  }
  for (const auto& [name, g] : gauges_) {
    bench::JsonLine line;
    line.add("metric", name).add("kind", "gauge").add("value", g->value());
    line.emit(out);
  }
  for (const auto& [name, h] : histograms_) {
    const Summary s = h->summary();
    bench::JsonLine line;
    line.add("metric", name)
        .add("kind", "histogram")
        .add("count", static_cast<std::uint64_t>(s.count))
        .add("mean", s.mean)
        .add("min", s.min)
        .add("p50", s.p50)
        .add("p95", s.p95)
        .add("p99", s.p99)
        .add("max", s.max);
    line.emit(out);
  }
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const auto& [name, c] : counters_) {
    out << "# TYPE " << name << " counter\n"
        << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "# TYPE " << name << " gauge\n"
        << name << " " << num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Summary s = h->summary();
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << num(s.p50) << "\n";
    out << name << "{quantile=\"0.95\"} " << num(s.p95) << "\n";
    out << name << "{quantile=\"0.99\"} " << num(s.p99) << "\n";
    out << name << "_sum " << num(h->sum()) << "\n";
    out << name << "_count " << s.count << "\n";
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dsketch::obs
