// Minimal reader for the Chrome trace-event JSON this repo emits, plus
// a span-nesting validator.
//
// Not a general JSON library: it parses the full JSON grammar but only
// retains the event fields the tests and bench verifiers need
// (name/ph/tid/ts/dur/args.value). Used by obs_trace_test to round-trip
// TraceSession output and by bench_e14_dynamic to assert that spans
// recorded across hot-swaps nest properly per thread.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace dsketch::obs {

struct ParsedEvent {
  std::string name;
  char ph = '?';
  std::uint32_t tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  bool has_dur = false;
  double arg_value = 0;
  bool has_arg_value = false;
};

/// Parses `{"traceEvents":[...]}`. Throws std::runtime_error on
/// malformed JSON or a missing traceEvents array.
std::vector<ParsedEvent> parse_chrome_trace(std::istream& in);
std::vector<ParsedEvent> parse_chrome_trace(const std::string& text);

/// Checks that complete ('X') spans form a forest per thread: any two
/// spans on one tid are either disjoint or one contains the other.
/// Returns "" when well-formed, else a one-line description of the
/// first violation.
std::string check_span_nesting(const std::vector<ParsedEvent>& events);

}  // namespace dsketch::obs
