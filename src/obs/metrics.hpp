// Observability metrics core: counters, gauges, and a fixed-memory
// log-bucketed latency histogram.
//
// The histogram is the load-bearing piece: the serving tier records one
// sample per shard slice under sustained load, so the container must be
//   - fixed memory (no unbounded sample vectors),
//   - lock-free on the record path (relaxed std::atomic buckets),
//   - mergeable, so per-shard/per-thread instances roll up at stats()
//     time without a stop-the-world pause.
//
// Bucketing is log-linear over the IEEE-754 representation: the bucket
// index is (exponent, top kSubBits mantissa bits), i.e. 2^kSubBits
// equal-width sub-buckets per octave. Reporting the arithmetic midpoint
// of a bucket bounds the relative error by 1 / 2^(kSubBits+1) ≈ 0.78%
// for kSubBits = 6 — comfortably inside the ~1% design target and the
// 2% acceptance bound, at ~30 KiB per histogram.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.hpp"

namespace dsketch::obs {

/// Monotonic (by convention) event count. set() exists for pull-model
/// exporters that copy an externally-maintained total into the registry.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time double value (generation number, hit rate, qps, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-memory log-bucketed histogram; see file comment for the design.
/// All mutating entry points are safe to call concurrently; snapshots
/// (summary/percentile/merge-from) read with relaxed loads and are
/// linearizable per bucket, not across buckets — good enough for
/// monitoring, and exactly the contract the TSan test pins down.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 6;                    ///< sub-buckets/octave
  static constexpr int kSubBuckets = 1 << kSubBits;     ///< 64
  static constexpr int kMinExp = -20;                   ///< ~9.5e-7
  static constexpr int kMaxExp = 40;                    ///< ~1.1e12
  static constexpr double kMinValue = 0x1p-20;
  static constexpr double kMaxValue = 0x1p40;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) << kSubBits;  // 3840

  LatencyHistogram() = default;
  // Copyable so aggregates holding one stay movable/copyable; the copy is
  // a relaxed-load snapshot (same per-bucket consistency as summary()).
  LatencyHistogram(const LatencyHistogram& o) { merge(o); }
  LatencyHistogram& operator=(const LatencyHistogram& o) {
    if (this != &o) {
      reset();
      merge(o);
    }
    return *this;
  }

  /// Records one sample. Non-positive and NaN inputs clamp to the lowest
  /// bucket (latencies are positive; a 0 from timer quantization should
  /// count, not vanish).
  void record(double v);

  /// Folds another histogram's relaxed-load snapshot into this one.
  void merge(const LatencyHistogram& o);

  void reset();

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return load_d(sum_bits_); }
  double mean() const {
    const std::uint64_t c = count();
    return c ? sum() / static_cast<double>(c) : 0.0;
  }
  double min() const { return count() ? load_d(min_bits_) : 0.0; }
  double max() const { return count() ? load_d(max_bits_) : 0.0; }

  /// Percentile estimate (same rank convention as percentile_sorted):
  /// the representative value of the bucket containing rank
  /// pct/100*(count-1), clamped into [min, max] so exact extremes win.
  double percentile(double pct) const;

  /// Rolls count/mean/min/max (exact) and p50/p95/p99/stddev (bucketed)
  /// into the shared harness Summary shape.
  Summary summary() const;

  // Bucket math, exposed for the accuracy tests.
  static std::size_t bucket_of(double v);
  static double bucket_value(std::size_t b);  ///< arithmetic midpoint
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  static double load_d(const std::atomic<std::uint64_t>& bits) {
    const std::uint64_t u = bits.load(std::memory_order_relaxed);
    double d;
    static_assert(sizeof(d) == sizeof(u));
    __builtin_memcpy(&d, &u, sizeof(d));
    return d;
  }
  static void fetch_add_d(std::atomic<std::uint64_t>& bits, double v);
  static void fetch_min_d(std::atomic<std::uint64_t>& bits, double v);
  static void fetch_max_d(std::atomic<std::uint64_t>& bits, double v);

  // +inf / -inf identity elements make min/max updates race-free
  // without an "is initialized" flag.
  static constexpr std::uint64_t kPosInfBits = 0x7FF0000000000000ULL;
  static constexpr std::uint64_t kNegInfBits = 0xFFF0000000000000ULL;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};            // double bits, CAS-added
  std::atomic<std::uint64_t> min_bits_{kPosInfBits};  // valid iff count_ > 0
  std::atomic<std::uint64_t> max_bits_{kNegInfBits};
};

/// Named metric directory. counter()/gauge()/histogram() return stable
/// references (the registry never erases; clear() is test-only and must
/// not race with holders). Exporters walk the directory in name order.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// One JSON line per metric: {"metric":name,"kind":...,...}.
  /// Histograms emit count/mean/min/max plus p50/p95/p99.
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition: counters/gauges as single samples,
  /// histograms as summaries with quantile labels.
  void write_prometheus(std::ostream& out) const;

  /// Drops every metric. Test-only: invalidates outstanding references.
  void clear();

  /// Process-wide registry for code without an explicit sink.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace dsketch::obs
