#include "obs/trace_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dsketch::obs {

namespace {

// A just-big-enough JSON value: parsing keeps structure, consumers pull
// out the handful of fields they care about.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(const char* w) {
    const std::size_t len = std::string(w).size();
    if (s_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = string();
      return v;
    }
    if (consume_word("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (consume_word("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_word("null")) return JsonValue{};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.arr.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Our writer never emits \u escapes; accept and keep ASCII.
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<ParsedEvent> parse_chrome_trace(const std::string& text) {
  Parser parser(text);
  const JsonValue root = parser.parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("trace root is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("missing traceEvents array");
  }
  std::vector<ParsedEvent> out;
  out.reserve(events->arr.size());
  for (const JsonValue& e : events->arr) {
    if (e.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("trace event is not an object");
    }
    ParsedEvent ev;
    if (const JsonValue* v = e.find("name")) ev.name = v->str;
    if (const JsonValue* v = e.find("ph");
        v != nullptr && !v->str.empty()) {
      ev.ph = v->str[0];
    }
    if (const JsonValue* v = e.find("tid")) {
      ev.tid = static_cast<std::uint32_t>(v->num);
    }
    if (const JsonValue* v = e.find("ts")) ev.ts_us = v->num;
    if (const JsonValue* v = e.find("dur")) {
      ev.dur_us = v->num;
      ev.has_dur = true;
    }
    if (const JsonValue* args = e.find("args")) {
      if (const JsonValue* v = args->find("value")) {
        ev.arg_value = v->num;
        ev.has_arg_value = true;
      } else if (const JsonValue* v2 = args->find("v")) {
        ev.arg_value = v2->num;
        ev.has_arg_value = true;
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::vector<ParsedEvent> parse_chrome_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_chrome_trace(buf.str());
}

std::string check_span_nesting(const std::vector<ParsedEvent>& events) {
  std::map<std::uint32_t, std::vector<const ParsedEvent*>> by_tid;
  for (const ParsedEvent& e : events) {
    if (e.ph == 'X') by_tid[e.tid].push_back(&e);
  }
  char buf[256];
  for (auto& [tid, spans] : by_tid) {
    // Sort by start time; at a start-time tie the longer span is the
    // parent and must come first.
    std::sort(spans.begin(), spans.end(),
              [](const ParsedEvent* a, const ParsedEvent* b) {
                if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                return a->dur_us > b->dur_us;
              });
    std::vector<double> open_ends;  // stack of enclosing span end times
    // Timestamps were rounded to 1ns when serialized; allow that much
    // slack before calling two spans overlapping.
    constexpr double kSlackUs = 0.0015;
    for (const ParsedEvent* s : spans) {
      const double start = s->ts_us;
      const double end = s->ts_us + s->dur_us;
      while (!open_ends.empty() && open_ends.back() <= start + kSlackUs) {
        open_ends.pop_back();
      }
      if (!open_ends.empty() && end > open_ends.back() + kSlackUs) {
        std::snprintf(buf, sizeof(buf),
                      "tid %u: span \"%s\" [%.3f, %.3f) crosses enclosing "
                      "span ending at %.3f",
                      tid, s->name.c_str(), start, end, open_ends.back());
        return buf;
      }
      open_ends.push_back(end);
    }
  }
  return "";
}

}  // namespace dsketch::obs
