// On-disk framing constants shared by the heap store (sketch_store) and
// the mmap store (mmap_store): magics, the fixed header layout, the
// FNV-1a checksum, and the v3 page-alignment rule. The authoritative
// layout description lives in serve/sketch_store.hpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "serve/sketch_store.hpp"

namespace dsketch {
namespace store_format {

constexpr char kMagicV1[8] = {'D', 'S', 'K', 'S', 'T', 'O', 'R', '1'};
constexpr char kMagicV2[8] = {'D', 'S', 'K', 'S', 'T', 'O', 'R', '2'};
constexpr char kMagicV3[8] = {'D', 'S', 'K', 'S', 'T', 'O', 'R', '3'};
constexpr std::uint32_t kFlagEpsilonKnown = 1;  // header flags word, bit 0
constexpr std::size_t kHeaderBytes = 48;  // after the magic, pre-checksum
/// v2/v3 payload starts here: 8 magic + 48 header + 8 header checksum.
constexpr std::size_t kPayloadStart = 64;
/// v3 offset tables and blobs are zero-padded to this file alignment.
constexpr std::size_t kPageBytes = 4096;

/// Pad needed after `payload_pos` payload bytes to reach the next
/// page-aligned *file* position.
inline std::size_t v3_pad(std::size_t payload_pos) {
  return (kPageBytes - (kPayloadStart + payload_pos) % kPageBytes) %
         kPageBytes;
}

inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// The decoded fixed header (identical field set across v1/v2/v3).
struct StoreHeader {
  std::uint32_t version = 0;
  std::uint32_t scheme_raw = 0;
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  std::uint32_t segment_count = 0;
  bool epsilon_known = false;
  double epsilon = 0.0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return x;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

/// Parses and validates a v3 header from the first `size` mapped bytes.
/// Magic, header checksum, version, and scheme tag are all verified —
/// these 64 bytes are the only part of the file the mmap store trusts
/// eagerly. Throws StoreCorruptionError like the stream loader.
inline StoreHeader parse_v3_header(const std::uint8_t* data,
                                   std::size_t size) {
  const auto fail = [](StoreError kind, const std::string& what) {
    throw StoreCorruptionError(kind, "sketch store: " + what);
  };
  if (size < 8) fail(StoreError::kBadMagic, "bad magic");
  if (std::memcmp(data, kMagicV3, 8) != 0) {
    if (std::memcmp(data, kMagicV1, 8) == 0 ||
        std::memcmp(data, kMagicV2, 8) == 0) {
      fail(StoreError::kUnsupportedVersion,
           "mmap serving requires a v3 store (convert with save_file)");
    }
    fail(StoreError::kBadMagic, "bad magic");
  }
  if (size < kPayloadStart) {
    fail(StoreError::kTruncatedHeader, "truncated header");
  }
  const std::uint8_t* h = data + 8;
  if (fnv1a64(h, kHeaderBytes) != load_u64(h + kHeaderBytes)) {
    fail(StoreError::kHeaderChecksum, "header checksum mismatch");
  }
  StoreHeader out;
  out.version = load_u32(h);
  if (out.version != 3) {
    fail(StoreError::kUnsupportedVersion,
         "unsupported version " + std::to_string(out.version));
  }
  out.scheme_raw = load_u32(h + 4);
  if (out.scheme_raw > static_cast<std::uint32_t>(Scheme::kGraceful)) {
    fail(StoreError::kUnknownScheme,
         "unknown scheme tag " + std::to_string(out.scheme_raw));
  }
  out.n = load_u32(h + 8);
  out.k = load_u32(h + 12);
  out.segment_count = load_u32(h + 16);
  out.epsilon_known = (load_u32(h + 20) & kFlagEpsilonKnown) != 0;
  std::uint64_t eps_bits = load_u64(h + 24);
  std::memcpy(&out.epsilon, &eps_bits, sizeof(out.epsilon));
  out.payload_size = load_u64(h + 32);
  out.checksum = load_u64(h + 40);
  return out;
}

}  // namespace store_format
}  // namespace dsketch
