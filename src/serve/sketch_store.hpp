/// \file
/// Compact binary sketch store — the serving-tier representation.
///
/// The paper's deployment story (§1) is build-once / query-many: the
/// expensive distributed construction runs offline, and the resulting
/// sketches are shipped to query frontends. The text format in
/// core/serialization is convenient for debugging but parses into
/// pointer-heavy per-node structures (vectors + hash maps). This store
/// instead keeps every scheme in one contiguous arena:
///
///   header | per-segment { meta | offset table (n+1) | packed arena }
///
/// A node's sketch is the half-open arena slice [offsets[u], offsets[u+1])
/// of 32-bit words; distances occupy two words (lo, hi). TZ bunch entries
/// are stored sorted by node id so membership tests are branchless binary
/// searches. Queries parse records in place: zero per-query allocation,
/// and answers are bit-identical to SketchEngine::query (tested).
///
/// On-disk layout (little-endian):
///   bytes 0..7   magic "DSKSTOR1"
///   u32 version, u32 scheme, u32 n, u32 k, u32 segments, u32 flags
///   f64 epsilon                       (flags bit 0: epsilon was recorded)
///   u64 payload_bytes, u64 checksum (FNV-1a 64 over the payload)
///   payload: per segment u64 meta_count, u64 meta[], u64 offsets[n+1],
///            u64 arena_count, u32 arena[]
///
/// Record layouts (u32 words; D = 2-word little-endian distance):
///   tz       [levels, bunch_count, (pivot_id, D) x levels,
///             (node, level, D) x bunch_count sorted by node]
///   slack    [D x |net|]               (net ids live in the segment meta)
///   cdg      [net_node, D, owner, <tz record of L(owner)>]
///   graceful one cdg segment per epsilon level
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace dsketch {

/// Packed, checksummed, query-ready sketches for all four schemes.
class SketchStore {
 public:
  /// An empty store (no nodes); fill via from_engine/from_text/read.
  SketchStore() = default;

  /// Packs the engine's built sketches. The engine must hold a payload
  /// (either constructed or loaded from text).
  static SketchStore from_engine(const SketchEngine& engine);

  /// Converters bridging the text format of core/serialization.
  /// from_text reads exactly what SketchEngine::save wrote; to_text writes
  /// a file SketchEngine::load accepts (bunches come out in canonical
  /// order, so text -> binary -> text is query-equivalent, not byte-equal).
  static SketchStore from_text(std::istream& in);
  void to_text(std::ostream& out) const;

  /// Binary round trip. read()/load_file() validate magic, version,
  /// structural sizes, and the payload checksum, throwing
  /// std::runtime_error on any mismatch.
  void write(std::ostream& out) const;
  static SketchStore read(std::istream& in);
  void save_file(const std::string& path) const;
  static SketchStore load_file(const std::string& path);

  /// Distance estimate from the two packed sketches only; allocation-free
  /// and safe to call concurrently from any number of threads.
  Dist query(NodeId u, NodeId v) const;

  /// The sketch family the store holds.
  Scheme scheme() const { return scheme_; }
  /// Nodes covered (valid query ids are [0, n)).
  NodeId num_nodes() const { return n_; }
  /// The TZ/CDG hierarchy depth recorded at build time.
  std::uint32_t k() const { return k_; }
  /// The slack/CDG epsilon recorded at build time (see epsilon_known()).
  double epsilon() const { return epsilon_; }
  /// False when the sketch came from a pre-epsilon text file: epsilon()
  /// is then a default, not the recorded build value, and to_text()
  /// writes the old header style to preserve that provenance.
  bool epsilon_known() const { return epsilon_known_; }
  /// Packed segments (1 for tz/slack/cdg; one per level for graceful).
  std::size_t num_segments() const { return segments_.size(); }

  /// Total packed payload size (arena + offsets + meta), in bytes.
  std::size_t payload_bytes() const;

  /// Arena words backing node u's record in segment 0 (diagnostics).
  std::size_t node_record_words(NodeId u) const;

 private:
  struct Segment {
    std::vector<std::uint64_t> meta;
    std::vector<std::uint64_t> offsets;  // n+1 entries, in u32 units
    std::vector<std::uint32_t> arena;
  };

  Dist query_segment(const Segment& seg, NodeId u, NodeId v) const;
  void validate_structure() const;

  Scheme scheme_ = Scheme::kThorupZwick;
  NodeId n_ = 0;
  std::uint32_t k_ = 0;
  double epsilon_ = 0.0;
  bool epsilon_known_ = true;
  std::vector<Segment> segments_;
};

}  // namespace dsketch
