/// \file
/// Compact binary sketch store — the serving-tier representation.
///
/// The paper's deployment story (§1) is build-once / query-many: the
/// expensive distributed construction runs offline, and the resulting
/// sketches are shipped to query frontends. The text format in
/// core/serialization is convenient for debugging but parses into
/// pointer-heavy per-node structures (vectors + hash maps). This store
/// instead keeps every scheme in one contiguous arena:
///
///   header | per-segment { meta | offset table (n+1) | packed arena }
///
/// A node's sketch is the half-open arena slice [offsets[u], offsets[u+1])
/// of 32-bit words; distances occupy two words (lo, hi). TZ bunch entries
/// are stored sorted by node id so membership tests are branchless binary
/// searches. Queries parse records in place: zero per-query allocation,
/// and answers are bit-identical to SketchEngine::query (tested).
///
/// On-disk layout (little-endian):
///   bytes 0..7   magic "DSKSTOR3"  (v1 "DSKSTOR1" / v2 "DSKSTOR2" files
///                                   still load through the heap path)
///   u32 version, u32 scheme, u32 n, u32 k, u32 segments, u32 flags
///   f64 epsilon                       (flags bit 0: epsilon was recorded)
///   u64 payload_bytes, u64 checksum (FNV-1a 64 over the payload)
///   u64 header_checksum             (v2/v3: FNV-1a 64 over the 48
///                                    header bytes after the magic)
///   v1/v2 payload: per segment u64 meta_count, u64 meta[],
///            u64 offsets[n+1] (u32-word units), u64 arena_count,
///            u32 arena[]
///   v3 payload (starts at file offset 64): per segment
///            u64 meta_count, u64 meta[], u64 blob_bytes,
///            zero pad to the next 4096-byte file boundary,
///            u64 offsets[n+1] (BYTE offsets into the blob; offsets[0]=0,
///            offsets[n]=blob_bytes), pad to 4096,
///            u8 blob[blob_bytes] (delta+varint records, see
///            serve/label_codec.hpp), pad to 4096
///   The v3 pads are inside the payload checksum. Page-aligning the
///   offset table and the blob is what lets serve/mmap_store map the
///   file and serve queries straight off the encoded bytes.
///
/// Durability: save_file writes a temp file, fsyncs, then renames into
/// place, so a crash mid-save never leaves a torn store at the target
/// path. Loads bounds-check every section before trusting it and throw
/// StoreCorruptionError (a std::runtime_error) with a typed diagnosis;
/// recover_file salvages the intact node records of a corrupt file.
///
/// Record layouts (u32 words; D = 2-word little-endian distance):
///   tz       [levels, bunch_count, (pivot_id, D) x levels,
///             (node, level, D) x bunch_count sorted by node]
///   slack    [D x |net|]               (net ids live in the segment meta)
///   cdg      [net_node, D, owner, <tz record of L(owner)>]
///   graceful one cdg segment per epsilon level
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/oracle.hpp"
#include "graph/graph.hpp"

namespace dsketch {

/// What exactly a store load found wrong. Ordered roughly by how early in
/// the pipeline the fault is detected.
enum class StoreError {
  kIo,                  ///< file missing / unreadable / write failure
  kBadMagic,            ///< not a sketch store at all
  kTruncatedHeader,     ///< file ends inside the fixed header
  kHeaderChecksum,      ///< v2 header checksum mismatch (bit-flipped header)
  kUnsupportedVersion,  ///< version this build cannot parse
  kUnknownScheme,       ///< scheme tag outside the known families
  kTruncatedPayload,    ///< file ends inside the payload
  kPayloadChecksum,     ///< payload bytes fail the FNV-1a checksum
  kStructure,           ///< framing/record invariants violated
};

/// Thrown by read/load_file/recover_file. Subclasses std::runtime_error so
/// existing catch sites keep working; new callers can switch on kind().
class StoreCorruptionError : public std::runtime_error {
 public:
  StoreCorruptionError(StoreError kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  StoreError kind() const { return kind_; }

 private:
  StoreError kind_;
};

/// Which on-disk encoding write()/save_file() emit. v3 (the default) is
/// the delta+varint page-aligned format mmap serving needs; v2 is the
/// fixed-width word format, kept writable for back-compat tests and
/// downgrade paths. Reads sniff the version from the magic.
enum class StoreFormat { kV2 = 2, kV3 = 3 };

/// Packed, checksummed, query-ready sketches for all four schemes. A
/// SketchStore is itself a DistanceOracle — the serving-tier
/// representation of one — so anything that takes an oracle (the query
/// service, evaluate_stretch, the benches) serves straight from the
/// packed arena; the inherited query_batch is the zero-alloc packed
/// query path.
class SketchStore final : public DistanceOracle {
 public:
  /// An empty store (no nodes); fill via from_oracle/from_text/read.
  SketchStore() = default;

  /// Packs a sketch-backed oracle's payload. Throws std::runtime_error
  /// for oracles without a packed representation (the baselines).
  static SketchStore from_oracle(const DistanceOracle& oracle);

  /// Whether from_oracle(oracle) would succeed — the one predicate the
  /// CLI and examples share to decide packed vs envelope shipping.
  static bool packable(const DistanceOracle& oracle);

  /// Compat shim over from_oracle for engine callers.
  static SketchStore from_engine(const SketchEngine& engine);

  /// Converters bridging the text format of core/serialization.
  /// from_text reads exactly what SketchEngine::save wrote; to_text writes
  /// a file SketchEngine::load accepts (bunches come out in canonical
  /// order, so text -> binary -> text is query-equivalent, not byte-equal).
  static SketchStore from_text(std::istream& in);
  void to_text(std::ostream& out) const;

  /// Binary round trip. read()/load_file() validate magic, version,
  /// header checksum (v2), structural sizes, and the payload checksum,
  /// throwing StoreCorruptionError on any mismatch. save_file is atomic:
  /// temp file + fsync + rename, so readers of `path` see either the old
  /// complete store or the new complete store, never a torn write.
  void write(std::ostream& out, StoreFormat format = StoreFormat::kV3) const;
  static SketchStore read(std::istream& in);
  void save_file(const std::string& path,
                 StoreFormat format = StoreFormat::kV3) const;
  static SketchStore load_file(const std::string& path);

  /// Best-effort salvage of a corrupt store file. Parses the framing with
  /// every bounds check but without requiring the payload checksum, then
  /// validates each node record individually: structurally intact records
  /// are kept, broken ones are quarantined — replaced by an empty record
  /// whose queries answer kInfDist (a safe "don't know", never a wrong
  /// finite distance). Throws StoreCorruptionError when the header or the
  /// segment framing itself is unrecoverable. Caveat: a bit flip *inside*
  /// a structurally valid record is not detectable at record granularity;
  /// only the whole-payload checksum (the normal load path) proves full
  /// integrity.
  struct Recovery;  // defined below (needs the complete SketchStore type)
  static Recovery recover_file(const std::string& path);

  /// Binary load straight to the polymorphic interface — what a serving
  /// frontend hands to its QueryService.
  static std::unique_ptr<DistanceOracle> load_oracle(const std::string& path);

  /// Distance estimate from the two packed sketches only; allocation-free
  /// and safe to call concurrently from any number of threads.
  Dist query(NodeId u, NodeId v) const override;

  /// Packed words stored for node u, summed across segments.
  std::size_t size_words(NodeId u) const override;
  /// Registry name of the packed family ("tz", "slack", ...).
  std::string scheme() const override { return scheme_name(scheme_); }
  /// Worst-case guarantee with the recorded k/epsilon filled in.
  std::string guarantee() const override;
  /// Capabilities of the packed family (no build cost: it was paid by
  /// whoever built).
  Capabilities capabilities() const override;
  /// DistanceOracle::save: writes the text envelope (to_text); the binary
  /// format keeps its own write()/read() pair.
  void save(std::ostream& out) const override { to_text(out); }

  /// The sketch family the store holds.
  Scheme store_scheme() const { return scheme_; }
  /// Nodes covered (valid query ids are [0, n)).
  NodeId num_nodes() const override { return n_; }
  /// The TZ/CDG hierarchy depth recorded at build time.
  std::uint32_t k() const { return k_; }
  /// The slack/CDG epsilon recorded at build time (see epsilon_known()).
  double epsilon() const { return epsilon_; }
  /// False when the sketch came from a pre-epsilon text file: epsilon()
  /// is then a default, not the recorded build value, and to_text()
  /// writes the old header style to preserve that provenance.
  bool epsilon_known() const { return epsilon_known_; }
  /// Packed segments (1 for tz/slack/cdg; one per level for graceful).
  std::size_t num_segments() const { return segments_.size(); }

  /// Total packed payload size (arena + offsets + meta), in bytes —
  /// the fixed-width v1/v2 word model.
  std::size_t payload_bytes() const;

  /// The v3 (delta+varint) payload size in bytes, including the
  /// page-alignment padding — what `save_file` actually puts on disk
  /// past the 64-byte header. The honest serving-footprint number the
  /// benches report next to the word-model size.
  std::size_t encoded_bytes() const;

  /// v3-encoded bytes of node u's records, summed across segments — the
  /// per-node serving footprint without file framing or padding. The
  /// word model (size_words) double-counts against this: it bills 4
  /// bytes per u32 word where the varint coding typically spends 1-2.
  std::size_t encoded_record_bytes(NodeId u) const;

  /// Arena words backing node u's record in segment 0 (diagnostics).
  std::size_t node_record_words(NodeId u) const;

 private:
  struct Segment {
    std::vector<std::uint64_t> meta;
    std::vector<std::uint64_t> offsets;  // n+1 entries, in u32 units
    std::vector<std::uint32_t> arena;
  };

  Dist query_segment(const Segment& seg, NodeId u, NodeId v) const;
  void validate_structure() const;
  std::vector<std::uint8_t> build_v2_payload() const;
  std::vector<std::uint8_t> build_v3_payload() const;

  Scheme scheme_ = Scheme::kThorupZwick;
  NodeId n_ = 0;
  std::uint32_t k_ = 0;
  double epsilon_ = 0.0;
  bool epsilon_known_ = true;
  std::vector<Segment> segments_;
};

/// Result of SketchStore::recover_file — see its doc comment.
struct SketchStore::Recovery {
  SketchStore store;
  std::vector<NodeId> quarantined;  ///< nodes whose records were replaced
  bool checksum_ok = false;  ///< the file was actually fine (no salvage)
};

}  // namespace dsketch
