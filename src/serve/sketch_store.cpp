#include "serve/sketch_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/serialization.hpp"
#include "core/sketch_oracle.hpp"
#include "dynamics/incremental.hpp"
#include "obs/trace.hpp"
#include "serve/label_codec.hpp"
#include "serve/packed_record.hpp"
#include "serve/store_format.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_label.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

namespace sf = store_format;

using packed::kBunchStride;
using packed::kCdgPrefixWords;
using packed::kPivotStride;
using packed::pack_dist;
using packed::PackedLabel;
using packed::packed_tz_query;
using packed::read_dist;

[[noreturn]] void fail(StoreError kind, const std::string& what) {
  throw StoreCorruptionError(kind, "sketch store: " + what);
}

// ---- little-endian byte packing --------------------------------------------

class ByteWriter {
 public:
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((x >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((x >> (8 * i)) & 0xff);
  }
  void f64(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    u64(bits);
  }
  void raw(const std::vector<std::uint8_t>& data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  /// Zero-pads a v3 payload to the next page-aligned file position.
  void pad_page() {
    bytes_.insert(bytes_.end(), sf::v3_pad(bytes_.size()), 0);
  }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  void skip_at_most(std::size_t n) { pos_ += std::min(n, remaining()); }
  const std::uint8_t* ptr() const { return data_ + pos_; }
  std::size_t pos() const { return pos_; }
  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) fail(StoreError::kTruncatedPayload, "truncated payload");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- packed record layout --------------------------------------------------
// (layout constants and in-place views live in serve/packed_record.hpp)

void pack_label(std::vector<std::uint32_t>& arena, const LabelView& label) {
  arena.push_back(label.levels);
  arena.push_back(label.count);
  for (std::uint32_t i = 0; i < label.levels; ++i) {
    arena.push_back(label.pivot(i).id);
    pack_dist(arena, label.pivot(i).dist);
  }
  // The arena's canonical bunch order is already (node, level) — the
  // packed record copies it straight through, so membership tests
  // binary-search without a re-sort here.
  for (std::uint32_t j = 0; j < label.count; ++j) {
    const BunchEntry& e = label.bunch[j];
    arena.push_back(e.node);
    arena.push_back(e.level);
    pack_dist(arena, e.dist);
  }
}

TzLabelBuilder unpack_label(NodeId owner, const std::uint32_t* rec) {
  const PackedLabel view{rec};
  TzLabelBuilder label(owner, view.levels());
  for (std::uint32_t i = 0; i < view.levels(); ++i) {
    label.set_pivot(i, DistKey{view.pivot_dist(i), view.pivot_id(i)});
  }
  const std::uint32_t* b = view.bunch();
  for (std::uint32_t e = 0; e < view.bunch_count(); ++e) {
    label.add_bunch_entry(BunchEntry{b[kBunchStride * e],
                                     b[kBunchStride * e + 1],
                                     read_dist(b + kBunchStride * e + 2)});
  }
  label.sort_bunch();
  return label;
}

}  // namespace

// ---- packing from built sketches -------------------------------------------

bool SketchStore::packable(const DistanceOracle& oracle) {
  return dynamic_cast<const SketchStore*>(&oracle) != nullptr ||
         dynamic_cast<const SketchOracle*>(&oracle) != nullptr ||
         dynamic_cast<const TzLabelOracle*>(&oracle) != nullptr;
}

SketchStore SketchStore::from_oracle(const DistanceOracle& oracle) {
  const obs::Span span("store_from_oracle");
  // Re-packing a store is a copy: it already is the packed representation.
  if (const auto* packed_store = dynamic_cast<const SketchStore*>(&oracle)) {
    return *packed_store;
  }
  // A bare TZ label arena (distributed build, dynamic-sketch snapshot)
  // packs through the same segment layout as a tz-scheme SketchOracle; it
  // carries no recorded epsilon.
  if (const auto* tz = dynamic_cast<const TzLabelOracle*>(&oracle)) {
    SketchStore store;
    store.scheme_ = Scheme::kThorupZwick;
    store.k_ = tz->k();
    store.epsilon_known_ = false;
    store.n_ = tz->num_nodes();
    Segment seg;
    seg.offsets.reserve(store.n_ + 1);
    for (NodeId u = 0; u < store.n_; ++u) {
      seg.offsets.push_back(seg.arena.size());
      pack_label(seg.arena, tz->labels().view(u));
    }
    seg.offsets.push_back(seg.arena.size());
    store.segments_.push_back(std::move(seg));
    return store;
  }
  const auto* sketch = dynamic_cast<const SketchOracle*>(&oracle);
  if (sketch == nullptr) {
    throw std::runtime_error("oracle scheme '" + oracle.scheme() +
                             "' has no packed store representation");
  }

  SketchStore store;
  store.scheme_ = sketch->config().scheme;
  store.k_ = sketch->config().k;
  store.epsilon_ = sketch->config().epsilon;
  // Sketches loaded from pre-epsilon envelopes carry a default, not the
  // build value; the store must not launder it into a recorded one.
  store.epsilon_known_ = sketch->epsilon_recorded_;

  const auto pack_cdg = [](const CdgSketchSet& set, NodeId n) {
    SketchStore::Segment seg;
    seg.offsets.reserve(n + 1);
    for (NodeId u = 0; u < n; ++u) {
      seg.offsets.push_back(seg.arena.size());
      const auto& s = set.sketch(u);
      seg.arena.push_back(s.net_node);
      pack_dist(seg.arena, s.net_dist);
      seg.arena.push_back(s.label.owner());
      pack_label(seg.arena, s.label.view());
    }
    seg.offsets.push_back(seg.arena.size());
    return seg;
  };

  switch (store.scheme_) {
    case Scheme::kThorupZwick: {
      const LabelArena& labels = sketch->tz_labels_;
      store.n_ = labels.num_nodes();
      Segment seg;
      seg.offsets.reserve(store.n_ + 1);
      for (NodeId u = 0; u < store.n_; ++u) {
        seg.offsets.push_back(seg.arena.size());
        pack_label(seg.arena, labels.view(u));
      }
      seg.offsets.push_back(seg.arena.size());
      store.segments_.push_back(std::move(seg));
      break;
    }
    case Scheme::kSlack: {
      const SlackSketchSet& set = sketch->slack_;
      store.n_ = sketch->num_nodes();
      Segment seg;
      seg.meta.push_back(set.net().size());
      for (const NodeId w : set.net()) seg.meta.push_back(w);
      seg.offsets.reserve(store.n_ + 1);
      for (NodeId u = 0; u < store.n_; ++u) {
        seg.offsets.push_back(seg.arena.size());
        for (std::size_t i = 0; i < set.net().size(); ++i) {
          pack_dist(seg.arena, set.net_dist(u, i));
        }
      }
      seg.offsets.push_back(seg.arena.size());
      store.segments_.push_back(std::move(seg));
      break;
    }
    case Scheme::kCdg: {
      store.n_ = sketch->num_nodes();
      store.segments_.push_back(pack_cdg(sketch->cdg_, store.n_));
      break;
    }
    case Scheme::kGraceful: {
      store.n_ = sketch->num_nodes();
      const GracefulSketchSet& set = sketch->graceful_;
      for (std::size_t i = 0; i < set.num_levels(); ++i) {
        store.segments_.push_back(pack_cdg(set.level(i), store.n_));
      }
      break;
    }
  }
  return store;
}

SketchStore SketchStore::from_engine(const SketchEngine& engine) {
  return from_oracle(engine.oracle());
}

SketchStore SketchStore::from_text(std::istream& in) {
  const OracleEnvelope envelope = read_envelope_header(in);
  return from_oracle(*SketchOracle::load_payload(in, envelope));
}

void SketchStore::to_text(std::ostream& out) const {
  out << "scheme " << scheme_name(scheme_) << " " << n_ << " " << k_;
  if (epsilon_known_) {
    char eps[40];
    std::snprintf(eps, sizeof(eps), "%.17g", epsilon_);
    out << " " << eps;
  }
  out << "\n";

  const auto unpack_cdg = [this](const Segment& seg) {
    std::vector<CdgSketchSet::NodeSketch> sketches(n_);
    for (NodeId u = 0; u < n_; ++u) {
      const std::uint32_t* rec = seg.arena.data() + seg.offsets[u];
      auto& s = sketches[u];
      s.net_node = rec[0];
      s.net_dist = read_dist(rec + 1);
      s.label = unpack_label(rec[3], rec + kCdgPrefixWords);
    }
    return CdgSketchSet(std::move(sketches));
  };

  switch (scheme_) {
    case Scheme::kThorupZwick: {
      const Segment& seg = segments_[0];
      std::vector<TzLabelBuilder> labels;
      labels.reserve(n_);
      for (NodeId u = 0; u < n_; ++u) {
        labels.push_back(unpack_label(u, seg.arena.data() + seg.offsets[u]));
      }
      write_tz_labels(out, LabelArena::from_builders(std::move(labels)));
      return;
    }
    case Scheme::kSlack: {
      const Segment& seg = segments_[0];
      const std::size_t net_size = static_cast<std::size_t>(seg.meta[0]);
      std::vector<NodeId> net(net_size);
      for (std::size_t i = 0; i < net_size; ++i) {
        net[i] = static_cast<NodeId>(seg.meta[1 + i]);
      }
      std::vector<std::vector<Dist>> dist(n_, std::vector<Dist>(net_size));
      for (NodeId u = 0; u < n_; ++u) {
        const std::uint32_t* rec = seg.arena.data() + seg.offsets[u];
        for (std::size_t i = 0; i < net_size; ++i) {
          dist[u][i] = read_dist(rec + 2 * i);
        }
      }
      write_slack_sketches(out, SlackSketchSet(std::move(net), std::move(dist)),
                           n_);
      return;
    }
    case Scheme::kCdg:
      write_cdg_sketches(out, unpack_cdg(segments_[0]), n_);
      return;
    case Scheme::kGraceful: {
      std::vector<CdgSketchSet> levels;
      levels.reserve(segments_.size());
      for (const Segment& seg : segments_) levels.push_back(unpack_cdg(seg));
      write_graceful_sketches(out, GracefulSketchSet(std::move(levels)), n_);
      return;
    }
  }
}

// ---- queries ----------------------------------------------------------------

Dist SketchStore::query_segment(const Segment& seg, NodeId u, NodeId v) const {
  // CDG estimate: d(u,u') + tz(L(u'), L(v')) + d(v',v), mirroring
  // CdgSketchSet::query (including the owner short-circuit inside tz_query).
  const std::uint32_t* ru = seg.arena.data() + seg.offsets[u];
  const std::uint32_t* rv = seg.arena.data() + seg.offsets[v];
  const Dist du = read_dist(ru + 1);
  const Dist dv = read_dist(rv + 1);
  // An infinite net distance (unreachable net node, or a quarantined
  // record) must not flow into the sum below — it would wrap around.
  if (du == kInfDist || dv == kInfDist) return kInfDist;
  const NodeId owner_u = ru[3];
  const NodeId owner_v = rv[3];
  const PackedLabel lu{ru + kCdgPrefixWords};
  const PackedLabel lv{rv + kCdgPrefixWords};
  const Dist mid = owner_u == owner_v ? 0 : packed_tz_query(lu, lv);
  if (mid == kInfDist) return kInfDist;
  return du + mid + dv;
}

Dist SketchStore::query(NodeId u, NodeId v) const {
  DS_CHECK(u < n_ && v < n_);
  if (u == v) return 0;
  switch (scheme_) {
    case Scheme::kThorupZwick: {
      const Segment& seg = segments_[0];
      const PackedLabel lu{seg.arena.data() + seg.offsets[u]};
      const PackedLabel lv{seg.arena.data() + seg.offsets[v]};
      return packed_tz_query(lu, lv);
    }
    case Scheme::kSlack: {
      const Segment& seg = segments_[0];
      const std::size_t net_size = static_cast<std::size_t>(seg.meta[0]);
      const std::uint32_t* du = seg.arena.data() + seg.offsets[u];
      const std::uint32_t* dv = seg.arena.data() + seg.offsets[v];
      Dist best = kInfDist;
      for (std::size_t i = 0; i < net_size; ++i) {
        const Dist a = read_dist(du + 2 * i);
        const Dist b = read_dist(dv + 2 * i);
        if (a == kInfDist || b == kInfDist) continue;
        best = std::min(best, a + b);
      }
      return best;
    }
    case Scheme::kCdg:
      return query_segment(segments_[0], u, v);
    case Scheme::kGraceful: {
      Dist best = kInfDist;
      for (const Segment& seg : segments_) {
        best = std::min(best, query_segment(seg, u, v));
      }
      return best;
    }
  }
  return kInfDist;
}

std::size_t SketchStore::payload_bytes() const {
  std::size_t bytes = 0;
  for (const Segment& seg : segments_) {
    bytes += 8 * (1 + seg.meta.size());     // meta_count + meta
    bytes += 8 * (1 + seg.offsets.size());  // offsets_count + offsets
    bytes += 8 + 4 * seg.arena.size();      // arena_count + arena
  }
  return bytes;
}

std::size_t SketchStore::encoded_bytes() const {
  return build_v3_payload().size();
}

std::size_t SketchStore::encoded_record_bytes(NodeId u) const {
  DS_CHECK(u < n_);
  std::vector<std::uint8_t> bytes;
  for (const Segment& seg : segments_) {
    encode_record_v3(scheme_, seg.arena.data() + seg.offsets[u],
                     seg.offsets[u + 1] - seg.offsets[u],
                     scheme_ == Scheme::kSlack ? seg.meta[0] : 0, bytes);
  }
  return bytes.size();
}

std::size_t SketchStore::node_record_words(NodeId u) const {
  DS_CHECK(u < n_ && !segments_.empty());
  const Segment& seg = segments_[0];
  return static_cast<std::size_t>(seg.offsets[u + 1] - seg.offsets[u]);
}

std::size_t SketchStore::size_words(NodeId u) const {
  DS_CHECK(u < n_);
  std::size_t words = 0;
  for (const Segment& seg : segments_) {
    words += static_cast<std::size_t>(seg.offsets[u + 1] - seg.offsets[u]);
  }
  return words;
}

std::string SketchStore::guarantee() const {
  return sketch_guarantee(scheme_, k_, epsilon_);
}

Capabilities SketchStore::capabilities() const {
  Capabilities caps = sketch_capabilities(scheme_, k_);
  // The CONGEST cost was paid by whoever built; a packed store never
  // carries it.
  caps.build_cost_available = false;
  return caps;
}

// ---- binary round trip ------------------------------------------------------

std::vector<std::uint8_t> SketchStore::build_v2_payload() const {
  ByteWriter payload;
  for (const Segment& seg : segments_) {
    payload.u64(seg.meta.size());
    for (const std::uint64_t m : seg.meta) payload.u64(m);
    payload.u64(seg.offsets.size());
    for (const std::uint64_t o : seg.offsets) payload.u64(o);
    payload.u64(seg.arena.size());
    for (const std::uint32_t w : seg.arena) payload.u32(w);
  }
  return payload.take();
}

std::vector<std::uint8_t> SketchStore::build_v3_payload() const {
  ByteWriter payload;
  for (const Segment& seg : segments_) {
    payload.u64(seg.meta.size());
    for (const std::uint64_t m : seg.meta) payload.u64(m);
    const std::uint64_t slack_net =
        scheme_ == Scheme::kSlack ? seg.meta[0] : 0;
    std::vector<std::uint8_t> blob;
    std::vector<std::uint64_t> byte_offsets;
    byte_offsets.reserve(n_ + 1);
    byte_offsets.push_back(0);
    for (NodeId u = 0; u < n_; ++u) {
      encode_record_v3(scheme_, seg.arena.data() + seg.offsets[u],
                       seg.offsets[u + 1] - seg.offsets[u], slack_net, blob);
      byte_offsets.push_back(blob.size());
    }
    payload.u64(blob.size());
    payload.pad_page();
    for (const std::uint64_t o : byte_offsets) payload.u64(o);
    payload.pad_page();
    payload.raw(blob);
    payload.pad_page();
  }
  return payload.take();
}

void SketchStore::write(std::ostream& out, StoreFormat format) const {
  const obs::Span span("store_write");
  const bool v3 = format == StoreFormat::kV3;
  const std::vector<std::uint8_t> body =
      v3 ? build_v3_payload() : build_v2_payload();

  out.write(v3 ? sf::kMagicV3 : sf::kMagicV2, 8);
  ByteWriter h;
  h.u32(v3 ? 3u : 2u);
  h.u32(static_cast<std::uint32_t>(scheme_));
  h.u32(n_);
  h.u32(k_);
  h.u32(static_cast<std::uint32_t>(segments_.size()));
  h.u32(epsilon_known_ ? sf::kFlagEpsilonKnown : 0);
  h.f64(epsilon_);
  h.u64(body.size());
  h.u64(sf::fnv1a64(body.data(), body.size()));
  // v2+: the header itself is checksummed. The payload checksum cannot
  // cover it, so before this a bit flip in n/k/epsilon/payload_size was
  // detectable only if it happened to break a structural invariant.
  h.u64(sf::fnv1a64(h.bytes().data(), h.bytes().size()));
  out.write(reinterpret_cast<const char*>(h.bytes().data()),
            static_cast<std::streamsize>(h.bytes().size()));
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  if (!out) fail(StoreError::kIo, "write failed");
}

namespace {

using sf::StoreHeader;

StoreHeader read_header(std::istream& in) {
  char magic[8];
  if (!in.read(magic, 8)) fail(StoreError::kBadMagic, "bad magic");
  std::uint32_t magic_version = 0;
  if (std::memcmp(magic, sf::kMagicV1, 8) == 0) magic_version = 1;
  if (std::memcmp(magic, sf::kMagicV2, 8) == 0) magic_version = 2;
  if (std::memcmp(magic, sf::kMagicV3, 8) == 0) magic_version = 3;
  if (magic_version == 0) fail(StoreError::kBadMagic, "bad magic");
  std::uint8_t header_bytes[sf::kHeaderBytes];
  if (!in.read(reinterpret_cast<char*>(header_bytes), sizeof(header_bytes))) {
    fail(StoreError::kTruncatedHeader, "truncated header");
  }
  if (magic_version >= 2) {
    std::uint8_t sum_bytes[8];
    if (!in.read(reinterpret_cast<char*>(sum_bytes), sizeof(sum_bytes))) {
      fail(StoreError::kTruncatedHeader, "truncated header checksum");
    }
    ByteReader sr(sum_bytes, sizeof(sum_bytes));
    if (sf::fnv1a64(header_bytes, sizeof(header_bytes)) != sr.u64()) {
      fail(StoreError::kHeaderChecksum, "header checksum mismatch");
    }
  }
  ByteReader h(header_bytes, sizeof(header_bytes));
  StoreHeader out;
  out.version = h.u32();
  if (out.version != magic_version) {
    fail(StoreError::kUnsupportedVersion,
         "unsupported version " + std::to_string(out.version));
  }
  out.scheme_raw = h.u32();
  if (out.scheme_raw > static_cast<std::uint32_t>(Scheme::kGraceful)) {
    fail(StoreError::kUnknownScheme,
         "unknown scheme tag " + std::to_string(out.scheme_raw));
  }
  out.n = h.u32();
  out.k = h.u32();
  out.segment_count = h.u32();
  out.epsilon_known = (h.u32() & sf::kFlagEpsilonKnown) != 0;
  out.epsilon = h.f64();
  out.payload_size = h.u64();
  out.checksum = h.u64();
  return out;
}

/// Reads at most `payload_size` payload bytes in bounded chunks rather
/// than trusting the header's size for one up-front allocation: a
/// corrupted payload_size (unprotected in v1 headers) must fail as
/// "truncated", not as a giant bad_alloc. With `allow_short` (recovery)
/// a truncated file yields the bytes that are present.
std::vector<std::uint8_t> read_body(std::istream& in,
                                    std::uint64_t payload_size,
                                    bool allow_short) {
  std::vector<std::uint8_t> body;
  constexpr std::uint64_t kReadChunk = 1 << 24;
  while (body.size() < payload_size) {
    const std::uint64_t want =
        std::min(kReadChunk, payload_size - body.size());
    const std::size_t old_size = body.size();
    body.resize(old_size + static_cast<std::size_t>(want));
    if (!in.read(reinterpret_cast<char*>(body.data() + old_size),
                 static_cast<std::streamsize>(want))) {
      if (allow_short) {
        body.resize(old_size + static_cast<std::size_t>(in.gcount()));
        break;
      }
      fail(StoreError::kTruncatedPayload, "truncated payload");
    }
  }
  return body;
}

/// v3 segment framing: meta words, blob size, and the page-aligned byte
/// offset table. Shared by the strict read and the lenient recovery pass
/// (which tolerates a truncated/garbage *blob* but not broken framing).
struct V3Frame {
  std::vector<std::uint64_t> meta;
  std::uint64_t slack_net = 0;
  std::uint64_t blob_bytes = 0;
  std::vector<std::uint64_t> byte_offsets;  // n+1, into the blob
};

V3Frame read_v3_frame(ByteReader& r, Scheme scheme, NodeId n) {
  V3Frame f;
  const std::uint64_t meta_count = r.u64();
  if (meta_count > r.remaining() / 8) {
    fail(StoreError::kStructure, "corrupt meta count");
  }
  f.meta.reserve(meta_count);
  for (std::uint64_t i = 0; i < meta_count; ++i) f.meta.push_back(r.u64());
  if (scheme == Scheme::kSlack) {
    if (f.meta.empty() || f.meta[0] + 1 != f.meta.size()) {
      fail(StoreError::kStructure, "slack net meta size mismatch");
    }
    f.slack_net = f.meta[0];
  } else if (!f.meta.empty()) {
    fail(StoreError::kStructure, "unexpected segment meta");
  }
  f.blob_bytes = r.u64();
  r.skip(sf::v3_pad(r.pos()));
  const std::uint64_t offsets_count = static_cast<std::uint64_t>(n) + 1;
  if (offsets_count > r.remaining() / 8) {
    fail(StoreError::kStructure, "offset table size mismatch");
  }
  f.byte_offsets.reserve(offsets_count);
  for (std::uint64_t i = 0; i < offsets_count; ++i) {
    f.byte_offsets.push_back(r.u64());
    if (i > 0 && f.byte_offsets[i] < f.byte_offsets[i - 1]) {
      fail(StoreError::kStructure, "offsets not monotone");
    }
  }
  if (f.byte_offsets.front() != 0 || f.byte_offsets.back() != f.blob_bytes) {
    fail(StoreError::kStructure, "blob offset mismatch");
  }
  r.skip(sf::v3_pad(r.pos()));
  return f;
}

}  // namespace

SketchStore SketchStore::read(std::istream& in) {
  const obs::Span span("store_read");
  const StoreHeader hdr = read_header(in);
  SketchStore store;
  store.scheme_ = static_cast<Scheme>(hdr.scheme_raw);
  store.n_ = hdr.n;
  store.k_ = hdr.k;
  store.epsilon_known_ = hdr.epsilon_known;
  store.epsilon_ = hdr.epsilon;

  const std::vector<std::uint8_t> body =
      read_body(in, hdr.payload_size, /*allow_short=*/false);
  if (sf::fnv1a64(body.data(), body.size()) != hdr.checksum) {
    fail(StoreError::kPayloadChecksum, "checksum mismatch");
  }

  ByteReader r(body.data(), body.size());
  store.segments_.reserve(hdr.segment_count);
  if (hdr.version == 3) {
    for (std::uint32_t s = 0; s < hdr.segment_count; ++s) {
      V3Frame f = read_v3_frame(r, store.scheme_, store.n_);
      if (r.remaining() < f.blob_bytes) {
        fail(StoreError::kTruncatedPayload, "truncated payload");
      }
      const std::uint8_t* blob = r.ptr();
      Segment seg;
      seg.meta = std::move(f.meta);
      seg.offsets.reserve(store.n_ + 1);
      for (NodeId u = 0; u < store.n_; ++u) {
        seg.offsets.push_back(seg.arena.size());
        if (!decode_record_v3(store.scheme_, blob + f.byte_offsets[u],
                              blob + f.byte_offsets[u + 1], f.slack_net,
                              seg.arena)) {
          fail(StoreError::kStructure, "invalid v3 record");
        }
      }
      seg.offsets.push_back(seg.arena.size());
      r.skip(f.blob_bytes);
      r.skip(sf::v3_pad(r.pos()));
      store.segments_.push_back(std::move(seg));
    }
  } else {
    for (std::uint32_t s = 0; s < hdr.segment_count; ++s) {
      Segment seg;
      const std::uint64_t meta_count = r.u64();
      if (meta_count > r.remaining() / 8) {
        fail(StoreError::kStructure, "corrupt meta count");
      }
      seg.meta.reserve(meta_count);
      for (std::uint64_t i = 0; i < meta_count; ++i) {
        seg.meta.push_back(r.u64());
      }
      const std::uint64_t offsets_count = r.u64();
      if (offsets_count != static_cast<std::uint64_t>(store.n_) + 1 ||
          offsets_count > r.remaining() / 8) {
        fail(StoreError::kStructure, "offset table size mismatch");
      }
      seg.offsets.reserve(offsets_count);
      for (std::uint64_t i = 0; i < offsets_count; ++i) {
        seg.offsets.push_back(r.u64());
        if (i > 0 && seg.offsets[i] < seg.offsets[i - 1]) {
          fail(StoreError::kStructure, "offsets not monotone");
        }
      }
      const std::uint64_t arena_count = r.u64();
      if (arena_count != seg.offsets.back() ||
          arena_count > r.remaining() / 4) {
        fail(StoreError::kStructure, "arena size mismatch");
      }
      seg.arena.reserve(arena_count);
      for (std::uint64_t i = 0; i < arena_count; ++i) {
        seg.arena.push_back(r.u32());
      }
      store.segments_.push_back(std::move(seg));
    }
  }
  if (!r.done()) fail(StoreError::kStructure, "trailing payload bytes");
  if (store.segments_.empty()) fail(StoreError::kStructure, "no segments");
  store.validate_structure();
  return store;
}

namespace {

/// Whether arena words [begin, end) form a structurally valid record for
/// `scheme` — the per-record core of validate_structure, shared with the
/// quarantine pass of recover_file. For kSlack pass the fixed record width
/// in `slack_record_words`.
bool node_record_ok(Scheme scheme, const std::uint32_t* arena,
                    std::uint64_t begin, std::uint64_t end,
                    std::uint64_t slack_record_words) {
  const auto label_ok = [&](std::uint64_t b, std::uint64_t e) {
    if (e - b < 2) return false;
    const PackedLabel label{arena + b};
    return label.words() == e - b;
  };
  if (end < begin) return false;
  switch (scheme) {
    case Scheme::kThorupZwick:
      return label_ok(begin, end);
    case Scheme::kSlack:
      return end - begin == slack_record_words;
    case Scheme::kCdg:
    case Scheme::kGraceful:
      return end - begin >= kCdgPrefixWords + 2 &&
             label_ok(begin + kCdgPrefixWords, end);
  }
  return false;
}

/// Appends the empty replacement record for a quarantined node: queries
/// against it answer kInfDist ("don't know"), never a wrong finite value.
void append_empty_record(Scheme scheme, std::vector<std::uint32_t>& arena,
                         std::uint64_t slack_record_words) {
  switch (scheme) {
    case Scheme::kThorupZwick:
      arena.push_back(0);  // levels
      arena.push_back(0);  // bunch_count
      return;
    case Scheme::kSlack:
      for (std::uint64_t i = 0; i < slack_record_words; ++i) {
        arena.push_back(0xffffffffu);  // every net distance = kInfDist
      }
      return;
    case Scheme::kCdg:
    case Scheme::kGraceful:
      arena.push_back(kInvalidNode);   // net_node
      arena.push_back(0xffffffffu);    // net_dist = kInfDist (query guard)
      arena.push_back(0xffffffffu);
      arena.push_back(kInvalidNode);   // owner
      arena.push_back(0);              // empty label
      arena.push_back(0);
      return;
  }
}

}  // namespace

// The checksum only proves the payload was not accidentally corrupted; the
// query path indexes by record-internal counts, so those must be proven
// consistent with the offset table before any query runs — otherwise a
// checksum-valid crafted file reads out of bounds.
void SketchStore::validate_structure() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) fail(StoreError::kStructure, what);
  };
  for (const Segment& seg : segments_) {
    std::uint64_t slack_words = 0;
    if (scheme_ == Scheme::kSlack) {
      check(!seg.meta.empty() && seg.meta[0] + 1 == seg.meta.size(),
            "slack net meta size mismatch");
      slack_words = 2 * seg.meta[0];
    } else {
      check(seg.meta.empty(), "unexpected segment meta");
    }
    for (NodeId u = 0; u < n_; ++u) {
      check(node_record_ok(scheme_, seg.arena.data(), seg.offsets[u],
                           seg.offsets[u + 1], slack_words),
            "invalid node record");
    }
  }
}

void SketchStore::save_file(const std::string& path, StoreFormat format) const {
  // Crash-safe publish: write the full store to a sibling temp file, force
  // it to stable storage, then atomically rename over the target. A reader
  // of `path` (or a crash at any point here) sees either the previous
  // complete store or the new complete store — never a torn prefix.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(StoreError::kIo, "cannot open for write: " + tmp);
    try {
      write(out, format);
      out.flush();
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      fail(StoreError::kIo, "write failed: " + tmp);
    }
  }
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0 || ::fsync(fd) != 0) {
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    fail(StoreError::kIo, "fsync failed: " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(StoreError::kIo, "rename failed: " + path);
  }
  // Make the rename itself durable (best effort — not all filesystems
  // support fsync on a directory fd).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

SketchStore SketchStore::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(StoreError::kIo, "cannot open for read: " + path);
  return read(in);
}

SketchStore::Recovery SketchStore::recover_file(const std::string& path) {
  // First try the strict path: if the checksums hold, there is nothing to
  // salvage. Only on corruption do we re-read leniently.
  try {
    Recovery r;
    r.store = load_file(path);
    r.checksum_ok = true;
    return r;
  } catch (const StoreCorruptionError& e) {
    switch (e.kind()) {
      case StoreError::kPayloadChecksum:
      case StoreError::kTruncatedPayload:
      case StoreError::kStructure:
        break;  // payload damage — attempt per-record salvage below
      default:
        throw;  // header/identity damage is unrecoverable
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) fail(StoreError::kIo, "cannot open for read: " + path);
  const StoreHeader hdr = read_header(in);
  Recovery rec;
  SketchStore& store = rec.store;
  store.scheme_ = static_cast<Scheme>(hdr.scheme_raw);
  store.n_ = hdr.n;
  store.k_ = hdr.k;
  store.epsilon_known_ = hdr.epsilon_known;
  store.epsilon_ = hdr.epsilon;

  const std::vector<std::uint8_t> body =
      read_body(in, hdr.payload_size, /*allow_short=*/true);
  std::vector<char> quarantined(store.n_, 0);

  // Segment framing (meta + offsets) must parse for a segment to be
  // salvageable at all; the arena/blob may be short (truncation) and
  // individual records may be garbage (bit flips) — those quarantine per
  // node.
  ByteReader r(body.data(), body.size());
  for (std::uint32_t s = 0; s < hdr.segment_count; ++s) {
    Segment seg;
    std::uint64_t slack_words = 0;
    if (hdr.version == 3) {
      V3Frame f;
      try {
        f = read_v3_frame(r, store.scheme_, store.n_);
      } catch (const StoreCorruptionError&) {
        // Framing of this segment is gone. Extra graceful levels are
        // redundant approximations, so keeping the earlier ones is sound;
        // for single-segment schemes nothing remains to serve.
        if (store.scheme_ == Scheme::kGraceful && !store.segments_.empty()) {
          break;
        }
        throw;
      }
      slack_words = 2 * f.slack_net;
      seg.meta = std::move(f.meta);
      const std::uint64_t available =
          std::min<std::uint64_t>(f.blob_bytes, r.remaining());
      const std::uint8_t* blob = r.ptr();
      seg.offsets.reserve(store.n_ + 1);
      for (NodeId u = 0; u < store.n_; ++u) {
        seg.offsets.push_back(seg.arena.size());
        const bool ok =
            f.byte_offsets[u + 1] <= available &&
            decode_record_v3(store.scheme_, blob + f.byte_offsets[u],
                             blob + f.byte_offsets[u + 1], f.slack_net,
                             seg.arena);
        if (!ok) {
          quarantined[u] = 1;
          append_empty_record(store.scheme_, seg.arena, slack_words);
        }
      }
      seg.offsets.push_back(seg.arena.size());
      r.skip_at_most(f.blob_bytes);
      r.skip_at_most(sf::v3_pad(r.pos()));
      store.segments_.push_back(std::move(seg));
      continue;
    }
    std::uint64_t declared = 0;
    try {
      const std::uint64_t meta_count = r.u64();
      if (meta_count > r.remaining() / 8) {
        fail(StoreError::kStructure, "corrupt meta count");
      }
      for (std::uint64_t i = 0; i < meta_count; ++i) {
        seg.meta.push_back(r.u64());
      }
      if (store.scheme_ == Scheme::kSlack) {
        if (seg.meta.empty() || seg.meta[0] + 1 != seg.meta.size()) {
          fail(StoreError::kStructure, "slack net meta size mismatch");
        }
        slack_words = 2 * seg.meta[0];
      } else if (!seg.meta.empty()) {
        fail(StoreError::kStructure, "unexpected segment meta");
      }
      const std::uint64_t offsets_count = r.u64();
      if (offsets_count != static_cast<std::uint64_t>(store.n_) + 1 ||
          offsets_count > r.remaining() / 8) {
        fail(StoreError::kStructure, "offset table size mismatch");
      }
      for (std::uint64_t i = 0; i < offsets_count; ++i) {
        seg.offsets.push_back(r.u64());
        if (i > 0 && seg.offsets[i] < seg.offsets[i - 1]) {
          fail(StoreError::kStructure, "offsets not monotone");
        }
      }
      declared = r.u64();
    } catch (const StoreCorruptionError&) {
      // Framing of this segment is gone (see the v3 comment above).
      if (store.scheme_ == Scheme::kGraceful && !store.segments_.empty()) {
        break;
      }
      throw;
    }
    const std::uint64_t available =
        std::min<std::uint64_t>(declared, r.remaining() / 4);
    std::vector<std::uint32_t> raw;
    raw.reserve(available);
    for (std::uint64_t i = 0; i < available; ++i) raw.push_back(r.u32());

    // Rebuild the arena keeping every record that is fully present and
    // structurally valid; quarantine the rest.
    std::vector<std::uint64_t> new_offsets;
    std::vector<std::uint32_t> new_arena;
    new_offsets.reserve(store.n_ + 1);
    for (NodeId u = 0; u < store.n_; ++u) {
      new_offsets.push_back(new_arena.size());
      const std::uint64_t begin = seg.offsets[u];
      const std::uint64_t end = seg.offsets[u + 1];
      const bool ok =
          end <= available &&
          node_record_ok(store.scheme_, raw.data(), begin, end, slack_words);
      if (ok) {
        new_arena.insert(new_arena.end(), raw.begin() + begin,
                         raw.begin() + end);
      } else {
        quarantined[u] = 1;
        append_empty_record(store.scheme_, new_arena, slack_words);
      }
    }
    new_offsets.push_back(new_arena.size());
    seg.offsets = std::move(new_offsets);
    seg.arena = std::move(new_arena);
    store.segments_.push_back(std::move(seg));
  }
  if (store.segments_.empty()) fail(StoreError::kStructure, "no segments");
  store.validate_structure();
  for (NodeId u = 0; u < store.n_; ++u) {
    if (quarantined[u]) rec.quarantined.push_back(u);
  }
  return rec;
}

std::unique_ptr<DistanceOracle> SketchStore::load_oracle(
    const std::string& path) {
  return std::make_unique<SketchStore>(load_file(path));
}

}  // namespace dsketch
