#include "serve/sketch_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/serialization.hpp"
#include "core/sketch_oracle.hpp"
#include "dynamics/incremental.hpp"
#include "obs/trace.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_label.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

constexpr char kMagic[8] = {'D', 'S', 'K', 'S', 'T', 'O', 'R', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagEpsilonKnown = 1;  // header flags word, bit 0

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ---- little-endian byte packing --------------------------------------------

class ByteWriter {
 public:
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((x >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((x >> (8 * i)) & 0xff);
  }
  void f64(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    u64(bits);
  }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  }
  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error("sketch store: truncated payload");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- packed record layout --------------------------------------------------

inline Dist read_dist(const std::uint32_t* p) {
  return static_cast<Dist>(p[0]) | (static_cast<Dist>(p[1]) << 32);
}

void pack_dist(std::vector<std::uint32_t>& arena, Dist d) {
  arena.push_back(static_cast<std::uint32_t>(d));
  arena.push_back(static_cast<std::uint32_t>(d >> 32));
}

constexpr std::size_t kPivotStride = 3;  // id, dist lo, dist hi
constexpr std::size_t kBunchStride = 4;  // node, level, dist lo, dist hi

void pack_label(std::vector<std::uint32_t>& arena, const TzLabel& label) {
  arena.push_back(label.levels());
  arena.push_back(static_cast<std::uint32_t>(label.bunch().size()));
  for (std::uint32_t i = 0; i < label.levels(); ++i) {
    arena.push_back(label.pivot(i).id);
    pack_dist(arena, label.pivot(i).dist);
  }
  // Sorted by node so membership tests binary-search; duplicate nodes (one
  // per level) carry the same distance, so any match is the right answer.
  std::vector<BunchEntry> sorted = label.bunch();
  std::sort(sorted.begin(), sorted.end(),
            [](const BunchEntry& a, const BunchEntry& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.level < b.level;
            });
  for (const BunchEntry& e : sorted) {
    arena.push_back(e.node);
    arena.push_back(e.level);
    pack_dist(arena, e.dist);
  }
}

/// In-place view of a packed TZ label record.
struct PackedLabel {
  const std::uint32_t* rec;

  std::uint32_t levels() const { return rec[0]; }
  std::uint32_t bunch_count() const { return rec[1]; }
  const std::uint32_t* pivots() const { return rec + 2; }
  const std::uint32_t* bunch() const {
    return rec + 2 + kPivotStride * levels();
  }
  NodeId pivot_id(std::uint32_t i) const { return pivots()[kPivotStride * i]; }
  Dist pivot_dist(std::uint32_t i) const {
    return read_dist(pivots() + kPivotStride * i + 1);
  }
  std::size_t words() const {
    return 2 + kPivotStride * levels() + kBunchStride * bunch_count();
  }

  Dist bunch_dist(NodeId w) const {
    const std::uint32_t* b = bunch();
    std::size_t lo = 0, hi = bunch_count();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const NodeId node = b[kBunchStride * mid];
      if (node < w) {
        lo = mid + 1;
      } else if (node > w) {
        hi = mid;
      } else {
        return read_dist(b + kBunchStride * mid + 2);
      }
    }
    return kInfDist;
  }
};

/// Mirror of tz_query_trace over packed records; the caller handles the
/// owner-equality short-circuit.
Dist packed_tz_query(const PackedLabel& lu, const PackedLabel& lv) {
  const std::uint32_t k = std::min(lu.levels(), lv.levels());
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId pu = lu.pivot_id(i);
    if (pu != kInvalidNode) {
      const Dist dv = lv.bunch_dist(pu);
      if (dv != kInfDist) return lu.pivot_dist(i) + dv;
    }
    const NodeId pv = lv.pivot_id(i);
    if (pv != kInvalidNode) {
      const Dist du = lu.bunch_dist(pv);
      if (du != kInfDist) return lv.pivot_dist(i) + du;
    }
  }
  return kInfDist;
}

TzLabel unpack_label(NodeId owner, const std::uint32_t* rec) {
  const PackedLabel view{rec};
  TzLabel label(owner, view.levels());
  for (std::uint32_t i = 0; i < view.levels(); ++i) {
    label.set_pivot(i, DistKey{view.pivot_dist(i), view.pivot_id(i)});
  }
  const std::uint32_t* b = view.bunch();
  for (std::uint32_t e = 0; e < view.bunch_count(); ++e) {
    label.add_bunch_entry(BunchEntry{b[kBunchStride * e],
                                     b[kBunchStride * e + 1],
                                     read_dist(b + kBunchStride * e + 2)});
  }
  label.sort_bunch();  // canonical (level, node) order for the text format
  return label;
}

// CDG record: [net_node, net_dist (2), owner, tz label record].
constexpr std::size_t kCdgPrefixWords = 4;

}  // namespace

// ---- packing from built sketches -------------------------------------------

bool SketchStore::packable(const DistanceOracle& oracle) {
  return dynamic_cast<const SketchStore*>(&oracle) != nullptr ||
         dynamic_cast<const SketchOracle*>(&oracle) != nullptr ||
         dynamic_cast<const TzLabelOracle*>(&oracle) != nullptr;
}

SketchStore SketchStore::from_oracle(const DistanceOracle& oracle) {
  const obs::Span span("store_from_oracle");
  // Re-packing a store is a copy: it already is the packed representation.
  if (const auto* packed = dynamic_cast<const SketchStore*>(&oracle)) {
    return *packed;
  }
  // A bare TZ label set (distributed build, dynamic-sketch snapshot) packs
  // through the same segment layout as a tz-scheme SketchOracle; it carries
  // no recorded epsilon.
  if (const auto* tz = dynamic_cast<const TzLabelOracle*>(&oracle)) {
    SketchStore store;
    store.scheme_ = Scheme::kThorupZwick;
    store.k_ = tz->k();
    store.epsilon_known_ = false;
    store.n_ = tz->num_nodes();
    Segment seg;
    seg.offsets.reserve(store.n_ + 1);
    for (const TzLabel& label : tz->labels()) {
      seg.offsets.push_back(seg.arena.size());
      pack_label(seg.arena, label);
    }
    seg.offsets.push_back(seg.arena.size());
    store.segments_.push_back(std::move(seg));
    return store;
  }
  const auto* sketch = dynamic_cast<const SketchOracle*>(&oracle);
  if (sketch == nullptr) {
    throw std::runtime_error("oracle scheme '" + oracle.scheme() +
                             "' has no packed store representation");
  }

  SketchStore store;
  store.scheme_ = sketch->config().scheme;
  store.k_ = sketch->config().k;
  store.epsilon_ = sketch->config().epsilon;
  // Sketches loaded from pre-epsilon envelopes carry a default, not the
  // build value; the store must not launder it into a recorded one.
  store.epsilon_known_ = sketch->epsilon_recorded_;

  const auto pack_cdg = [](const CdgSketchSet& set, NodeId n) {
    SketchStore::Segment seg;
    seg.offsets.reserve(n + 1);
    for (NodeId u = 0; u < n; ++u) {
      seg.offsets.push_back(seg.arena.size());
      const auto& s = set.sketch(u);
      seg.arena.push_back(s.net_node);
      pack_dist(seg.arena, s.net_dist);
      seg.arena.push_back(s.label.owner());
      pack_label(seg.arena, s.label);
    }
    seg.offsets.push_back(seg.arena.size());
    return seg;
  };

  switch (store.scheme_) {
    case Scheme::kThorupZwick: {
      const auto& labels = sketch->tz_labels_;
      store.n_ = static_cast<NodeId>(labels.size());
      Segment seg;
      seg.offsets.reserve(store.n_ + 1);
      for (const TzLabel& label : labels) {
        seg.offsets.push_back(seg.arena.size());
        pack_label(seg.arena, label);
      }
      seg.offsets.push_back(seg.arena.size());
      store.segments_.push_back(std::move(seg));
      break;
    }
    case Scheme::kSlack: {
      const SlackSketchSet& set = sketch->slack_;
      store.n_ = sketch->num_nodes();
      Segment seg;
      seg.meta.push_back(set.net().size());
      for (const NodeId w : set.net()) seg.meta.push_back(w);
      seg.offsets.reserve(store.n_ + 1);
      for (NodeId u = 0; u < store.n_; ++u) {
        seg.offsets.push_back(seg.arena.size());
        for (std::size_t i = 0; i < set.net().size(); ++i) {
          pack_dist(seg.arena, set.net_dist(u, i));
        }
      }
      seg.offsets.push_back(seg.arena.size());
      store.segments_.push_back(std::move(seg));
      break;
    }
    case Scheme::kCdg: {
      store.n_ = sketch->num_nodes();
      store.segments_.push_back(pack_cdg(sketch->cdg_, store.n_));
      break;
    }
    case Scheme::kGraceful: {
      store.n_ = sketch->num_nodes();
      const GracefulSketchSet& set = sketch->graceful_;
      for (std::size_t i = 0; i < set.num_levels(); ++i) {
        store.segments_.push_back(pack_cdg(set.level(i), store.n_));
      }
      break;
    }
  }
  return store;
}

SketchStore SketchStore::from_engine(const SketchEngine& engine) {
  return from_oracle(engine.oracle());
}

SketchStore SketchStore::from_text(std::istream& in) {
  const OracleEnvelope envelope = read_envelope_header(in);
  return from_oracle(*SketchOracle::load_payload(in, envelope));
}

void SketchStore::to_text(std::ostream& out) const {
  out << "scheme " << scheme_name(scheme_) << " " << n_ << " " << k_;
  if (epsilon_known_) {
    char eps[40];
    std::snprintf(eps, sizeof(eps), "%.17g", epsilon_);
    out << " " << eps;
  }
  out << "\n";

  const auto unpack_cdg = [this](const Segment& seg) {
    std::vector<CdgSketchSet::NodeSketch> sketches(n_);
    for (NodeId u = 0; u < n_; ++u) {
      const std::uint32_t* rec = seg.arena.data() + seg.offsets[u];
      auto& s = sketches[u];
      s.net_node = rec[0];
      s.net_dist = read_dist(rec + 1);
      s.label = unpack_label(rec[3], rec + kCdgPrefixWords);
    }
    return CdgSketchSet(std::move(sketches));
  };

  switch (scheme_) {
    case Scheme::kThorupZwick: {
      const Segment& seg = segments_[0];
      std::vector<TzLabel> labels;
      labels.reserve(n_);
      for (NodeId u = 0; u < n_; ++u) {
        labels.push_back(unpack_label(u, seg.arena.data() + seg.offsets[u]));
      }
      write_tz_labels(out, labels);
      return;
    }
    case Scheme::kSlack: {
      const Segment& seg = segments_[0];
      const std::size_t net_size = static_cast<std::size_t>(seg.meta[0]);
      std::vector<NodeId> net(net_size);
      for (std::size_t i = 0; i < net_size; ++i) {
        net[i] = static_cast<NodeId>(seg.meta[1 + i]);
      }
      std::vector<std::vector<Dist>> dist(n_, std::vector<Dist>(net_size));
      for (NodeId u = 0; u < n_; ++u) {
        const std::uint32_t* rec = seg.arena.data() + seg.offsets[u];
        for (std::size_t i = 0; i < net_size; ++i) {
          dist[u][i] = read_dist(rec + 2 * i);
        }
      }
      write_slack_sketches(out, SlackSketchSet(std::move(net), std::move(dist)),
                           n_);
      return;
    }
    case Scheme::kCdg:
      write_cdg_sketches(out, unpack_cdg(segments_[0]), n_);
      return;
    case Scheme::kGraceful: {
      std::vector<CdgSketchSet> levels;
      levels.reserve(segments_.size());
      for (const Segment& seg : segments_) levels.push_back(unpack_cdg(seg));
      write_graceful_sketches(out, GracefulSketchSet(std::move(levels)), n_);
      return;
    }
  }
}

// ---- queries ----------------------------------------------------------------

Dist SketchStore::query_segment(const Segment& seg, NodeId u, NodeId v) const {
  // CDG estimate: d(u,u') + tz(L(u'), L(v')) + d(v',v), mirroring
  // CdgSketchSet::query (including the owner short-circuit inside tz_query).
  const std::uint32_t* ru = seg.arena.data() + seg.offsets[u];
  const std::uint32_t* rv = seg.arena.data() + seg.offsets[v];
  const Dist du = read_dist(ru + 1);
  const Dist dv = read_dist(rv + 1);
  const NodeId owner_u = ru[3];
  const NodeId owner_v = rv[3];
  const PackedLabel lu{ru + kCdgPrefixWords};
  const PackedLabel lv{rv + kCdgPrefixWords};
  const Dist mid = owner_u == owner_v ? 0 : packed_tz_query(lu, lv);
  if (mid == kInfDist) return kInfDist;
  return du + mid + dv;
}

Dist SketchStore::query(NodeId u, NodeId v) const {
  DS_CHECK(u < n_ && v < n_);
  if (u == v) return 0;
  switch (scheme_) {
    case Scheme::kThorupZwick: {
      const Segment& seg = segments_[0];
      const PackedLabel lu{seg.arena.data() + seg.offsets[u]};
      const PackedLabel lv{seg.arena.data() + seg.offsets[v]};
      return packed_tz_query(lu, lv);
    }
    case Scheme::kSlack: {
      const Segment& seg = segments_[0];
      const std::size_t net_size = static_cast<std::size_t>(seg.meta[0]);
      const std::uint32_t* du = seg.arena.data() + seg.offsets[u];
      const std::uint32_t* dv = seg.arena.data() + seg.offsets[v];
      Dist best = kInfDist;
      for (std::size_t i = 0; i < net_size; ++i) {
        const Dist a = read_dist(du + 2 * i);
        const Dist b = read_dist(dv + 2 * i);
        if (a == kInfDist || b == kInfDist) continue;
        best = std::min(best, a + b);
      }
      return best;
    }
    case Scheme::kCdg:
      return query_segment(segments_[0], u, v);
    case Scheme::kGraceful: {
      Dist best = kInfDist;
      for (const Segment& seg : segments_) {
        best = std::min(best, query_segment(seg, u, v));
      }
      return best;
    }
  }
  return kInfDist;
}

std::size_t SketchStore::payload_bytes() const {
  std::size_t bytes = 0;
  for (const Segment& seg : segments_) {
    bytes += 8 * (1 + seg.meta.size());     // meta_count + meta
    bytes += 8 * (1 + seg.offsets.size());  // offsets_count + offsets
    bytes += 8 + 4 * seg.arena.size();      // arena_count + arena
  }
  return bytes;
}

std::size_t SketchStore::node_record_words(NodeId u) const {
  DS_CHECK(u < n_ && !segments_.empty());
  const Segment& seg = segments_[0];
  return static_cast<std::size_t>(seg.offsets[u + 1] - seg.offsets[u]);
}

std::size_t SketchStore::size_words(NodeId u) const {
  DS_CHECK(u < n_);
  std::size_t words = 0;
  for (const Segment& seg : segments_) {
    words += static_cast<std::size_t>(seg.offsets[u + 1] - seg.offsets[u]);
  }
  return words;
}

std::string SketchStore::guarantee() const {
  return sketch_guarantee(scheme_, k_, epsilon_);
}

Capabilities SketchStore::capabilities() const {
  Capabilities caps = sketch_capabilities(scheme_, k_);
  // The CONGEST cost was paid by whoever built; a packed store never
  // carries it.
  caps.build_cost_available = false;
  return caps;
}

// ---- binary round trip ------------------------------------------------------

void SketchStore::write(std::ostream& out) const {
  const obs::Span span("store_write");
  ByteWriter payload;
  for (const Segment& seg : segments_) {
    payload.u64(seg.meta.size());
    for (const std::uint64_t m : seg.meta) payload.u64(m);
    payload.u64(seg.offsets.size());
    for (const std::uint64_t o : seg.offsets) payload.u64(o);
    payload.u64(seg.arena.size());
    for (const std::uint32_t w : seg.arena) payload.u32(w);
  }
  const auto& body = payload.bytes();

  out.write(kMagic, 8);
  ByteWriter h;
  h.u32(kVersion);
  h.u32(static_cast<std::uint32_t>(scheme_));
  h.u32(n_);
  h.u32(k_);
  h.u32(static_cast<std::uint32_t>(segments_.size()));
  h.u32(epsilon_known_ ? kFlagEpsilonKnown : 0);
  h.f64(epsilon_);
  h.u64(body.size());
  h.u64(fnv1a64(body.data(), body.size()));
  out.write(reinterpret_cast<const char*>(h.bytes().data()),
            static_cast<std::streamsize>(h.bytes().size()));
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("sketch store: write failed");
}

SketchStore SketchStore::read(std::istream& in) {
  const obs::Span span("store_read");
  char magic[8];
  if (!in.read(magic, 8) || std::memcmp(magic, kMagic, 8) != 0) {
    throw std::runtime_error("sketch store: bad magic");
  }
  std::uint8_t header_bytes[48];
  if (!in.read(reinterpret_cast<char*>(header_bytes), sizeof(header_bytes))) {
    throw std::runtime_error("sketch store: truncated header");
  }
  ByteReader h(header_bytes, sizeof(header_bytes));
  const std::uint32_t version = h.u32();
  if (version != kVersion) {
    throw std::runtime_error("sketch store: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t scheme_raw = h.u32();
  if (scheme_raw > static_cast<std::uint32_t>(Scheme::kGraceful)) {
    throw std::runtime_error("sketch store: unknown scheme tag " +
                             std::to_string(scheme_raw));
  }
  SketchStore store;
  store.scheme_ = static_cast<Scheme>(scheme_raw);
  store.n_ = h.u32();
  store.k_ = h.u32();
  const std::uint32_t segment_count = h.u32();
  store.epsilon_known_ = (h.u32() & kFlagEpsilonKnown) != 0;
  store.epsilon_ = h.f64();
  const std::uint64_t payload_size = h.u64();
  const std::uint64_t checksum = h.u64();

  // Read in bounded chunks rather than trusting the header's size for one
  // up-front allocation: a corrupted payload_size (the header is outside
  // the checksum) must fail as "truncated", not as a giant bad_alloc.
  std::vector<std::uint8_t> body;
  constexpr std::uint64_t kReadChunk = 1 << 24;
  while (body.size() < payload_size) {
    const std::uint64_t want =
        std::min(kReadChunk, payload_size - body.size());
    const std::size_t old_size = body.size();
    body.resize(old_size + static_cast<std::size_t>(want));
    if (!in.read(reinterpret_cast<char*>(body.data() + old_size),
                 static_cast<std::streamsize>(want))) {
      throw std::runtime_error("sketch store: truncated payload");
    }
  }
  if (fnv1a64(body.data(), body.size()) != checksum) {
    throw std::runtime_error("sketch store: checksum mismatch");
  }

  ByteReader r(body.data(), body.size());
  store.segments_.reserve(segment_count);
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    Segment seg;
    const std::uint64_t meta_count = r.u64();
    if (meta_count > r.remaining() / 8) {
      throw std::runtime_error("sketch store: corrupt meta count");
    }
    seg.meta.reserve(meta_count);
    for (std::uint64_t i = 0; i < meta_count; ++i) seg.meta.push_back(r.u64());
    const std::uint64_t offsets_count = r.u64();
    if (offsets_count != static_cast<std::uint64_t>(store.n_) + 1 ||
        offsets_count > r.remaining() / 8) {
      throw std::runtime_error("sketch store: offset table size mismatch");
    }
    seg.offsets.reserve(offsets_count);
    for (std::uint64_t i = 0; i < offsets_count; ++i) {
      seg.offsets.push_back(r.u64());
      if (i > 0 && seg.offsets[i] < seg.offsets[i - 1]) {
        throw std::runtime_error("sketch store: offsets not monotone");
      }
    }
    const std::uint64_t arena_count = r.u64();
    if (arena_count != seg.offsets.back() ||
        arena_count > r.remaining() / 4) {
      throw std::runtime_error("sketch store: arena size mismatch");
    }
    seg.arena.reserve(arena_count);
    for (std::uint64_t i = 0; i < arena_count; ++i) {
      seg.arena.push_back(r.u32());
    }
    store.segments_.push_back(std::move(seg));
  }
  if (!r.done()) {
    throw std::runtime_error("sketch store: trailing payload bytes");
  }
  if (store.segments_.empty()) {
    throw std::runtime_error("sketch store: no segments");
  }
  store.validate_structure();
  return store;
}

// The checksum only proves the payload was not accidentally corrupted; the
// query path indexes by record-internal counts, so those must be proven
// consistent with the offset table before any query runs — otherwise a
// checksum-valid crafted file reads out of bounds.
void SketchStore::validate_structure() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) throw std::runtime_error(std::string("sketch store: ") + what);
  };
  const auto check_label_record = [&](const Segment& seg, std::uint64_t begin,
                                      std::uint64_t end) {
    check(end - begin >= 2, "label record too short");
    const PackedLabel label{seg.arena.data() + begin};
    check(label.words() == end - begin, "label record size mismatch");
  };
  for (const Segment& seg : segments_) {
    switch (scheme_) {
      case Scheme::kThorupZwick:
        check(seg.meta.empty(), "unexpected tz meta");
        for (NodeId u = 0; u < n_; ++u) {
          check_label_record(seg, seg.offsets[u], seg.offsets[u + 1]);
        }
        break;
      case Scheme::kSlack: {
        check(!seg.meta.empty() && seg.meta[0] + 1 == seg.meta.size(),
              "slack net meta size mismatch");
        const std::uint64_t record_words = 2 * seg.meta[0];
        for (NodeId u = 0; u < n_; ++u) {
          check(seg.offsets[u + 1] - seg.offsets[u] == record_words,
                "slack record size mismatch");
        }
        break;
      }
      case Scheme::kCdg:
      case Scheme::kGraceful:
        check(seg.meta.empty(), "unexpected cdg meta");
        for (NodeId u = 0; u < n_; ++u) {
          check(seg.offsets[u + 1] - seg.offsets[u] >= kCdgPrefixWords + 2,
                "cdg record too short");
          check_label_record(seg, seg.offsets[u] + kCdgPrefixWords,
                             seg.offsets[u + 1]);
        }
        break;
    }
  }
}

void SketchStore::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write(out);
}

SketchStore SketchStore::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read(in);
}

std::unique_ptr<DistanceOracle> SketchStore::load_oracle(
    const std::string& path) {
  return std::make_unique<SketchStore>(load_file(path));
}

}  // namespace dsketch
