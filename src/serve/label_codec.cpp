#include "serve/label_codec.hpp"

#include <algorithm>

#include "serve/packed_record.hpp"

namespace dsketch {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

namespace {

constexpr std::uint64_t kU32Max = 0xffffffffull;

// id fields use the +1 shift so 0 can mean "invalid"; bijective over the
// whole u32 range because the invalid sentinel is the all-ones value.
std::uint64_t encode_id(std::uint32_t id) {
  return id == kInvalidNode ? 0 : static_cast<std::uint64_t>(id) + 1;
}
bool decode_id(std::uint64_t v, std::uint32_t* id) {
  if (v > kU32Max) return false;
  *id = v == 0 ? kInvalidNode : static_cast<std::uint32_t>(v - 1);
  return true;
}

// distance fields use the same shift with kInfDist as the sentinel;
// bijective over u64 because kInfDist + 1 wraps to 0.
std::uint64_t encode_dist(Dist d) { return d + 1; }
Dist decode_dist(std::uint64_t v) { return v - 1; }

void encode_tz(const std::uint32_t* rec, std::vector<std::uint8_t>& out) {
  const packed::PackedLabel l{rec};
  put_varint(out, l.levels());
  put_varint(out, l.bunch_count());
  Dist prev_dist = 0;
  for (std::uint32_t i = 0; i < l.levels(); ++i) {
    put_varint(out, encode_id(l.pivot_id(i)));
    const Dist d = l.pivot_dist(i);
    put_varint(out, zigzag64(d - prev_dist));
    prev_dist = d;
  }
  const std::uint32_t* b = l.bunch();
  std::uint64_t prev_node = 0;
  for (std::uint32_t e = 0; e < l.bunch_count(); ++e) {
    const std::uint64_t node = b[packed::kBunchStride * e];
    put_varint(out, zigzag64(node - prev_node));
    prev_node = node;
    put_varint(out, b[packed::kBunchStride * e + 1]);
    put_varint(out, packed::read_dist(b + packed::kBunchStride * e + 2));
  }
}

bool decode_tz(VarintReader& r, std::vector<std::uint32_t>& out) {
  const std::uint64_t levels = r.get();
  const std::uint64_t count = r.get();
  if (!r.ok) return false;
  // Each pivot takes >= 2 bytes and each entry >= 3; a count that cannot
  // fit in the remaining slice is corrupt, and rejecting it here bounds
  // the decode output by the slice size.
  const auto remaining = static_cast<std::uint64_t>(r.end - r.p);
  if (levels > remaining / 2 || count > remaining / 3) return false;
  out.push_back(static_cast<std::uint32_t>(levels));
  out.push_back(static_cast<std::uint32_t>(count));
  Dist prev_dist = 0;
  for (std::uint64_t i = 0; i < levels; ++i) {
    std::uint32_t id = 0;
    if (!decode_id(r.get(), &id)) return false;
    const Dist d = prev_dist + unzigzag64(r.get());
    if (!r.ok) return false;
    prev_dist = d;
    out.push_back(id);
    packed::pack_dist(out, d);
  }
  std::uint64_t prev_node = 0;
  for (std::uint64_t e = 0; e < count; ++e) {
    const std::uint64_t node = prev_node + unzigzag64(r.get());
    const std::uint64_t level = r.get();
    const Dist dist = r.get();
    if (!r.ok || node > kU32Max || level > kU32Max) return false;
    prev_node = node;
    out.push_back(static_cast<std::uint32_t>(node));
    out.push_back(static_cast<std::uint32_t>(level));
    packed::pack_dist(out, dist);
  }
  return r.ok;
}

bool decode_cdg_prefix(VarintReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t net_node = 0;
  if (!decode_id(r.get(), &net_node)) return false;
  const std::uint64_t dist_v = r.get();
  std::uint32_t owner = 0;
  if (!decode_id(r.get(), &owner)) return false;
  if (!r.ok) return false;
  out.push_back(net_node);
  packed::pack_dist(out, decode_dist(dist_v));
  out.push_back(owner);
  return true;
}

}  // namespace

void encode_record_v3(Scheme scheme, const std::uint32_t* rec,
                      std::size_t words, std::uint64_t slack_net_size,
                      std::vector<std::uint8_t>& out) {
  switch (scheme) {
    case Scheme::kThorupZwick:
      encode_tz(rec, out);
      return;
    case Scheme::kSlack:
      for (std::uint64_t i = 0; i < slack_net_size; ++i) {
        put_varint(out, encode_dist(packed::read_dist(rec + 2 * i)));
      }
      (void)words;
      return;
    case Scheme::kCdg:
    case Scheme::kGraceful:
      put_varint(out, encode_id(rec[0]));
      put_varint(out, encode_dist(packed::read_dist(rec + 1)));
      put_varint(out, encode_id(rec[3]));
      encode_tz(rec + packed::kCdgPrefixWords, out);
      return;
  }
}

bool decode_record_v3(Scheme scheme, const std::uint8_t* begin,
                      const std::uint8_t* end, std::uint64_t slack_net_size,
                      std::vector<std::uint32_t>& out_words) {
  const std::size_t checkpoint = out_words.size();
  VarintReader r(begin, end);
  bool ok = false;
  switch (scheme) {
    case Scheme::kThorupZwick:
      ok = decode_tz(r, out_words);
      break;
    case Scheme::kSlack: {
      ok = true;
      for (std::uint64_t i = 0; ok && i < slack_net_size; ++i) {
        const std::uint64_t v = r.get();
        ok = r.ok;
        if (ok) packed::pack_dist(out_words, decode_dist(v));
      }
      break;
    }
    case Scheme::kCdg:
    case Scheme::kGraceful:
      ok = decode_cdg_prefix(r, out_words) && decode_tz(r, out_words);
      break;
  }
  // A record must consume its slice exactly — trailing bytes mean the
  // offset table and the blob disagree.
  if (!ok || !r.done()) {
    out_words.resize(checkpoint);
    return false;
  }
  return true;
}

V3TzHeader v3_parse_tz_header(const std::uint8_t* begin,
                              const std::uint8_t* end,
                              std::vector<DistKey>& pivots) {
  V3TzHeader h;
  VarintReader r(begin, end);
  const std::uint64_t levels = r.get();
  const std::uint64_t count = r.get();
  if (!r.ok) return h;
  const auto remaining = static_cast<std::uint64_t>(r.end - r.p);
  if (levels > remaining / 2 || count > remaining / 3) return h;
  Dist prev_dist = 0;
  for (std::uint64_t i = 0; i < levels; ++i) {
    std::uint32_t id = 0;
    if (!decode_id(r.get(), &id)) return h;
    const Dist d = prev_dist + unzigzag64(r.get());
    if (!r.ok) return h;
    prev_dist = d;
    pivots.push_back(DistKey{d, id});
  }
  h.levels = static_cast<std::uint32_t>(levels);
  h.count = static_cast<std::uint32_t>(count);
  h.bunch_begin = r.p;
  h.end = end;
  h.ok = true;
  return h;
}

void v3_scan_bunch(const V3TzHeader& h, const NodeId* probes, Dist* out,
                   std::size_t n_probes) {
  if (!h.ok || n_probes == 0) return;
  VarintReader r(h.bunch_begin, h.end);
  std::uint64_t prev_node = 0;
  for (std::uint32_t e = 0; e < h.count; ++e) {
    const std::uint64_t node = prev_node + unzigzag64(r.get());
    r.get();  // level: not needed for membership
    const Dist dist = r.get();
    if (!r.ok || node > 0xffffffffull) return;  // malformed tail: stop
    prev_node = node;
    const auto w = static_cast<NodeId>(node);
    for (std::size_t j = 0; j < n_probes; ++j) {
      if (probes[j] == w && out[j] == kInfDist) out[j] = dist;
    }
  }
}

Dist v3_tz_query(const std::uint8_t* ub, const std::uint8_t* ue,
                 const std::uint8_t* vb, const std::uint8_t* ve,
                 V3QueryScratch& scratch) {
  scratch.pivots_u.clear();
  scratch.pivots_v.clear();
  const V3TzHeader hu = v3_parse_tz_header(ub, ue, scratch.pivots_u);
  const V3TzHeader hv = v3_parse_tz_header(vb, ve, scratch.pivots_v);
  if (!hu.ok || !hv.ok) return kInfDist;
  const std::uint32_t k = std::min(hu.levels, hv.levels);
  if (k == 0) return kInfDist;
  // probe_ids[0..k): u's pivots, looked up in B(v);
  // probe_ids[k..2k): v's pivots, looked up in B(u).
  scratch.probe_ids.resize(2 * k);
  scratch.probe_dists.assign(2 * k, kInfDist);
  for (std::uint32_t i = 0; i < k; ++i) {
    scratch.probe_ids[i] = scratch.pivots_u[i].id;
    scratch.probe_ids[k + i] = scratch.pivots_v[i].id;
  }
  v3_scan_bunch(hv, scratch.probe_ids.data(), scratch.probe_dists.data(), k);
  v3_scan_bunch(hu, scratch.probe_ids.data() + k,
                scratch.probe_dists.data() + k, k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const DistKey& pu = scratch.pivots_u[i];
    if (pu.id != kInvalidNode && scratch.probe_dists[i] != kInfDist) {
      return pu.dist + scratch.probe_dists[i];
    }
    const DistKey& pv = scratch.pivots_v[i];
    if (pv.id != kInvalidNode && scratch.probe_dists[k + i] != kInfDist) {
      return pv.dist + scratch.probe_dists[k + i];
    }
  }
  return kInfDist;
}

V3CdgPrefix v3_parse_cdg_prefix(const std::uint8_t* begin,
                                const std::uint8_t* end) {
  V3CdgPrefix p;
  VarintReader r(begin, end);
  if (!decode_id(r.get(), &p.net_node)) return p;
  p.net_dist = decode_dist(r.get());
  if (!decode_id(r.get(), &p.owner)) return p;
  if (!r.ok) return p;
  p.rest = r.p;
  p.ok = true;
  return p;
}

}  // namespace dsketch
