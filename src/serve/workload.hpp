/// \file
/// Query workload generation for the serving benchmarks.
///
/// Two shapes cover the serving-tier cases of interest: `uniform` draws
/// independent random pairs (worst case for any cache), and `zipf` draws
/// from a fixed universe of hot pairs with Zipf(s) popularity — the
/// heavy-traffic pattern that per-shard LRUs are built for (a small head
/// of pairs dominates the stream). The zipf universe holds *distinct*
/// non-self pairs: duplicate draws and u == u pairs are rejected during
/// sampling, so every rank maps to its own pair and the realized
/// popularity distribution is the configured Zipf (aliased ranks used to
/// silently merge their mass onto one pair).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/pair_key.hpp"
#include "util/rng.hpp"

namespace dsketch {

/// Shape and skew of a generated query stream.
struct WorkloadConfig {
  /// Stream shape.
  enum class Kind {
    kUniform,  ///< independent uniform pairs (cache worst case)
    kZipf      ///< Zipf-skewed draws from a fixed hot-pair universe
  };
  Kind kind = Kind::kUniform;    ///< which stream shape to generate
  std::size_t hot_pairs = 4096;  ///< zipf universe size (clamped to the
                                 ///< number of distinct non-self pairs)
  double zipf_s = 1.2;           ///< zipf exponent (higher = more skew)
  /// Flip each drawn pair to the opposite orientation with probability
  /// 1/2 — the symmetric-traffic pattern where u asks d(u,v) while v
  /// asks d(v,u). Exercises canonical cache keying.
  bool mirror = false;
  std::uint64_t seed = 7;        ///< stream seed (same seed = same stream)
};

/// Parses "uniform" | "zipf"; throws std::runtime_error otherwise.
inline WorkloadConfig::Kind parse_workload_kind(const std::string& name) {
  if (name == "uniform") return WorkloadConfig::Kind::kUniform;
  if (name == "zipf") return WorkloadConfig::Kind::kZipf;
  throw std::runtime_error("unknown workload (want uniform|zipf): " + name);
}

/// Deterministic (seeded) query-pair stream over node ids [0, n).
class WorkloadGenerator {
 public:
  /// A query: ordered (source, target) node pair.
  using Pair = std::pair<NodeId, NodeId>;

  /// Prepares the stream (for zipf: samples the hot universe and builds
  /// the popularity CDF).
  WorkloadGenerator(NodeId n, const WorkloadConfig& cfg)
      : n_(n), cfg_(cfg), rng_(cfg.seed) {
    if (cfg_.kind == WorkloadConfig::Kind::kZipf) {
      if (n_ < 2) {
        throw std::runtime_error("zipf workload needs at least 2 nodes");
      }
      // Distinct non-self ordered pairs only: rejection-sample until the
      // universe is full (deterministic in the seed). Clamp the request
      // to the pair-space size so tiny graphs terminate.
      const std::uint64_t pair_space =
          static_cast<std::uint64_t>(n_) * (n_ - 1);
      const std::size_t target = static_cast<std::size_t>(
          std::min<std::uint64_t>(cfg_.hot_pairs, pair_space));
      universe_.reserve(target);
      std::unordered_set<std::uint64_t> seen;
      seen.reserve(target);
      Rng pair_rng = rng_.split(1);
      while (universe_.size() < target) {
        const Pair p = random_pair(pair_rng);
        if (p.first == p.second) continue;
        if (!seen.insert(ordered_pair_key(p.first, p.second)).second) {
          continue;
        }
        universe_.push_back(p);
      }
      // Popularity CDF over ranks: P(r) proportional to 1/(r+1)^s.
      cdf_.reserve(universe_.size());
      double total = 0;
      for (std::size_t r = 0; r < universe_.size(); ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), cfg_.zipf_s);
        cdf_.push_back(total);
      }
      for (double& c : cdf_) c /= total;
    }
  }

  /// Draws the next pair of the stream.
  Pair next() {
    Pair p;
    if (cfg_.kind == WorkloadConfig::Kind::kUniform) {
      p = random_pair(rng_);
    } else {
      const double x = rng_.uniform();
      const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
      const std::size_t rank =
          it == cdf_.end() ? cdf_.size() - 1
                           : static_cast<std::size_t>(it - cdf_.begin());
      p = universe_[rank];
    }
    if (cfg_.mirror && rng_.bernoulli(0.5)) std::swap(p.first, p.second);
    return p;
  }

  /// Draws `count` consecutive pairs.
  std::vector<Pair> batch(std::size_t count) {
    std::vector<Pair> pairs;
    pairs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) pairs.push_back(next());
    return pairs;
  }

  /// The zipf hot-pair universe, hottest rank first (empty for uniform).
  const std::vector<Pair>& universe() const { return universe_; }

 private:
  Pair random_pair(Rng& rng) {
    return {static_cast<NodeId>(rng.below(n_)),
            static_cast<NodeId>(rng.below(n_))};
  }

  NodeId n_;
  WorkloadConfig cfg_;
  Rng rng_;
  std::vector<Pair> universe_;
  std::vector<double> cdf_;
};

}  // namespace dsketch
