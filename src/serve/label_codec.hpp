// v3 record codec: delta + LEB128-varint encoding of packed sketch
// records.
//
// The v2 store spends 4 fixed words on a bunch entry and 3 on a pivot;
// almost all of those bits are zero on real graphs (node ids are dense,
// distances are small, bunches are sorted so consecutive node ids are
// close). The v3 format re-encodes each node's packed u32 record as a
// byte string:
//
//   tz record      varint(levels) varint(count)
//                  per pivot:  varint(id+1; 0 = invalid)
//                              varint(zigzag(dist - prev_pivot_dist))
//                  per entry:  varint(zigzag(node - prev_node))
//                              varint(level) varint(dist)
//   slack record   per net node: varint(dist+1; 0 = kInfDist)
//   cdg record     varint(net_node+1; 0 = invalid)
//                  varint(net_dist+1; 0 = kInfDist)
//                  varint(owner+1; 0 = invalid)  then the tz record
//
// Pivot distances are non-decreasing across levels on a fresh build and
// bunch entries are sorted by node id, so the zigzag deltas are small
// non-negatives; zigzag (not plain unsigned deltas) keeps the coding
// *bijective* for every structurally valid u32 record — including
// repair-tightened labels whose pivot distances are no longer monotone —
// which is what makes v2 -> v3 -> v2 byte-identical (tested).
//
// Every decode is bounds-checked against the record slice: corrupt bytes
// can produce garbage values or a clean failure, never an out-of-bounds
// read. That property is what lets the mmap store serve records without
// a load-time payload checksum pass.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"

namespace dsketch {

// ---- LEB128 varint primitives ----------------------------------------------

/// Appends x as a little-endian base-128 varint (1..10 bytes).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t x);

inline std::uint64_t zigzag64(std::uint64_t delta) {
  // Interpret the mod-2^64 delta as signed and fold the sign into bit 0.
  const auto s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

inline std::uint64_t unzigzag64(std::uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

/// Bounds-checked varint cursor over one record slice. Any overrun or
/// overlong encoding clears ok; get() then returns 0 and the caller
/// bails out. Never reads at or past `end`.
struct VarintReader {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool ok = true;

  VarintReader(const std::uint8_t* begin, const std::uint8_t* stop)
      : p(begin), end(stop) {}

  std::uint64_t get() {
    std::uint64_t x = 0;
    unsigned shift = 0;
    while (p != end) {
      const std::uint8_t b = *p++;
      if (shift == 63 && b > 1) break;  // would overflow 64 bits
      x |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return x;
      shift += 7;
      if (shift > 63) break;
    }
    ok = false;
    return 0;
  }
  bool done() const { return p == end; }
};

// ---- whole-record transcoding ----------------------------------------------

/// Encodes the packed u32 record [rec, rec + words) for `scheme` as v3
/// bytes appended to `out`. `slack_net_size` is the slack record width in
/// distances (ignored for other schemes). The record must be structurally
/// valid (see sketch_store's node_record_ok).
void encode_record_v3(Scheme scheme, const std::uint32_t* rec,
                      std::size_t words, std::uint64_t slack_net_size,
                      std::vector<std::uint8_t>& out);

/// Decodes one v3 record slice back into packed u32 words appended to
/// `out_words`. Returns false (leaving out_words restored to its input
/// length) if the bytes are not a structurally valid record consuming
/// exactly [begin, end).
bool decode_record_v3(Scheme scheme, const std::uint8_t* begin,
                      const std::uint8_t* end, std::uint64_t slack_net_size,
                      std::vector<std::uint32_t>& out_words);

// ---- streaming queries over v3 record slices -------------------------------
// Used by the mmap store: answers are computed straight off the encoded
// bytes — pivots decode into a small scratch vector, and each bunch is
// walked exactly once per query (a merge-scan of the probe set against
// the delta stream), so nothing is materialized per record.

/// Decoded tz record header: pivots plus the position of the bunch
/// stream. `pivots` points into the caller's scratch vector.
struct V3TzHeader {
  std::uint32_t levels = 0;
  std::uint32_t count = 0;
  const std::uint8_t* bunch_begin = nullptr;  ///< first bunch byte
  const std::uint8_t* end = nullptr;          ///< record slice end
  bool ok = false;
};

/// Parses levels/count/pivots of the tz record slice [begin, end),
/// appending the pivots to `pivots` (not cleared). For a cdg record pass
/// the slice starting at its embedded tz record.
V3TzHeader v3_parse_tz_header(const std::uint8_t* begin,
                              const std::uint8_t* end,
                              std::vector<DistKey>& pivots);

/// One pass over a v3 bunch stream, probing for up to `n_probes` node
/// ids: out[i] (pre-filled with kInfDist by the caller) receives the
/// distance of the first entry whose node is probes[i] (left at kInfDist
/// if absent or the stream is malformed). Mirrors LabelView::bunch_dist
/// for every probe in one scan.
void v3_scan_bunch(const V3TzHeader& h, const NodeId* probes, Dist* out,
                   std::size_t n_probes);

/// The Lemma 3.2 query over two v3 tz record slices (two header parses +
/// two bunch scans). `scratch` is caller-owned reusable storage.
struct V3QueryScratch {
  std::vector<DistKey> pivots_u;
  std::vector<DistKey> pivots_v;
  std::vector<NodeId> probe_ids;
  std::vector<Dist> probe_dists;
};
Dist v3_tz_query(const std::uint8_t* ub, const std::uint8_t* ue,
                 const std::uint8_t* vb, const std::uint8_t* ve,
                 V3QueryScratch& scratch);

/// cdg prefix decoded off a v3 record slice; `rest` points at the
/// embedded tz record.
struct V3CdgPrefix {
  NodeId net_node = kInvalidNode;
  Dist net_dist = kInfDist;
  NodeId owner = kInvalidNode;
  const std::uint8_t* rest = nullptr;
  bool ok = false;
};
V3CdgPrefix v3_parse_cdg_prefix(const std::uint8_t* begin,
                                const std::uint8_t* end);

}  // namespace dsketch
