/// \file
/// Memory-mapped serving of a v3 sketch store.
///
/// SketchStore::read decodes the whole file into heap arenas — fine for
/// tooling, but a serving frontend that hosts many stores (or one store
/// much larger than RAM) wants the kernel's page cache to be the only
/// copy. MmapSketchStore maps the file read-only and answers queries
/// straight off the encoded bytes:
///
///   - open() eagerly trusts only the 64-byte header (magic + FNV-1a
///     header checksum) and the segment *framing*: meta words, the
///     page-aligned byte-offset tables (checked monotone, [0] == 0,
///     [n] == blob_bytes), and that every section fits the mapping.
///     That touches O(n) offset-table pages but zero blob pages.
///   - The blob is validated lazily: every per-query decode is
///     bounds-checked against the record slice (see label_codec), so a
///     corrupt blob yields kInfDist answers, never an out-of-bounds
///     read. Pass verify_checksum=true to pay one full payload pass up
///     front instead.
///   - Queries never materialize a record: tz is two header parses plus
///     one scan of each bunch stream (probing all k pivot ids per
///     entry), slack is a lockstep scan of the two varint rows, cdg
///     adds a 3-varint prefix decode. Answers are bit-identical to the
///     heap SketchStore on the same file (tested).
///
/// First touch of a record's page is a major/minor page fault (the
/// "cold" cost E7 reports); repeated touches run at memory speed
/// ("warm"). drop_pages() releases the resident pages so a bench can
/// re-measure fault-in without reopening.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "serve/sketch_store.hpp"

namespace dsketch {

class MmapSketchStore final : public DistanceOracle {
 public:
  /// Maps `path` (a v3 store; v1/v2 files throw kUnsupportedVersion —
  /// convert via SketchStore::save_file). Throws StoreCorruptionError on
  /// a bad header or broken framing, and — with verify_checksum — on a
  /// payload checksum mismatch.
  static std::unique_ptr<MmapSketchStore> open(const std::string& path,
                                               bool verify_checksum = false);

  ~MmapSketchStore() override;
  MmapSketchStore(const MmapSketchStore&) = delete;
  MmapSketchStore& operator=(const MmapSketchStore&) = delete;

  /// Streaming query over the encoded records; thread-safe (the scratch
  /// is thread-local). Malformed records answer kInfDist.
  Dist query(NodeId u, NodeId v) const override;

  NodeId num_nodes() const override { return n_; }
  /// Word-model size of node u's records — same formula the heap store
  /// reports, decoded from the record headers (not the encoded bytes;
  /// encoded_bytes_for is the on-disk number).
  std::size_t size_words(NodeId u) const override;
  std::string scheme() const override;
  std::string guarantee() const override;
  /// Heap-store capabilities minus save: the mapping is already the
  /// persistent form.
  Capabilities capabilities() const override;

  Scheme store_scheme() const { return scheme_; }
  std::uint32_t k() const { return k_; }
  double epsilon() const { return epsilon_; }
  bool epsilon_known() const { return epsilon_known_; }
  std::size_t num_segments() const { return segments_.size(); }
  /// Bytes mapped (the whole file).
  std::size_t mapped_bytes() const { return map_len_; }
  /// Encoded bytes of node u's records on disk, summed across segments.
  std::size_t encoded_bytes_for(NodeId u) const;

  /// Releases the resident pages of the mapping (madvise MADV_DONTNEED):
  /// the next query faults them back in. Benches use this to re-measure
  /// cold (fault-in) latency without reopening the file.
  void drop_pages() const;

  /// Decodes node u's record in `segment` back to packed u32 words —
  /// the test hook that proves mmap bytes and heap arenas agree. Returns
  /// an empty vector when the record is malformed.
  std::vector<std::uint32_t> decode_record(std::size_t segment,
                                           NodeId u) const;

 private:
  MmapSketchStore() = default;

  struct MSeg {
    std::vector<std::uint64_t> meta;
    const std::uint8_t* offsets = nullptr;  ///< n+1 little-endian u64s
    const std::uint8_t* blob = nullptr;
    std::uint64_t blob_bytes = 0;
  };

  std::uint64_t off(const MSeg& seg, NodeId i) const;
  Dist query_cdg_segment(const MSeg& seg, NodeId u, NodeId v) const;

  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  Scheme scheme_ = Scheme::kThorupZwick;
  NodeId n_ = 0;
  std::uint32_t k_ = 0;
  double epsilon_ = 0.0;
  bool epsilon_known_ = true;
  std::vector<MSeg> segments_;
};

}  // namespace dsketch
