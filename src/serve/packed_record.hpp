// Packed (u32-word) record layout shared by the heap store and the v3
// codec.
//
// A node's packed sketch is a flat slice of 32-bit words (see
// serve/sketch_store.hpp for the per-scheme layouts). These helpers used
// to be file-local to sketch_store.cpp; the v3 varint codec
// (serve/label_codec) re-encodes exactly these records, so the layout
// constants and the in-place views live here, in one place.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {
namespace packed {

/// Distances occupy two words, little-endian (lo, hi).
inline Dist read_dist(const std::uint32_t* p) {
  return static_cast<Dist>(p[0]) | (static_cast<Dist>(p[1]) << 32);
}

inline void pack_dist(std::vector<std::uint32_t>& arena, Dist d) {
  arena.push_back(static_cast<std::uint32_t>(d));
  arena.push_back(static_cast<std::uint32_t>(d >> 32));
}

constexpr std::size_t kPivotStride = 3;  // id, dist lo, dist hi
constexpr std::size_t kBunchStride = 4;  // node, level, dist lo, dist hi

// CDG record: [net_node, net_dist (2), owner, tz label record].
constexpr std::size_t kCdgPrefixWords = 4;

/// In-place view of a packed TZ label record:
/// [levels, bunch_count, (pivot_id, D) x levels,
///  (node, level, D) x bunch_count sorted by node].
struct PackedLabel {
  const std::uint32_t* rec;

  std::uint32_t levels() const { return rec[0]; }
  std::uint32_t bunch_count() const { return rec[1]; }
  const std::uint32_t* pivots() const { return rec + 2; }
  const std::uint32_t* bunch() const {
    return rec + 2 + kPivotStride * levels();
  }
  NodeId pivot_id(std::uint32_t i) const { return pivots()[kPivotStride * i]; }
  Dist pivot_dist(std::uint32_t i) const {
    return read_dist(pivots() + kPivotStride * i + 1);
  }
  std::size_t words() const {
    return 2 + kPivotStride * levels() + kBunchStride * bunch_count();
  }

  Dist bunch_dist(NodeId w) const {
    const std::uint32_t* b = bunch();
    std::size_t lo = 0, hi = bunch_count();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const NodeId node = b[kBunchStride * mid];
      if (node < w) {
        lo = mid + 1;
      } else if (node > w) {
        hi = mid;
      } else {
        return read_dist(b + kBunchStride * mid + 2);
      }
    }
    return kInfDist;
  }
};

/// Mirror of tz_query_trace over packed records; the caller handles the
/// owner-equality short-circuit.
inline Dist packed_tz_query(const PackedLabel& lu, const PackedLabel& lv) {
  const std::uint32_t k =
      lu.levels() < lv.levels() ? lu.levels() : lv.levels();
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId pu = lu.pivot_id(i);
    if (pu != kInvalidNode) {
      const Dist dv = lv.bunch_dist(pu);
      if (dv != kInfDist) return lu.pivot_dist(i) + dv;
    }
    const NodeId pv = lv.pivot_id(i);
    if (pv != kInvalidNode) {
      const Dist du = lu.bunch_dist(pv);
      if (du != kInfDist) return lv.pivot_dist(i) + du;
    }
  }
  return kInfDist;
}

}  // namespace packed
}  // namespace dsketch
