#include "serve/mmap_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include "core/sketch_oracle.hpp"
#include "obs/trace.hpp"
#include "serve/label_codec.hpp"
#include "serve/packed_record.hpp"
#include "serve/store_format.hpp"
#include "util/assert.hpp"

namespace dsketch {
namespace {

namespace sf = store_format;

[[noreturn]] void fail(StoreError kind, const std::string& what) {
  throw StoreCorruptionError(kind, "sketch store: " + what);
}

// Query scratch is thread-local so query() stays allocation-free after
// warmup and safe for concurrent callers (each thread owns its buffers).
V3QueryScratch& scratch() {
  thread_local V3QueryScratch s;
  return s;
}

std::vector<DistKey>& pivot_scratch() {
  thread_local std::vector<DistKey> s;
  return s;
}

/// Word-model size of one encoded tz record (the formula the heap store
/// reports); 0 when the slice is malformed.
std::size_t tz_record_words(const std::uint8_t* begin,
                            const std::uint8_t* end) {
  std::vector<DistKey>& pivots = pivot_scratch();
  pivots.clear();
  const V3TzHeader h = v3_parse_tz_header(begin, end, pivots);
  if (!h.ok) return 0;
  return 2 + packed::kPivotStride * h.levels + packed::kBunchStride * h.count;
}

}  // namespace

std::unique_ptr<MmapSketchStore> MmapSketchStore::open(const std::string& path,
                                                       bool verify_checksum) {
  const obs::Span span("store_mmap_open");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(StoreError::kIo, "cannot open for read: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(StoreError::kIo, "cannot stat: " + path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len < sf::kPayloadStart) {
    ::close(fd);
    fail(StoreError::kTruncatedHeader, "truncated header");
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) fail(StoreError::kIo, "mmap failed: " + path);

  std::unique_ptr<MmapSketchStore> store(new MmapSketchStore());
  store->map_ = base;
  store->map_len_ = len;
  const auto* data = static_cast<const std::uint8_t*>(base);

  // The destructor unmaps, so from here a parse failure cleans up by
  // letting `store` die.
  const sf::StoreHeader hdr = sf::parse_v3_header(data, len);
  store->scheme_ = static_cast<Scheme>(hdr.scheme_raw);
  store->n_ = hdr.n;
  store->k_ = hdr.k;
  store->epsilon_ = hdr.epsilon;
  store->epsilon_known_ = hdr.epsilon_known;

  if (len - sf::kPayloadStart < hdr.payload_size) {
    fail(StoreError::kTruncatedPayload, "truncated payload");
  }
  const std::uint8_t* payload = data + sf::kPayloadStart;
  if (verify_checksum &&
      sf::fnv1a64(payload, hdr.payload_size) != hdr.checksum) {
    fail(StoreError::kPayloadChecksum, "checksum mismatch");
  }

  // Framing walk: everything except the blob bytes is validated here.
  std::uint64_t pos = 0;
  const auto need = [&](std::uint64_t bytes) {
    if (hdr.payload_size - pos < bytes) {
      fail(StoreError::kTruncatedPayload, "truncated payload");
    }
  };
  store->segments_.reserve(hdr.segment_count);
  for (std::uint32_t s = 0; s < hdr.segment_count; ++s) {
    MSeg seg;
    need(8);
    const std::uint64_t meta_count = sf::load_u64(payload + pos);
    pos += 8;
    if (meta_count > (hdr.payload_size - pos) / 8) {
      fail(StoreError::kStructure, "corrupt meta count");
    }
    seg.meta.reserve(meta_count);
    for (std::uint64_t i = 0; i < meta_count; ++i) {
      seg.meta.push_back(sf::load_u64(payload + pos));
      pos += 8;
    }
    if (store->scheme_ == Scheme::kSlack) {
      if (seg.meta.empty() || seg.meta[0] + 1 != seg.meta.size()) {
        fail(StoreError::kStructure, "slack net meta size mismatch");
      }
    } else if (!seg.meta.empty()) {
      fail(StoreError::kStructure, "unexpected segment meta");
    }
    need(8);
    seg.blob_bytes = sf::load_u64(payload + pos);
    pos += 8;
    pos += sf::v3_pad(pos);  // need() below catches running off the end
    const std::uint64_t offsets_bytes =
        8 * (static_cast<std::uint64_t>(store->n_) + 1);
    need(offsets_bytes);
    seg.offsets = payload + pos;
    std::uint64_t prev = sf::load_u64(seg.offsets);
    if (prev != 0) fail(StoreError::kStructure, "blob offset mismatch");
    for (NodeId i = 1; i <= store->n_; ++i) {
      const std::uint64_t o = sf::load_u64(seg.offsets + 8 * i);
      if (o < prev) fail(StoreError::kStructure, "offsets not monotone");
      prev = o;
    }
    if (prev != seg.blob_bytes) {
      fail(StoreError::kStructure, "blob offset mismatch");
    }
    pos += offsets_bytes;
    pos += sf::v3_pad(pos);
    need(seg.blob_bytes);
    seg.blob = payload + pos;
    pos += seg.blob_bytes;
    pos += sf::v3_pad(pos);
    if (pos > hdr.payload_size) {
      fail(StoreError::kTruncatedPayload, "truncated payload");
    }
    store->segments_.push_back(std::move(seg));
  }
  if (pos != hdr.payload_size) {
    fail(StoreError::kStructure, "trailing payload bytes");
  }
  if (store->segments_.empty()) fail(StoreError::kStructure, "no segments");
  return store;
}

MmapSketchStore::~MmapSketchStore() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

std::uint64_t MmapSketchStore::off(const MSeg& seg, NodeId i) const {
  return sf::load_u64(seg.offsets + 8 * static_cast<std::size_t>(i));
}

Dist MmapSketchStore::query_cdg_segment(const MSeg& seg, NodeId u,
                                        NodeId v) const {
  const std::uint8_t* ub = seg.blob + off(seg, u);
  const std::uint8_t* ue = seg.blob + off(seg, u + 1);
  const std::uint8_t* vb = seg.blob + off(seg, v);
  const std::uint8_t* ve = seg.blob + off(seg, v + 1);
  const V3CdgPrefix pu = v3_parse_cdg_prefix(ub, ue);
  const V3CdgPrefix pv = v3_parse_cdg_prefix(vb, ve);
  if (!pu.ok || !pv.ok) return kInfDist;
  // Mirror of SketchStore::query_segment: an infinite net distance
  // (unreachable net node, or a quarantined record) must not flow into
  // the sum — it would wrap around.
  if (pu.net_dist == kInfDist || pv.net_dist == kInfDist) return kInfDist;
  const Dist mid = pu.owner == pv.owner
                       ? 0
                       : v3_tz_query(pu.rest, ue, pv.rest, ve, scratch());
  if (mid == kInfDist) return kInfDist;
  return pu.net_dist + mid + pv.net_dist;
}

Dist MmapSketchStore::query(NodeId u, NodeId v) const {
  DS_CHECK(u < n_ && v < n_);
  if (u == v) return 0;
  switch (scheme_) {
    case Scheme::kThorupZwick: {
      const MSeg& seg = segments_[0];
      return v3_tz_query(seg.blob + off(seg, u), seg.blob + off(seg, u + 1),
                         seg.blob + off(seg, v), seg.blob + off(seg, v + 1),
                         scratch());
    }
    case Scheme::kSlack: {
      // Lockstep scan of the two varint rows — same arithmetic as the
      // heap store's fixed-width loop.
      const MSeg& seg = segments_[0];
      const std::uint64_t net_size = seg.meta[0];
      VarintReader ru(seg.blob + off(seg, u), seg.blob + off(seg, u + 1));
      VarintReader rv(seg.blob + off(seg, v), seg.blob + off(seg, v + 1));
      Dist best = kInfDist;
      for (std::uint64_t i = 0; i < net_size; ++i) {
        const std::uint64_t a = ru.get();
        const std::uint64_t b = rv.get();
        if (!ru.ok || !rv.ok) return kInfDist;
        if (a == 0 || b == 0) continue;  // 0 encodes kInfDist
        best = std::min(best, (a - 1) + (b - 1));
      }
      return best;
    }
    case Scheme::kCdg:
      return query_cdg_segment(segments_[0], u, v);
    case Scheme::kGraceful: {
      Dist best = kInfDist;
      for (const MSeg& seg : segments_) {
        best = std::min(best, query_cdg_segment(seg, u, v));
      }
      return best;
    }
  }
  return kInfDist;
}

std::size_t MmapSketchStore::size_words(NodeId u) const {
  DS_CHECK(u < n_);
  std::size_t words = 0;
  for (const MSeg& seg : segments_) {
    const std::uint8_t* begin = seg.blob + off(seg, u);
    const std::uint8_t* end = seg.blob + off(seg, u + 1);
    switch (scheme_) {
      case Scheme::kThorupZwick:
        words += tz_record_words(begin, end);
        break;
      case Scheme::kSlack:
        words += 2 * static_cast<std::size_t>(seg.meta[0]);
        break;
      case Scheme::kCdg:
      case Scheme::kGraceful: {
        const V3CdgPrefix p = v3_parse_cdg_prefix(begin, end);
        if (p.ok) {
          words += packed::kCdgPrefixWords + tz_record_words(p.rest, end);
        }
        break;
      }
    }
  }
  return words;
}

std::size_t MmapSketchStore::encoded_bytes_for(NodeId u) const {
  DS_CHECK(u < n_);
  std::size_t bytes = 0;
  for (const MSeg& seg : segments_) {
    bytes += static_cast<std::size_t>(off(seg, u + 1) - off(seg, u));
  }
  return bytes;
}

std::string MmapSketchStore::scheme() const { return scheme_name(scheme_); }

std::string MmapSketchStore::guarantee() const {
  return sketch_guarantee(scheme_, k_, epsilon_);
}

Capabilities MmapSketchStore::capabilities() const {
  Capabilities caps = sketch_capabilities(scheme_, k_);
  caps.build_cost_available = false;
  // No save path: the mapped file IS the persistent form; converting
  // back to heap (SketchStore::load_file) is the write-capable route.
  caps.supports_save = false;
  return caps;
}

void MmapSketchStore::drop_pages() const {
  if (map_ != nullptr) ::madvise(map_, map_len_, MADV_DONTNEED);
}

std::vector<std::uint32_t> MmapSketchStore::decode_record(std::size_t segment,
                                                          NodeId u) const {
  DS_CHECK(segment < segments_.size() && u < n_);
  const MSeg& seg = segments_[segment];
  const std::uint64_t slack_net =
      scheme_ == Scheme::kSlack ? seg.meta[0] : 0;
  std::vector<std::uint32_t> words;
  if (!decode_record_v3(scheme_, seg.blob + off(seg, u),
                        seg.blob + off(seg, u + 1), slack_net, words)) {
    words.clear();
  }
  return words;
}

}  // namespace dsketch
