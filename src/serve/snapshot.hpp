/// \file
/// Generation-tagged atomic oracle snapshots — the hot-swap primitive of
/// the serving tier.
///
/// A serving frontend holds its DistanceOracle behind an OracleSlot. The
/// query path calls load() once per batch and works against the returned
/// snapshot for the whole batch: oracle pointer, generation number, and
/// the capability bits the cache policy needs are captured together, so a
/// concurrent swap can never tear a batch across two oracles. Publishing
/// a rebuilt oracle (store()) is one atomic pointer flip — readers never
/// block on it, and the old oracle stays alive until the last in-flight
/// batch drops its shared_ptr.
///
/// Generations are strictly increasing and identify which oracle answered
/// a batch; the query service invalidates per-shard caches by comparing
/// the shard's recorded generation against the pinned snapshot's.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "core/oracle.hpp"
#include "util/assert.hpp"

namespace dsketch {

/// One immutable published oracle: what a batch pins at its start.
struct OracleSnapshot {
  std::shared_ptr<const DistanceOracle> oracle;
  std::uint64_t generation = 0;
  /// Cached oracle->capabilities().symmetric: whether a cache in front
  /// of this oracle may key the canonical (min, max) pair.
  bool symmetric = false;
};

/// The swappable slot. load() is the wait-free reader side (one atomic
/// shared_ptr load); store() serializes writers and bumps the generation.
class OracleSlot {
 public:
  /// The slot always holds an oracle; generation starts at 0.
  explicit OracleSlot(std::shared_ptr<const DistanceOracle> initial) {
    DS_CHECK(initial != nullptr);
    snap_.store(make_snapshot(std::move(initial), 0),
                std::memory_order_release);
  }

  /// The current snapshot; safe from any thread, never blocks on store().
  OracleSnapshot load() const {
    return *snap_.load(std::memory_order_acquire);
  }

  /// The snapshot displaced by the most recent store() — kept alive as the
  /// degraded-mode failover target (query_service circuit breaker). The
  /// oracle pointer is null until the first store().
  OracleSnapshot previous() const {
    const auto p = prev_.load(std::memory_order_acquire);
    return p ? *p : OracleSnapshot{};
  }

  /// Publishes `next` under the next generation and returns it. The flip
  /// itself is one atomic store; the mutex only serializes concurrent
  /// publishers so generations stay monotonic. The displaced snapshot
  /// becomes previous().
  std::uint64_t store(std::shared_ptr<const DistanceOracle> next) {
    DS_CHECK(next != nullptr);
    std::lock_guard<std::mutex> lock(writer_mu_);
    const auto current = snap_.load(std::memory_order_acquire);
    const std::uint64_t generation = current->generation + 1;
    prev_.store(current, std::memory_order_release);
    snap_.store(make_snapshot(std::move(next), generation),
                std::memory_order_release);
    return generation;
  }

  std::uint64_t generation() const {
    return snap_.load(std::memory_order_acquire)->generation;
  }

 private:
  static std::shared_ptr<const OracleSnapshot> make_snapshot(
      std::shared_ptr<const DistanceOracle> oracle,
      std::uint64_t generation) {
    auto snap = std::make_shared<OracleSnapshot>();
    snap->symmetric = oracle->capabilities().symmetric;
    snap->oracle = std::move(oracle);
    snap->generation = generation;
    return snap;
  }

  std::atomic<std::shared_ptr<const OracleSnapshot>> snap_;
  std::atomic<std::shared_ptr<const OracleSnapshot>> prev_;
  std::mutex writer_mu_;
};

/// Wraps a caller-owned oracle reference in a non-owning shared_ptr (the
/// compat path for services constructed over a bare reference).
inline std::shared_ptr<const DistanceOracle> borrow_oracle(
    const DistanceOracle& oracle) {
  return std::shared_ptr<const DistanceOracle>(
      std::shared_ptr<const DistanceOracle>{}, &oracle);
}

}  // namespace dsketch
