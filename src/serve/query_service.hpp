/// \file
/// Sharded multi-threaded batch query engine over any DistanceOracle,
/// with zero-downtime oracle hot-swap.
///
/// The serving tier's unit of work is a batch of (u, v) pairs. Pairs are
/// hash-partitioned into shards by their canonical (min, max) key, so both
/// orientations of a pair land on the same shard; shards then execute in
/// parallel on a dedicated util/thread_pool. Every oracle's query path is
/// a concurrent-safe pure read (the DistanceOracle contract), so shards
/// share the backing structure with no synchronization — the only mutable
/// state (cache, stats) is shard-private.
///
/// Cache identity follows the oracle's Capabilities::symmetric bit: a
/// symmetric oracle (exact, landmark, vivaldi, slack) caches under the
/// canonical key, so query(u, v) warms query(v, u) — without this, the
/// two orientations of one hot pair occupy two cache slots and the
/// effective hit rate halves. Orientation-dependent oracles (the TZ
/// pivot walk and its CDG/graceful derivatives) keep the ordered key,
/// because query(u, v) and query(v, u) may settle on different (both
/// valid) estimates and the service must reproduce the oracle's answer
/// for the orientation actually asked.
///
/// The oracle lives behind a generation-tagged atomic snapshot
/// (serve/snapshot.hpp). swap() publishes a replacement with one pointer
/// flip: in-flight batches finish against the snapshot they pinned,
/// later batches see the new oracle, and each shard drops its cache the
/// first time it runs under a new generation — queries never block on a
/// swap and never observe a torn oracle or a stale cached answer.
///
/// The usual backing oracle is the packed SketchStore (the serving
/// representation), but any registered scheme serves: a landmark table,
/// the exact matrix, a freshly built sketch.
///
/// \code
///   auto oracle = SketchStore::load_oracle("net.sketch");
///   QueryService service(std::move(oracle), {.shards = 8, .threads = 8,
///                                            .cache_capacity = 4096});
///   service.query_batch(pairs, answers);  // answers[i] == oracle->query(...)
///   service.swap(rebuilt);                // hot-swap, readers never block
///   service.stats().qps;
/// \endcode
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/oracle.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"
#include "util/lru_cache.hpp"
#include "util/pair_key.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

/// dsketch — distributed distance sketches (library root namespace).
namespace dsketch {

/// Shard, thread, and cache sizing for a QueryService.
struct QueryServiceConfig {
  /// Partitions of the pair space; 0 picks max(8, 4 x threads). The
  /// thread pool only engages when shards >= 2 x threads (parallel_for
  /// runs small counts serially), so keep shards comfortably above the
  /// thread count — the auto default does.
  std::size_t shards = 0;
  std::size_t threads = 0;         ///< pool lanes; 0 = hardware concurrency
  std::size_t cache_capacity = 0;  ///< per-shard LRU entries; 0 disables
  /// Debug/benchmark override: key caches by the ordered pair even for
  /// symmetric oracles (the pre-fix behavior; lets serve-bench measure
  /// the canonical-key hit-rate delta).
  bool force_ordered_keys = false;
  /// When false, shard slices skip latency recording entirely (no timer
  /// read, no histogram update). The counters (queries/hits) still run —
  /// they are integral to cache behavior, not observability. This is the
  /// measured "observability off" mode of the obs_overhead bench rows.
  bool collect_metrics = true;

  // ---- degraded-mode serving (all off by default) --------------------------
  // A query that throws is retried with exponential backoff; a slice that
  // still fails (or overruns its deadline) counts one strike against the
  // shard's circuit breaker. After `breaker_threshold` consecutive strikes
  // the breaker opens: the shard stops touching the primary oracle and
  // serves from the previous OracleSlot generation if one exists, else from
  // `fallback` (e.g. an ExactOracle recomputing BFS answers), else answers
  // kInfDist ("don't know" — never a wrong finite distance). After
  // `breaker_cooldown_batches` batches the breaker half-opens: one probe
  // slice runs against the primary; success closes it, failure re-opens.
  // Degraded answers bypass the shard cache (they belong to a different
  // oracle identity), so a recovered shard never serves a stale mixture.

  /// Wall-clock budget for one shard's slice of a batch, in microseconds.
  /// Once exceeded, the rest of the slice is served degraded and the
  /// overrun counts as a breaker strike. 0 disables deadlines.
  std::uint64_t shard_deadline_us = 0;
  std::uint32_t max_retries = 2;        ///< per-query retries on a throw
  std::uint64_t retry_backoff_us = 50;  ///< first backoff; doubles per retry
  /// Consecutive failing slices that open a shard's breaker; 0 disables
  /// the breaker (failures still retry and fail over per query).
  std::uint64_t breaker_threshold = 3;
  std::uint64_t breaker_cooldown_batches = 4;  ///< open -> half-open probe
  /// Last-line fallback oracle for broken shards when no previous
  /// generation exists (typically baselines' ExactOracle over the graph).
  std::shared_ptr<const DistanceOracle> fallback;
};

/// Service-wide roll-up of per-shard counters (see QueryService::stats).
struct QueryServiceStats {
  std::uint64_t queries = 0;     ///< total pairs answered
  std::uint64_t cache_hits = 0;  ///< answered from a shard LRU
  std::uint64_t batches = 0;     ///< query_batch calls
  std::uint64_t swaps = 0;       ///< oracles hot-swapped in
  std::uint64_t generation = 0;  ///< current snapshot generation
  std::uint64_t cache_invalidations = 0;  ///< shard caches dropped on swap
  double wall_seconds = 0;    ///< total query_batch wall time
  double qps = 0;             ///< queries / wall_seconds
  double hit_rate = 0;        ///< cache_hits / queries
  double p50_shard_batch_us = 0;  ///< per-shard slice latency percentiles
  double p99_shard_batch_us = 0;
  /// Full roll-up of the per-shard slice latency histograms (the p50/p99
  /// fields above are copies of its percentiles, kept for schema
  /// stability).
  Summary slice_latency_us;
  std::vector<std::uint64_t> shard_queries;  ///< load balance view

  // Degraded-mode decision counters (see QueryServiceConfig). Every
  // degradation decision increments exactly one of these.
  std::uint64_t query_failures = 0;    ///< primary queries failed post-retry
  std::uint64_t query_retries = 0;     ///< individual retry attempts
  std::uint64_t deadline_violations = 0;  ///< shard slices over budget
  std::uint64_t breaker_opens = 0;     ///< closed/half-open -> open edges
  std::uint64_t breaker_probes = 0;    ///< half-open probe slices run
  std::uint64_t stale_answers = 0;     ///< served from previous generation
  std::uint64_t fallback_answers = 0;  ///< served from the fallback oracle
  std::uint64_t shed_answers = 0;      ///< kInfDist, no failover available
  std::uint64_t breakers_open = 0;     ///< shards currently open/half-open
};

/// The sharded batch query engine (see the file comment for the model).
/// Thread model: any number of threads may call swap()/generation()/
/// snapshot() concurrently with the batch driver, but batches themselves
/// come from one driver thread at a time (shard state is unsynchronized).
class QueryService {
 public:
  /// A query: ordered (source, target) node pair.
  using Pair = QueryPair;

  /// Non-owning compat constructor: the oracle must outlive the service
  /// (and any oracle later swap()ped in manages its own lifetime).
  explicit QueryService(const DistanceOracle& oracle,
                        QueryServiceConfig cfg = {});

  /// Owning constructor — the hot-swap pipeline's entry point.
  explicit QueryService(std::shared_ptr<const DistanceOracle> oracle,
                        QueryServiceConfig cfg = {});

  /// Answers out[i] = oracle.query(pairs[i]) for every i against the
  /// snapshot pinned at batch start; out.size() must equal pairs.size().
  /// Deterministic regardless of shard/thread count. Returns the
  /// generation of the snapshot that answered the batch.
  std::uint64_t query_batch(std::span<const Pair> pairs,
                            std::span<Dist> out);

  /// Single-pair convenience (routes through the owning shard's cache).
  Dist query(NodeId u, NodeId v);

  /// Publishes `next` as the serving oracle and returns its generation.
  /// One atomic pointer flip: concurrent query_batch calls never block
  /// and never mix oracles within a batch; each shard's cache is dropped
  /// the first time it serves under the new generation.
  std::uint64_t swap(std::shared_ptr<const DistanceOracle> next);

  /// The currently published snapshot (oracle + generation).
  OracleSnapshot snapshot() const { return slot_.load(); }
  /// Generation of the currently published oracle (0 until a swap).
  std::uint64_t generation() const { return slot_.generation(); }

  /// Rolls the shard-private counters up into one service-wide view.
  QueryServiceStats stats() const;
  /// Zeroes all counters and latency samples (caches stay warm).
  void reset_stats();

  /// Publishes the current stats into `registry` under serve_* names
  /// (counters/gauges overwritten, the slice-latency histogram replaced
  /// by a fresh merge). Pull-model: call before exporting the registry.
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Number of pair-space partitions.
  std::size_t num_shards() const { return shards_.size(); }
  /// Pool lanes incl. the calling thread.
  std::size_t num_threads() const { return pool_.size() + 1; }

 private:
  /// Per-shard circuit breaker state (see QueryServiceConfig's degraded-
  /// mode comment for the transition rules).
  enum class Breaker { kClosed, kOpen, kHalfOpen };

  struct Shard {
    LruCache<std::uint64_t, Dist> cache;
    /// Generation whose answers the cache holds; a batch under a newer
    /// snapshot clears the cache before serving from it.
    std::uint64_t cache_generation = 0;
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t invalidations = 0;
    /// Latency of this shard's batch slices. Fixed-memory log-bucketed
    /// histogram (~0.8% relative error): bounded under sustained load,
    /// merged across shards at stats() time without a copy+sort.
    obs::LatencyHistogram slice_latency_us;
    std::vector<std::uint32_t> slice;  ///< scratch: pair indices this batch

    Breaker breaker = Breaker::kClosed;
    std::uint64_t strikes = 0;       ///< consecutive failing slices
    std::uint64_t probe_batch = 0;   ///< batch at which open -> half-open
    std::uint64_t failures = 0;
    std::uint64_t retries = 0;
    std::uint64_t deadline_violations = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_probes = 0;
    std::uint64_t stale_answers = 0;
    std::uint64_t fallback_answers = 0;
    std::uint64_t shed_answers = 0;
  };

  // Cache identity: ordered_pair_key for orientation-dependent oracles,
  // canonical_pair_key (also the routing identity) for symmetric ones.
  std::size_t shard_of(std::uint64_t key) const {
    // splitmix64 finalizer: spreads sequential ids across shards.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) % shards_.size());
  }

  /// Everything one batch hands every shard: the pinned primary snapshot
  /// plus the degraded-mode failover targets, resolved once per batch.
  struct BatchCtx {
    OracleSnapshot snap;      ///< pinned primary
    OracleSnapshot previous;  ///< slot_.previous(); oracle null before swap 1
    bool canonical_keys = false;
    std::uint64_t batch = 0;  ///< batch sequence number (breaker clock)
  };

  void run_shard(Shard& shard, const BatchCtx& ctx,
                 std::span<const Pair> pairs, std::span<Dist> out);
  /// Answers one pair from the failover chain (previous generation, then
  /// fallback, then kInfDist), bumping the matching decision counter.
  Dist query_degraded(Shard& shard, const BatchCtx& ctx, NodeId u, NodeId v);
  /// Primary query with retry/backoff; false once retries are exhausted.
  bool query_primary(Shard& shard, const OracleSnapshot& snap, NodeId u,
                     NodeId v, Dist& answer);

  OracleSlot slot_;
  bool force_ordered_keys_ = false;
  bool collect_metrics_ = true;
  QueryServiceConfig cfg_;
  ThreadPool pool_;
  std::vector<Shard> shards_;
  std::uint64_t batches_ = 0;
  std::atomic<std::uint64_t> swaps_{0};  ///< written by swapper threads
  double wall_seconds_ = 0;
};

}  // namespace dsketch
