/// \file
/// Sharded multi-threaded batch query engine over any DistanceOracle.
///
/// The serving tier's unit of work is a batch of (u, v) pairs. Pairs are
/// hash-partitioned into shards by their canonical (min, max) key, so both
/// orientations of a pair land on the same shard; shards then execute in
/// parallel on a dedicated util/thread_pool. Every oracle's query path is
/// a concurrent-safe pure read (the DistanceOracle contract), so shards
/// share the backing structure with no synchronization — the only mutable
/// state (cache, stats) is shard-private. The LRU caches under the
/// *ordered* (u, v) key: the TZ query procedure checks the two
/// orientations in a fixed order, so query(u, v) and query(v, u) may
/// settle on different (both valid) estimates, and the service must
/// reproduce the oracle's answer for the orientation actually asked.
///
/// The usual backing oracle is the packed SketchStore (the serving
/// representation), but any registered scheme serves: a landmark table,
/// the exact matrix, a freshly built sketch.
///
/// \code
///   auto oracle = SketchStore::load_oracle("net.sketch");
///   QueryService service(*oracle, {.shards = 8, .threads = 8,
///                                  .cache_capacity = 4096});
///   service.query_batch(pairs, answers);  // answers[i] == oracle->query(...)
///   service.stats().qps;
/// \endcode
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/oracle.hpp"
#include "util/lru_cache.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

/// dsketch — distributed distance sketches (library root namespace).
namespace dsketch {

/// Shard, thread, and cache sizing for a QueryService.
struct QueryServiceConfig {
  /// Partitions of the pair space; 0 picks max(8, 4 x threads). The
  /// thread pool only engages when shards >= 2 x threads (parallel_for
  /// runs small counts serially), so keep shards comfortably above the
  /// thread count — the auto default does.
  std::size_t shards = 0;
  std::size_t threads = 0;         ///< pool lanes; 0 = hardware concurrency
  std::size_t cache_capacity = 0;  ///< per-shard LRU entries; 0 disables
};

/// Service-wide roll-up of per-shard counters (see QueryService::stats).
struct QueryServiceStats {
  std::uint64_t queries = 0;     ///< total pairs answered
  std::uint64_t cache_hits = 0;  ///< answered from a shard LRU
  std::uint64_t batches = 0;     ///< query_batch calls
  double wall_seconds = 0;    ///< total query_batch wall time
  double qps = 0;             ///< queries / wall_seconds
  double hit_rate = 0;        ///< cache_hits / queries
  double p50_shard_batch_us = 0;  ///< per-shard slice latency percentiles
  double p99_shard_batch_us = 0;
  std::vector<std::uint64_t> shard_queries;  ///< load balance view
};

/// The sharded batch query engine (see the file comment for the model).
class QueryService {
 public:
  /// A query: ordered (source, target) node pair.
  using Pair = QueryPair;

  /// The oracle must outlive the service.
  explicit QueryService(const DistanceOracle& oracle,
                        QueryServiceConfig cfg = {});

  /// Answers out[i] = oracle.query(pairs[i]) for every i; out.size() must
  /// equal pairs.size(). Deterministic regardless of shard/thread count.
  void query_batch(std::span<const Pair> pairs, std::span<Dist> out);

  /// Single-pair convenience (routes through the owning shard's cache).
  Dist query(NodeId u, NodeId v);

  /// Rolls the shard-private counters up into one service-wide view.
  QueryServiceStats stats() const;
  /// Zeroes all counters and latency samples (caches stay warm).
  void reset_stats();

  /// Number of pair-space partitions.
  std::size_t num_shards() const { return shards_.size(); }
  /// Pool lanes incl. the calling thread.
  std::size_t num_threads() const { return pool_.size() + 1; }

 private:
  struct Shard {
    LruCache<std::uint64_t, Dist> cache;
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    SampleSet slice_latency_us;  ///< latency of this shard's batch slices
    std::vector<std::uint32_t> slice;  ///< scratch: pair indices this batch
  };

  /// Ordered key: the cache identity (query answers are orientation-
  /// dependent, see the header comment).
  static std::uint64_t pair_key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  /// Canonical key: the routing identity (both orientations co-located).
  static std::uint64_t canonical_key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  std::size_t shard_of(std::uint64_t key) const {
    // splitmix64 finalizer: spreads sequential ids across shards.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) % shards_.size());
  }

  void run_shard(Shard& shard, std::span<const Pair> pairs,
                 std::span<Dist> out);

  const DistanceOracle* oracle_;
  ThreadPool pool_;
  std::vector<Shard> shards_;
  std::uint64_t batches_ = 0;
  double wall_seconds_ = 0;
};

}  // namespace dsketch
