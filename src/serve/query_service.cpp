#include "serve/query_service.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dsketch {

QueryService::QueryService(const DistanceOracle& oracle,
                           QueryServiceConfig cfg)
    : QueryService(borrow_oracle(oracle), cfg) {}

QueryService::QueryService(std::shared_ptr<const DistanceOracle> oracle,
                           QueryServiceConfig cfg)
    : slot_(std::move(oracle)),
      force_ordered_keys_(cfg.force_ordered_keys),
      collect_metrics_(cfg.collect_metrics),
      pool_(cfg.threads) {
  if (cfg.shards == 0) {
    // Enough shards that the pool's serial-fallback threshold
    // (count < 2 x lanes) never bites and slices stay balanced.
    cfg.shards = std::max<std::size_t>(8, 4 * (pool_.size() + 1));
  }
  shards_.reserve(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    shards_.emplace_back();
    shards_.back().cache = LruCache<std::uint64_t, Dist>(cfg.cache_capacity);
  }
}

void QueryService::run_shard(Shard& shard, const OracleSnapshot& snap,
                             bool canonical_keys,
                             std::span<const Pair> pairs,
                             std::span<Dist> out) {
  if (shard.slice.empty()) return;
  if (shard.cache_generation != snap.generation) {
    // The cache holds answers of an older oracle; generation tagging
    // makes the drop a per-shard O(entries) clear on first use instead
    // of a swap-time stall across all shards.
    if (shard.cache.size() > 0) {
      shard.cache.clear();
      ++shard.invalidations;
    }
    shard.cache_generation = snap.generation;
  }
  const obs::Span slice_span("shard_slice",
                             static_cast<std::uint64_t>(shard.slice.size()));
  Timer timer;
  for (const std::uint32_t i : shard.slice) {
    const auto [u, v] = pairs[i];
    const std::uint64_t key =
        canonical_keys ? canonical_pair_key(u, v) : ordered_pair_key(u, v);
    ++shard.queries;
    if (const Dist* hit = shard.cache.get(key)) {
      ++shard.cache_hits;
      out[i] = *hit;
      continue;
    }
    const obs::Span query_span("oracle_query");
    const Dist d = snap.oracle->query(u, v);
    shard.cache.put(key, d);
    out[i] = d;
  }
  if (collect_metrics_) shard.slice_latency_us.record(timer.seconds() * 1e6);
}

std::uint64_t QueryService::query_batch(std::span<const Pair> pairs,
                                        std::span<Dist> out) {
  DS_CHECK(pairs.size() == out.size());
  const obs::Span batch_span("serve_batch",
                             static_cast<std::uint64_t>(pairs.size()));
  Timer timer;
  // Pin one snapshot for the whole batch: every pair is answered by the
  // same oracle generation even if swap() lands mid-batch.
  const OracleSnapshot snap = slot_.load();
  const bool canonical_keys = snap.symmetric && !force_ordered_keys_;
  // Scatter pair indices to their owning shards (single pass, reused
  // buffers), then execute each shard's slice on the pool. out[] is
  // indexed by the original position, so answers are order-stable and
  // independent of shard or thread count.
  for (Shard& shard : shards_) shard.slice.clear();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::size_t s =
        shard_of(canonical_pair_key(pairs[i].first, pairs[i].second));
    shards_[s].slice.push_back(static_cast<std::uint32_t>(i));
  }
  pool_.parallel_for(shards_.size(), [&](std::size_t s) {
    run_shard(shards_[s], snap, canonical_keys, pairs, out);
  });
  ++batches_;
  wall_seconds_ += timer.seconds();
  return snap.generation;
}

Dist QueryService::query(NodeId u, NodeId v) {
  const Pair pair{u, v};
  Dist answer = kInfDist;
  query_batch(std::span<const Pair>(&pair, 1), std::span<Dist>(&answer, 1));
  return answer;
}

std::uint64_t QueryService::swap(
    std::shared_ptr<const DistanceOracle> next) {
  const obs::Span swap_span("oracle_swap");
  const std::uint64_t generation = slot_.store(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return generation;
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats s;
  obs::LatencyHistogram latencies;
  for (const Shard& shard : shards_) {
    s.queries += shard.queries;
    s.cache_hits += shard.cache_hits;
    s.cache_invalidations += shard.invalidations;
    s.shard_queries.push_back(shard.queries);
    latencies.merge(shard.slice_latency_us);
  }
  s.batches = batches_;
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.generation = slot_.generation();
  s.wall_seconds = wall_seconds_;
  s.qps = wall_seconds_ > 0 ? static_cast<double>(s.queries) / wall_seconds_
                            : 0;
  s.hit_rate = s.queries > 0
                   ? static_cast<double>(s.cache_hits) /
                         static_cast<double>(s.queries)
                   : 0;
  s.slice_latency_us = latencies.summary();
  s.p50_shard_batch_us = s.slice_latency_us.p50;
  s.p99_shard_batch_us = s.slice_latency_us.p99;
  return s;
}

void QueryService::reset_stats() {
  for (Shard& shard : shards_) {
    shard.queries = 0;
    shard.cache_hits = 0;
    shard.invalidations = 0;
    shard.slice_latency_us.reset();
  }
  batches_ = 0;
  swaps_.store(0, std::memory_order_relaxed);
  wall_seconds_ = 0;
}

void QueryService::export_metrics(obs::MetricsRegistry& registry) const {
  const QueryServiceStats s = stats();
  registry.counter("serve_queries_total").set(s.queries);
  registry.counter("serve_cache_hits_total").set(s.cache_hits);
  registry.counter("serve_batches_total").set(s.batches);
  registry.counter("serve_swaps_total").set(s.swaps);
  registry.counter("serve_cache_invalidations_total")
      .set(s.cache_invalidations);
  registry.gauge("serve_generation").set(static_cast<double>(s.generation));
  registry.gauge("serve_wall_seconds").set(s.wall_seconds);
  registry.gauge("serve_qps").set(s.qps);
  registry.gauge("serve_hit_rate").set(s.hit_rate);
  obs::LatencyHistogram& h = registry.histogram("serve_shard_slice_us");
  h.reset();
  for (const Shard& shard : shards_) h.merge(shard.slice_latency_us);
}

}  // namespace dsketch
