#include "serve/query_service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dsketch {

QueryService::QueryService(const DistanceOracle& oracle,
                           QueryServiceConfig cfg)
    : QueryService(borrow_oracle(oracle), cfg) {}

QueryService::QueryService(std::shared_ptr<const DistanceOracle> oracle,
                           QueryServiceConfig cfg)
    : slot_(std::move(oracle)),
      force_ordered_keys_(cfg.force_ordered_keys),
      collect_metrics_(cfg.collect_metrics),
      cfg_(cfg),
      pool_(cfg.threads) {
  if (cfg.shards == 0) {
    // Enough shards that the pool's serial-fallback threshold
    // (count < 2 x lanes) never bites and slices stay balanced.
    cfg.shards = std::max<std::size_t>(8, 4 * (pool_.size() + 1));
  }
  shards_.reserve(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    shards_.emplace_back();
    shards_.back().cache = LruCache<std::uint64_t, Dist>(cfg.cache_capacity);
  }
}

Dist QueryService::query_degraded(Shard& shard, const BatchCtx& ctx,
                                  NodeId u, NodeId v) {
  // Failover chain: the previous published generation is the closest
  // approximation of current truth; an exact fallback recomputes from the
  // graph; with neither, kInfDist is a safe one-sided "don't know". Every
  // branch may itself misbehave, so each is guarded — a throwing failover
  // degrades further down the chain instead of killing the batch.
  if (ctx.previous.oracle != nullptr) {
    try {
      const Dist d = ctx.previous.oracle->query(u, v);
      ++shard.stale_answers;
      return d;
    } catch (...) {
    }
  }
  if (cfg_.fallback != nullptr) {
    try {
      const Dist d = cfg_.fallback->query(u, v);
      ++shard.fallback_answers;
      return d;
    } catch (...) {
    }
  }
  ++shard.shed_answers;
  return kInfDist;
}

bool QueryService::query_primary(Shard& shard, const OracleSnapshot& snap,
                                 NodeId u, NodeId v, Dist& answer) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      answer = snap.oracle->query(u, v);
      return true;
    } catch (...) {
      if (attempt >= cfg_.max_retries) {
        ++shard.failures;
        return false;
      }
      ++shard.retries;
      if (cfg_.retry_backoff_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.retry_backoff_us << attempt));
      }
    }
  }
}

void QueryService::run_shard(Shard& shard, const BatchCtx& ctx,
                             std::span<const Pair> pairs,
                             std::span<Dist> out) {
  if (shard.slice.empty()) return;
  const OracleSnapshot& snap = ctx.snap;
  // Breaker gate: an open shard serves entirely from the failover chain
  // until its cooldown elapses, then half-opens for one probe slice.
  bool use_primary = true;
  if (shard.breaker == Breaker::kOpen) {
    if (ctx.batch >= shard.probe_batch) {
      shard.breaker = Breaker::kHalfOpen;
      ++shard.breaker_probes;
    } else {
      use_primary = false;
    }
  }
  if (!use_primary) {
    for (const std::uint32_t i : shard.slice) {
      ++shard.queries;
      out[i] = query_degraded(shard, ctx, pairs[i].first, pairs[i].second);
    }
    return;
  }
  if (shard.cache_generation != snap.generation) {
    // The cache holds answers of an older oracle; generation tagging
    // makes the drop a per-shard O(entries) clear on first use instead
    // of a swap-time stall across all shards.
    if (shard.cache.size() > 0) {
      shard.cache.clear();
      ++shard.invalidations;
    }
    shard.cache_generation = snap.generation;
  }
  const obs::Span slice_span("shard_slice",
                             static_cast<std::uint64_t>(shard.slice.size()));
  const bool deadline_on = cfg_.shard_deadline_us > 0;
  bool slice_failed = false;
  bool over_deadline = false;
  Timer timer;
  for (const std::uint32_t i : shard.slice) {
    const auto [u, v] = pairs[i];
    ++shard.queries;
    if (over_deadline) {
      // Budget exhausted: the slice's tail is served degraded so the batch
      // still completes in bounded time.
      out[i] = query_degraded(shard, ctx, u, v);
      continue;
    }
    const std::uint64_t key = ctx.canonical_keys ? canonical_pair_key(u, v)
                                                 : ordered_pair_key(u, v);
    if (const Dist* hit = shard.cache.get(key)) {
      ++shard.cache_hits;
      out[i] = *hit;
      continue;
    }
    const obs::Span query_span("oracle_query");
    Dist d = kInfDist;
    if (query_primary(shard, snap, u, v, d)) {
      shard.cache.put(key, d);
      out[i] = d;
    } else {
      slice_failed = true;
      out[i] = query_degraded(shard, ctx, u, v);
    }
    if (deadline_on &&
        timer.seconds() * 1e6 > static_cast<double>(cfg_.shard_deadline_us)) {
      over_deadline = true;
      ++shard.deadline_violations;
    }
  }
  if (collect_metrics_) shard.slice_latency_us.record(timer.seconds() * 1e6);

  // Breaker bookkeeping: one strike per failing slice, reset on a clean one.
  if (slice_failed || over_deadline) {
    ++shard.strikes;
    const bool trip =
        shard.breaker == Breaker::kHalfOpen ||
        (cfg_.breaker_threshold > 0 && shard.strikes >= cfg_.breaker_threshold);
    if (trip) {
      if (shard.breaker != Breaker::kOpen) ++shard.breaker_opens;
      shard.breaker = Breaker::kOpen;
      shard.probe_batch = ctx.batch + 1 + cfg_.breaker_cooldown_batches;
      shard.strikes = 0;
    }
  } else {
    shard.strikes = 0;
    shard.breaker = Breaker::kClosed;
  }
}

std::uint64_t QueryService::query_batch(std::span<const Pair> pairs,
                                        std::span<Dist> out) {
  DS_CHECK(pairs.size() == out.size());
  const obs::Span batch_span("serve_batch",
                             static_cast<std::uint64_t>(pairs.size()));
  Timer timer;
  // Pin one snapshot (and its failover predecessor) for the whole batch:
  // every pair is answered by the same oracle generation even if swap()
  // lands mid-batch.
  BatchCtx ctx;
  ctx.snap = slot_.load();
  ctx.previous = slot_.previous();
  ctx.canonical_keys = ctx.snap.symmetric && !force_ordered_keys_;
  ctx.batch = batches_;
  // Scatter pair indices to their owning shards (single pass, reused
  // buffers), then execute each shard's slice on the pool. out[] is
  // indexed by the original position, so answers are order-stable and
  // independent of shard or thread count.
  for (Shard& shard : shards_) shard.slice.clear();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::size_t s =
        shard_of(canonical_pair_key(pairs[i].first, pairs[i].second));
    shards_[s].slice.push_back(static_cast<std::uint32_t>(i));
  }
  pool_.parallel_for(shards_.size(), [&](std::size_t s) {
    run_shard(shards_[s], ctx, pairs, out);
  });
  ++batches_;
  wall_seconds_ += timer.seconds();
  return ctx.snap.generation;
}

Dist QueryService::query(NodeId u, NodeId v) {
  const Pair pair{u, v};
  Dist answer = kInfDist;
  query_batch(std::span<const Pair>(&pair, 1), std::span<Dist>(&answer, 1));
  return answer;
}

std::uint64_t QueryService::swap(
    std::shared_ptr<const DistanceOracle> next) {
  const obs::Span swap_span("oracle_swap");
  const std::uint64_t generation = slot_.store(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return generation;
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats s;
  obs::LatencyHistogram latencies;
  for (const Shard& shard : shards_) {
    s.queries += shard.queries;
    s.cache_hits += shard.cache_hits;
    s.cache_invalidations += shard.invalidations;
    s.shard_queries.push_back(shard.queries);
    latencies.merge(shard.slice_latency_us);
    s.query_failures += shard.failures;
    s.query_retries += shard.retries;
    s.deadline_violations += shard.deadline_violations;
    s.breaker_opens += shard.breaker_opens;
    s.breaker_probes += shard.breaker_probes;
    s.stale_answers += shard.stale_answers;
    s.fallback_answers += shard.fallback_answers;
    s.shed_answers += shard.shed_answers;
    if (shard.breaker != Breaker::kClosed) ++s.breakers_open;
  }
  s.batches = batches_;
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.generation = slot_.generation();
  s.wall_seconds = wall_seconds_;
  s.qps = wall_seconds_ > 0 ? static_cast<double>(s.queries) / wall_seconds_
                            : 0;
  s.hit_rate = s.queries > 0
                   ? static_cast<double>(s.cache_hits) /
                         static_cast<double>(s.queries)
                   : 0;
  s.slice_latency_us = latencies.summary();
  s.p50_shard_batch_us = s.slice_latency_us.p50;
  s.p99_shard_batch_us = s.slice_latency_us.p99;
  return s;
}

void QueryService::reset_stats() {
  for (Shard& shard : shards_) {
    shard.queries = 0;
    shard.cache_hits = 0;
    shard.invalidations = 0;
    shard.slice_latency_us.reset();
    shard.failures = 0;
    shard.retries = 0;
    shard.deadline_violations = 0;
    shard.breaker_opens = 0;
    shard.breaker_probes = 0;
    shard.stale_answers = 0;
    shard.fallback_answers = 0;
    shard.shed_answers = 0;
  }
  batches_ = 0;
  swaps_.store(0, std::memory_order_relaxed);
  wall_seconds_ = 0;
}

void QueryService::export_metrics(obs::MetricsRegistry& registry) const {
  const QueryServiceStats s = stats();
  registry.counter("serve_queries_total").set(s.queries);
  registry.counter("serve_cache_hits_total").set(s.cache_hits);
  registry.counter("serve_batches_total").set(s.batches);
  registry.counter("serve_swaps_total").set(s.swaps);
  registry.counter("serve_cache_invalidations_total")
      .set(s.cache_invalidations);
  registry.gauge("serve_generation").set(static_cast<double>(s.generation));
  registry.gauge("serve_wall_seconds").set(s.wall_seconds);
  registry.gauge("serve_qps").set(s.qps);
  registry.gauge("serve_hit_rate").set(s.hit_rate);
  registry.counter("serve_query_failures_total").set(s.query_failures);
  registry.counter("serve_query_retries_total").set(s.query_retries);
  registry.counter("serve_deadline_violations_total")
      .set(s.deadline_violations);
  registry.counter("serve_breaker_opens_total").set(s.breaker_opens);
  registry.counter("serve_breaker_probes_total").set(s.breaker_probes);
  registry.counter("serve_stale_answers_total").set(s.stale_answers);
  registry.counter("serve_fallback_answers_total").set(s.fallback_answers);
  registry.counter("serve_shed_answers_total").set(s.shed_answers);
  registry.gauge("serve_breakers_open").set(static_cast<double>(s.breakers_open));
  obs::LatencyHistogram& h = registry.histogram("serve_shard_slice_us");
  h.reset();
  for (const Shard& shard : shards_) h.merge(shard.slice_latency_us);
}

}  // namespace dsketch
