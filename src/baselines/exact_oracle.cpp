#include "baselines/exact_oracle.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "graph/sp_kernel.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

ExactOracle::ExactOracle(const Graph& g) {
  // Full APSP table, one kernel SSSP per row in parallel.
  dist_.resize(g.num_nodes());
  global_pool().for_each_dynamic(g.num_nodes(),
                                 [&](std::size_t, std::size_t u) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, static_cast<NodeId>(u), ws);
    dist_[u] = ws.export_dist();
  });
}

Capabilities ExactOracle::static_capabilities() {
  Capabilities caps;
  caps.exact = true;
  caps.stretch_bound = 1.0;
  caps.supports_paths = true;
  caps.symmetric = true;  // undirected distances
  caps.supports_save = true;
  return caps;
}

void ExactOracle::save_payload(std::ostream& out) const {
  // One row per node; kInfDist round-trips as its literal u64 value.
  for (const std::vector<Dist>& row : dist_) write_payload_row(out, row);
}

std::unique_ptr<ExactOracle> ExactOracle::load_payload(
    std::istream& in, const OracleEnvelope& envelope) {
  auto oracle = std::unique_ptr<ExactOracle>(new ExactOracle());
  // Grow the table row by row as data actually arrives: a truncated file
  // or size-corrupted header fails after at most one row's allocation
  // instead of committing the full n^2 table up front.
  oracle->dist_.reserve(std::min<std::size_t>(envelope.n, 1 << 16));
  for (NodeId u = 0; u < envelope.n; ++u) {
    std::vector<Dist> row(envelope.n);
    for (NodeId v = 0; v < envelope.n; ++v) {
      if (!(in >> row[v])) {
        throw std::runtime_error("exact oracle payload truncated");
      }
    }
    oracle->dist_.push_back(std::move(row));
  }
  return oracle;
}

void register_exact_oracle(OracleRegistry& reg) {
  OracleScheme s;
  s.name = "exact";
  s.guarantee = "exact (stretch 1)";
  s.summary =
      "full APSP table (quadratic space, the strawman sketches beat); "
      "flags: none";
  s.caps = ExactOracle::static_capabilities();
  s.build = [](const Graph& g, const FlagSet&) {
    return std::unique_ptr<DistanceOracle>(new ExactOracle(g));
  };
  s.load = [](std::istream& in, const OracleEnvelope& envelope) {
    return std::unique_ptr<DistanceOracle>(
        ExactOracle::load_payload(in, envelope));
  };
  reg.add(std::move(s));
}

}  // namespace dsketch
