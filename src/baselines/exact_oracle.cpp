#include "baselines/exact_oracle.hpp"

#include "graph/sp_kernel.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

ExactOracle::ExactOracle(const Graph& g) {
  // Full APSP table, one kernel SSSP per row in parallel.
  dist_.resize(g.num_nodes());
  global_pool().for_each_dynamic(g.num_nodes(),
                                 [&](std::size_t, std::size_t u) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, static_cast<NodeId>(u), ws);
    dist_[u] = ws.export_dist();
  });
}

}  // namespace dsketch
