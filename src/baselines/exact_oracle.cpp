#include "baselines/exact_oracle.hpp"

#include "graph/shortest_paths.hpp"

namespace dsketch {

ExactOracle::ExactOracle(const Graph& g) {
  dist_.reserve(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    dist_.push_back(dijkstra(g, u));
  }
}

}  // namespace dsketch
