// Vivaldi network coordinates [DCKM04] — the paper's §1 foil.
// Registered as oracle scheme "vivaldi".
//
// Each node holds a point in R^dim; repeated spring-relaxation steps against
// measured RTTs pull the embedding toward the true distance matrix. We give
// the baseline ideal conditions: exact RTTs (true weighted distances,
// computed on demand) and as many sampled measurements as requested. Even
// so, graphs that do not embed into low-dimensional Euclidean space (ring
// with random chords, expanders) force large distortion — the "poor behavior
// in pathological instances" the paper attributes to coordinate systems,
// benchmarked in E9 against the sketch schemes whose guarantees hold on all
// graphs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/oracle.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class OracleRegistry;
struct OracleEnvelope;

struct VivaldiConfig {
  unsigned dim = 3;
  std::size_t rounds = 64;              ///< relaxation sweeps over all nodes
  std::size_t samples_per_round = 16;   ///< RTT probes per node per sweep
  double cc = 0.25;                     ///< adaptive timestep gain
  std::uint64_t seed = 11;
};

class VivaldiCoordinates final : public DistanceOracle {
 public:
  /// Runs the spring embedding against exact distances from `g`.
  VivaldiCoordinates(const Graph& g, const VivaldiConfig& config);

  /// Euclidean estimate; can under- or over-estimate (no guarantee).
  Dist query(NodeId u, NodeId v) const override;

  NodeId num_nodes() const override {
    return static_cast<NodeId>(coords_.size());
  }

  /// Words stored per node: one coordinate per dimension.
  std::size_t size_words(NodeId u) const override {
    (void)u;
    return dim_;
  }

  std::string scheme() const override { return "vivaldi"; }
  std::string guarantee() const override;
  /// Shared by the registrar and every instance (no parameter-dependent
  /// fields).
  static Capabilities static_capabilities();
  Capabilities capabilities() const override { return static_capabilities(); }

  const std::vector<double>& coordinate(NodeId u) const { return coords_[u]; }

  static std::unique_ptr<VivaldiCoordinates> load_payload(
      std::istream& in, const OracleEnvelope& envelope);

 protected:
  /// Coordinates are written as bit-cast u64s so reloaded embeddings
  /// answer byte-identical queries (decimal text would round).
  void save_payload(std::ostream& out) const override;
  /// The envelope's k slot records the embedding dimension, so --load
  /// validation can catch a contradicting --dim flag.
  std::uint32_t envelope_k() const override { return dim_; }

 private:
  VivaldiCoordinates() = default;  // used by load_payload()
  unsigned dim_ = 0;
  std::vector<std::vector<double>> coords_;
};

/// Registers scheme "vivaldi".
void register_vivaldi_oracle(OracleRegistry& reg);

}  // namespace dsketch
