// Vivaldi network coordinates [DCKM04] — the paper's §1 foil.
//
// Each node holds a point in R^dim; repeated spring-relaxation steps against
// measured RTTs pull the embedding toward the true distance matrix. We give
// the baseline ideal conditions: exact RTTs (true weighted distances,
// computed on demand) and as many sampled measurements as requested. Even
// so, graphs that do not embed into low-dimensional Euclidean space (ring
// with random chords, expanders) force large distortion — the "poor behavior
// in pathological instances" the paper attributes to coordinate systems,
// benchmarked in E9 against the sketch schemes whose guarantees hold on all
// graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

struct VivaldiConfig {
  unsigned dim = 3;
  std::size_t rounds = 64;              ///< relaxation sweeps over all nodes
  std::size_t samples_per_round = 16;   ///< RTT probes per node per sweep
  double cc = 0.25;                     ///< adaptive timestep gain
  std::uint64_t seed = 11;
};

class VivaldiCoordinates {
 public:
  /// Runs the spring embedding against exact distances from `g`.
  VivaldiCoordinates(const Graph& g, const VivaldiConfig& config);

  /// Euclidean estimate; can under- or over-estimate (no guarantee).
  Dist query(NodeId u, NodeId v) const;

  /// Words stored per node: one coordinate per dimension.
  std::size_t size_words(NodeId u) const {
    (void)u;
    return dim_;
  }

  const std::vector<double>& coordinate(NodeId u) const { return coords_[u]; }

 private:
  unsigned dim_;
  std::vector<std::vector<double>> coords_;
};

}  // namespace dsketch
