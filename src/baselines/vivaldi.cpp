#include "baselines/vivaldi.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "graph/shortest_paths.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

double norm(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

VivaldiCoordinates::VivaldiCoordinates(const Graph& g,
                                       const VivaldiConfig& config)
    : dim_(config.dim) {
  const NodeId n = g.num_nodes();
  DS_CHECK(n >= 2 && dim_ >= 1);
  Rng rng(config.seed);
  coords_.assign(n, std::vector<double>(dim_, 0.0));
  for (auto& c : coords_) {
    for (double& x : c) x = rng.uniform() - 0.5;
  }
  std::vector<double> error(n, 1.0);

  // RTT oracle: cache Dijkstra rows for the nodes we probe from.
  std::vector<std::vector<Dist>> row_cache(n);
  auto rtt = [&](NodeId u, NodeId v) -> double {
    if (row_cache[u].empty() && row_cache[v].empty()) {
      row_cache[u] = dijkstra(g, u);
    }
    const auto& row = row_cache[u].empty() ? row_cache[v] : row_cache[u];
    const NodeId other = row_cache[u].empty() ? u : v;
    return static_cast<double>(row[other]);
  };

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (NodeId u = 0; u < n; ++u) {
      for (std::size_t s = 0; s < config.samples_per_round; ++s) {
        NodeId v = static_cast<NodeId>(rng.below(n));
        if (v == u) v = (v + 1) % n;
        const double measured = rtt(u, v);
        const double predicted = norm(coords_[u], coords_[v]);
        // Adaptive timestep weighted by relative confidence [DCKM04 §3.3].
        const double w = error[u] / (error[u] + error[v] + 1e-12);
        const double rel_err =
            std::abs(predicted - measured) / std::max(measured, 1e-9);
        const double ce = 0.25;
        error[u] = rel_err * ce * w + error[u] * (1.0 - ce * w);
        const double delta = config.cc * w;
        // Unit vector from v to u (random direction when coincident).
        std::vector<double> dir(dim_);
        double len = 0.0;
        for (unsigned i = 0; i < dim_; ++i) {
          dir[i] = coords_[u][i] - coords_[v][i];
          len += dir[i] * dir[i];
        }
        len = std::sqrt(len);
        if (len < 1e-12) {
          for (double& x : dir) x = rng.uniform() - 0.5;
          len = 0.0;
          for (const double x : dir) len += x * x;
          len = std::sqrt(std::max(len, 1e-12));
        }
        const double force = measured - predicted;
        for (unsigned i = 0; i < dim_; ++i) {
          coords_[u][i] += delta * force * (dir[i] / len);
        }
      }
    }
  }
}

Dist VivaldiCoordinates::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const double d = norm(coords_[u], coords_[v]);
  // Disconnected probe targets feed kInfDist-sized RTTs into the springs
  // and can fling coordinates beyond the integer range; clamp before
  // rounding (llround on such doubles is undefined behaviour).
  if (!(d < 9.0e18)) return kInfDist;
  return static_cast<Dist>(std::llround(std::max(d, 0.0)));
}

std::string VivaldiCoordinates::guarantee() const {
  return "no guarantee (may underestimate); dim=" + std::to_string(dim_);
}

Capabilities VivaldiCoordinates::static_capabilities() {
  Capabilities caps;
  // Estimates come from an embedding, not witnessed paths: they can
  // undercut the true distance and never report unreachability.
  caps.supports_paths = false;
  caps.symmetric = true;  // norm of the coordinate difference
  caps.supports_save = true;
  return caps;
}

void VivaldiCoordinates::save_payload(std::ostream& out) const {
  out << dim_ << "\n";
  std::vector<std::uint64_t> bits_row(dim_);
  for (const std::vector<double>& c : coords_) {
    for (unsigned i = 0; i < dim_; ++i) {
      std::memcpy(&bits_row[i], &c[i], sizeof(bits_row[i]));
    }
    write_payload_row(out, bits_row);
  }
}

std::unique_ptr<VivaldiCoordinates> VivaldiCoordinates::load_payload(
    std::istream& in, const OracleEnvelope& envelope) {
  auto oracle = std::unique_ptr<VivaldiCoordinates>(new VivaldiCoordinates());
  unsigned dim = 0;
  // Embedding dimensions are single digits in practice; a huge value is
  // corruption, not a workload — reject before allocating n*dim doubles.
  if (!(in >> dim) || dim == 0 || dim > 4096) {
    throw std::runtime_error("vivaldi payload: bad dimension");
  }
  oracle->dim_ = dim;
  // Grow row by row (see ExactOracle::load_payload): truncation fails
  // after at most one row's allocation.
  for (NodeId u = 0; u < envelope.n; ++u) {
    std::vector<double> c(dim);
    for (double& x : c) {
      std::uint64_t bits;
      if (!(in >> bits)) {
        throw std::runtime_error("vivaldi payload: coordinates truncated");
      }
      std::memcpy(&x, &bits, sizeof(x));
    }
    oracle->coords_.push_back(std::move(c));
  }
  return oracle;
}

void register_vivaldi_oracle(OracleRegistry& reg) {
  OracleScheme s;
  s.name = "vivaldi";
  s.guarantee = "no guarantee (may underestimate)";
  s.summary =
      "Vivaldi spring-embedding coordinates [DCKM04]; flags: --dim (3) "
      "--rounds (64) --samples (16) --seed";
  s.caps = VivaldiCoordinates::static_capabilities();
  s.k_flag = "dim";
  s.build = [](const Graph& g, const FlagSet& flags) {
    VivaldiConfig cfg;
    cfg.dim = static_cast<unsigned>(flags.get("dim", std::int64_t{3}));
    cfg.rounds =
        static_cast<std::size_t>(flags.get("rounds", std::int64_t{64}));
    cfg.samples_per_round =
        static_cast<std::size_t>(flags.get("samples", std::int64_t{16}));
    cfg.cc = flags.get("cc", 0.25);
    cfg.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{11}));
    return std::unique_ptr<DistanceOracle>(new VivaldiCoordinates(g, cfg));
  };
  s.load = [](std::istream& in, const OracleEnvelope& envelope) {
    return std::unique_ptr<DistanceOracle>(
        VivaldiCoordinates::load_payload(in, envelope));
  };
  reg.add(std::move(s));
}

}  // namespace dsketch
