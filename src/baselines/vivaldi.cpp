#include "baselines/vivaldi.hpp"

#include <cmath>

#include "graph/shortest_paths.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

double norm(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

VivaldiCoordinates::VivaldiCoordinates(const Graph& g,
                                       const VivaldiConfig& config)
    : dim_(config.dim) {
  const NodeId n = g.num_nodes();
  DS_CHECK(n >= 2 && dim_ >= 1);
  Rng rng(config.seed);
  coords_.assign(n, std::vector<double>(dim_, 0.0));
  for (auto& c : coords_) {
    for (double& x : c) x = rng.uniform() - 0.5;
  }
  std::vector<double> error(n, 1.0);

  // RTT oracle: cache Dijkstra rows for the nodes we probe from.
  std::vector<std::vector<Dist>> row_cache(n);
  auto rtt = [&](NodeId u, NodeId v) -> double {
    if (row_cache[u].empty() && row_cache[v].empty()) {
      row_cache[u] = dijkstra(g, u);
    }
    const auto& row = row_cache[u].empty() ? row_cache[v] : row_cache[u];
    const NodeId other = row_cache[u].empty() ? u : v;
    return static_cast<double>(row[other]);
  };

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (NodeId u = 0; u < n; ++u) {
      for (std::size_t s = 0; s < config.samples_per_round; ++s) {
        NodeId v = static_cast<NodeId>(rng.below(n));
        if (v == u) v = (v + 1) % n;
        const double measured = rtt(u, v);
        const double predicted = norm(coords_[u], coords_[v]);
        // Adaptive timestep weighted by relative confidence [DCKM04 §3.3].
        const double w = error[u] / (error[u] + error[v] + 1e-12);
        const double rel_err =
            std::abs(predicted - measured) / std::max(measured, 1e-9);
        const double ce = 0.25;
        error[u] = rel_err * ce * w + error[u] * (1.0 - ce * w);
        const double delta = config.cc * w;
        // Unit vector from v to u (random direction when coincident).
        std::vector<double> dir(dim_);
        double len = 0.0;
        for (unsigned i = 0; i < dim_; ++i) {
          dir[i] = coords_[u][i] - coords_[v][i];
          len += dir[i] * dir[i];
        }
        len = std::sqrt(len);
        if (len < 1e-12) {
          for (double& x : dir) x = rng.uniform() - 0.5;
          len = 0.0;
          for (const double x : dir) len += x * x;
          len = std::sqrt(std::max(len, 1e-12));
        }
        const double force = measured - predicted;
        for (unsigned i = 0; i < dim_; ++i) {
          coords_[u][i] += delta * force * (dir[i] / len);
        }
      }
    }
  }
}

Dist VivaldiCoordinates::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const double d = norm(coords_[u], coords_[v]);
  return static_cast<Dist>(std::llround(std::max(d, 0.0)));
}

}  // namespace dsketch
