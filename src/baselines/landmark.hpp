// Folklore landmark (beacon) sketches — the scheme Thorup–Zwick refines.
// Registered as oracle scheme "landmark".
//
// Pick L uniform random landmarks; every node stores its distance to each.
// The estimate min_l d(u,l) + d(l,v) never underestimates but has no
// worst-case stretch bound (a pair can be adjacent yet far from every
// landmark). Contrast with the ε-density-net slack sketch, which picks the
// same kind of table but sized to guarantee stretch 3 on ε-far pairs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/oracle.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class OracleRegistry;
struct OracleEnvelope;

class LandmarkSketchSet final : public DistanceOracle {
 public:
  LandmarkSketchSet(const Graph& g, std::size_t num_landmarks,
                    std::uint64_t seed);

  Dist query(NodeId u, NodeId v) const override;
  NodeId num_nodes() const override { return n_; }
  std::size_t size_words(NodeId u) const override {
    (void)u;
    return 2 * landmarks_.size();
  }
  std::string scheme() const override { return "landmark"; }
  std::string guarantee() const override;
  /// Shared by the registrar and every instance (no parameter-dependent
  /// fields).
  static Capabilities static_capabilities();
  Capabilities capabilities() const override { return static_capabilities(); }

  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  static std::unique_ptr<LandmarkSketchSet> load_payload(
      std::istream& in, const OracleEnvelope& envelope);

 protected:
  void save_payload(std::ostream& out) const override;
  /// The envelope's k slot records the landmark count (the scheme's size
  /// parameter), so --load validation can catch a contradicting
  /// --landmarks flag.
  std::uint32_t envelope_k() const override {
    return static_cast<std::uint32_t>(landmarks_.size());
  }

 private:
  LandmarkSketchSet() = default;  // used by load_payload()
  NodeId n_ = 0;
  std::vector<NodeId> landmarks_;
  std::vector<std::vector<Dist>> dist_;  ///< [landmark index][node]
};

/// Registers scheme "landmark".
void register_landmark_oracle(OracleRegistry& reg);

}  // namespace dsketch
