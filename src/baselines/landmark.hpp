// Folklore landmark (beacon) sketches — the scheme Thorup–Zwick refines.
//
// Pick L uniform random landmarks; every node stores its distance to each.
// The estimate min_l d(u,l) + d(l,v) never underestimates but has no
// worst-case stretch bound (a pair can be adjacent yet far from every
// landmark). Contrast with the ε-density-net slack sketch, which picks the
// same kind of table but sized to guarantee stretch 3 on ε-far pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

class LandmarkSketchSet {
 public:
  LandmarkSketchSet(const Graph& g, std::size_t num_landmarks,
                    std::uint64_t seed);

  Dist query(NodeId u, NodeId v) const;
  std::size_t size_words(NodeId u) const {
    (void)u;
    return 2 * landmarks_.size();
  }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

 private:
  std::vector<NodeId> landmarks_;
  std::vector<std::vector<Dist>> dist_;  ///< [landmark index][node]
};

}  // namespace dsketch
