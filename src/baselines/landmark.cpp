#include "baselines/landmark.hpp"

#include <algorithm>

#include "graph/sp_kernel.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

LandmarkSketchSet::LandmarkSketchSet(const Graph& g, std::size_t num_landmarks,
                                     std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  DS_CHECK(n >= 1 && num_landmarks >= 1);
  num_landmarks = std::min<std::size_t>(num_landmarks, n);
  Rng rng(seed);
  std::vector<NodeId> perm(n);
  for (NodeId i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < num_landmarks; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(perm[i], perm[j]);
    landmarks_.push_back(perm[i]);
  }
  dist_.resize(num_landmarks);
  // One SSSP row per landmark, in parallel over the kernel.
  global_pool().for_each_dynamic(num_landmarks,
                                 [&](std::size_t, std::size_t i) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, landmarks_[i], ws);
    dist_[i] = ws.export_dist();
  });
}

Dist LandmarkSketchSet::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  Dist best = kInfDist;
  for (const auto& row : dist_) {
    if (row[u] == kInfDist || row[v] == kInfDist) continue;
    best = std::min(best, row[u] + row[v]);
  }
  return best;
}

}  // namespace dsketch
