#include "baselines/landmark.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "graph/sp_kernel.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

LandmarkSketchSet::LandmarkSketchSet(const Graph& g, std::size_t num_landmarks,
                                     std::uint64_t seed)
    : n_(g.num_nodes()) {
  const NodeId n = g.num_nodes();
  DS_CHECK(n >= 1 && num_landmarks >= 1);
  num_landmarks = std::min<std::size_t>(num_landmarks, n);
  Rng rng(seed);
  std::vector<NodeId> perm(n);
  for (NodeId i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < num_landmarks; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(perm[i], perm[j]);
    landmarks_.push_back(perm[i]);
  }
  dist_.resize(num_landmarks);
  // One SSSP row per landmark, in parallel over the kernel.
  global_pool().for_each_dynamic(num_landmarks,
                                 [&](std::size_t, std::size_t i) {
    SpWorkspace& ws = thread_workspace();
    sp_dijkstra(g, landmarks_[i], ws);
    dist_[i] = ws.export_dist();
  });
}

Dist LandmarkSketchSet::query(NodeId u, NodeId v) const {
  if (u == v) return 0;
  Dist best = kInfDist;
  for (const auto& row : dist_) {
    if (row[u] == kInfDist || row[v] == kInfDist) continue;
    best = std::min(best, row[u] + row[v]);
  }
  return best;
}

std::string LandmarkSketchSet::guarantee() const {
  return "no worst-case bound (" + std::to_string(landmarks_.size()) +
         " landmarks, never underestimates)";
}

Capabilities LandmarkSketchSet::static_capabilities() {
  Capabilities caps;
  caps.supports_paths = true;  // estimates are real u->l->v path lengths
  caps.symmetric = true;       // min over landmarks of d(u,l) + d(l,v)
  caps.supports_save = true;
  return caps;
}

void LandmarkSketchSet::save_payload(std::ostream& out) const {
  out << landmarks_.size() << "\n";
  write_payload_row(out, landmarks_);
  for (const std::vector<Dist>& row : dist_) write_payload_row(out, row);
}

std::unique_ptr<LandmarkSketchSet> LandmarkSketchSet::load_payload(
    std::istream& in, const OracleEnvelope& envelope) {
  auto oracle = std::unique_ptr<LandmarkSketchSet>(new LandmarkSketchSet());
  oracle->n_ = envelope.n;
  std::size_t count = 0;
  // The constructor clamps the landmark count to n, so anything larger
  // is corruption; reject before sizing allocations from it.
  if (!(in >> count) || count == 0 || count > envelope.n) {
    throw std::runtime_error("landmark payload: bad landmark count");
  }
  oracle->landmarks_.resize(count);
  for (NodeId& l : oracle->landmarks_) {
    if (!(in >> l)) {
      throw std::runtime_error("landmark payload: landmark list truncated");
    }
  }
  // Grow row by row (see ExactOracle::load_payload): truncation fails
  // after at most one row's allocation.
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<Dist> row(envelope.n);
    for (Dist& d : row) {
      if (!(in >> d)) {
        throw std::runtime_error("landmark payload: distance rows truncated");
      }
    }
    oracle->dist_.push_back(std::move(row));
  }
  return oracle;
}

void register_landmark_oracle(OracleRegistry& reg) {
  OracleScheme s;
  s.name = "landmark";
  s.guarantee = "no worst-case bound (never underestimates)";
  s.summary =
      "folklore landmark tables, min_l d(u,l)+d(l,v); flags: --landmarks "
      "(16) --seed";
  s.caps = LandmarkSketchSet::static_capabilities();
  s.k_flag = "landmarks";
  s.build = [](const Graph& g, const FlagSet& flags) {
    const auto landmarks = static_cast<std::size_t>(
        flags.get("landmarks", std::int64_t{16}));
    const auto seed =
        static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
    return std::unique_ptr<DistanceOracle>(
        new LandmarkSketchSet(g, landmarks, seed));
  };
  s.load = [](std::istream& in, const OracleEnvelope& envelope) {
    return std::unique_ptr<DistanceOracle>(
        LandmarkSketchSet::load_payload(in, envelope));
  };
  reg.add(std::move(s));
}

}  // namespace dsketch
