// Exact all-pairs oracle — the brute-force strawman of §1 (quadratic space,
// zero stretch) and the ground truth source for small-graph tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dsketch {

class ExactOracle {
 public:
  explicit ExactOracle(const Graph& g);

  Dist query(NodeId u, NodeId v) const { return dist_[u][v]; }
  const std::vector<Dist>& row(NodeId u) const { return dist_[u]; }

  /// Per-node storage in words: one distance per other node — the quadratic
  /// cost the sketches exist to avoid.
  std::size_t size_words(NodeId u) const { return dist_[u].size(); }

 private:
  std::vector<std::vector<Dist>> dist_;
};

}  // namespace dsketch
