// Exact all-pairs oracle — the brute-force strawman of §1 (quadratic space,
// zero stretch) and the ground truth source for small-graph tests.
// Registered as oracle scheme "exact".
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/oracle.hpp"
#include "graph/graph.hpp"

namespace dsketch {

class OracleRegistry;
struct OracleEnvelope;

class ExactOracle final : public DistanceOracle {
 public:
  explicit ExactOracle(const Graph& g);

  Dist query(NodeId u, NodeId v) const override { return dist_[u][v]; }
  const std::vector<Dist>& row(NodeId u) const { return dist_[u]; }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(dist_.size());
  }

  /// Per-node storage in words: one distance per other node — the quadratic
  /// cost the sketches exist to avoid.
  std::size_t size_words(NodeId u) const override { return dist_[u].size(); }

  std::string scheme() const override { return "exact"; }
  std::string guarantee() const override { return "exact (stretch 1)"; }
  /// Parameter-free scheme: the registrar and every instance share one
  /// capabilities source.
  static Capabilities static_capabilities();
  Capabilities capabilities() const override { return static_capabilities(); }

  static std::unique_ptr<ExactOracle> load_payload(
      std::istream& in, const OracleEnvelope& envelope);

 protected:
  void save_payload(std::ostream& out) const override;

 private:
  ExactOracle() = default;  // used by load_payload()
  std::vector<std::vector<Dist>> dist_;
};

/// Registers scheme "exact".
void register_exact_oracle(OracleRegistry& reg);

}  // namespace dsketch
