#include "dynamics/update_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace dsketch {

namespace {

/// Connectivity of `n` nodes under `edges` with one edge skipped
/// (skip == edges.size() skips nothing). Plain BFS over an adjacency
/// rebuilt per call — update streams run at bench scale (n <= a few
/// thousand), where O(n + m) per delete attempt is noise next to the
/// repair searches the update feeds.
bool connected_without(NodeId n, const std::vector<Edge>& edges,
                       std::size_t skip) {
  if (n == 0) return true;
  std::vector<std::vector<NodeId>> adj(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i == skip) continue;
    adj[edges[i].u].push_back(edges[i].v);
    adj[edges[i].v].push_back(edges[i].u);
  }
  std::vector<char> seen(n, 0);
  std::vector<NodeId> queue{0};
  seen[0] = 1;
  NodeId reached = 1;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (const NodeId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++reached;
        queue.push_back(v);
      }
    }
  }
  return reached == n;
}

}  // namespace

const char* update_kind_name(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert: return "insert";
    case UpdateKind::kDelete: return "delete";
    case UpdateKind::kReweight: return "reweight";
  }
  return "?";
}

UpdateStream::UpdateStream(const Graph& initial,
                           const UpdateStreamConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), n_(initial.num_nodes()),
      edges_(initial.edges()) {
  if (n_ < 2) {
    throw std::runtime_error("UpdateStream needs at least 2 nodes");
  }
  if (cfg_.wmin == 0 || cfg_.wmax < cfg_.wmin) {
    throw std::runtime_error("UpdateStream: want 1 <= wmin <= wmax");
  }
  DS_CHECK(initial.connected());
  edge_set_.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) edge_set_.insert(key(e.u, e.v));
  rebuild_graph();
}

void UpdateStream::rebuild_graph() {
  current_ = Graph::from_edges(n_, edges_);
}

bool UpdateStream::try_insert(EdgeUpdate& out) {
  // A clique has no free slot; bail after enough rejections that a
  // near-clique graph falls through to delete/reweight instead.
  const std::uint64_t pair_space = static_cast<std::uint64_t>(n_) * (n_ - 1) / 2;
  if (edge_set_.size() >= pair_space) return false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto u = static_cast<NodeId>(rng_.below(n_));
    const auto v = static_cast<NodeId>(rng_.below(n_));
    if (u == v || edge_set_.count(key(u, v))) continue;
    const auto w = static_cast<Weight>(
        rng_.range(static_cast<std::int64_t>(cfg_.wmin),
                   static_cast<std::int64_t>(cfg_.wmax)));
    out.kind = UpdateKind::kInsert;
    out.u = std::min(u, v);
    out.v = std::max(u, v);
    out.weight = w;
    out.old_weight = 0;
    edges_.push_back(Edge{out.u, out.v, w});
    edge_set_.insert(key(u, v));
    return true;
  }
  return false;
}

bool UpdateStream::deletable(std::size_t index) const {
  return connected_without(n_, edges_, index);
}

bool UpdateStream::try_delete(EdgeUpdate& out) {
  if (edges_.empty()) return false;
  // Reroll on bridges, bounded: a tree-like graph where most edges are
  // bridges falls through rather than spinning.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::size_t i = rng_.below(edges_.size());
    if (!deletable(i)) continue;
    const Edge e = edges_[i];
    out.kind = UpdateKind::kDelete;
    out.u = e.u;
    out.v = e.v;
    out.weight = 0;
    out.old_weight = e.weight;
    edge_set_.erase(key(e.u, e.v));
    edges_[i] = edges_.back();
    edges_.pop_back();
    return true;
  }
  return false;
}

bool UpdateStream::try_reweight(EdgeUpdate& out) {
  if (edges_.empty() || cfg_.wmin == cfg_.wmax) return false;
  const std::size_t i = rng_.below(edges_.size());
  Edge& e = edges_[i];
  Weight w = e.weight;
  while (w == e.weight) {
    w = static_cast<Weight>(
        rng_.range(static_cast<std::int64_t>(cfg_.wmin),
                   static_cast<std::int64_t>(cfg_.wmax)));
  }
  out.kind = UpdateKind::kReweight;
  out.u = e.u;
  out.v = e.v;
  out.weight = w;
  out.old_weight = e.weight;
  e.weight = w;
  return true;
}

EdgeUpdate UpdateStream::next() {
  const double total =
      cfg_.insert_weight + cfg_.delete_weight + cfg_.reweight_weight;
  if (total <= 0) {
    throw std::runtime_error("UpdateStream: all kind weights are zero");
  }
  EdgeUpdate update;
  // Draw a kind from the mix, then fall through the other kinds in a
  // fixed order if the drawn one is infeasible right now.
  const double x = rng_.uniform() * total;
  UpdateKind first = UpdateKind::kReweight;
  if (x < cfg_.insert_weight) {
    first = UpdateKind::kInsert;
  } else if (x < cfg_.insert_weight + cfg_.delete_weight) {
    first = UpdateKind::kDelete;
  }
  const UpdateKind order[3] = {
      first,
      first == UpdateKind::kInsert ? UpdateKind::kDelete
                                   : UpdateKind::kInsert,
      first == UpdateKind::kReweight ? UpdateKind::kDelete
                                     : UpdateKind::kReweight};
  for (const UpdateKind kind : order) {
    const bool ok = kind == UpdateKind::kInsert    ? try_insert(update)
                    : kind == UpdateKind::kDelete  ? try_delete(update)
                                                   : try_reweight(update);
    if (ok) {
      rebuild_graph();
      ++applied_;
      return update;
    }
  }
  throw std::runtime_error(
      "UpdateStream: no feasible update (graph too constrained)");
}

}  // namespace dsketch
