// Seeded, deterministic edge-churn generation — the live-network
// complement of dynamics/failure_model.
//
// failure_model answers "how do stale sketches score against one batch
// of failures?" (E11). The refresh pipeline needs the harder shape: an
// *ongoing* stream of topology changes — inserts, deletes, and weight
// changes in a configurable mix — applied one at a time to a live graph,
// so the repair / rebuild machinery can be driven update by update
// (E14). The stream owns the evolving graph: next() draws an update,
// applies it, and returns it, keeping the graph connected throughout
// (bridge deletions are rerolled, like failure_model's bridge skip).
// Same seed + same initial graph = same stream, bit for bit.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "util/pair_key.hpp"
#include "util/rng.hpp"

namespace dsketch {

/// One topology change, as applied to the stream's graph.
enum class UpdateKind : std::uint8_t {
  kInsert,   ///< new edge (u, v, weight)
  kDelete,   ///< existing edge removed (old_weight records it)
  kReweight  ///< existing edge weight changed old_weight -> weight
};

/// Human-readable kind name ("insert" / "delete" / "reweight").
const char* update_kind_name(UpdateKind kind);

struct EdgeUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;
  Weight weight = 0;      ///< new weight (insert / reweight); 0 for delete
  Weight old_weight = 0;  ///< previous weight (delete / reweight)
};

/// True when the update can only shrink distances (an insert, or a
/// reweight to a smaller weight) — the repairable case for one-sided
/// sketches. Deletes and weight increases can grow distances, which is
/// what turns stale estimates into guarantee violations.
inline bool is_distance_decrease(const EdgeUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsert: return true;
    case UpdateKind::kDelete: return false;
    case UpdateKind::kReweight: return update.weight < update.old_weight;
  }
  return false;
}

/// Churn mix and weight range of a stream. Kind weights are relative
/// (they need not sum to 1); a kind that is impossible on the current
/// graph (deleting from a tree, inserting into a clique) falls through
/// to the next feasible one, so the stream never stalls.
struct UpdateStreamConfig {
  double insert_weight = 1.0;
  double delete_weight = 1.0;
  double reweight_weight = 1.0;
  Weight wmin = 1;   ///< new-weight range for inserts and reweights
  Weight wmax = 16;
  std::uint64_t seed = 7;
};

/// The evolving graph plus its deterministic update stream.
class UpdateStream {
 public:
  /// Takes the initial topology; `initial` must be connected.
  UpdateStream(const Graph& initial, const UpdateStreamConfig& cfg);

  /// Draws the next update, applies it to the graph, and returns it.
  EdgeUpdate next();

  /// The graph with every update so far applied. The reference stays
  /// valid across next() calls (the graph object is rebuilt in place).
  const Graph& graph() const { return current_; }

  std::uint64_t applied() const { return applied_; }

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    return canonical_pair_key(u, v);
  }

  bool try_insert(EdgeUpdate& out);
  bool try_delete(EdgeUpdate& out);
  bool try_reweight(EdgeUpdate& out);
  /// True when removing edges_[index] keeps the graph connected.
  bool deletable(std::size_t index) const;
  void rebuild_graph();

  UpdateStreamConfig cfg_;
  Rng rng_;
  NodeId n_ = 0;
  std::vector<Edge> edges_;
  std::unordered_set<std::uint64_t> edge_set_;
  Graph current_;
  std::uint64_t applied_ = 0;
};

}  // namespace dsketch
