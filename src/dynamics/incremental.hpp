// Incremental repair of Thorup–Zwick sketches under edge churn, plus the
// policy that decides when repair is no longer enough.
//
// The paper's sketches are preprocessed for one fixed topology (§1, §5);
// E11 quantifies how fast they rot under churn. This module is the other
// half of the loop — it keeps a sketch *usable* while the graph moves:
//
//   - Distance-decreasing updates (edge inserts, weight decreases) are
//     repaired in place: every label distance (pivot and bunch entries)
//     stores an exact point-to-point distance, and after inserting
//     (a, b, w) the new distance is
//         d'(x, y) = min(d(x, y), Da(x) + w + Db(y), Db(x) + w + Da(y))
//     with Da/Db one SSSP each from the endpoints on the updated graph.
//     Both searches are *bounded* re-explorations through the shared
//     sp_kernel workspaces: expansion stops beyond the largest distance
//     any label stores, because a longer path can never improve a stored
//     entry (shortest paths have monotone prefixes, so every entry with
//     true distance inside the bound is still computed exactly). Repair
//     preserves the one-sided guarantee (estimates never drop below the
//     new true distance) and tightens estimates toward it.
//
//   - Distance-increasing updates (deletes, weight increases) cannot be
//     repaired from the endpoints alone — stale entries may now
//     *underestimate*, which is the guarantee violation E11 measures.
//     RebuildPolicy watches the update stream (counts, unrepairable
//     updates, and an optional sampled underestimate-rate probe) and
//     fires a full background rebuild when a budget is exceeded; the
//     serving tier swaps the rebuilt oracle in via serve/snapshot.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "dynamics/update_stream.hpp"
#include "graph/graph.hpp"
#include "graph/sp_kernel.hpp"
#include "sketch/tz_label.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {

/// Immutable TZ-label oracle — what TzDynamicSketch publishes to the
/// serving tier. A frozen label arena with the Lemma 3.2 query; unlike
/// SketchOracle it carries no build cost and no save path (a repaired
/// sketch is a transient serving artifact, not a persisted one).
class TzLabelOracle final : public DistanceOracle {
 public:
  TzLabelOracle(LabelArena labels, std::uint32_t k);

  Dist query(NodeId u, NodeId v) const override;
  NodeId num_nodes() const override { return labels_.num_nodes(); }
  std::size_t size_words(NodeId u) const override {
    return labels_.size_words(u);
  }
  std::string scheme() const override { return "tz"; }
  std::string guarantee() const override;
  Capabilities capabilities() const override;

  const LabelArena& labels() const { return labels_; }
  std::uint32_t k() const { return k_; }

 private:
  LabelArena labels_;
  std::uint32_t k_;
};

/// Counters across the lifetime of one TzDynamicSketch.
struct RepairStats {
  std::uint64_t updates_seen = 0;     ///< apply() calls
  std::uint64_t repaired = 0;         ///< repaired in place
  std::uint64_t unrepairable = 0;     ///< needed a rebuild to fix
  std::uint64_t nodes_explored = 0;   ///< bounded-search reach, summed
  std::uint64_t entries_improved = 0; ///< label distances tightened
  std::uint64_t rebuilds = 0;         ///< full rebuilds performed
};

/// A TZ sketch that tracks a changing graph: repair what can be repaired,
/// rebuild when the policy says so, snapshot for serving at any point.
class TzDynamicSketch {
 public:
  /// Builds the initial sketch (centralized construction — the fast
  /// in-process path; the hierarchy is resampled until the top level is
  /// nonempty). `pool == nullptr` uses the global pool.
  TzDynamicSketch(const Graph& g, std::uint32_t k, std::uint64_t seed,
                  ThreadPool* pool = nullptr);

  /// Applies one update that has already happened to `updated` (the
  /// graph AFTER the change). Returns true when the sketch was repaired
  /// in place — inserts and weight decreases; the estimates then stay
  /// >= the new true distances. Returns false for deletes and weight
  /// increases: the sketch is left stale (it may underestimate) and
  /// unrepaired_since_rebuild() grows until rebuild() resets it.
  bool apply(const Graph& updated, const EdgeUpdate& update);

  /// Full reconstruction on the current graph; clears the unrepaired
  /// debt. This is the expensive step RebuildPolicy schedules.
  void rebuild(const Graph& g, std::uint64_t seed,
               ThreadPool* pool = nullptr);

  /// An immutable copy of the current labels for the serving tier.
  std::shared_ptr<const DistanceOracle> snapshot() const;

  std::uint32_t k() const { return k_; }
  const RepairStats& stats() const { return stats_; }
  /// Distance-increasing updates absorbed since the last rebuild — the
  /// count of latent guarantee violations repair could not prevent.
  std::size_t unrepaired_since_rebuild() const { return unrepaired_; }
  /// The current re-exploration bound (largest stored label distance).
  Dist exploration_bound() const { return bound_; }
  /// The live labels (test hook: repair exactness is checked entry by
  /// entry against fresh ground truth).
  const LabelArena& labels() const { return labels_; }

 private:
  void build_labels(const Graph& g, std::uint64_t seed, ThreadPool* pool);
  void recompute_bound();
  /// Bounded SSSP from `source` on `g` into `out` (kInfDist beyond the
  /// bound); returns the number of nodes recorded.
  std::size_t explore(const Graph& g, NodeId source, std::vector<Dist>& out);

  std::uint32_t k_ = 0;
  LabelArena labels_;
  Dist bound_ = 0;
  std::size_t unrepaired_ = 0;
  RepairStats stats_;
  // Re-exploration scratch, reused across apply() calls.
  SpWorkspace ws_;
  std::vector<Dist> dist_a_;
  std::vector<Dist> dist_b_;
};

/// When to stop repairing and rebuild. All triggers are budgets; a zero
/// budget disables that trigger.
struct RebuildPolicyConfig {
  /// Rebuild after this many updates since the last rebuild.
  std::size_t max_updates = 0;
  /// Rebuild after this many *unrepairable* (distance-increasing)
  /// updates since the last rebuild.
  std::size_t max_unrepaired = 0;
  /// Rebuild when the probed underestimate rate exceeds this.
  double max_underestimate_rate = 0.0;
  /// Probe cadence: estimate the underestimate rate every N updates
  /// (0 = never probe). Each probe costs `probe_sources` exact SSSPs.
  std::size_t probe_every = 0;
  std::size_t probe_sources = 2;
  std::uint64_t probe_seed = 5;
};

/// Tracks churn against the budgets above. Drive it with one
/// note_update() per applied update; it answers "rebuild now?" and
/// remembers the last probed violation rate for reporting.
class RebuildPolicy {
 public:
  explicit RebuildPolicy(const RebuildPolicyConfig& cfg) : cfg_(cfg) {}

  /// Records one applied update (`repaired` = fixed in place) and
  /// returns true when any budget is now exceeded. `current` and
  /// `serving` feed the optional underestimate-rate probe — `serving`
  /// is the oracle traffic is actually answered from.
  bool note_update(const Graph& current, const DistanceOracle& serving,
                   bool repaired);

  /// Resets all budgets after the caller performed a rebuild.
  void note_rebuilt();

  std::size_t updates_since_rebuild() const { return updates_; }
  std::size_t unrepaired_since_rebuild() const { return unrepaired_; }
  /// Rate from the most recent probe (-1 before any probe ran).
  double last_probed_rate() const { return last_rate_; }
  std::size_t probes_run() const { return probes_; }

 private:
  RebuildPolicyConfig cfg_;
  std::size_t updates_ = 0;
  std::size_t unrepaired_ = 0;
  std::size_t probes_ = 0;
  double last_rate_ = -1.0;
};

}  // namespace dsketch
