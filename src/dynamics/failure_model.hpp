// Edge-failure dynamics (paper §5: "failure-prone ... settings").
//
// The paper's sketches are computed for a fixed topology; §1 notes the
// preprocessing must be redone "as the distance information or network
// itself changes". This module quantifies that: sample a connectivity-
// preserving set of edge failures, derive the degraded graph, and evaluate
// how *stale* sketches behave against the new metric — in particular, the
// one-sided guarantee (estimate >= distance) breaks once estimates route
// through dead edges, so staleness shows up as underestimates, which is
// what a monitoring deployment would alert on (experiment E11).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {

struct FailurePlan {
  std::vector<std::size_t> failed_edges;  ///< indices into g.edges()
};

/// Samples ~`fraction` of edges to fail, uniformly, skipping any whose
/// removal would disconnect the remaining graph (bridges survive).
FailurePlan sample_edge_failures(const Graph& g, double fraction,
                                 std::uint64_t seed);

/// The graph with the planned edges removed. Always connected.
Graph apply_failures(const Graph& g, const FailurePlan& plan);

struct StalenessReport {
  SampleSet stretch;             ///< stale estimate / new true distance
  std::size_t underestimates = 0;  ///< guarantee violations caused by churn
  std::size_t pairs = 0;
};

/// Evaluates a (stale) estimator against ground truth on the *degraded*
/// graph, over `sources` sampled rows.
StalenessReport evaluate_staleness(const Graph& degraded, const Estimator& est,
                                   std::size_t sources, std::uint64_t seed);

}  // namespace dsketch
