#include "dynamics/incremental.hpp"

#include <algorithm>
#include <utility>

#include "core/sketch_oracle.hpp"
#include "dynamics/failure_model.hpp"
#include "obs/trace.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_centralized.hpp"
#include "util/assert.hpp"

namespace dsketch {

TzLabelOracle::TzLabelOracle(LabelArena labels, std::uint32_t k)
    : labels_(std::move(labels)), k_(k) {}

Dist TzLabelOracle::query(NodeId u, NodeId v) const {
  DS_CHECK(u < labels_.num_nodes() && v < labels_.num_nodes());
  return tz_query(labels_.view(u), labels_.view(v));
}

std::string TzLabelOracle::guarantee() const {
  // Not the scheme-level "stretch 2k-1 (all pairs)": repair keeps the
  // stored distances exact but never re-elects pivots or bunch
  // membership, so once the graph has moved only the one-sided bound
  // is promised. (A freshly built/rebuilt instance does meet 2k-1; the
  // conservative claim covers the whole lifetime.)
  return "stretch 2k-1 at build (k=" + std::to_string(k_) +
         "); one-sided only under live repair";
}

Capabilities TzLabelOracle::capabilities() const {
  Capabilities caps = sketch_capabilities(Scheme::kThorupZwick, k_);
  caps.stretch_bound = 0.0;  // void once repairs diverge from the build
  caps.supports_save = false;         // transient serving artifact
  caps.build_cost_available = false;  // no CONGEST run behind it
  return caps;
}

TzDynamicSketch::TzDynamicSketch(const Graph& g, std::uint32_t k,
                                 std::uint64_t seed, ThreadPool* pool)
    : k_(k) {
  build_labels(g, seed, pool);
}

void TzDynamicSketch::build_labels(const Graph& g, std::uint64_t seed,
                                   ThreadPool* pool) {
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k_, seed);
  for (std::uint64_t bump = 1; !h.top_level_nonempty(); ++bump) {
    h = Hierarchy::sample(g.num_nodes(), k_, seed + bump);
  }
  labels_ = build_tz_centralized(g, h, pool);
  recompute_bound();
}

void TzDynamicSketch::recompute_bound() {
  bound_ = 0;
  for (NodeId u = 0; u < labels_.num_nodes(); ++u) {
    const LabelView label = labels_.view(u);
    for (std::uint32_t i = 0; i < label.levels; ++i) {
      const DistKey& p = label.pivot(i);
      if (p.id != kInvalidNode && p.dist != kInfDist) {
        bound_ = std::max(bound_, p.dist);
      }
    }
    for (std::uint32_t j = 0; j < label.count; ++j) {
      bound_ = std::max(bound_, label.bunch[j].dist);
    }
  }
}

std::size_t TzDynamicSketch::explore(const Graph& g, NodeId source,
                                     std::vector<Dist>& out) {
  out.assign(g.num_nodes(), kInfDist);
  const Dist bound = bound_;
  // Expansion stops past the bound: prefixes of shortest paths are
  // monotone, so every node whose true distance is <= bound still
  // settles exactly; values beyond it can never beat a stored entry.
  sp_pruned_dijkstra(g, source, ws_,
                     [bound](NodeId, Dist d) { return d <= bound; });
  std::size_t recorded = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    const Dist d = ws_.dist(x);
    if (d <= bound) {
      out[x] = d;
      ++recorded;
    }
  }
  return recorded;
}

bool TzDynamicSketch::apply(const Graph& updated, const EdgeUpdate& update) {
  const obs::Span apply_span("churn_apply");
  ++stats_.updates_seen;
  if (!is_distance_decrease(update)) {
    ++stats_.unrepairable;
    ++unrepaired_;
    return false;
  }
  const obs::Span repair_span("incremental_repair");
  DS_CHECK(updated.num_nodes() == labels_.num_nodes());
  const Dist we = update.weight;
  stats_.nodes_explored += explore(updated, update.u, dist_a_);
  stats_.nodes_explored += explore(updated, update.v, dist_b_);

  // Tightest detour through the updated edge between x and y, kInfDist
  // when neither orientation is inside the explored bound.
  const auto via_edge = [&](NodeId x, NodeId y) {
    Dist best = kInfDist;
    if (dist_a_[x] != kInfDist && dist_b_[y] != kInfDist) {
      best = dist_a_[x] + we + dist_b_[y];
    }
    if (dist_b_[x] != kInfDist && dist_a_[y] != kInfDist) {
      best = std::min(best, dist_b_[x] + we + dist_a_[y]);
    }
    return best;
  };

  for (NodeId x = 0; x < updated.num_nodes(); ++x) {
    if (dist_a_[x] == kInfDist && dist_b_[x] == kInfDist) continue;
    const LabelView label = labels_.view(x);
    for (std::uint32_t i = 0; i < label.levels; ++i) {
      const DistKey& p = label.pivot(i);
      if (p.id == kInvalidNode || p.dist == kInfDist) continue;
      const Dist cand = via_edge(x, p.id);
      if (cand < p.dist) {
        labels_.tighten_pivot(x, i, cand);
        ++stats_.entries_improved;
      }
    }
    for (std::uint32_t j = 0; j < label.count; ++j) {
      const Dist cand = via_edge(x, label.bunch[j].node);
      if (cand < label.bunch[j].dist) {
        labels_.tighten_bunch_dist(x, j, cand);
        ++stats_.entries_improved;
      }
    }
  }
  ++stats_.repaired;
  return true;
}

void TzDynamicSketch::rebuild(const Graph& g, std::uint64_t seed,
                              ThreadPool* pool) {
  const obs::Span span("sketch_rebuild");
  build_labels(g, seed, pool);
  unrepaired_ = 0;
  ++stats_.rebuilds;
}

std::shared_ptr<const DistanceOracle> TzDynamicSketch::snapshot() const {
  return std::make_shared<TzLabelOracle>(labels_, k_);
}

bool RebuildPolicy::note_update(const Graph& current,
                                const DistanceOracle& serving,
                                bool repaired) {
  ++updates_;
  if (!repaired) ++unrepaired_;
  if (cfg_.max_updates != 0 && updates_ >= cfg_.max_updates) return true;
  if (cfg_.max_unrepaired != 0 && unrepaired_ >= cfg_.max_unrepaired) {
    return true;
  }
  if (cfg_.probe_every != 0 && cfg_.max_underestimate_rate > 0 &&
      updates_ % cfg_.probe_every == 0) {
    ++probes_;
    const StalenessReport report = evaluate_staleness(
        current,
        [&serving](NodeId u, NodeId v) { return serving.query(u, v); },
        cfg_.probe_sources, cfg_.probe_seed + probes_);
    last_rate_ = report.pairs == 0
                     ? 0.0
                     : static_cast<double>(report.underestimates) /
                           static_cast<double>(report.pairs);
    if (last_rate_ > cfg_.max_underestimate_rate) return true;
  }
  return false;
}

void RebuildPolicy::note_rebuilt() {
  updates_ = 0;
  unrepaired_ = 0;
}

}  // namespace dsketch
