#include "dynamics/failure_model.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

/// Connectivity of the graph with `alive` edge mask.
bool connected_with(const Graph& g, const std::vector<char>& alive) {
  const NodeId n = g.num_nodes();
  if (n == 0) return true;
  // Adjacency via edge list to respect the mask.
  std::vector<std::vector<NodeId>> adj(n);
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!alive[i]) continue;
    adj[edges[i].u].push_back(edges[i].v);
    adj[edges[i].v].push_back(edges[i].u);
  }
  std::vector<char> seen(n, 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++reached;
        q.push(v);
      }
    }
  }
  return reached == n;
}

}  // namespace

FailurePlan sample_edge_failures(const Graph& g, double fraction,
                                 std::uint64_t seed) {
  DS_CHECK(fraction >= 0.0 && fraction < 1.0);
  Rng rng(seed);
  const std::size_t m = g.num_edges();
  const auto target = static_cast<std::size_t>(fraction * static_cast<double>(m));
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  for (std::size_t i = m; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<char> alive(m, 1);
  FailurePlan plan;
  for (const std::size_t e : order) {
    if (plan.failed_edges.size() >= target) break;
    alive[e] = 0;
    if (connected_with(g, alive)) {
      plan.failed_edges.push_back(e);
    } else {
      alive[e] = 1;  // bridge: keep it
    }
  }
  std::sort(plan.failed_edges.begin(), plan.failed_edges.end());
  return plan;
}

Graph apply_failures(const Graph& g, const FailurePlan& plan) {
  std::vector<char> failed(g.num_edges(), 0);
  for (const std::size_t e : plan.failed_edges) {
    DS_CHECK(e < g.num_edges());
    failed[e] = 1;
  }
  std::vector<Edge> kept;
  kept.reserve(g.num_edges() - plan.failed_edges.size());
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!failed[i]) kept.push_back(edges[i]);
  }
  Graph degraded = Graph::from_edges(g.num_nodes(), kept);
  DS_CHECK(degraded.connected());
  return degraded;
}

StalenessReport evaluate_staleness(const Graph& degraded, const Estimator& est,
                                   std::size_t sources, std::uint64_t seed) {
  StalenessReport report;
  const SampledGroundTruth gt(degraded, sources, seed);
  for (std::size_t row = 0; row < gt.num_rows(); ++row) {
    const NodeId s = gt.sources()[row];
    for (NodeId v = 0; v < degraded.num_nodes(); ++v) {
      if (v == s) continue;
      const Dist d = gt.dist(row, v);
      DS_CHECK(d != kInfDist);
      const Dist e = est(s, v);
      if (e == kInfDist) continue;
      ++report.pairs;
      if (e < d) ++report.underestimates;
      report.stretch.add(static_cast<double>(e) / static_cast<double>(d));
    }
  }
  return report;
}

}  // namespace dsketch
