// Event-driven scheduler semantics: the simulator activates only nodes
// with inbound traffic, wakes, or timers; idle stretches fast-forward;
// outboxes drain one message per edge per round through a compacting
// queue. These tests pin the observable contract of that machinery —
// activation accounting, timer precision, FIFO through compaction,
// canonical inbox order, async and threaded determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "congest/sim.hpp"
#include "graph/generators.hpp"
#include "obs/round_log.hpp"

namespace dsketch {
namespace {

/// Floods one token from node 0; every node re-broadcasts on first receipt.
class Flood : public Protocol {
 public:
  explicit Flood(NodeId n) : seen_round_(n, 0), seen_(n, 0), steps_(n, 0) {}
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      seen_[0] = 1;
      ctx.broadcast(Message{7});
    }
  }
  void on_round(NodeCtx& ctx) override {
    // All state is node-indexed so the protocol is safe under parallel
    // stepping.
    steps_[ctx.node()] += 1;
    if (!ctx.inbox().empty() && !seen_[ctx.node()]) {
      seen_[ctx.node()] = 1;
      seen_round_[ctx.node()] = ctx.round();
      ctx.broadcast(Message{7});
    }
  }
  std::uint64_t seen_round(NodeId u) const { return seen_round_[u]; }
  std::uint64_t steps(NodeId u) const { return steps_[u]; }

 private:
  std::vector<std::uint64_t> seen_round_;
  std::vector<char> seen_;
  std::vector<std::uint64_t> steps_;
};

TEST(SimEvent, ActivationCostIsTrafficNotRoundsTimesNodes) {
  // A flood along a 200-node path runs ~200 rounds, but each node only
  // steps when a message actually reaches it: total steps must stay
  // linear in n, not n * rounds (the lockstep cost this design removes).
  constexpr NodeId kN = 200;
  const Graph g = path(kN, {1, 1}, 3);
  Flood p(kN);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_GE(stats.rounds, kN - 1);
  EXPECT_LE(stats.node_steps, 3u * kN);
  for (NodeId u = 0; u < kN; ++u) {
    EXPECT_LE(p.steps(u), 3u) << "node " << u << " over-stepped";
  }
}

TEST(SimEvent, TimersFireExactlyAcrossFastForwards) {
  // Four nodes with staggered far-future timers: each must fire at its
  // exact round while the gaps fast-forward (bounded node steps).
  class StaggeredTimers : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() < 4) ctx.wake_at(100 * (ctx.node() + 1));
    }
    void on_round(NodeCtx& ctx) override {
      fired_[ctx.node()].push_back(ctx.round());
    }
    std::map<NodeId, std::vector<std::uint64_t>> fired_;
  };
  const Graph g = ring(16, {1, 1}, 0);
  StaggeredTimers p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  for (NodeId u = 0; u < 4; ++u) {
    ASSERT_EQ(p.fired_[u].size(), 1u) << "node " << u;
    EXPECT_EQ(p.fired_[u][0], 100u * (u + 1));
  }
  EXPECT_GE(stats.rounds, 400u);
  EXPECT_LE(stats.node_steps, 16u + 4u);
}

TEST(SimEvent, MultipleTimersSameNodeBothFire) {
  class TwoTimers : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() == 0) {
        ctx.wake_at(10);
        ctx.wake_at(20);
      }
    }
    void on_round(NodeCtx& ctx) override { fired_.push_back(ctx.round()); }
    std::vector<std::uint64_t> fired_;
  };
  const Graph g = ring(8, {1, 1}, 0);
  TwoTimers p;
  Simulator sim(g, p);
  sim.run();
  ASSERT_EQ(p.fired_, (std::vector<std::uint64_t>{10, 20}));
}

TEST(SimEvent, CoalescedWakesStepOnce) {
  // wake() twice plus a timer for the same next round: one step, not three.
  class NoisyWaker : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() != 0) return;
      ctx.wake();
      ctx.wake();
      ctx.wake_at(1);
    }
    void on_round(NodeCtx& ctx) override { fired_.push_back(ctx.round()); }
    std::vector<std::uint64_t> fired_;
  };
  const Graph g = ring(8, {1, 1}, 0);
  NoisyWaker p;
  Simulator sim(g, p);
  sim.run();
  ASSERT_EQ(p.fired_, (std::vector<std::uint64_t>{1}));
}

TEST(SimEvent, QuiescenceWaitsForPendingTimers) {
  // A pending timer is in-flight work: the quiescence hook must not run
  // until the timer has fired and its activity has drained.
  class TimerThenQuiet : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() == 0) ctx.wake_at(50);
    }
    void on_round(NodeCtx& ctx) override { fired_round_ = ctx.round(); }
    bool on_quiescent(Simulator&) override {
      ++quiescent_calls_;
      saw_timer_first_ = fired_round_ == 50;
      return false;
    }
    std::uint64_t fired_round_ = 0;
    int quiescent_calls_ = 0;
    bool saw_timer_first_ = false;
  };
  const Graph g = ring(8, {1, 1}, 0);
  TimerThenQuiet p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(p.quiescent_calls_, 1);
  EXPECT_TRUE(p.saw_timer_first_);
  EXPECT_GE(stats.rounds, 50u);
}

TEST(SimEvent, TargetedActivationRestartsOnlyChosenNodes) {
  // activate({...}) re-arms on_start for exactly the chosen nodes (in id
  // order); everyone else stays untouched and no spurious on_round fires.
  class OnDemand : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (resumed_) restarted_.push_back(ctx.node());
    }
    void on_round(NodeCtx& ctx) override { stepped_.push_back(ctx.node()); }
    bool on_quiescent(Simulator& sim) override {
      if (resumed_) return false;
      resumed_ = true;
      sim.activate({5, 3});
      return true;
    }
    std::vector<NodeId> restarted_;
    std::vector<NodeId> stepped_;
    bool resumed_ = false;
  };
  const Graph g = ring(8, {1, 1}, 0);
  OnDemand p;
  Simulator sim(g, p);
  sim.run();
  EXPECT_EQ(p.restarted_, (std::vector<NodeId>{3, 5}));
  EXPECT_TRUE(p.stepped_.empty());
}

/// Sends `count` messages on edge 0 of node 0; audits arrival order/rounds.
class Burst : public Protocol {
 public:
  explicit Burst(std::size_t count) : count_(count) {}
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() != 0) return;
    for (std::size_t i = 0; i < count_; ++i) {
      ctx.send(0, Message{static_cast<Word>(i)});
    }
    depth_after_send_ = ctx.outbox_depth(0);
  }
  void on_round(NodeCtx& ctx) override {
    for (const Inbound& in : ctx.inbox()) {
      received_.push_back(in.msg.at(0));
      receive_rounds_.push_back(ctx.round());
    }
  }
  std::size_t count_;
  std::size_t depth_after_send_ = 0;
  std::vector<Word> received_;
  std::vector<std::uint64_t> receive_rounds_;
};

TEST(SimEvent, LongBurstDrainsFifoThroughQueueCompaction) {
  // 200 queued messages on one edge force the outbox's head-compaction
  // path (it compacts after 64 pops): FIFO order and one-per-round pacing
  // must survive it, and the peak depth must equal the burst size.
  constexpr std::size_t kBurst = 200;
  const Graph g = path(2, {1, 1}, 0);
  Burst p(kBurst);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(p.depth_after_send_, kBurst);
  ASSERT_EQ(p.received_.size(), kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    EXPECT_EQ(p.received_[i], i);
    EXPECT_EQ(p.receive_rounds_[i], i + 1);
  }
  EXPECT_EQ(stats.max_outbox, kBurst);
  EXPECT_EQ(stats.messages, kBurst);
}

TEST(SimEvent, CapacityAblationKeepsDepthAccounting) {
  // With enforcement off the whole burst ships in round 1, but max_outbox
  // still reports the queue's true peak.
  const Graph g = path(2, {1, 1}, 0);
  Burst p(7);
  SimConfig cfg;
  cfg.enforce_capacity = false;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  ASSERT_EQ(p.received_.size(), 7u);
  for (const std::uint64_t r : p.receive_rounds_) EXPECT_EQ(r, 1u);
  EXPECT_EQ(stats.max_outbox, 7u);
}

TEST(SimEvent, BroadcastOnIsolatedNodeIsSilent) {
  class Shouter : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override { ctx.broadcast(Message{1}); }
    void on_round(NodeCtx& ctx) override { delivered_ += ctx.inbox().size(); }
    std::uint64_t delivered_ = 0;
  };
  const Graph g = Graph::from_edges(3, {Edge{0, 1, 1}});
  Shouter p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.messages, 2u);  // node 2's broadcast goes nowhere
  EXPECT_EQ(p.delivered_, 2u);
  EXPECT_FALSE(stats.hit_round_limit);
}

TEST(SimEvent, StarCenterInboxIsCanonicallyOrdered) {
  // Every leaf sends at round 0; the center's round-1 inbox must hold one
  // message per leaf, sorted by local edge — on the serial and threaded
  // delivery paths alike.
  class LeavesSend : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() != 0) ctx.send(0, Message{ctx.node()});
    }
    void on_round(NodeCtx& ctx) override {
      if (ctx.node() != 0) return;
      for (const Inbound& in : ctx.inbox()) edges_.push_back(in.local_edge);
    }
    std::vector<std::uint32_t> edges_;
  };
  const Graph g = star(100, {1, 1}, 0);
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    LeavesSend p;
    SimConfig cfg;
    cfg.threads = threads;
    Simulator sim(g, p, cfg);
    sim.run();
    ASSERT_EQ(p.edges_.size(), 99u);
    for (std::uint32_t e = 0; e < 99; ++e) EXPECT_EQ(p.edges_[e], e);
  }
}

TEST(SimEvent, AsyncDeliveryDeterministicForFixedSeed) {
  const Graph g = path(2, {1, 1}, 0);
  auto arrival_schedule = [&](std::uint64_t seed) {
    Burst p(12);
    SimConfig cfg;
    cfg.async_max_delay = 4;
    cfg.async_seed = seed;
    Simulator sim(g, p, cfg);
    const SimStats stats = sim.run();
    EXPECT_EQ(stats.messages, 12u);
    EXPECT_EQ(p.received_.size(), 12u);
    return p.receive_rounds_;
  };
  const auto a = arrival_schedule(42);
  EXPECT_EQ(a, arrival_schedule(42));  // same seed, same schedule
  // A different seed still conserves every message (checked inside), even
  // if the schedule differs.
  arrival_schedule(43);
}

TEST(SimEvent, AsyncRunsIdenticalAcrossWorkerThreads) {
  // Async delivery itself is serial; parallel node stepping must not
  // perturb the delay draws or the aggregate counters.
  const Graph g = erdos_renyi(200, 0.03, {1, 5}, 19);
  auto run_stats = [&](unsigned threads) {
    Flood p(g.num_nodes());
    SimConfig cfg;
    cfg.threads = threads;
    cfg.async_max_delay = 3;
    Simulator sim(g, p, cfg);
    const SimStats stats = sim.run();
    std::vector<std::uint64_t> sig{stats.rounds, stats.messages, stats.words,
                                   stats.node_steps, stats.max_outbox};
    for (NodeId u = 0; u < g.num_nodes(); ++u) sig.push_back(p.seen_round(u));
    return sig;
  };
  const auto reference = run_stats(1);
  EXPECT_EQ(reference, run_stats(4));
}

TEST(SimEvent, PhaseLabelFlowsIntoStats) {
  const Graph g = ring(8, {1, 1}, 0);
  Flood p(g.num_nodes());
  SimConfig cfg;
  cfg.phase = "ring_flood";
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.label, "ring_flood");
  ASSERT_EQ(stats.breakdown().size(), 1u);
  EXPECT_EQ(stats.breakdown()[0].label, "ring_flood");
  EXPECT_EQ(stats.breakdown()[0].messages, stats.messages);
}

TEST(SimEvent, ThreadedRunStreamsRoundLogThatSumsToStats) {
  // The per-round telemetry hook runs on the serial section of the round
  // loop; with 8 worker threads the streamed window sums must still equal
  // the aggregate counters exactly.
  const Graph g = erdos_renyi(300, 0.03, {1, 6}, 23);
  std::ostringstream out;
  obs::RoundLog log(out);
  Flood p(g.num_nodes());
  SimConfig cfg;
  cfg.threads = 8;
  cfg.phase = "threaded_flood";
  cfg.round_log = &log;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  log.flush();

  std::uint64_t messages = 0, words = 0, rounds = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find("\"phase\":\"threaded_flood\""), std::string::npos);
    const auto value = [&](const std::string& key) {
      const std::string needle = "\"" + key + "\":";
      const auto pos = line.find(needle);
      EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
      return pos == std::string::npos
                 ? 0ULL
                 : std::stoull(line.substr(pos + needle.size()));
    };
    messages += value("messages");
    words += value("words");
    rounds += value("rounds_in_window");
  }
  EXPECT_EQ(messages, stats.messages);
  EXPECT_EQ(words, stats.words);
  EXPECT_EQ(rounds, stats.rounds);
}

}  // namespace
}  // namespace dsketch
