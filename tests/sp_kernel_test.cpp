// Property tests for the shortest-path kernel: the bucket-queue and
// 4-ary-heap engines must return exactly the dist/owner/hops fixed points
// of the legacy reference implementations (bench/legacy_sp_reference.hpp,
// shared with the E13 microbenchmark), on random weighted graphs
// including zero-weight and parallel edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "graph/sp_kernel.hpp"
#include "legacy_sp_reference.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

std::vector<Dist> ref_dijkstra(const Graph& g, NodeId source) {
  return legacy_ref::dijkstra(g, source);
}

/// A random multigraph exercising the awkward cases: zero-weight edges,
/// parallel edges with distinct weights, tie-heavy small weight ranges.
Graph awkward_graph(NodeId n, std::size_t m, Weight wmax, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  // Spanning backbone keeps it connected.
  for (NodeId u = 1; u < n; ++u) {
    const NodeId p = static_cast<NodeId>(rng.below(u));
    edges.push_back(Edge{std::min(p, u), std::max(p, u),
                         static_cast<Weight>(rng.below(wmax + 1))});
  }
  for (std::size_t i = edges.size(); i < m; ++i) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) v = (v + 1) % n;
    edges.push_back(Edge{std::min(u, v), std::max(u, v),
                         static_cast<Weight>(rng.below(wmax + 1))});
    if (rng.bernoulli(0.2)) {  // deliberate parallel edge, different weight
      edges.push_back(Edge{std::min(u, v), std::max(u, v),
                           static_cast<Weight>(rng.below(wmax + 1))});
    }
  }
  return Graph::from_edges(n, edges);
}

class SpKernelSweep
    : public ::testing::TestWithParam<std::tuple<Weight, std::uint64_t>> {};

TEST_P(SpKernelSweep, AllEnginesMatchTheReference) {
  const auto [wmax, seed] = GetParam();
  const Graph g = awkward_graph(120, 400, wmax, seed);
  SpWorkspace ws;  // one workspace reused across every search below
  Rng rng(seed * 77 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const std::vector<Dist> want = ref_dijkstra(g, s);
    std::vector<Dist> want_ms_dist, want_mh_dist;
    std::vector<NodeId> want_ms_owner;
    std::vector<std::uint32_t> want_mh_hops;
    std::vector<NodeId> sources;
    for (NodeId u = 0; u < g.num_nodes(); u += 1 + s % 7) sources.push_back(u);
    legacy_ref::multi_source(g, sources, want_ms_dist, want_ms_owner);
    legacy_ref::min_hops(g, s, want_mh_dist, want_mh_hops);

    for (const SpEngine engine : {SpEngine::kBucket, SpEngine::kHeap}) {
      sp_dijkstra(g, s, ws, engine);
      EXPECT_EQ(ws.export_dist(), want);

      sp_multi_source(g, sources, ws, engine);
      EXPECT_EQ(ws.export_dist(), want_ms_dist);
      EXPECT_EQ(ws.export_owner(), want_ms_owner);

      sp_dijkstra_min_hops(g, s, ws, engine);
      EXPECT_EQ(ws.export_dist(), want_mh_dist);
      EXPECT_EQ(ws.export_hops(), want_mh_hops);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpKernelSweep,
    ::testing::Combine(
        // wmax = 0: all-zero weights; 1: BFS-like ties everywhere; 12:
        // corpus-like; 70000: beyond the bucket auto-limit (heap territory,
        // but the bucket engine must still be correct when forced).
        ::testing::Values(Weight{0}, Weight{1}, Weight{12}, Weight{70000}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3})));

TEST(SpKernel, HeapEngineHandlesHugeWeights) {
  const Graph g = awkward_graph(80, 240, 70000, 9);
  EXPECT_EQ(select_engine(g), SpEngine::kHeap);
  SpWorkspace ws;
  for (const NodeId s : {NodeId{0}, NodeId{17}, NodeId{42}}) {
    sp_dijkstra(g, s, ws, SpEngine::kHeap);
    EXPECT_EQ(ws.export_dist(), ref_dijkstra(g, s));
  }
}

TEST(SpKernel, EngineSelectionFollowsMaxWeight) {
  EXPECT_EQ(select_engine(awkward_graph(16, 30, 12, 1)), SpEngine::kBucket);
  EXPECT_EQ(select_engine(awkward_graph(16, 30, 70000, 1)), SpEngine::kHeap);
  // Explicit requests win over the weight rule.
  EXPECT_EQ(select_engine(awkward_graph(16, 30, 12, 1), SpEngine::kHeap),
            SpEngine::kHeap);
}

TEST(SpKernel, HopBfsMatchesReference) {
  const Graph g = awkward_graph(100, 300, 12, 5);
  SpWorkspace ws;
  sp_hop_bfs(g, 3, ws);
  // Reference: dijkstra on the unweighted view of the same graph.
  std::vector<Edge> unit = g.edges();
  for (Edge& e : unit) e.weight = 1;
  const Graph ug = Graph::from_edges(g.num_nodes(), unit);
  const std::vector<Dist> want = ref_dijkstra(ug, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(static_cast<Dist>(ws.hops(u)), want[u]);
  }
}

TEST(SpKernel, WorkspaceSurvivesGraphSizeChanges) {
  SpWorkspace ws;
  const Graph big = awkward_graph(200, 600, 9, 11);
  const Graph small = awkward_graph(20, 60, 9, 12);
  sp_dijkstra(big, 0, ws);
  EXPECT_EQ(ws.export_dist(), ref_dijkstra(big, 0));
  sp_dijkstra(small, 5, ws);  // shrinking n must not leak stale entries
  EXPECT_EQ(ws.export_dist(), ref_dijkstra(small, 5));
  sp_dijkstra(big, 7, ws);
  EXPECT_EQ(ws.export_dist(), ref_dijkstra(big, 7));
}

TEST(SpKernel, ThrowingVisitGateDoesNotPoisonTheWorkspace) {
  // A visit gate that throws mid-drain must not leave frontier entries
  // behind in the workspace's persistent bucket slots; the next search
  // on the same workspace has to be exact.
  const Graph g = awkward_graph(100, 300, 7, 31);
  SpWorkspace ws;
  for (const SpEngine engine : {SpEngine::kBucket, SpEngine::kHeap}) {
    int visits = 0;
    EXPECT_THROW(
        sp_pruned_dijkstra(g, 0, ws,
                           [&](NodeId, Dist) -> bool {
                             if (++visits == 5) throw std::runtime_error("x");
                             return true;
                           },
                           engine),
        std::runtime_error);
    sp_dijkstra(g, 9, ws, engine);
    EXPECT_EQ(ws.export_dist(), ref_dijkstra(g, 9));
  }
}

TEST(SpKernel, PrunedSearchVisitsExactlyTheBall) {
  // Gate: only expand nodes within distance 10 of the source. The visited
  // set must be exactly {x : d(s,x) <= 10} and distances must be exact,
  // because the ball is closed under shortest paths.
  const Graph g = awkward_graph(150, 500, 5, 21);
  const std::vector<Dist> exact = ref_dijkstra(g, 4);
  for (const SpEngine engine : {SpEngine::kBucket, SpEngine::kHeap}) {
    SpWorkspace ws;
    std::vector<std::pair<NodeId, Dist>> visited;
    sp_pruned_dijkstra(g, 4, ws, [&](NodeId x, Dist d) {
      if (d > 10) return false;
      visited.emplace_back(x, d);
      return true;
    }, engine);
    std::size_t want_count = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (exact[u] <= 10) ++want_count;
    }
    ASSERT_EQ(visited.size(), want_count);
    for (const auto& [x, d] : visited) EXPECT_EQ(d, exact[x]);
  }
}

}  // namespace
}  // namespace dsketch
