#include <gtest/gtest.h>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

TEST(FarFlags, CountsStrictlyCloserNodes) {
  // Path 0-1-2-3 unit: from 0, ranks are 1:{0}, 2:{0,1}, 3:{0,1,2}.
  const Graph g = path(4, {1, 1}, 0);
  const ExactOracle oracle(g);
  // eps = 0.5 -> threshold 2 closer nodes.
  const auto flags = far_flags(oracle.row(0), 0, 0.5);
  EXPECT_FALSE(flags[1]);  // 1 closer node (0 itself)
  EXPECT_TRUE(flags[2]);   // 2 closer nodes
  EXPECT_TRUE(flags[3]);
}

TEST(FarFlags, EqualDistancesNotStrictlyCloser) {
  const Graph g = star(5, {3, 3}, 0);  // all leaves equidistant from hub
  const ExactOracle oracle(g);
  const auto flags = far_flags(oracle.row(0), 0, 0.4);  // threshold 2
  // Every leaf has only the hub strictly closer (1 < 2): none are far.
  for (NodeId v = 1; v < 5; ++v) EXPECT_FALSE(flags[v]);
}

TEST(EvaluateStretch, ExactOracleHasStretchOne) {
  const Graph g = erdos_renyi(60, 0.1, {1, 9}, 3);
  const ExactOracle oracle(g);
  const SampledGroundTruth gt(g, 10, 1);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId u, NodeId v) { return oracle.query(u, v); }, {});
  EXPECT_DOUBLE_EQ(report.average_stretch(), 1.0);
  EXPECT_DOUBLE_EQ(report.max_stretch(), 1.0);
  EXPECT_EQ(report.underestimates, 0u);
  EXPECT_EQ(report.unreachable, 0u);
}

TEST(EvaluateStretch, DetectsUnderestimates) {
  const Graph g = ring(20, {2, 2}, 0);
  const SampledGroundTruth gt(g, 5, 1);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId, NodeId) -> Dist { return 1; }, {});
  EXPECT_GT(report.underestimates, 0u);
}

TEST(EvaluateStretch, CountsUnreachable) {
  const Graph g = ring(10, {1, 1}, 0);
  const SampledGroundTruth gt(g, 2, 1);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId, NodeId) { return kInfDist; }, {});
  EXPECT_EQ(report.unreachable, 2u * 9u);
  EXPECT_EQ(report.all.count(), 0u);
}

TEST(EvaluateStretch, FarNearSplitPartitions) {
  const Graph g = erdos_renyi(80, 0.08, {1, 9}, 5);
  const SampledGroundTruth gt(g, 8, 3);
  EvalOptions opts;
  opts.epsilon = 0.2;
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId, NodeId) -> Dist { return 1000000; }, opts);
  EXPECT_EQ(report.far_only.count() + report.near_only.count(),
            report.all.count());
  EXPECT_GT(report.far_only.count(), 0u);
  EXPECT_GT(report.near_only.count(), 0u);
}

TEST(EvaluateStretch, SamplingCapsPairCount) {
  const Graph g = erdos_renyi(100, 0.06, {1, 5}, 9);
  const SampledGroundTruth gt(g, 4, 2);
  EvalOptions opts;
  opts.max_pairs_per_source = 10;
  const ExactOracle oracle(g);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId u, NodeId v) { return oracle.query(u, v); }, opts);
  EXPECT_EQ(report.all.count(), 40u);
}

}  // namespace
}  // namespace dsketch
