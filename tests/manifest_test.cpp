#include <gtest/gtest.h>

#include <set>

#include "exp/manifest.hpp"

namespace dsketch::exp {
namespace {

const char* kGood = R"(
# A comment line.
name = "demo"
seed = 11

[corpus.er1k]
topology = "er"   # trailing comment
n = 1024
p = 0.008
seed = 42

[corpus.ring_small]
topology = "ring"
n = 64

[[cell]]
experiment = "e7"
graph = "er1k"
queries = 5000

[[cell]]
experiment = "e12"
graph = ["er1k", "ring_small"]
threads = "1,2"
queries = [1000, 2000]
)";

TEST(Manifest, ParsesTheFullShape) {
  const Manifest m = parse_manifest(kGood);
  EXPECT_EQ(m.name, "demo");
  EXPECT_EQ(m.base_seed, 11u);
  ASSERT_EQ(m.corpus.size(), 2u);
  EXPECT_EQ(m.corpus[0].name, "er1k");
  ASSERT_NE(m.find_graph("er1k"), nullptr);
  EXPECT_EQ(m.find_graph("missing"), nullptr);
  ASSERT_EQ(m.cells.size(), 2u);
  EXPECT_EQ(m.cells[0].experiment, "e7");
  // Sweep axes: graph x queries on the second cell.
  ASSERT_EQ(m.cells[1].params.size(), 3u);
}

TEST(Manifest, ExpansionIsTheCrossProduct) {
  const Manifest m = parse_manifest(kGood);
  const std::vector<Cell> cells = expand_cells(m);
  // 1 + (2 graphs x 2 queries) = 5.
  ASSERT_EQ(cells.size(), 5u);
  std::set<std::string> ids;
  for (const Cell& cell : cells) ids.insert(cell.id());
  EXPECT_EQ(ids.size(), cells.size()) << "cell ids must be distinct";
  for (const Cell& cell : cells) {
    EXPECT_EQ(cell.id().rfind(cell.experiment + "-", 0), 0u);
  }
}

TEST(Manifest, CellIdIgnoresParamOrder) {
  Cell a, b;
  a.experiment = b.experiment = "e7";
  a.params = {{"n", "64"}, {"queries", "10"}};
  b.params = {{"n", "64"}, {"queries", "10"}};
  EXPECT_EQ(a.id(), b.id());
  b.params = {{"n", "65"}, {"queries", "10"}};
  EXPECT_NE(a.id(), b.id());
}

TEST(Manifest, DuplicateCellsCollapse) {
  const Manifest m = parse_manifest(R"(
name = "dups"
[[cell]]
experiment = "e2"
nmax = [256, 256]
)");
  EXPECT_EQ(expand_cells(m).size(), 1u);
}

TEST(Manifest, RoundTripsThroughToToml) {
  const Manifest m = parse_manifest(kGood);
  const Manifest again = parse_manifest(to_toml(m));
  EXPECT_EQ(again.name, m.name);
  EXPECT_EQ(again.base_seed, m.base_seed);
  ASSERT_EQ(again.corpus.size(), m.corpus.size());
  for (std::size_t i = 0; i < m.corpus.size(); ++i) {
    EXPECT_EQ(again.corpus[i].name, m.corpus[i].name);
    EXPECT_EQ(again.corpus[i].params, m.corpus[i].params);
    EXPECT_EQ(again.corpus[i].canonical(), m.corpus[i].canonical());
  }
  const std::vector<Cell> a = expand_cells(m);
  const std::vector<Cell> b = expand_cells(again);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
  }
}

TEST(Manifest, QuotedStringsUnescapeAndRoundTrip) {
  const Manifest m = parse_manifest(
      "name = \"with \\\"quotes\\\" and \\\\slash\"\n"
      "[[cell]]\nexperiment = \"e1\"\n");
  EXPECT_EQ(m.name, "with \"quotes\" and \\slash");
  EXPECT_EQ(parse_manifest(to_toml(m)).name, m.name);
}

TEST(Manifest, RejectsBadInput) {
  // Missing required fields.
  EXPECT_THROW(parse_manifest("[[cell]]\nexperiment = \"e1\"\n"),
               std::runtime_error);  // no name
  EXPECT_THROW(parse_manifest("name = \"x\"\n"), std::runtime_error);
  EXPECT_THROW(parse_manifest("name = \"x\"\n[[cell]]\nn = 4\n"),
               std::runtime_error);  // cell without experiment
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[corpus.g]\nn = 4\n"
                     "[[cell]]\nexperiment = \"e1\"\n"),
      std::runtime_error);  // corpus entry without topology

  // Unknown keys fail loudly.
  EXPECT_THROW(parse_manifest("name = \"x\"\nbogus = 1\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[corpus.g]\ntopology = \"er\"\n"
                     "colour = 3\n[[cell]]\nexperiment = \"e1\"\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "typo_knob = 7\n"),
      std::runtime_error);

  // Structural errors.
  EXPECT_THROW(parse_manifest("name = \"x\"\n[weird]\n"), std::runtime_error);
  EXPECT_THROW(parse_manifest("name = \"x\"\njust a line\n"),
               std::runtime_error);
  EXPECT_THROW(parse_manifest("name = \"unterminated\n"), std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "queries = [1, 2\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "queries = []\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "queries = not_a_value\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "queries =\n"),
      std::runtime_error);

  // Duplicates and dangling references.
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "n = 1\nn = 2\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[corpus.g]\ntopology = \"er\"\n"
                     "[corpus.g]\ntopology = \"er\"\n"
                     "[[cell]]\nexperiment = \"e1\"\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_manifest("name = \"x\"\n[[cell]]\nexperiment = \"e1\"\n"
                     "graph = \"nope\"\n"),
      std::runtime_error);
}

TEST(Manifest, ErrorsCarryLineNumbers) {
  try {
    parse_manifest("name = \"x\"\n\n[[cell]]\nexperiment = \"e1\"\n"
                   "bogus_key = 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(Manifest, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash_hex(0xdeadbeefULL << 32, 8), "deadbeef");
}

TEST(Manifest, DefaultQuickManifestIsHealthy) {
  const Manifest m = parse_manifest(default_quick_manifest());
  EXPECT_EQ(m.name, "quick");
  const std::vector<Cell> cells = expand_cells(m);
  std::set<std::string> experiments;
  for (const Cell& cell : cells) experiments.insert(cell.experiment);
  // The acceptance bar for `dsketch repro --quick`: at least four
  // distinct experiments in one invocation.
  EXPECT_GE(experiments.size(), 4u);
}

#ifdef DSKETCH_SOURCE_DIR
TEST(Manifest, QuickTomlFileMatchesTheBuiltin) {
  const Manifest file = load_manifest_file(
      std::string(DSKETCH_SOURCE_DIR) + "/bench/manifests/quick.toml");
  const Manifest builtin = parse_manifest(default_quick_manifest());
  EXPECT_EQ(file.name, builtin.name);
  EXPECT_EQ(file.base_seed, builtin.base_seed);
  const std::vector<Cell> a = expand_cells(file);
  const std::vector<Cell> b = expand_cells(builtin);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
  }
}

TEST(Manifest, FullTomlFileParses) {
  const Manifest m = load_manifest_file(std::string(DSKETCH_SOURCE_DIR) +
                                        "/bench/manifests/full.toml");
  std::set<std::string> experiments;
  for (const Cell& cell : expand_cells(m)) {
    experiments.insert(cell.experiment);
  }
  EXPECT_EQ(experiments.size(), 16u) << "full.toml must cover E1..E16";
}
#endif

}  // namespace
}  // namespace dsketch::exp
