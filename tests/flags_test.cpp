#include <gtest/gtest.h>

#include "util/flags.hpp"

namespace dsketch {
namespace {

FlagSet make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagSet(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, KeyValuePairs) {
  const FlagSet f = make({"--n", "1024", "--p", "0.01"});
  EXPECT_EQ(f.get("n", std::int64_t{0}), 1024);
  EXPECT_DOUBLE_EQ(f.get("p", 0.0), 0.01);
}

TEST(Flags, EqualsSyntax) {
  const FlagSet f = make({"--scheme=slack", "--k=4"});
  EXPECT_EQ(f.get("scheme", std::string{}), "slack");
  EXPECT_EQ(f.get("k", std::int64_t{0}), 4);
}

TEST(Flags, BooleanSwitch) {
  const FlagSet f = make({"--echo", "--k", "2"});
  EXPECT_TRUE(f.get_bool("echo"));
  EXPECT_FALSE(f.get_bool("quiet"));
  EXPECT_EQ(f.get("k", std::int64_t{0}), 2);
}

TEST(Flags, SwitchBeforeAnotherFlag) {
  const FlagSet f = make({"--verbose", "--out", "x.graph"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get("out", std::string{}), "x.graph");
}

TEST(Flags, Positional) {
  const FlagSet f = make({"build", "--k", "3", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "build");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, DefaultsWhenMissing) {
  const FlagSet f = make({});
  EXPECT_EQ(f.get("missing", std::string("def")), "def");
  EXPECT_EQ(f.get("missing", std::int64_t{7}), 7);
  EXPECT_DOUBLE_EQ(f.get("missing", 2.5), 2.5);
}

TEST(Flags, RequireThrows) {
  const FlagSet f = make({"--present", "1"});
  EXPECT_EQ(f.require("present"), "1");
  EXPECT_THROW(f.require("absent"), std::runtime_error);
}

TEST(Flags, HasDetectsPresence) {
  const FlagSet f = make({"--a", "1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_FALSE(f.has("b"));
}

}  // namespace
}  // namespace dsketch
