#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace dsketch {
namespace {

Graph weighted_square() {
  // 0-1 (1), 1-3 (1), 0-2 (5), 2-3 (1): d(0,3) = 2 via 0-1-3.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 3, 1);
  b.add_edge(0, 2, 5);
  b.add_edge(2, 3, 1);
  return b.build();
}

TEST(Dijkstra, SmallWeightedGraph) {
  const Graph g = weighted_square();
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], 2u);
  EXPECT_EQ(d[2], 3u);  // via 0-1-3-2, cheaper than direct 5
}

TEST(Dijkstra, SymmetricDistances) {
  const Graph g = erdos_renyi(100, 0.05, {1, 20}, 3);
  const auto from0 = dijkstra(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    EXPECT_EQ(dijkstra(g, v)[0], from0[v]);
  }
}

TEST(MultiSourceDijkstra, MinimumOverSources) {
  const Graph g = weighted_square();
  const auto r = multi_source_dijkstra(g, {2, 1});
  EXPECT_EQ(r.dist[2], 0u);
  EXPECT_EQ(r.dist[1], 0u);
  EXPECT_EQ(r.dist[0], 1u);
  EXPECT_EQ(r.owner[0], 1u);
  EXPECT_EQ(r.dist[3], 1u);
}

TEST(MultiSourceDijkstra, OwnerTieBreakBySmallerId) {
  // 1 - 0 - 2 with equal weights: node 0 equidistant from 1 and 2.
  GraphBuilder b(3);
  b.add_edge(0, 1, 4);
  b.add_edge(0, 2, 4);
  const Graph g = b.build();
  const auto r = multi_source_dijkstra(g, {1, 2});
  EXPECT_EQ(r.dist[0], 4u);
  EXPECT_EQ(r.owner[0], 1u);
}

TEST(HopBfs, CountsEdgesNotWeights) {
  const Graph g = weighted_square();
  const auto h = hop_bfs(g, 0);
  EXPECT_EQ(h[2], 1u);  // direct heavy edge is 1 hop
  EXPECT_EQ(h[3], 2u);
}

TEST(DijkstraMinHops, PrefersFewHopsAmongShortest) {
  // Two shortest paths 0->3 of weight 4: 0-1-2-3 (1+1+2, 3 hops) and
  // 0-3 direct weight 4 (1 hop). S counts the min-hop one.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 2);
  b.add_edge(0, 3, 4);
  const Graph g = b.build();
  const auto r = dijkstra_min_hops(g, 0);
  EXPECT_EQ(r.dist[3], 4u);
  EXPECT_EQ(r.hops[3], 1u);
}

TEST(Diameters, UnweightedPathExtremes) {
  const Graph g = path(10, {1, 1}, 0);
  EXPECT_EQ(hop_diameter(g), 9u);
  EXPECT_EQ(shortest_path_diameter(g), 9u);
}

TEST(Diameters, HopAtMostShortestPath) {
  const Graph g = erdos_renyi(80, 0.08, {1, 30}, 5);
  EXPECT_LE(hop_diameter(g), shortest_path_diameter(g));
}

TEST(Diameters, CaterpillarHasLargeSvsD) {
  // Heavy spine forces shortest paths along many hops while the hop
  // diameter stays the same scale; here S == D but both capture the spine.
  const Graph g = caterpillar(20, 1, 100, 0);
  EXPECT_GE(shortest_path_diameter(g), 19u);
}

TEST(Diameters, WeightedGapBetweenSAndD) {
  // Ring with one heavy shortcut: hop diameter small via shortcut, but
  // weighted shortest paths go the long way around.
  GraphBuilder b(12);
  for (NodeId i = 0; i + 1 < 12; ++i) b.add_edge(i, i + 1, 1);
  b.add_edge(0, 11, 100);  // heavy chord
  const Graph g = b.build();
  EXPECT_EQ(hop_diameter(g), 6u);            // around the cycle
  EXPECT_EQ(shortest_path_diameter(g), 11u);  // light path end to end
}

TEST(DiameterEstimates, LowerBoundExact) {
  const Graph g = grid2d(8, 8, {1, 1}, 0);
  EXPECT_LE(hop_diameter_estimate(g, 3, 1), hop_diameter(g));
  EXPECT_LE(shortest_path_diameter_estimate(g, 3, 1),
            shortest_path_diameter(g));
  // Sampling every node gives the exact value.
  EXPECT_EQ(hop_diameter_estimate(g, 64, 1), hop_diameter(g));
}

TEST(DiameterEstimates, TolerateDisconnectedGraphs) {
  // The exact diameters require connectivity; the sampled estimators are
  // the cheap/safe path (e.g. `dsketch info` defaults) and must simply
  // skip unreached nodes.
  GraphBuilder b(4);
  b.add_edge(0, 1, 2);
  b.add_edge(2, 3, 5);
  const Graph g = b.build();
  EXPECT_EQ(hop_diameter_estimate(g, 8, 1), 1u);
  EXPECT_EQ(shortest_path_diameter_estimate(g, 8, 1), 1u);
}

TEST(SampledGroundTruth, MatchesDirectDijkstra) {
  const Graph g = erdos_renyi(60, 0.1, {1, 9}, 4);
  const SampledGroundTruth gt(g, 5, 99);
  ASSERT_EQ(gt.num_rows(), 5u);
  for (std::size_t r = 0; r < gt.num_rows(); ++r) {
    const auto d = dijkstra(g, gt.sources()[r]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(gt.dist(r, v), d[v]);
    }
  }
}

TEST(SampledGroundTruth, SourcesDistinct) {
  const Graph g = ring(30, {1, 1}, 0);
  const SampledGroundTruth gt(g, 30, 1);
  std::set<NodeId> uniq(gt.sources().begin(), gt.sources().end());
  EXPECT_EQ(uniq.size(), 30u);
}

}  // namespace
}  // namespace dsketch
