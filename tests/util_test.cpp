#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(17);
    EXPECT_LT(x, 17u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    hit_lo = hit_lo || x == -3;
    hit_hi = hit_hi || x == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(5);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.5);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Percentile, NearestRankInterpolation) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(SampleSet, TracksSamplesAndStats) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.p(95), 95.0, 1.0);
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedInvocations) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<std::int64_t>(i);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, DynamicRunsAllIndicesWithValidLanes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  std::atomic<bool> bad_lane{false};
  pool.for_each_dynamic(777, [&](std::size_t lane, std::size_t i) {
    if (lane >= pool.lanes()) bad_lane = true;
    hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(bad_lane.load());
}

TEST(ThreadPool, DynamicNestedCallDegradesToSerial) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.for_each_dynamic(8, [&](std::size_t, std::size_t) {
    // Re-entrant use from inside a pool task must not deadlock.
    pool.for_each_dynamic(4, [&](std::size_t, std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, WorkerExceptionRethrownAtJoin) {
  // A body throwing on a worker lane must not call std::terminate; the
  // exception surfaces on the calling thread once all lanes quiesce.
  ThreadPool pool(4);
  const auto boom = [](std::size_t i) {
    if (i == 950) throw std::runtime_error("worker boom");
  };
  EXPECT_THROW(pool.parallel_for(1000, boom), std::runtime_error);
}

TEST(ThreadPool, CallerExceptionRethrownAfterWorkersQuiesce) {
  // Index 0 always runs on the calling thread's chunk (static split): the
  // caller-side throw must still wait for the workers before rethrowing.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  const auto boom = [&](std::size_t i) {
    if (i == 0) {
      // Wait until a worker lane has made progress so the rethrow really
      // races against in-flight workers, then throw from the caller chunk.
      while (done.load() == 0) std::this_thread::yield();
      throw std::runtime_error("caller boom");
    }
    done++;
  };
  EXPECT_THROW(pool.parallel_for(1000, boom), std::runtime_error);
  EXPECT_GT(done.load(), 0);  // workers really ran alongside
}

TEST(ThreadPool, DynamicExceptionStopsPullingAndRethrows) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  const auto boom = [&](std::size_t, std::size_t i) {
    if (i == 10) throw std::runtime_error("dynamic boom");
    executed++;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  };
  EXPECT_THROW(pool.for_each_dynamic(100000, boom), std::runtime_error);
  // Lanes noticed the error and stopped pulling long before the end.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ThreadPool, PoolStaysUsableAfterAnException) {
  // The error is cleared per invocation: the next loops run clean on both
  // entry points.
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   500, [](std::size_t i) {
                     if (i == 250) throw std::runtime_error("x");
                   }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for(500, [&](std::size_t) { total++; });
  pool.for_each_dynamic(500, [&](std::size_t, std::size_t) { total++; });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, SerialFallbackPropagatesDirectly) {
  ThreadPool pool(1);  // no workers: serial path
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("serial");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ConcurrentCallersAreSafe) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.for_each_dynamic(50, [&](std::size_t, std::size_t) { total++; });
        pool.parallel_for(50, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 6 * 20 * 100);
}

}  // namespace
}  // namespace dsketch
